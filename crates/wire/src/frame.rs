//! Length-prefixed framing with per-frame CRCs and magic-based resync.
//!
//! A byte stream has no message boundaries, so the wire transport frames
//! every message:
//!
//! ```text
//! offset  size  field
//! 0       4     MAGIC  b"MxN1"
//! 4       1     kind   (Data | Heartbeat | Hello | Bye)
//! 5       3     reserved (zero)
//! 8       4     src    sender's global rank
//! 12      4     context
//! 16      4     tag    (i32)
//! 20      8     seq    per-link data sequence number
//! 28      4     codec  payload-type tag (see CodecRegistry)
//! 32      4     payload_len
//! 36      4     header CRC-32 over bytes 0..36
//! 40      n     payload bytes
//! 40+n    4     payload CRC-32
//! ```
//!
//! Two CRCs, not one: the header CRC lets the reader trust `payload_len`
//! before committing to read that many bytes (a corrupt length would
//! otherwise desynchronize the stream or allocate unboundedly), and the
//! payload CRC detects damage to the bytes themselves. When either check
//! fails the [`FrameReader`] *resynchronizes* by scanning for the next
//! `MAGIC`, so one damaged frame costs one frame — never the rest of the
//! stream, and never a panic.

use crate::crc::crc32;

/// Frame delimiter; also the resync scan target after corruption.
pub const MAGIC: [u8; 4] = *b"MxN1";

/// Fixed frame header size, including the header CRC.
pub const HEADER_LEN: usize = 40;

/// Upper bound on a single frame's payload; a "length" beyond this is
/// treated as header corruption rather than honored.
pub const MAX_PAYLOAD: usize = 1 << 26; // 64 MiB

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// An application message: codec-encoded payload destined for a
    /// mailbox `(context, tag)` bucket.
    Data = 1,
    /// Link-level liveness beacon; carries no payload.
    Heartbeat = 2,
    /// Connection/session handshake. Payload is `(session, last_recv_seq)`
    /// — the receiver retransmits every retained data frame with a higher
    /// sequence number (session resume after reconnect).
    Hello = 3,
    /// Orderly goodbye: the peer is leaving on purpose, not crashing.
    Bye = 4,
    /// End-to-end progress fence. Payload is `(fence_seq, watermark)` where
    /// `watermark` is the highest data sequence number the *sender* has
    /// delivered from the receiver — i.e. proof of how far the receiver's
    /// outbound stream has actually progressed. Heartbeats only prove the
    /// socket is alive; fences prove the application on the far side is
    /// still consuming (a SIGSTOP'd peer keeps accepting connections but
    /// its watermark freezes).
    ProgressFence = 5,
}

impl FrameKind {
    fn from_u8(b: u8) -> Option<Self> {
        match b {
            1 => Some(FrameKind::Data),
            2 => Some(FrameKind::Heartbeat),
            3 => Some(FrameKind::Hello),
            4 => Some(FrameKind::Bye),
            5 => Some(FrameKind::ProgressFence),
            _ => None,
        }
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the frame carries.
    pub kind: FrameKind,
    /// Sender's global rank.
    pub src: u32,
    /// Destination mailbox context (Data frames).
    pub context: u32,
    /// Destination mailbox tag (Data frames).
    pub tag: i32,
    /// Per-link data sequence number (0 for control frames).
    pub seq: u64,
    /// Codec tag of the payload encoding.
    pub codec: u32,
    /// Encoded payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// A payload-free control frame.
    pub fn control(kind: FrameKind, src: u32) -> Self {
        Frame { kind, src, context: 0, tag: 0, seq: 0, codec: 0, payload: Vec::new() }
    }

    /// Serializes the frame, stamping both CRCs.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len() + 4);
        out.extend_from_slice(&MAGIC);
        out.push(self.kind as u8);
        out.extend_from_slice(&[0; 3]);
        out.extend_from_slice(&self.src.to_le_bytes());
        out.extend_from_slice(&self.context.to_le_bytes());
        out.extend_from_slice(&self.tag.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.codec.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        let hcrc = crc32(&out);
        out.extend_from_slice(&hcrc.to_le_bytes());
        out.extend_from_slice(&self.payload);
        out.extend_from_slice(&crc32(&self.payload).to_le_bytes());
        out
    }
}

/// Routing metadata recovered from an intact header whose *payload* CRC
/// failed — enough to tell the destination mailbox "something for you was
/// damaged" so the receiver observes `Corrupt` instead of silence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorruptHeader {
    /// Sender's global rank.
    pub src: u32,
    /// Destination context.
    pub context: u32,
    /// Destination tag.
    pub tag: i32,
    /// Data sequence number.
    pub seq: u64,
}

/// A frame-level integrity failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Bytes were damaged. `skipped` counts the bytes discarded while
    /// resynchronizing; `header` is present when the header itself was
    /// intact (payload-CRC failure), letting the caller surface a
    /// routable corruption error.
    Corrupt {
        /// Bytes discarded to get back in sync.
        skipped: usize,
        /// The intact header, if only the payload was damaged.
        header: Option<CorruptHeader>,
        /// Which check failed.
        reason: &'static str,
    },
}

/// Incremental frame decoder over an arbitrary byte-chunk stream.
///
/// Feed it whatever `read` returned; it buffers partial frames and yields
/// complete ones. All corruption — bad magic, damaged headers, damaged
/// payloads, truncation mid-stream — surfaces as [`FrameError::Corrupt`]
/// followed by successful resync on the next intact frame.
#[derive(Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes from the stream.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered (complete or partial frames).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Scans to the next `MAGIC`, returning how many bytes were dropped.
    /// Keeps a possible magic prefix at the tail so a magic split across
    /// two `feed`s is not lost.
    fn resync(&mut self) -> usize {
        let n = self.buf.len();
        let mut i = 1; // byte 0 is known-bad when resync is called
        while i < n {
            let window = &self.buf[i..(i + 4).min(n)];
            if MAGIC.starts_with(window) || window == MAGIC {
                break;
            }
            i += 1;
        }
        self.buf.drain(..i);
        i
    }

    /// Pulls the next complete frame, a corruption report, or `None` when
    /// more bytes are needed.
    #[allow(clippy::should_implement_trait)] // pull-style API, deliberately not an Iterator
    pub fn next(&mut self) -> Option<Result<Frame, FrameError>> {
        if self.buf.len() < 4 {
            // A partial magic prefix stays buffered; junk is dropped.
            if !MAGIC.starts_with(&self.buf) {
                let skipped = self.resync();
                if skipped > 0 {
                    return Some(Err(FrameError::Corrupt {
                        skipped,
                        header: None,
                        reason: "garbage before frame magic",
                    }));
                }
            }
            return None;
        }
        if self.buf[..4] != MAGIC {
            let skipped = self.resync();
            return Some(Err(FrameError::Corrupt {
                skipped,
                header: None,
                reason: "garbage before frame magic",
            }));
        }
        if self.buf.len() < HEADER_LEN {
            return None;
        }
        let stored_hcrc = read_u32(&self.buf[36..40]);
        let kind = FrameKind::from_u8(self.buf[4]);
        let payload_len = read_u32(&self.buf[32..36]) as usize;
        if crc32(&self.buf[..36]) != stored_hcrc || kind.is_none() || payload_len > MAX_PAYLOAD {
            // The "magic" was a lie (or the header was hit): drop one
            // byte and rescan so a real frame hiding behind it is found.
            self.buf.drain(..1);
            let skipped = 1 + self.resync();
            return Some(Err(FrameError::Corrupt {
                skipped,
                header: None,
                reason: "damaged frame header",
            }));
        }
        let total = HEADER_LEN + payload_len + 4;
        if self.buf.len() < total {
            return None;
        }
        let header = CorruptHeader {
            src: read_u32(&self.buf[8..12]),
            context: read_u32(&self.buf[12..16]),
            tag: read_u32(&self.buf[16..20]) as i32,
            seq: read_u64(&self.buf[20..28]),
        };
        let payload = &self.buf[HEADER_LEN..HEADER_LEN + payload_len];
        let stored_pcrc = read_u32(&self.buf[HEADER_LEN + payload_len..total]);
        if crc32(payload) != stored_pcrc {
            // Header was sound, so the whole (length-delimited) frame
            // can be discarded in one step: stream stays in sync.
            self.buf.drain(..total);
            return Some(Err(FrameError::Corrupt {
                skipped: total,
                header: Some(header),
                reason: "damaged frame payload",
            }));
        }
        let frame = Frame {
            kind: kind.expect("checked above"),
            src: header.src,
            context: header.context,
            tag: header.tag,
            seq: header.seq,
            codec: read_u32(&self.buf[28..32]),
            payload: payload.to_vec(),
        };
        self.buf.drain(..total);
        Some(Ok(frame))
    }
}

fn read_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b[..4].try_into().expect("4-byte slice"))
}

fn read_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().expect("8-byte slice"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_frame(seq: u64, payload: &[u8]) -> Frame {
        Frame {
            kind: FrameKind::Data,
            src: 2,
            context: 7,
            tag: 0x5252,
            seq,
            codec: 15,
            payload: payload.to_vec(),
        }
    }

    #[test]
    fn roundtrip_through_reader() {
        let f = data_frame(9, b"hello");
        let mut r = FrameReader::new();
        r.feed(&f.encode());
        assert_eq!(r.next(), Some(Ok(f)));
        assert_eq!(r.next(), None);
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn byte_at_a_time_feeding() {
        let frames: Vec<Frame> = (0..3).map(|i| data_frame(i, &[i as u8; 5])).collect();
        let bytes: Vec<u8> = frames.iter().flat_map(|f| f.encode()).collect();
        let mut r = FrameReader::new();
        let mut got = Vec::new();
        for b in bytes {
            r.feed(&[b]);
            while let Some(res) = r.next() {
                got.push(res.unwrap());
            }
        }
        assert_eq!(got, frames);
    }

    #[test]
    fn payload_bit_flip_reports_corrupt_with_header_and_resyncs() {
        let a = data_frame(1, b"aaaa");
        let b = data_frame(2, b"bbbb");
        let mut bytes = a.encode();
        bytes[HEADER_LEN + 1] ^= 0x10; // damage a payload byte of `a`
        bytes.extend_from_slice(&b.encode());
        let mut r = FrameReader::new();
        r.feed(&bytes);
        match r.next() {
            Some(Err(FrameError::Corrupt { header: Some(h), reason, .. })) => {
                assert_eq!(h.seq, 1);
                assert_eq!(h.context, 7);
                assert_eq!(reason, "damaged frame payload");
            }
            other => panic!("expected payload corruption, got {other:?}"),
        }
        assert_eq!(r.next(), Some(Ok(b)), "stream resynced on the very next frame");
    }

    #[test]
    fn header_bit_flip_resyncs_to_next_frame() {
        let a = data_frame(1, b"aaaa");
        let b = data_frame(2, b"bbbb");
        let mut bytes = a.encode();
        bytes[20] ^= 0x01; // damage seq inside the protected header
        bytes.extend_from_slice(&b.encode());
        let mut r = FrameReader::new();
        r.feed(&bytes);
        let mut corrupt = 0;
        let mut good = Vec::new();
        while let Some(res) = r.next() {
            match res {
                Ok(f) => good.push(f),
                Err(FrameError::Corrupt { .. }) => corrupt += 1,
            }
        }
        assert!(corrupt >= 1, "header damage must be reported");
        assert_eq!(good, vec![b], "the frame after the damaged one survives");
    }

    #[test]
    fn leading_garbage_is_skipped() {
        let f = data_frame(3, b"x");
        let mut r = FrameReader::new();
        r.feed(b"NOISEnoiseNOISE");
        r.feed(&f.encode());
        let mut good = None;
        while let Some(res) = r.next() {
            if let Ok(frame) = res {
                good = Some(frame);
            }
        }
        assert_eq!(good, Some(f));
    }

    #[test]
    fn absurd_length_is_header_corruption_not_allocation() {
        let f = data_frame(1, b"ok");
        let mut bytes = f.encode();
        bytes[32..36].copy_from_slice(&u32::MAX.to_le_bytes()); // forge payload_len
        let mut r = FrameReader::new();
        r.feed(&bytes);
        assert!(matches!(r.next(), Some(Err(FrameError::Corrupt { .. }))));
    }

    #[test]
    fn truncated_final_frame_stays_pending_not_corrupt() {
        let f = data_frame(1, b"pppp");
        let bytes = f.encode();
        let mut r = FrameReader::new();
        r.feed(&bytes[..bytes.len() - 3]);
        assert_eq!(r.next(), None, "incomplete frame waits for more bytes");
        r.feed(&bytes[bytes.len() - 3..]);
        assert_eq!(r.next(), Some(Ok(f)));
    }

    #[test]
    fn control_frames_are_payload_free() {
        let hb = Frame::control(FrameKind::Heartbeat, 4);
        let mut r = FrameReader::new();
        r.feed(&hb.encode());
        let got = r.next().unwrap().unwrap();
        assert_eq!(got.kind, FrameKind::Heartbeat);
        assert_eq!(got.src, 4);
        assert!(got.payload.is_empty());
    }
}
