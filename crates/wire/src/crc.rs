//! CRC-32 (IEEE 802.3, reflected) — the per-frame integrity check.
//!
//! The in-proc fault plane damages a 64-bit envelope checksum to *model*
//! corruption; on a real byte stream the damage is physical, so the wire
//! layer needs a checksum computed over the actual bytes. CRC-32 is the
//! standard choice for frame-sized payloads: cheap, table-driven, and its
//! burst-error detection matches the failure mode of a torn or bit-flipped
//! socket stream.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xedb8_8320;

/// Table of CRCs of all single-byte messages, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes` (init `!0`, xor-out `!0` — the standard parameters,
/// matching `cksum`-style implementations).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let msg = b"the quick brown fox jumps over the lazy dog".to_vec();
        let clean = crc32(&msg);
        for byte in 0..msg.len() {
            for bit in 0..8 {
                let mut damaged = msg.clone();
                damaged[byte] ^= 1 << bit;
                assert_ne!(crc32(&damaged), clean, "flip at byte {byte} bit {bit} undetected");
            }
        }
    }

    #[test]
    fn truncation_changes_crc() {
        let msg = b"framed payload bytes".to_vec();
        let clean = crc32(&msg);
        for cut in 0..msg.len() {
            assert_ne!(crc32(&msg[..cut]), clean, "truncation to {cut} bytes undetected");
        }
    }
}
