//! Connection multiplexing over **one** UDS listener.
//!
//! The mesh endpoint ([`crate::node::WireNode`]) binds one socket per rank
//! and speaks rank-to-rank — the right shape for a p-way coupling, the
//! wrong one for a serving plane where *thousands* of short-lived clients
//! call into one provider address. This module is the plane's wire front:
//! a single `UnixListener` accepts any number of client connections, each
//! connection gets a plane-assigned id and its own reader/writer thread
//! pair, and every decoded request is handed — still on the connection's
//! reader thread — to a pluggable handler (the shard router in
//! `mxn-serve`).
//!
//! Two properties the serving plane's policy layer relies on:
//!
//! * **A blocking handler parks exactly one client.** Requests are
//!   delivered on the *connection's own* reader thread, so cooperative
//!   backpressure (park the reader of a client whose replies are piling
//!   up) is just "the handler blocks": the socket's kernel buffer then
//!   fills, the client's sends stall, and no other connection notices.
//! * **Replies are decoupled from request flow.** Each connection owns a
//!   writer thread fed by an unbounded channel; [`MuxServer::reply`] never
//!   blocks the caller (the shard executor), it enqueues and returns.
//!
//! Frames reuse the `MxN1` framing layer ([`crate::frame`]): header + CRCs,
//! resync on damage. Request/response bodies are [`MuxRequest`] /
//! [`MuxResponse`] — small explicit structs whose *argument bytes* carry
//! their own [`crate::codec::CodecRegistry`] tag, so the mux layer never
//! needs to know the application's payload types.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use crate::codec::{decode_value, encode_value, CodecError, WireCodec};
use crate::frame::{Frame, FrameError, FrameKind, FrameReader};

/// Frame-header codec tag marking a [`MuxRequest`] body.
pub const MUX_REQ_CODEC: u32 = 0x4d58_0001; // "MX" 1
/// Frame-header codec tag marking a [`MuxResponse`] body.
pub const MUX_RESP_CODEC: u32 = 0x4d58_0002; // "MX" 2

/// Plane-assigned connection identifier (dense, starting at 0).
pub type ConnId = u64;

/// Outcome discriminant carried by a [`MuxResponse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum MuxStatus {
    /// `payload` is the encoded method result under `codec`.
    Ok = 0,
    /// The service does not implement the method; `payload` is empty.
    MethodNotFound = 1,
    /// Admission control shed the request; `payload` is the encoded
    /// `(queue_depth: u32, reason: u8)` pair.
    Overloaded = 2,
}

impl MuxStatus {
    fn from_u8(v: u8) -> Result<Self, CodecError> {
        match v {
            0 => Ok(MuxStatus::Ok),
            1 => Ok(MuxStatus::MethodNotFound),
            2 => Ok(MuxStatus::Overloaded),
            _ => Err(CodecError::Invalid { what: "unknown mux response status" }),
        }
    }
}

/// One client request as it crosses the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MuxRequest {
    /// Method selector on the served port.
    pub method: u32,
    /// Client-local correlation id; echoed on the matching response.
    pub call_id: u64,
    /// One-way requests expect no response.
    pub oneway: bool,
    /// Codec-registry tag of `arg`.
    pub codec: u32,
    /// The encoded argument.
    pub arg: Vec<u8>,
}

impl WireCodec for MuxRequest {
    fn encode(&self, out: &mut Vec<u8>) {
        self.method.encode(out);
        self.call_id.encode(out);
        self.oneway.encode(out);
        self.codec.encode(out);
        self.arg.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(MuxRequest {
            method: u32::decode(input)?,
            call_id: u64::decode(input)?,
            oneway: bool::decode(input)?,
            codec: u32::decode(input)?,
            arg: Vec::<u8>::decode(input)?,
        })
    }
}

/// One reply as it crosses the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MuxResponse {
    /// Correlates with [`MuxRequest::call_id`].
    pub call_id: u64,
    /// What happened to the request.
    pub status: MuxStatus,
    /// Codec-registry tag of `payload` (0 for NACK statuses).
    pub codec: u32,
    /// The encoded result, or the NACK detail bytes.
    pub payload: Vec<u8>,
}

impl MuxResponse {
    /// An `Overloaded` NACK carrying the shard queue depth observed at
    /// shed time (`reason`: 0 = admission-full, 1 = queue-deadline).
    pub fn overloaded(call_id: u64, queue_depth: u32, reason: u8) -> Self {
        let mut payload = Vec::with_capacity(5);
        queue_depth.encode(&mut payload);
        reason.encode(&mut payload);
        MuxResponse { call_id, status: MuxStatus::Overloaded, codec: 0, payload }
    }

    /// Decodes the `(queue_depth, reason)` pair of an `Overloaded` NACK.
    pub fn overload_detail(&self) -> Result<(u32, u8), CodecError> {
        decode_value::<(u32, u8)>(&self.payload)
    }
}

impl WireCodec for MuxResponse {
    fn encode(&self, out: &mut Vec<u8>) {
        self.call_id.encode(out);
        out.push(self.status as u8);
        self.codec.encode(out);
        self.payload.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(MuxResponse {
            call_id: u64::decode(input)?,
            status: MuxStatus::from_u8(u8::decode(input)?)?,
            codec: u32::decode(input)?,
            payload: Vec::<u8>::decode(input)?,
        })
    }
}

/// Callbacks a [`MuxServer`] drives. Implemented by the serving plane's
/// shard router; both run on the affected connection's reader thread.
pub trait MuxHandler: Send + Sync + 'static {
    /// One decoded request from `conn`. Blocking here parks only this
    /// connection's reader (cooperative backpressure).
    fn on_request(&self, conn: ConnId, req: MuxRequest);
    /// `conn` closed (EOF, error, or server shutdown). Called exactly once.
    fn on_close(&self, conn: ConnId);
}

struct ConnState {
    replies: mpsc::Sender<MuxResponse>,
    writer: Option<JoinHandle<()>>,
    reader: Option<JoinHandle<()>>,
}

struct MuxShared {
    shutdown: AtomicBool,
    next_conn: AtomicU64,
    conns: Mutex<HashMap<ConnId, ConnState>>,
    handler: Arc<dyn MuxHandler>,
}

/// One UDS listener multiplexing any number of client connections onto a
/// pluggable request handler. See the module docs for the threading model.
pub struct MuxServer {
    shared: Arc<MuxShared>,
    path: PathBuf,
    acceptor: Option<JoinHandle<()>>,
}

impl MuxServer {
    /// Binds `path` (removing any stale socket file) and starts accepting.
    pub fn bind(path: impl AsRef<Path>, handler: Arc<dyn MuxHandler>) -> io::Result<MuxServer> {
        let path = path.as_ref().to_path_buf();
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(MuxShared {
            shutdown: AtomicBool::new(false),
            next_conn: AtomicU64::new(0),
            conns: Mutex::new(HashMap::new()),
            handler,
        });
        let acc = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("mux-accept".into())
                .spawn(move || shared.acceptor_loop(listener))?
        };
        Ok(MuxServer { shared, path, acceptor: Some(acc) })
    }

    /// Enqueues a reply for `conn`'s writer thread. Never blocks. Returns
    /// `false` if the connection is already gone (the reply is dropped —
    /// the client will retransmit or observe the close).
    pub fn reply(&self, conn: ConnId, resp: MuxResponse) -> bool {
        self.shared.reply(conn, resp)
    }

    /// A clonable reply handle, for executors that outlive the borrow.
    pub fn replier(&self) -> MuxReplier {
        MuxReplier { shared: Arc::clone(&self.shared) }
    }

    /// Connections currently attached.
    pub fn connections(&self) -> usize {
        self.shared.conns.lock().len()
    }

    /// Stops accepting, closes every connection, removes the socket file.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        let conns: Vec<(ConnId, ConnState)> = self.shared.conns.lock().drain().collect();
        for (conn, mut st) in conns {
            drop(st.replies); // writer drains and exits
            if let Some(h) = st.writer.take() {
                let _ = h.join();
            }
            if let Some(h) = st.reader.take() {
                let _ = h.join();
            }
            self.shared.handler.on_close(conn);
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

impl Drop for MuxServer {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Clonable handle that can enqueue replies without borrowing the server.
#[derive(Clone)]
pub struct MuxReplier {
    shared: Arc<MuxShared>,
}

impl MuxReplier {
    /// See [`MuxServer::reply`].
    pub fn reply(&self, conn: ConnId, resp: MuxResponse) -> bool {
        self.shared.reply(conn, resp)
    }
}

impl MuxShared {
    fn reply(&self, conn: ConnId, resp: MuxResponse) -> bool {
        let conns = self.conns.lock();
        match conns.get(&conn) {
            Some(st) => st.replies.send(resp).is_ok(),
            None => false,
        }
    }

    fn acceptor_loop(self: Arc<Self>, listener: UnixListener) {
        while !self.shutdown.load(Ordering::Acquire) {
            match listener.accept() {
                Ok((stream, _)) => self.attach(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(1)),
            }
        }
    }

    /// Registers a connection and spawns its reader/writer pair.
    fn attach(self: &Arc<Self>, stream: UnixStream) {
        let conn = self.next_conn.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel::<MuxResponse>();
        let write_half = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        };
        let writer = std::thread::Builder::new()
            .name(format!("mux-write-{conn}"))
            .spawn(move || writer_loop(write_half, rx))
            .ok();
        let reader = {
            let shared = Arc::clone(self);
            std::thread::Builder::new()
                .name(format!("mux-read-{conn}"))
                .spawn(move || shared.reader_loop(conn, stream))
                .ok()
        };
        self.conns.lock().insert(conn, ConnState { replies: tx, writer, reader });
    }

    /// Per-connection reader: framed requests → handler, until EOF.
    fn reader_loop(self: Arc<Self>, conn: ConnId, mut stream: UnixStream) {
        // Bounded read timeout so shutdown is observed even on idle conns.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
        let mut frames = FrameReader::new();
        let mut buf = [0u8; 64 * 1024];
        'read: loop {
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            let n = match stream.read(&mut buf) {
                Ok(0) => break, // EOF: client went away
                Ok(n) => n,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(_) => break,
            };
            frames.feed(&buf[..n]);
            while let Some(next) = frames.next() {
                let frame = match next {
                    Ok(f) => f,
                    // Damaged bytes: the reader resyncs; the client's retry
                    // policy covers the lost request.
                    Err(FrameError::Corrupt { .. }) => continue,
                };
                match frame.kind {
                    FrameKind::Bye => break 'read,
                    FrameKind::Data if frame.codec == MUX_REQ_CODEC => {
                        if let Ok(req) = decode_value::<MuxRequest>(&frame.payload) {
                            // May block: that parks exactly this client.
                            self.handler.on_request(conn, req);
                        }
                    }
                    _ => {}
                }
            }
        }
        // Detach: drop the reply sender so the writer exits once drained.
        let st = self.conns.lock().remove(&conn);
        if let Some(mut st) = st {
            drop(st.replies);
            if let Some(h) = st.writer.take() {
                let _ = h.join();
            }
            self.handler.on_close(conn);
        }
        // else: shutdown_inner already detached (and will call on_close).
    }
}

/// Per-connection writer: drains the reply channel into framed responses.
fn writer_loop(mut stream: UnixStream, rx: mpsc::Receiver<MuxResponse>) {
    while let Ok(resp) = rx.recv() {
        let frame = Frame {
            kind: FrameKind::Data,
            src: 0,
            context: 0,
            tag: 0,
            seq: 0,
            codec: MUX_RESP_CODEC,
            payload: encode_value(&resp),
        };
        if stream.write_all(&frame.encode()).is_err() {
            return;
        }
    }
    let _ = stream.flush();
}

/// Client side of the mux protocol: one UDS connection, pipelined sends,
/// blocking receives. Not thread-safe by design — a simulated client is
/// one thread; real applications open one `MuxClient` per worker.
pub struct MuxClient {
    stream: UnixStream,
    frames: FrameReader,
    buf: Vec<u8>,
    next_call: u64,
}

impl MuxClient {
    /// Connects to a [`MuxServer`] at `path`.
    pub fn connect(path: impl AsRef<Path>) -> io::Result<MuxClient> {
        let stream = UnixStream::connect(path)?;
        Ok(MuxClient { stream, frames: FrameReader::new(), buf: vec![0; 64 * 1024], next_call: 0 })
    }

    /// Sends one request (pipelined: does not wait for the reply) and
    /// returns its call id.
    pub fn send(&mut self, method: u32, codec: u32, arg: Vec<u8>, oneway: bool) -> io::Result<u64> {
        let call_id = self.next_call;
        self.next_call += 1;
        let req = MuxRequest { method, call_id, oneway, codec, arg };
        let frame = Frame {
            kind: FrameKind::Data,
            src: 0,
            context: 0,
            tag: 0,
            seq: 0,
            codec: MUX_REQ_CODEC,
            payload: encode_value(&req),
        };
        self.stream.write_all(&frame.encode())?;
        Ok(call_id)
    }

    /// Blocks for the next response frame.
    pub fn recv(&mut self) -> io::Result<MuxResponse> {
        loop {
            while let Some(next) = self.frames.next() {
                if let Ok(frame) = next {
                    if frame.kind == FrameKind::Data && frame.codec == MUX_RESP_CODEC {
                        if let Ok(resp) = decode_value::<MuxResponse>(&frame.payload) {
                            return Ok(resp);
                        }
                    }
                }
            }
            let n = self.stream.read(&mut self.buf)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            let fed = self.buf[..n].to_vec();
            self.frames.feed(&fed);
        }
    }

    /// Convenience: send one request and block for its reply.
    pub fn call(&mut self, method: u32, codec: u32, arg: Vec<u8>) -> io::Result<MuxResponse> {
        let id = self.send(method, codec, arg, false)?;
        loop {
            let resp = self.recv()?;
            if resp.call_id == id {
                return Ok(resp);
            }
        }
    }

    /// [`MuxClient::call`] under a [`CallPolicy`]: when the server sheds
    /// the request with an `Overloaded` NACK, the client re-sends after
    /// the policy's backoff — base doubling per attempt, stretched by
    /// [`CallPolicy::load_factor`] of the queue depth the NACK reported,
    /// jittered when the policy is seeded. Any other status returns
    /// immediately; when retries are exhausted the final NACK is returned
    /// so the caller can see the depth it lost to. This gives a wire
    /// client the same shed-and-retry loop PRMI's `call_with_policy` runs
    /// in-process.
    pub fn call_with_policy(
        &mut self,
        method: u32,
        codec: u32,
        arg: Vec<u8>,
        policy: &mxn_framework::CallPolicy,
    ) -> io::Result<MuxResponse> {
        let mut base = policy.backoff;
        let mut attempt = 0u32;
        loop {
            let resp = self.call(method, codec, arg.clone())?;
            if resp.status != MuxStatus::Overloaded || attempt >= policy.max_retries {
                return Ok(resp);
            }
            let (depth, _reason) = resp
                .overload_detail()
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            std::thread::sleep(policy.retry_pause_loaded(base, attempt, depth));
            base = base.saturating_mul(2);
            attempt += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sock_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("mxn-mux-test-{}-{name}.sock", std::process::id()));
        p
    }

    /// Echoes the argument bytes back, doubling each byte.
    struct Doubler {
        replier: Mutex<Option<MuxReplier>>,
        closed: AtomicU64,
    }

    impl MuxHandler for Doubler {
        fn on_request(&self, conn: ConnId, req: MuxRequest) {
            let replier = self.replier.lock().clone().expect("replier installed");
            let payload: Vec<u8> = req.arg.iter().map(|b| b.wrapping_mul(2)).collect();
            let status = if req.method == 0 { MuxStatus::Ok } else { MuxStatus::MethodNotFound };
            replier.reply(
                conn,
                MuxResponse { call_id: req.call_id, status, codec: req.codec, payload },
            );
        }
        fn on_close(&self, _conn: ConnId) {
            self.closed.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn request_response_roundtrip_over_one_listener() {
        let path = sock_path("roundtrip");
        let handler = Arc::new(Doubler { replier: Mutex::new(None), closed: AtomicU64::new(0) });
        let server = MuxServer::bind(&path, handler.clone() as Arc<dyn MuxHandler>).unwrap();
        *handler.replier.lock() = Some(server.replier());

        let mut clients: Vec<MuxClient> =
            (0..8).map(|_| MuxClient::connect(&path).unwrap()).collect();
        // Pipelined: every client sends 4 requests before reading anything.
        for (i, c) in clients.iter_mut().enumerate() {
            for k in 0..4u8 {
                c.send(0, 12, vec![i as u8, k], false).unwrap();
            }
        }
        for (i, c) in clients.iter_mut().enumerate() {
            for k in 0..4u8 {
                let resp = c.recv().unwrap();
                assert_eq!(resp.call_id, k as u64, "replies stay in order per connection");
                assert_eq!(resp.status, MuxStatus::Ok);
                assert_eq!(resp.payload, vec![(i as u8).wrapping_mul(2), k.wrapping_mul(2)]);
            }
        }
        drop(clients);
        server.shutdown();
        assert_eq!(handler.closed.load(Ordering::Relaxed), 8, "every close observed once");
    }

    #[test]
    fn unknown_method_nack_crosses_the_wire() {
        let path = sock_path("nack");
        let handler = Arc::new(Doubler { replier: Mutex::new(None), closed: AtomicU64::new(0) });
        let server = MuxServer::bind(&path, handler.clone() as Arc<dyn MuxHandler>).unwrap();
        *handler.replier.lock() = Some(server.replier());
        let mut client = MuxClient::connect(&path).unwrap();
        let resp = client.call(99, 12, vec![1u8]).unwrap();
        assert_eq!(resp.status, MuxStatus::MethodNotFound);
        server.shutdown();
    }

    #[test]
    fn overload_nack_carries_depth_and_reason() {
        let resp = MuxResponse::overloaded(7, 1234, 1);
        let bytes = encode_value(&resp);
        let back = decode_value::<MuxResponse>(&bytes).unwrap();
        assert_eq!(back.status, MuxStatus::Overloaded);
        assert_eq!(back.overload_detail().unwrap(), (1234, 1));
    }

    #[test]
    fn request_codec_is_total() {
        let req = MuxRequest { method: 3, call_id: 9, oneway: true, codec: 12, arg: vec![1, 2] };
        let bytes = encode_value(&req);
        assert_eq!(decode_value::<MuxRequest>(&bytes).unwrap(), req);
        for cut in 0..bytes.len() {
            assert!(decode_value::<MuxRequest>(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }
}
