//! Seeded fault injection at the frame layer.
//!
//! The in-proc fault plane (`mxn_runtime::fault`) judges each *envelope*
//! on its way into a mailbox. Over a socket the natural injection point is
//! the encoded *frame*: a dropped frame models a lost packet, a flipped
//! bit models line noise the CRCs must catch, a delay models congestion.
//! The decision function is the same stateless seeded-hash design as the
//! in-proc plane (reusing its [`splitmix64`]/[`unit`] mixers), so the
//! `MXN_FAULT_SEED` × `MXN_FAULT_KIND` CI matrix drives both transports
//! with the same environment variables — and the same seed replays the
//! same byte-level damage.
//!
//! Decisions are keyed on a per-link *send-attempt* counter rather than
//! the frame's sequence number: a frame retransmitted by session resume
//! gets a fresh draw, so a lossy link cannot deterministically swallow
//! the same message forever.

use std::time::Duration;

use mxn_runtime::{splitmix64, unit};

/// What the fault plane decided for one outgoing frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireVerdict {
    /// Write the frame unchanged.
    Deliver,
    /// Pretend the frame was lost in flight.
    Drop,
    /// Flip this bit (0-based, over the whole encoded frame) before
    /// writing; the receiver's CRC must catch it.
    FlipBit(usize),
    /// Sleep this long before writing.
    Delay(Duration),
}

/// Frame-layer fault policy; probabilities in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireFaults {
    /// Seed for every draw; same seed ⇒ same damage.
    pub seed: u64,
    /// Probability an outgoing data frame is dropped.
    pub drop: f64,
    /// Probability one bit of an outgoing data frame is flipped.
    pub corrupt: f64,
    /// Fixed extra delay before each write (models latency).
    pub delay: Duration,
}

impl WireFaults {
    /// No faults.
    pub fn none() -> Self {
        WireFaults { seed: 0, drop: 0.0, corrupt: 0.0, delay: Duration::ZERO }
    }

    /// Reads the CI fault-matrix environment: `MXN_FAULT_SEED` (default 1)
    /// picks the RNG stream and `MXN_FAULT_KIND` ∈ {`drop`, `corrupt`}
    /// picks the failure class (anything else — including the in-proc-only
    /// `death` — injects nothing at the frame layer).
    pub fn from_env() -> Self {
        let seed =
            std::env::var("MXN_FAULT_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(1u64);
        match std::env::var("MXN_FAULT_KIND").as_deref() {
            Ok("drop") => WireFaults { seed, drop: 0.25, ..Self::none() },
            Ok("corrupt") => WireFaults { seed, corrupt: 0.25, ..Self::none() },
            _ => WireFaults { seed, ..Self::none() },
        }
    }

    /// Whether any fault can ever fire.
    pub fn is_reliable(&self) -> bool {
        self.drop == 0.0 && self.corrupt == 0.0 && self.delay.is_zero()
    }

    /// Judges one outgoing frame of `frame_len` bytes on link `src → dst`,
    /// `attempt` being the link's monotone send-attempt counter.
    pub fn judge(&self, src: u32, dst: u32, attempt: u64, frame_len: usize) -> WireVerdict {
        if self.is_reliable() || frame_len == 0 {
            return WireVerdict::Deliver;
        }
        let key = (u64::from(src) << 40) ^ (u64::from(dst) << 20) ^ attempt.wrapping_mul(0x9e37);
        let fate = unit(splitmix64(self.seed ^ key));
        if fate < self.drop {
            return WireVerdict::Drop;
        }
        if fate < self.drop + self.corrupt {
            let bit_draw = splitmix64(self.seed ^ key ^ 0x6a09_e667_f3bc_c909);
            return WireVerdict::FlipBit((bit_draw as usize) % (frame_len * 8));
        }
        if !self.delay.is_zero() {
            return WireVerdict::Delay(self.delay);
        }
        WireVerdict::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_never_faults() {
        let f = WireFaults::none();
        for a in 0..200 {
            assert_eq!(f.judge(0, 1, a, 64), WireVerdict::Deliver);
        }
    }

    #[test]
    fn same_seed_same_verdicts() {
        let f = WireFaults { seed: 42, drop: 0.3, corrupt: 0.3, delay: Duration::ZERO };
        let g = f;
        for a in 0..500 {
            assert_eq!(f.judge(1, 2, a, 128), g.judge(1, 2, a, 128));
        }
    }

    #[test]
    fn different_attempts_redraw() {
        // The redelivery guarantee: a frame dropped on attempt k must have
        // an independent fate on attempt k+1, so some retry gets through.
        let f = WireFaults { seed: 7, drop: 0.5, ..WireFaults::none() };
        let fates: Vec<_> = (0..64).map(|a| f.judge(0, 1, a, 64)).collect();
        assert!(fates.contains(&WireVerdict::Deliver));
        assert!(fates.contains(&WireVerdict::Drop));
    }

    #[test]
    fn flipped_bit_is_in_range() {
        let f = WireFaults { seed: 3, corrupt: 1.0, ..WireFaults::none() };
        for a in 0..100 {
            match f.judge(0, 1, a, 50) {
                WireVerdict::FlipBit(bit) => assert!(bit < 400),
                other => panic!("corrupt=1.0 must always flip, got {other:?}"),
            }
        }
    }

    #[test]
    fn env_matrix_shapes() {
        // from_env is driven by process-global env vars, so exercise the
        // pure constructor equivalents instead of mutating the environment.
        let drop = WireFaults { seed: 9, drop: 0.25, ..WireFaults::none() };
        assert!(!drop.is_reliable());
        let none = WireFaults::none();
        assert!(none.is_reliable());
    }
}
