//! Byte serialization for payloads that cross a process boundary.
//!
//! In-proc, payloads travel as `Box<dyn Any>` — ownership transfer through
//! shared memory, no bytes ever produced. Across processes that is
//! impossible, so every type that crosses the wire implements [`WireCodec`]:
//! a small, explicit, little-endian encoding with *total* decoding — every
//! byte string either decodes or returns a [`CodecError`], never a panic.
//! That totality is what the frame layer's corruption story rests on: a
//! damaged payload that somehow passes CRC still cannot crash the decoder.
//!
//! A [`CodecRegistry`] maps concrete Rust types to stable numeric tags so
//! the type-erased send path (`Payload::Owned(Box<dyn Any>)`) can find the
//! encoder at runtime and the receiver can find the decoder from the tag
//! in the frame header. `Payload::Shared` (the `Arc`-based zero-clone
//! multicast representation) is deliberately *not* encodable: sharing one
//! allocation is an in-proc concept, and the transport returns a type
//! error rather than silently deep-copying.

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::fmt;

/// Why a byte string failed to decode.
///
/// Decoders must be total: any input produces `Ok` or one of these — a
/// panic in a decoder is a crash vector a remote peer could trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the value did.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes actually remaining.
        have: usize,
    },
    /// No decoder is registered for this payload tag.
    BadTag {
        /// The unknown tag.
        tag: u32,
    },
    /// The value decoded but bytes were left over — a framing/codec
    /// mismatch (e.g. tag collision between two types).
    Trailing {
        /// Leftover byte count.
        extra: usize,
    },
    /// The bytes were structurally well-formed but semantically invalid
    /// (e.g. a string that is not UTF-8).
    Invalid {
        /// What was invalid.
        what: &'static str,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, have } => {
                write!(f, "truncated payload: needed {needed} more bytes, have {have}")
            }
            CodecError::BadTag { tag } => write!(f, "no codec registered for payload tag {tag}"),
            CodecError::Trailing { extra } => {
                write!(f, "{extra} trailing bytes after a complete value")
            }
            CodecError::Invalid { what } => write!(f, "invalid encoding: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Takes `n` bytes off the front of `input`, or reports truncation.
fn take<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8], CodecError> {
    if input.len() < n {
        return Err(CodecError::Truncated { needed: n, have: input.len() });
    }
    let (head, rest) = input.split_at(n);
    *input = rest;
    Ok(head)
}

/// A type that can serialize itself to wire bytes and decode itself back.
///
/// Encodings are little-endian and length-prefixed where variable-sized;
/// `decode` consumes exactly the bytes `encode` produced and must never
/// panic on arbitrary input.
pub trait WireCodec: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes one value off the front of `input`, advancing it.
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError>;
}

macro_rules! int_codec {
    ($($t:ty),*) => {$(
        impl WireCodec for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
                let n = std::mem::size_of::<$t>();
                let bytes = take(input, n)?;
                Ok(<$t>::from_le_bytes(bytes.try_into().expect("take returned n bytes")))
            }
        }
    )*};
}

int_codec!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

impl WireCodec for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let v = u64::decode(input)?;
        usize::try_from(v).map_err(|_| CodecError::Invalid { what: "usize out of range" })
    }
}

impl WireCodec for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(u8::decode(input)? != 0)
    }
}

impl WireCodec for () {
    fn encode(&self, _out: &mut Vec<u8>) {}
    fn decode(_input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok(())
    }
}

impl WireCodec for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let len = u32::decode(input)? as usize;
        let bytes = take(input, len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CodecError::Invalid { what: "string is not UTF-8" })
    }
}

impl<T: WireCodec + Any> WireCodec for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        // Bulk fast path for byte vectors: element-wise encoding costs a
        // call per byte, which dominates large-payload wire bandwidth.
        if let Some(bytes) = (self as &dyn Any).downcast_ref::<Vec<u8>>() {
            out.extend_from_slice(bytes);
            return;
        }
        for v in self {
            v.encode(out);
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        let count = u32::decode(input)? as usize;
        if TypeId::of::<T>() == TypeId::of::<u8>() {
            let raw = take(input, count)?.to_vec();
            return Ok(*(Box::new(raw) as Box<dyn Any>)
                .downcast::<Vec<T>>()
                .expect("T = u8 just checked"));
        }
        // No speculative reservation: a corrupt count must hit `Truncated`
        // while decoding elements, not allocate gigabytes up front.
        let mut out = Vec::new();
        for _ in 0..count {
            out.push(T::decode(input)?);
        }
        Ok(out)
    }
}

impl<T: WireCodec> WireCodec for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        match u8::decode(input)? {
            0 => Ok(None),
            _ => Ok(Some(T::decode(input)?)),
        }
    }
}

impl<A: WireCodec, B: WireCodec> WireCodec for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok((A::decode(input)?, B::decode(input)?))
    }
}

impl<A: WireCodec, B: WireCodec, C: WireCodec> WireCodec for (A, B, C) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Result<Self, CodecError> {
        Ok((A::decode(input)?, B::decode(input)?, C::decode(input)?))
    }
}

/// Encodes `value` into a fresh buffer.
pub fn encode_value<T: WireCodec>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.encode(&mut out);
    out
}

/// Decodes a complete value from `bytes`, rejecting leftovers.
pub fn decode_value<T: WireCodec>(bytes: &[u8]) -> Result<T, CodecError> {
    let mut input = bytes;
    let v = T::decode(&mut input)?;
    if !input.is_empty() {
        return Err(CodecError::Trailing { extra: input.len() });
    }
    Ok(v)
}

type EncodeFn = fn(&dyn Any, &mut Vec<u8>) -> bool;
type DecodeFn = fn(&[u8]) -> Result<Box<dyn Any + Send>, CodecError>;

/// Runtime mapping between concrete payload types and wire tags.
///
/// The send path holds a type-erased `Box<dyn Any>`; the registry finds
/// the encoder by `TypeId` and stamps the tag into the frame header so the
/// receiver can find the matching decoder. Both processes must register
/// the same `(tag, type)` pairs — the tag is the cross-process name of the
/// type, exactly as CORBA-style IDL gives remote methods numeric ids.
#[derive(Default)]
pub struct CodecRegistry {
    by_type: HashMap<TypeId, (u32, EncodeFn)>,
    by_tag: HashMap<u32, DecodeFn>,
}

impl CodecRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry preloaded with the scalar and vector types the coupling
    /// and PRMI layers send: use this unless an application needs custom
    /// structs, and extend it with [`CodecRegistry::register`] when it does.
    pub fn with_defaults() -> Self {
        let mut r = Self::new();
        r.register::<()>(1);
        r.register::<bool>(2);
        r.register::<u8>(3);
        r.register::<u32>(4);
        r.register::<u64>(5);
        r.register::<i32>(6);
        r.register::<i64>(7);
        r.register::<f32>(8);
        r.register::<f64>(9);
        r.register::<usize>(10);
        r.register::<String>(11);
        r.register::<Vec<u8>>(12);
        r.register::<Vec<u32>>(13);
        r.register::<Vec<u64>>(14);
        r.register::<Vec<f64>>(15);
        r.register::<Vec<usize>>(16);
        r.register::<(u64, u64)>(17);
        r.register::<(u64, f64)>(18);
        r.register::<Vec<(usize, f64)>>(19);
        r
    }

    /// Registers `T` under `tag`. Panics if either the tag or the type is
    /// already taken — tag collisions are configuration bugs, and failing
    /// at registration is the only place they are locally detectable.
    pub fn register<T: WireCodec + Any + Send>(&mut self, tag: u32) {
        let enc: EncodeFn = |any, out| match any.downcast_ref::<T>() {
            Some(v) => {
                v.encode(out);
                true
            }
            None => false,
        };
        let dec: DecodeFn = |bytes| decode_value::<T>(bytes).map(|v| Box::new(v) as _);
        assert!(
            self.by_type.insert(TypeId::of::<T>(), (tag, enc)).is_none(),
            "type registered twice in CodecRegistry"
        );
        assert!(self.by_tag.insert(tag, dec).is_none(), "payload tag {tag} registered twice");
    }

    /// Encodes a type-erased payload, returning its tag and bytes, or
    /// `None` if the concrete type was never registered.
    pub fn encode_any(&self, value: &dyn Any) -> Option<(u32, Vec<u8>)> {
        let (tag, enc) = self.by_type.get(&value.type_id())?;
        let mut out = Vec::new();
        let matched = enc(value, &mut out);
        debug_assert!(matched, "TypeId lookup and downcast must agree");
        matched.then_some((*tag, out))
    }

    /// Encodes a typed value directly (the non-erased fast path).
    pub fn encode_typed<T: WireCodec + Any + Send>(&self, value: &T) -> Option<(u32, Vec<u8>)> {
        let (tag, _) = self.by_type.get(&TypeId::of::<T>())?;
        Some((*tag, encode_value(value)))
    }

    /// Decodes payload bytes under `tag` back into a type-erased box.
    pub fn decode_any(&self, tag: u32, bytes: &[u8]) -> Result<Box<dyn Any + Send>, CodecError> {
        let dec = self.by_tag.get(&tag).ok_or(CodecError::BadTag { tag })?;
        dec(bytes)
    }

    /// Whether `T` has an encoder registered.
    pub fn knows<T: Any>(&self) -> bool {
        self.by_type.contains_key(&TypeId::of::<T>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: WireCodec + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = encode_value(&v);
        assert_eq!(decode_value::<T>(&bytes).unwrap(), v);
    }

    #[test]
    fn scalar_roundtrips() {
        roundtrip(0u8);
        roundtrip(u64::MAX);
        roundtrip(-7i32);
        roundtrip(3.25f64);
        roundtrip(true);
        roundtrip(());
        roundtrip(usize::MAX);
    }

    #[test]
    fn compound_roundtrips() {
        roundtrip(String::from("héllo wörld"));
        roundtrip(vec![1.0f64, -2.5, f64::INFINITY]);
        roundtrip(Vec::<u32>::new());
        roundtrip(Some(vec![(3usize, 1.5f64)]));
        roundtrip((1u64, 2u64, String::from("x")));
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let bytes = encode_value(&vec![1u64, 2, 3]);
        for cut in 0..bytes.len() {
            let r = decode_value::<Vec<u64>>(&bytes[..cut]);
            assert!(matches!(r, Err(CodecError::Truncated { .. })), "cut={cut}: {r:?}");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_value(&5u32);
        bytes.push(0);
        assert_eq!(decode_value::<u32>(&bytes), Err(CodecError::Trailing { extra: 1 }));
    }

    #[test]
    fn huge_length_prefix_does_not_allocate() {
        // A corrupt count of u32::MAX elements must fail fast on truncation.
        let mut bytes = Vec::new();
        u32::MAX.encode(&mut bytes);
        assert!(matches!(decode_value::<Vec<u64>>(&bytes), Err(CodecError::Truncated { .. })));
    }

    #[test]
    fn non_utf8_string_is_invalid() {
        let mut bytes = Vec::new();
        2u32.encode(&mut bytes);
        bytes.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(
            decode_value::<String>(&bytes),
            Err(CodecError::Invalid { what: "string is not UTF-8" })
        );
    }

    #[test]
    fn registry_roundtrips_type_erased() {
        let reg = CodecRegistry::with_defaults();
        let value: Box<dyn Any + Send> = Box::new(vec![1.5f64, 2.5]);
        let (tag, bytes) = reg.encode_any(value.as_ref()).unwrap();
        let back = reg.decode_any(tag, &bytes).unwrap();
        assert_eq!(*back.downcast::<Vec<f64>>().unwrap(), vec![1.5, 2.5]);
    }

    #[test]
    fn registry_rejects_unknown_type_and_tag() {
        let reg = CodecRegistry::with_defaults();
        struct Opaque;
        assert!(reg.encode_any(&Opaque).is_none());
        assert_eq!(reg.decode_any(0xdead, &[]).unwrap_err(), CodecError::BadTag { tag: 0xdead });
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_tag_panics_at_registration() {
        let mut reg = CodecRegistry::new();
        reg.register::<u32>(1);
        reg.register::<u64>(1);
    }
}
