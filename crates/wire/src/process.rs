//! Multi-process launch helpers: re-exec workers, kill-on-drop guards.
//!
//! Tests and examples need real OS processes without depending on an
//! external launcher (`mpirun`). The pattern here is *self re-exec*: the
//! driver process spawns `current_exe()` again with `MXN_WIRE_RANK` (and
//! friends) set; early in `main`/the test body, [`wire_role`] detects the
//! variables and the process becomes a worker instead of a driver. This is
//! the same trick process-spawning test harnesses use, and it keeps the
//! whole multi-process topology inside one binary.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Environment variable carrying a worker's rank (presence ⇒ worker).
pub const ENV_RANK: &str = "MXN_WIRE_RANK";
/// Environment variable carrying the mesh size.
pub const ENV_SIZE: &str = "MXN_WIRE_SIZE";
/// Environment variable carrying the socket directory.
pub const ENV_DIR: &str = "MXN_WIRE_DIR";
/// Environment variable carrying the shared deterministic seed.
pub const ENV_SEED: &str = "MXN_WIRE_SEED";
/// Environment variable carrying the membership ceiling (`max_size`).
pub const ENV_MAX: &str = "MXN_WIRE_MAX";
/// Environment variable marking a spare process (set to `1`): a worker
/// launched *after* the initial mesh, expected to join via the wire
/// handshake instead of participating in startup connect.
pub const ENV_SPARE: &str = "MXN_WIRE_SPARE";

/// What a re-exec'd process is supposed to be.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireRole {
    /// This worker's rank in the mesh.
    pub rank: usize,
    /// Total mesh size (driver + workers).
    pub size: usize,
    /// Membership ceiling (defaults to `size` when the launcher set none).
    pub max_size: usize,
    /// Whether this process is a late-joining spare.
    pub spare: bool,
    /// Directory holding the per-rank sockets.
    pub dir: PathBuf,
    /// Deterministic seed shared by the whole run.
    pub seed: u64,
}

/// Reads the worker environment; `None` means this process is the driver.
pub fn wire_role() -> Option<WireRole> {
    let rank = std::env::var(ENV_RANK).ok()?.parse().ok()?;
    let size: usize = std::env::var(ENV_SIZE).ok()?.parse().ok()?;
    let dir = PathBuf::from(std::env::var(ENV_DIR).ok()?);
    let seed = std::env::var(ENV_SEED).ok().and_then(|s| s.parse().ok()).unwrap_or(1);
    let max_size = std::env::var(ENV_MAX).ok().and_then(|s| s.parse().ok()).unwrap_or(size);
    let spare = std::env::var(ENV_SPARE).is_ok_and(|s| s == "1");
    Some(WireRole { rank, size, max_size, spare, dir, seed })
}

/// A spawned worker process, killed on drop so a failing driver/test never
/// leaks orphans.
pub struct WorkerGuard {
    child: Child,
    rank: usize,
}

impl WorkerGuard {
    /// The worker's mesh rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// The worker's OS pid.
    pub fn pid(&self) -> u32 {
        self.child.id()
    }

    /// SIGKILLs the worker — the "pull the plug" fault. No goodbye frame,
    /// no flush: peers find out from heartbeat silence.
    pub fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// SIGSTOPs the worker — the "zombie" fault. The process freezes but
    /// its sockets stay open and its listener backlog keeps accepting, so
    /// heartbeat-miss/reconnect alone never convicts it; only the
    /// progress-fence watermark does.
    pub fn sigstop(&self) -> bool {
        signal(self.pid(), "-STOP")
    }

    /// SIGCONTs a stopped worker, resuming it where it froze.
    pub fn sigcont(&self) -> bool {
        signal(self.pid(), "-CONT")
    }

    /// Waits up to `timeout` for clean exit; returns whether the worker
    /// exited successfully in time.
    pub fn wait_success(&mut self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            match self.child.try_wait() {
                Ok(Some(status)) => return status.success(),
                Ok(None) => {
                    if Instant::now() >= deadline {
                        return false;
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => return false,
            }
        }
    }
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Sends `sig` (a `/bin/kill` flag like `-STOP`) to `pid`; returns whether
/// the signal was delivered. Uses the external `kill` so no libc binding
/// is needed.
fn signal(pid: u32, sig: &str) -> bool {
    Command::new("/bin/kill")
        .args([sig, &pid.to_string()])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .map(|s| s.success())
        .unwrap_or(false)
}

/// Re-execs the current binary as worker `rank` of `size`, passing through
/// `extra_args` (e.g. a test filter like `--exact worker_entry`).
pub fn spawn_worker(
    rank: usize,
    size: usize,
    dir: &Path,
    seed: u64,
    extra_args: &[&str],
) -> std::io::Result<WorkerGuard> {
    spawn_inner(rank, size, size, false, dir, seed, extra_args)
}

/// [`spawn_worker`] for elastic meshes: the worker's node is configured
/// with a `max_size` ceiling above its initial `size`, leaving parked
/// slots for spare processes to join later.
pub fn spawn_worker_max(
    rank: usize,
    size: usize,
    max_size: usize,
    dir: &Path,
    seed: u64,
    extra_args: &[&str],
) -> std::io::Result<WorkerGuard> {
    spawn_inner(rank, size, max_size, false, dir, seed, extra_args)
}

/// Re-execs the current binary as a *spare* process: rank `size`
/// (the next free slot) of a mesh whose incumbents were launched with
/// `size` ranks and a `max_size` ceiling. The spare's [`wire_role`] comes
/// back with `spare == true`; its worker entry is expected to dial the
/// mesh and run the join handshake rather than the startup connect.
pub fn spawn_spare(
    rank: usize,
    size: usize,
    max_size: usize,
    dir: &Path,
    seed: u64,
    extra_args: &[&str],
) -> std::io::Result<WorkerGuard> {
    spawn_inner(rank, size, max_size, true, dir, seed, extra_args)
}

fn spawn_inner(
    rank: usize,
    size: usize,
    max_size: usize,
    spare: bool,
    dir: &Path,
    seed: u64,
    extra_args: &[&str],
) -> std::io::Result<WorkerGuard> {
    let exe = std::env::current_exe()?;
    let mut cmd = Command::new(exe);
    cmd.args(extra_args)
        .env(ENV_RANK, rank.to_string())
        .env(ENV_SIZE, size.to_string())
        .env(ENV_MAX, max_size.to_string())
        .env(ENV_DIR, dir)
        .env(ENV_SEED, seed.to_string())
        .stdin(Stdio::null())
        .stdout(Stdio::inherit())
        .stderr(Stdio::inherit());
    if spare {
        cmd.env(ENV_SPARE, "1");
    }
    let child = cmd.spawn()?;
    Ok(WorkerGuard { child, rank })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_is_none_without_env() {
        // The test runner itself is a driver.
        assert_eq!(wire_role(), None);
    }

    #[test]
    fn guard_kills_on_drop() {
        // Spawn a sleeper (re-exec with an unknown filter just burns a
        // moment listing tests; use /bin/sleep to be explicit).
        let child = Command::new("/bin/sleep")
            .arg("100")
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn sleep");
        let pid = child.id();
        let guard = WorkerGuard { child, rank: 1 };
        assert_eq!(guard.rank(), 1);
        assert_eq!(guard.pid(), pid);
        drop(guard);
        // After drop the pid must be reaped: kill(pid, 0) fails.
        let alive = Command::new("/bin/kill")
            .args(["-0", &pid.to_string()])
            .output()
            .map(|o| o.status.success())
            .unwrap_or(false);
        assert!(!alive, "worker leaked after guard drop");
    }
}
