//! Per-peer send state: sequencing, the resend ring, and fault injection.
//!
//! A [`LinkSender`] outlives any one socket. The sequence counter and the
//! ring of recently-encoded data frames persist across disconnects, which
//! is what makes session resume work: after a reconnect the peer's
//! `Hello(session, last_recv_seq)` tells us the highest data frame it saw,
//! and [`LinkSender::resend_since`] replays everything newer from the
//! ring. Control frames (heartbeat, hello, bye) are never sequenced, never
//! retained, and never faulted — they are the reliability plane itself,
//! exactly as the in-proc runtime disarms the fault plane around its
//! bootstrap and shutdown control traffic.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::os::unix::net::UnixStream;

use crate::codec::encode_value;
use crate::fault::{WireFaults, WireVerdict};
use crate::frame::{Frame, FrameKind};

/// Data frames retained for session-resume redelivery. A peer that falls
/// further behind than this cannot be resumed and will surface message
/// loss to the application's retry layer instead.
pub const RING_FRAMES: usize = 1024;

/// Outbound half of one peer link.
pub struct LinkSender {
    /// Current socket; `None` while disconnected.
    stream: Option<UnixStream>,
    /// Our global rank (stamped as frame `src`).
    src: u32,
    /// Peer's global rank (fault-plane channel key).
    dst: u32,
    /// Next data sequence number to assign (first frame gets 1).
    next_seq: u64,
    /// Recently sent data frames, encoded clean (pre-fault), seq-ordered.
    ring: VecDeque<(u64, Vec<u8>)>,
    /// Monotone send-attempt counter keying fault draws; retransmissions
    /// advance it so a retried frame gets a fresh fate.
    attempts: u64,
    /// Frame-layer fault policy for this link.
    faults: WireFaults,
    /// Whether faults currently apply (mirrors `Process::set_faults_armed`).
    armed: bool,
}

impl LinkSender {
    /// A disconnected sender for the `src → dst` link.
    pub fn new(src: u32, dst: u32, faults: WireFaults) -> Self {
        LinkSender {
            stream: None,
            src,
            dst,
            next_seq: 1,
            ring: VecDeque::new(),
            attempts: 0,
            faults,
            armed: true,
        }
    }

    /// Attaches a fresh socket (connect or accept). Send state survives.
    pub fn attach(&mut self, stream: UnixStream) {
        self.stream = Some(stream);
    }

    /// Detaches the socket after an I/O failure; the ring keeps the
    /// unacknowledged tail for the next resume.
    pub fn detach(&mut self) {
        self.stream = None;
    }

    /// Whether a socket is currently attached.
    pub fn is_connected(&self) -> bool {
        self.stream.is_some()
    }

    /// Shuts down the attached socket (both directions), unblocking the
    /// peer's reader, and detaches.
    pub fn shutdown(&mut self) {
        if let Some(s) = self.stream.take() {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
    }

    /// Arms or disarms fault injection on this link.
    pub fn set_armed(&mut self, armed: bool) {
        self.armed = armed;
    }

    /// Highest sequence number assigned so far.
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Sends one application message: assigns the next sequence number,
    /// retains the clean encoding in the ring, then writes it through the
    /// fault plane. Returns the assigned sequence number.
    pub fn send_data(
        &mut self,
        context: u32,
        tag: i32,
        codec: u32,
        payload: Vec<u8>,
    ) -> io::Result<u64> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let frame =
            Frame { kind: FrameKind::Data, src: self.src, context, tag, seq, codec, payload };
        let bytes = frame.encode();
        if self.ring.len() == RING_FRAMES {
            self.ring.pop_front();
        }
        self.ring.push_back((seq, bytes.clone()));
        self.write_through_faults(bytes)?;
        Ok(seq)
    }

    /// Replays every retained data frame with `seq > last_recv` (session
    /// resume). Replays go through the fault plane with fresh draws.
    pub fn resend_since(&mut self, last_recv: u64) -> io::Result<usize> {
        let pending: Vec<Vec<u8>> = self
            .ring
            .iter()
            .filter(|(seq, _)| *seq > last_recv)
            .map(|(_, bytes)| bytes.clone())
            .collect();
        let n = pending.len();
        for bytes in pending {
            self.write_through_faults(bytes)?;
        }
        Ok(n)
    }

    /// Sends a control frame: unsequenced, unretained, never faulted.
    pub fn send_control(&mut self, kind: FrameKind) -> io::Result<()> {
        let frame = Frame::control(kind, self.src);
        self.write_clean(frame.encode())
    }

    /// Sends the handshake/resume announcement carrying our session id and
    /// the highest data seq we have received from the peer.
    pub fn send_hello(&mut self, session: u64, last_recv_seq: u64) -> io::Result<()> {
        let mut frame = Frame::control(FrameKind::Hello, self.src);
        frame.payload = encode_value(&(session, last_recv_seq));
        self.write_clean(frame.encode())
    }

    /// Sends a progress fence carrying our fence counter and the highest
    /// data seq we have delivered from the peer. Like all control frames:
    /// unsequenced, unretained, never faulted.
    pub fn send_fence(&mut self, fence_seq: u64, watermark: u64) -> io::Result<()> {
        let mut frame = Frame::control(FrameKind::ProgressFence, self.src);
        frame.payload = encode_value(&(fence_seq, watermark));
        self.write_clean(frame.encode())
    }

    /// Drops every retained data frame while keeping the sequence counter
    /// monotone. Used when the rank behind this link is replaced by a fresh
    /// process (spare-process join): the new peer starts a new session with
    /// `last_recv_seq == 0`, and replaying the old occupant's frames at it
    /// would deliver another rank's traffic.
    pub fn clear_ring(&mut self) {
        self.ring.clear();
    }

    fn write_clean(&mut self, bytes: Vec<u8>) -> io::Result<()> {
        let stream = self
            .stream
            .as_mut()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotConnected, "link detached"))?;
        stream.write_all(&bytes)
    }

    fn write_through_faults(&mut self, mut bytes: Vec<u8>) -> io::Result<()> {
        if self.armed {
            let attempt = self.attempts;
            self.attempts += 1;
            match self.faults.judge(self.src, self.dst, attempt, bytes.len()) {
                WireVerdict::Deliver => {}
                WireVerdict::Drop => return Ok(()), // "lost in flight"
                WireVerdict::FlipBit(bit) => bytes[bit / 8] ^= 1 << (bit % 8),
                WireVerdict::Delay(d) => std::thread::sleep(d),
            }
        }
        self.write_clean(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{FrameError, FrameReader};
    use std::io::Read;

    fn pair() -> (UnixStream, UnixStream) {
        UnixStream::pair().expect("socketpair")
    }

    fn drain(rx: &mut UnixStream, reader: &mut FrameReader) -> Vec<Result<Frame, FrameError>> {
        rx.set_nonblocking(true).unwrap();
        let mut buf = [0u8; 4096];
        let mut out = Vec::new();
        loop {
            match rx.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => reader.feed(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) => panic!("read: {e}"),
            }
        }
        while let Some(r) = reader.next() {
            out.push(r);
        }
        out
    }

    #[test]
    fn data_frames_are_sequenced_from_one() {
        let (tx, mut rx) = pair();
        let mut s = LinkSender::new(0, 1, WireFaults::none());
        s.attach(tx);
        assert_eq!(s.send_data(5, 9, 1, vec![]).unwrap(), 1);
        assert_eq!(s.send_data(5, 9, 1, vec![0xab]).unwrap(), 2);
        let mut fr = FrameReader::new();
        let got = drain(&mut rx, &mut fr);
        let seqs: Vec<u64> = got.iter().map(|r| r.as_ref().unwrap().seq).collect();
        assert_eq!(seqs, vec![1, 2]);
    }

    #[test]
    fn resume_replays_exactly_the_unseen_tail() {
        let (tx, mut rx) = pair();
        let mut s = LinkSender::new(2, 3, WireFaults::none());
        s.attach(tx);
        for i in 0..5u8 {
            s.send_data(1, 1, 1, vec![i]).unwrap();
        }
        let mut fr = FrameReader::new();
        drain(&mut rx, &mut fr); // receiver saw 1..=5, pretend it saw 3
        let replayed = s.resend_since(3).unwrap();
        assert_eq!(replayed, 2);
        let got = drain(&mut rx, &mut fr);
        let seqs: Vec<u64> = got.iter().map(|r| r.as_ref().unwrap().seq).collect();
        assert_eq!(seqs, vec![4, 5]);
    }

    #[test]
    fn send_state_survives_reattach() {
        let (tx1, rx1) = pair();
        let mut s = LinkSender::new(0, 1, WireFaults::none());
        s.attach(tx1);
        s.send_data(1, 1, 1, vec![1]).unwrap();
        drop(rx1);
        s.detach();
        assert!(!s.is_connected());
        let (tx2, mut rx2) = pair();
        s.attach(tx2);
        assert_eq!(s.send_data(1, 1, 1, vec![2]).unwrap(), 2, "sequence continues");
        assert_eq!(s.resend_since(0).unwrap(), 2, "ring retained both frames");
        let mut fr = FrameReader::new();
        let got = drain(&mut rx2, &mut fr);
        assert_eq!(got.len(), 3); // the live send of seq 2 plus the two replays
    }

    #[test]
    fn dropped_frames_vanish_but_stay_in_the_ring() {
        let (tx, mut rx) = pair();
        // drop everything
        let faults = WireFaults { seed: 1, drop: 1.0, ..WireFaults::none() };
        let mut s = LinkSender::new(0, 1, faults);
        s.attach(tx);
        s.send_data(1, 1, 1, vec![7]).unwrap();
        let mut fr = FrameReader::new();
        assert!(drain(&mut rx, &mut fr).is_empty(), "frame was 'lost in flight'");
        s.set_armed(false);
        assert_eq!(s.resend_since(0).unwrap(), 1, "the ring still holds it");
        let got = drain(&mut rx, &mut fr);
        assert_eq!(got.len(), 1);
        assert!(got[0].is_ok());
    }

    #[test]
    fn corrupted_frames_fail_crc_at_the_receiver() {
        let (tx, mut rx) = pair();
        let faults = WireFaults { seed: 5, corrupt: 1.0, ..WireFaults::none() };
        let mut s = LinkSender::new(0, 1, faults);
        s.attach(tx);
        s.send_data(1, 1, 1, vec![1, 2, 3, 4]).unwrap();
        let mut fr = FrameReader::new();
        let got = drain(&mut rx, &mut fr);
        assert!(
            got.iter().all(|r| matches!(r, Err(FrameError::Corrupt { .. }))),
            "a flipped bit must never decode as a clean frame: {got:?}"
        );
    }

    #[test]
    fn control_frames_bypass_faults() {
        let (tx, mut rx) = pair();
        let faults = WireFaults { seed: 1, drop: 1.0, ..WireFaults::none() };
        let mut s = LinkSender::new(4, 1, faults);
        s.attach(tx);
        s.send_control(FrameKind::Heartbeat).unwrap();
        s.send_hello(0xfeed, 12).unwrap();
        let mut fr = FrameReader::new();
        let got = drain(&mut rx, &mut fr);
        assert_eq!(got.len(), 2, "control plane is exempt from injected loss");
        assert_eq!(got[0].as_ref().unwrap().kind, FrameKind::Heartbeat);
        let hello = got[1].as_ref().unwrap();
        assert_eq!(hello.kind, FrameKind::Hello);
        assert_eq!(crate::codec::decode_value::<(u64, u64)>(&hello.payload).unwrap(), (0xfeed, 12));
    }

    #[test]
    fn fences_bypass_faults_and_carry_watermarks() {
        let (tx, mut rx) = pair();
        let faults = WireFaults { seed: 1, drop: 1.0, ..WireFaults::none() };
        let mut s = LinkSender::new(2, 1, faults);
        s.attach(tx);
        s.send_fence(7, 41).unwrap();
        let mut fr = FrameReader::new();
        let got = drain(&mut rx, &mut fr);
        assert_eq!(got.len(), 1, "fences are control plane: exempt from injected loss");
        let fence = got[0].as_ref().unwrap();
        assert_eq!(fence.kind, FrameKind::ProgressFence);
        assert_eq!(fence.src, 2);
        assert_eq!(crate::codec::decode_value::<(u64, u64)>(&fence.payload).unwrap(), (7, 41));
    }

    #[test]
    fn clear_ring_forgets_frames_but_keeps_sequence_monotone() {
        let (tx, _rx) = pair();
        let faults = WireFaults { seed: 1, drop: 1.0, ..WireFaults::none() };
        let mut s = LinkSender::new(0, 1, faults);
        s.attach(tx);
        for i in 0..3u8 {
            s.send_data(1, 1, 1, vec![i]).unwrap();
        }
        s.clear_ring();
        assert_eq!(s.resend_since(0).unwrap(), 0, "nothing left to replay");
        assert_eq!(s.send_data(1, 1, 1, vec![9]).unwrap(), 4, "seq continues past cleared frames");
    }

    #[test]
    fn ring_is_bounded() {
        let (tx, _rx) = pair();
        // Drop every write so the unread socketpair never backpressures
        // the test; the ring fills regardless of delivery.
        let faults = WireFaults { seed: 1, drop: 1.0, ..WireFaults::none() };
        let mut s = LinkSender::new(0, 1, faults);
        s.attach(tx);
        for i in 0..(RING_FRAMES as u64 + 10) {
            s.send_data(1, 1, 1, vec![(i & 0xff) as u8]).unwrap();
        }
        assert_eq!(s.resend_since(0).unwrap(), RING_FRAMES, "old frames were evicted");
    }
}
