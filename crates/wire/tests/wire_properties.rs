//! Property tests for the wire format: whatever the bytes do, the reader
//! never panics, never yields a damaged frame as clean, and never loses
//! sync with the stream that follows.

use proptest::prelude::*;

use mxn_wire::codec::{decode_value, encode_value};
use mxn_wire::frame::{Frame, FrameError, FrameKind, FrameReader};

/// Strategy: an arbitrary data frame with a small payload.
fn data_frame() -> impl Strategy<Value = Frame> {
    (
        (0u32..64, 0u32..1 << 20, -1000i32..=1000),
        (1u64..1 << 40, 0u32..32),
        proptest::collection::vec(0u8..=255, 0..96),
    )
        .prop_map(|((src, context, tag), (seq, codec), payload)| Frame {
            kind: FrameKind::Data,
            src,
            context,
            tag,
            seq,
            codec,
            payload,
        })
}

/// Feeds `bytes` to `reader` in chunks of `chunk` and drains every result.
fn feed_chunked(
    reader: &mut FrameReader,
    bytes: &[u8],
    chunk: usize,
) -> Vec<Result<Frame, FrameError>> {
    let mut out = Vec::new();
    for piece in bytes.chunks(chunk.max(1)) {
        reader.feed(piece);
        while let Some(r) = reader.next() {
            out.push(r);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Encode → decode is the identity, no matter how the bytes are
    /// chunked on the way in.
    #[test]
    fn frame_roundtrip_any_chunking(frame_and_chunk in (data_frame(), 1usize..80)) {
        let (frame, chunk) = frame_and_chunk;
        let bytes = frame.encode();
        let mut reader = FrameReader::new();
        let got = feed_chunked(&mut reader, &bytes, chunk);
        prop_assert_eq!(got.len(), 1);
        match &got[0] {
            Ok(f) => {
                prop_assert_eq!(f, &frame);
            }
            Err(e) => return Err(TestCaseError::fail(format!("clean frame rejected: {e:?}"))),
        }
    }

    /// A single flipped bit anywhere in the frame is always caught by one
    /// of the CRCs — the damaged frame NEVER decodes as clean — and a
    /// clean frame following the damage is still delivered (no desync).
    #[test]
    fn single_bit_flip_is_caught_and_resynced(fb in (data_frame(), 0u64..1 << 32)) {
        let (frame, flip_draw) = fb;
        let mut bytes = frame.encode();
        let bit = (flip_draw as usize) % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);

        let follower = Frame {
            kind: FrameKind::Data,
            src: 9,
            context: 77,
            tag: 5,
            seq: frame.seq + 1,
            codec: 3,
            payload: vec![0xAA, 0xBB],
        };
        bytes.extend_from_slice(&follower.encode());

        let mut reader = FrameReader::new();
        let got = feed_chunked(&mut reader, &bytes, 17);
        // Exactly one clean frame comes out: the follower. The damaged
        // frame surfaces only as Err(Corrupt).
        let clean: Vec<&Frame> = got.iter().filter_map(|r| r.as_ref().ok()).collect();
        prop_assert_eq!(clean.len(), 1);
        prop_assert_eq!(clean[0], &follower);
        prop_assert!(
            got.iter().any(|r| matches!(r, Err(FrameError::Corrupt { .. }))),
            "the flipped bit went unreported"
        );
    }

    /// Truncation never panics, never fabricates a frame, and the reader
    /// recovers when a clean frame follows the truncated wreckage.
    #[test]
    fn truncation_is_detected_not_desynced(ft in (data_frame(), 0u64..1 << 32)) {
        let (frame, cut_draw) = ft;
        let full = frame.encode();
        let cut = 1 + (cut_draw as usize) % (full.len() - 1);
        let mut bytes = full[..cut].to_vec();
        let follower = Frame::control(FrameKind::Heartbeat, 3);
        bytes.extend_from_slice(&follower.encode());

        let mut reader = FrameReader::new();
        let got = feed_chunked(&mut reader, &bytes, 11);
        let clean: Vec<&Frame> = got.iter().filter_map(|r| r.as_ref().ok()).collect();
        // The truncated prefix must never decode; only the follower may
        // come out clean (it can be swallowed into the truncated frame's
        // claimed payload only if the cut fell before the length field was
        // committed — but then the header CRC rejects the splice).
        for f in &clean {
            prop_assert_eq!(*f, &follower);
        }
        prop_assert!(clean.len() <= 1);
    }

    /// Arbitrary garbage between frames: the reader never panics and the
    /// real frames on both sides still come through.
    #[test]
    fn garbage_between_frames_never_desyncs(g in (data_frame(), proptest::collection::vec(0u8..=255, 1..128), 1usize..40)) {
        let (frame, garbage, chunk) = g;
        let mut bytes = frame.encode();
        bytes.extend_from_slice(&garbage);
        let follower = Frame {
            kind: FrameKind::Data,
            src: 1,
            context: 2,
            tag: 3,
            seq: 4,
            codec: 5,
            payload: vec![6],
        };
        bytes.extend_from_slice(&follower.encode());

        let mut reader = FrameReader::new();
        let got = feed_chunked(&mut reader, &bytes, chunk);
        let clean: Vec<&Frame> = got.iter().filter_map(|r| r.as_ref().ok()).collect();
        prop_assert!(clean.len() >= 2, "real frames lost around garbage: {got:?}");
        prop_assert_eq!(clean[0], &frame);
        prop_assert_eq!(*clean.last().unwrap(), &follower);
    }

    /// Codec round-trip for the workhorse payload types.
    #[test]
    fn codec_roundtrip_vecs(v in proptest::collection::vec(0.0f64..1e9, 0..64)) {
        let bytes = encode_value(&v);
        let back: Vec<f64> = decode_value(&bytes).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn codec_roundtrip_strings(pair in (proptest::collection::vec(0u32..0xd7ff, 0..32), 0u64..u64::MAX)) {
        let (chars, n) = pair;
        let s: String = chars.into_iter().filter_map(char::from_u32).collect();
        let bytes = encode_value(&(s.clone(), n));
        let back: (String, u64) = decode_value(&bytes).unwrap();
        prop_assert_eq!(back, (s, n));
    }

    /// Decoding arbitrary bytes as any registered shape must error
    /// gracefully, never panic, never over-allocate.
    #[test]
    fn codec_decode_garbage_never_panics(bytes in proptest::collection::vec(0u8..=255, 0..64)) {
        let _ = decode_value::<Vec<f64>>(&bytes);
        let _ = decode_value::<Vec<u64>>(&bytes);
        let _ = decode_value::<String>(&bytes);
        let _ = decode_value::<(u64, u64)>(&bytes);
        let _ = decode_value::<Vec<(usize, f64)>>(&bytes);
        let _ = decode_value::<Option<u32>>(&bytes);
    }
}
