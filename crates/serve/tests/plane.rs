//! Serving-plane semantics: per-connection FIFO, batching transparency,
//! admission control, cooperative backpressure, and the PRMI bridge.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mxn_framework::{AnyPayload, BatchService, Dispatch, RemoteService, ShedReason};
use mxn_prmi::collective_serve_batched;
use mxn_runtime::{InterComm, World};
use mxn_serve::{
    PlaneBackend, PrmiBackend, ServeError, ServeOutcome, ServePolicy, ServiceBackend, ServingPlane,
};
use proptest::prelude::*;

/// Methods: 0 → x+1, 1 → x*2, else MethodNotFound. Counts batch calls so
/// tests can assert amortization happened.
struct Arith {
    batches: AtomicU64,
    items: AtomicU64,
}

impl Arith {
    fn new() -> Arc<Self> {
        Arc::new(Arith { batches: AtomicU64::new(0), items: AtomicU64::new(0) })
    }
}

impl RemoteService for Arith {
    fn dispatch(&self, method: u32, arg: AnyPayload) -> Dispatch {
        let x: u64 = arg.downcast().unwrap();
        match method {
            0 => AnyPayload::new(x + 1).into(),
            1 => AnyPayload::new(x * 2).into(),
            _ => Dispatch::MethodNotFound,
        }
    }
}

impl BatchService for Arith {
    fn dispatch_batch(&self, method: u32, args: Vec<AnyPayload>) -> Vec<Dispatch> {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.items.fetch_add(args.len() as u64, Ordering::Relaxed);
        args.into_iter().map(|a| self.dispatch(method, a)).collect()
    }
}

/// A backend that stalls, so queues build while the test watches.
struct SlowBackend {
    service: ServiceBackend,
    delay: Duration,
}

impl PlaneBackend for SlowBackend {
    fn dispatch_batch(&mut self, method: u32, args: Vec<AnyPayload>) -> Vec<mxn_serve::BatchReply> {
        std::thread::sleep(self.delay);
        self.service.dispatch_batch(method, args)
    }
}

fn arith_plane(policy: ServePolicy, svc: &Arc<Arith>) -> ServingPlane {
    let svc = Arc::clone(svc);
    ServingPlane::new(policy, move |_| {
        Box::new(ServiceBackend::new(Arc::clone(&svc) as Arc<dyn BatchService>))
    })
}

/// Drives `methods[i]` with argument `i` on one connection and returns the
/// reply stream `(seq, value-or-err-marker)` in arrival order.
fn drive(plane: &ServingPlane, methods: &[u32]) -> Vec<(u64, Result<u64, u32>)> {
    let mut client = plane.client();
    let mut seqs = Vec::new();
    for (i, &m) in methods.iter().enumerate() {
        seqs.push(client.send(m, AnyPayload::new(i as u64)).unwrap());
    }
    let mut out = Vec::new();
    for _ in &seqs {
        let reply = client.recv().unwrap();
        let entry = match reply.outcome {
            ServeOutcome::Reply(p) => Ok(p.downcast::<u64>().unwrap()),
            ServeOutcome::MethodNotFound { method } => Err(method),
            ServeOutcome::Overloaded { .. } => panic!("unexpected shed in FIFO test"),
        };
        out.push((reply.seq, entry));
    }
    out
}

#[test]
fn replies_arrive_in_request_order_per_connection() {
    let svc = Arith::new();
    let plane = arith_plane(ServePolicy::default().with_shards(2).with_max_batch(8), &svc);
    let methods = [0, 0, 1, 9, 1, 0];
    let got = drive(&plane, &methods);
    let want: Vec<(u64, Result<u64, u32>)> = methods
        .iter()
        .enumerate()
        .map(|(i, &m)| {
            let x = i as u64;
            (
                x,
                match m {
                    0 => Ok(x + 1),
                    1 => Ok(x * 2),
                    other => Err(other),
                },
            )
        })
        .collect();
    assert_eq!(got, want);
    plane.shutdown();
}

#[test]
fn batching_amortizes_dispatch_calls() {
    let svc = Arith::new();
    // One shard so every request funnels into the same queue; the client
    // pipelines far more requests than batches.
    let plane = arith_plane(
        ServePolicy::default().with_shards(1).with_max_batch(64).with_client_queue(512),
        &svc,
    );
    let methods: Vec<u32> = (0..256).map(|_| 0).collect();
    drive(&plane, &methods);
    let stats = plane.shutdown();
    let totals = stats.totals();
    assert_eq!(totals.replies, 256);
    assert_eq!(svc.items.load(Ordering::Relaxed), 256);
    let batches = svc.batches.load(Ordering::Relaxed);
    assert!(
        batches < 256,
        "pipelined same-method traffic must batch (got {batches} dispatches for 256 calls)"
    );
    assert!(totals.batch_peak > 1, "at least one multi-request batch");
}

#[test]
fn admission_control_sheds_with_queue_depth() {
    let svc = Arith::new();
    let policy = ServePolicy::default()
        .with_shards(1)
        .with_shard_queue(4)
        .with_inflight_budget(4)
        .with_client_queue(64)
        .with_max_batch(4);
    let svc2 = Arc::clone(&svc);
    let plane = ServingPlane::new(policy, move |_| {
        Box::new(SlowBackend {
            service: ServiceBackend::new(Arc::clone(&svc2) as Arc<dyn BatchService>),
            delay: Duration::from_millis(30),
        })
    });
    let mut client = plane.client();
    let total = 32;
    for i in 0..total {
        client.send(0, AnyPayload::new(i as u64)).unwrap();
    }
    let mut served = 0u32;
    let mut shed = 0u32;
    for _ in 0..total {
        match client.recv().unwrap().outcome {
            ServeOutcome::Reply(_) => served += 1,
            ServeOutcome::Overloaded { queue_depth, reason } => {
                assert_eq!(reason, ShedReason::AdmissionFull);
                assert!(queue_depth >= 4, "shed carries the observed depth, got {queue_depth}");
                shed += 1;
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }
    assert!(shed > 0, "a 4-deep budget cannot absorb 32 instant sends");
    assert!(served >= 4, "admitted requests still complete");
    drop(client);
    let stats = plane.shutdown();
    assert_eq!(stats.totals().shed_admission, shed as u64);
    assert_eq!(stats.totals().replies, total as u64);
}

#[test]
fn slow_client_parks_its_own_thread_not_the_shard() {
    let svc = Arith::new();
    // Window of 2: the third pipelined send must park until a reply lands.
    let policy = ServePolicy::default()
        .with_shards(1)
        .with_client_queue(2)
        .with_shard_queue(1024)
        .with_inflight_budget(1024);
    let plane = arith_plane(policy, &svc);
    let mut client = plane.client();
    for i in 0..16 {
        client.send(0, AnyPayload::new(i as u64)).unwrap();
    }
    for i in 0..16 {
        let reply = client.recv().unwrap();
        match reply.outcome {
            ServeOutcome::Reply(p) => assert_eq!(p.downcast::<u64>().unwrap(), i + 1),
            other => panic!("unexpected outcome {other:?}"),
        }
    }
    drop(client);
    let stats = plane.shutdown();
    assert!(stats.totals().parks > 0, "a 2-wide window must park a 16-deep pipeline");
    assert_eq!(stats.totals().shed_admission, 0, "backpressure, not shedding");
}

#[test]
fn queue_deadline_sheds_stale_requests() {
    let svc = Arith::new();
    let policy = ServePolicy::default()
        .with_shards(1)
        .with_max_batch(2)
        .with_client_queue(256)
        .with_queue_deadline(Duration::from_millis(10));
    let svc2 = Arc::clone(&svc);
    let plane = ServingPlane::new(policy, move |_| {
        Box::new(SlowBackend {
            service: ServiceBackend::new(Arc::clone(&svc2) as Arc<dyn BatchService>),
            delay: Duration::from_millis(25),
        })
    });
    let mut client = plane.client();
    let total = 12;
    for i in 0..total {
        client.send(0, AnyPayload::new(i as u64)).unwrap();
    }
    let mut deadline_shed = 0;
    for _ in 0..total {
        if let ServeOutcome::Overloaded { reason, .. } = client.recv().unwrap().outcome {
            assert_eq!(reason, ShedReason::QueueDeadline);
            deadline_shed += 1;
        }
    }
    assert!(deadline_shed > 0, "25ms batches must age a 10ms deadline out");
    drop(client);
    assert_eq!(plane.shutdown().totals().shed_deadline, deadline_shed);
}

#[test]
fn plane_bridges_batches_through_prmi_collective_serve() {
    // 2 ranks: rank 0 runs the plane with a PrmiBackend over a 1×1
    // intercomm; rank 1 is the provider running the batched serve loop.
    let results = World::run(2, |p| {
        let world = p.world();
        let me = world.rank();
        let (_local, ic) = InterComm::create(world, if me == 0 { 0 } else { 1 }).unwrap();
        if me == 0 {
            // The factory runs once (one shard); the intercomm moves onto
            // the shard thread.
            let mut ic = Some(ic);
            let plane = ServingPlane::new(
                ServePolicy::default().with_shards(1).with_max_batch(16),
                move |_| Box::new(PrmiBackend::new(ic.take().expect("single shard"))),
            );
            let mut client = plane.client();
            let mut seqs = Vec::new();
            for i in 0..10u64 {
                // Replicable: the collective layer may fan the batch out.
                seqs.push(client.send(0, AnyPayload::replicable(i)).unwrap());
            }
            let mut sum = 0;
            for _ in &seqs {
                match client.recv().unwrap().outcome {
                    ServeOutcome::Reply(p) => sum += p.downcast::<u64>().unwrap(),
                    other => panic!("unexpected outcome {other:?}"),
                }
            }
            // Unknown method becomes a per-item typed NACK through the
            // whole bridge.
            match client.call(42, AnyPayload::replicable(1u64)) {
                Err(ServeError::MethodNotFound { method: 42 }) => {}
                Err(e) => panic!("expected MethodNotFound, got {e:?}"),
                Ok(_) => panic!("expected MethodNotFound, got a reply"),
            }
            drop(client);
            plane.shutdown(); // sends the collective shutdown to providers
            sum
        } else {
            let stats = collective_serve_batched(
                &ic,
                &Arith { batches: AtomicU64::new(0), items: AtomicU64::new(0) },
            )
            .unwrap();
            stats.calls
        }
    });
    // Rank 0: Σ (i+1) for i in 0..10 = 55. Rank 1: far fewer serve-loop
    // wakeups than the 11 requests — batching crossed the wire.
    assert_eq!(results[0], 55);
    assert!(results[1] <= 11, "provider saw at most one call per batch");
    assert!(results[1] >= 2, "provider served the traffic");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Satellite 3 property: for ANY interleaving of methods across
    /// several pipelined connections, a batching plane (`max_batch` k) and
    /// a non-batching plane (`max_batch` 1) produce identical
    /// per-connection reply streams.
    #[test]
    fn batched_and_unbatched_dispatch_agree(
        methods in proptest::collection::vec(0u32..3, 1..40),
        nconns in 1usize..4,
        max_batch in 2usize..32,
        shards in 1usize..4,
    ) {
        let run = |batch: usize| {
            let svc = Arith::new();
            let plane = arith_plane(
                ServePolicy::default()
                    .with_shards(shards)
                    .with_max_batch(batch)
                    .with_client_queue(methods.len().max(1)),
                &svc,
            );
            // Round-robin the method stream across the connections, all
            // pipelined before any receive.
            let mut clients: Vec<_> = (0..nconns).map(|_| plane.client()).collect();
            let mut counts = vec![0usize; nconns];
            for (i, &m) in methods.iter().enumerate() {
                let c = i % nconns;
                clients[c].send(m, AnyPayload::new(i as u64)).unwrap();
                counts[c] += 1;
            }
            let mut streams = Vec::new();
            for (c, client) in clients.iter_mut().enumerate() {
                let mut stream = Vec::new();
                for _ in 0..counts[c] {
                    let r = client.recv().unwrap();
                    let entry = match r.outcome {
                        ServeOutcome::Reply(p) => Ok(p.downcast::<u64>().unwrap()),
                        ServeOutcome::MethodNotFound { method } => Err(method),
                        ServeOutcome::Overloaded { .. } => panic!("no overload configured"),
                    };
                    stream.push((r.seq, entry));
                }
                streams.push(stream);
            }
            plane.shutdown();
            streams
        };
        let batched = run(max_batch);
        let unbatched = run(1);
        prop_assert_eq!(batched, unbatched);
    }
}
