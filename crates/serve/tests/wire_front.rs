//! The serving plane over a real Unix-domain socket: typed NACKs cross
//! the wire, many client processes' worth of connections multiplex onto
//! one listener, and backpressure stays per-connection.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use mxn_framework::{AnyPayload, BatchService, Dispatch, RemoteService};
use mxn_serve::{PlaneBackend, ServePolicy, ServiceBackend, ServingPlane, WireFront};
use mxn_wire::{decode_value, encode_value, MuxClient, MuxStatus};

/// Wire codec tag the tests use for `u64` arguments and results.
const TAG_U64: u32 = 7;

struct Doubler;

impl RemoteService for Doubler {
    fn dispatch(&self, method: u32, arg: AnyPayload) -> Dispatch {
        match method {
            0 => AnyPayload::new(arg.downcast::<u64>().unwrap() * 2).into(),
            _ => Dispatch::MethodNotFound,
        }
    }
}
impl BatchService for Doubler {}

fn sock_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("mxn-serve-test-{}-{name}.sock", std::process::id()));
    p
}

fn u64_front(plane: &ServingPlane, path: &PathBuf) -> WireFront {
    WireFront::bind(
        path,
        plane.handle(),
        Box::new(|codec, bytes| {
            (codec == TAG_U64)
                .then(|| decode_value::<u64>(bytes).ok().map(AnyPayload::new))
                .flatten()
        }),
        Box::new(|payload| payload.downcast::<u64>().ok().map(|v| (TAG_U64, encode_value(&v)))),
    )
    .unwrap()
}

fn doubler_plane(policy: ServePolicy) -> ServingPlane {
    let svc: Arc<dyn BatchService> = Arc::new(Doubler);
    ServingPlane::new(policy, move |_| Box::new(ServiceBackend::new(Arc::clone(&svc))))
}

/// Satellite: a request naming an unimplemented method, sent by a real
/// client over the UDS transport, comes back as a `MethodNotFound` NACK —
/// not a hang, not a dropped connection.
#[test]
fn method_not_found_nack_crosses_the_uds_transport() {
    let path = sock_path("nack");
    let plane = doubler_plane(ServePolicy::default().with_shards(1));
    let front = u64_front(&plane, &path);

    let mut client = MuxClient::connect(&path).unwrap();
    // A good call first, proving the conn works.
    let ok = client.call(0, TAG_U64, encode_value(&21u64)).unwrap();
    assert_eq!(ok.status, MuxStatus::Ok);
    assert_eq!(decode_value::<u64>(&ok.payload).unwrap(), 42);
    // Unknown method: typed NACK.
    let nack = client.call(9, TAG_U64, encode_value(&1u64)).unwrap();
    assert_eq!(nack.status, MuxStatus::MethodNotFound);
    // The connection survives the NACK.
    let again = client.call(0, TAG_U64, encode_value(&5u64)).unwrap();
    assert_eq!(decode_value::<u64>(&again.payload).unwrap(), 10);

    drop(client);
    front.shutdown();
    plane.shutdown();
}

/// An undecodable argument (wrong codec tag) is also answered, because a
/// misbehaving client must never wedge the plane.
#[test]
fn undecodable_argument_is_nacked_not_dropped() {
    let path = sock_path("badcodec");
    let plane = doubler_plane(ServePolicy::default().with_shards(1));
    let front = u64_front(&plane, &path);
    let mut client = MuxClient::connect(&path).unwrap();
    let nack = client.call(0, 999, vec![1, 2, 3]).unwrap();
    assert_eq!(nack.status, MuxStatus::MethodNotFound);
    drop(client);
    front.shutdown();
    plane.shutdown();
}

/// Many connections multiplex over one listener; replies demux by call id
/// in per-connection order.
#[test]
fn many_connections_multiplex_onto_one_listener() {
    let path = sock_path("mux");
    let plane = doubler_plane(ServePolicy::default().with_shards(2).with_max_batch(8));
    let front = u64_front(&plane, &path);

    let mut clients: Vec<MuxClient> = (0..12).map(|_| MuxClient::connect(&path).unwrap()).collect();
    // Pipelined: every client issues 8 requests before reading anything.
    for (i, c) in clients.iter_mut().enumerate() {
        for k in 0..8u64 {
            c.send(0, TAG_U64, encode_value(&(i as u64 * 100 + k)), false).unwrap();
        }
    }
    for (i, c) in clients.iter_mut().enumerate() {
        for k in 0..8u64 {
            let resp = c.recv().unwrap();
            assert_eq!(resp.call_id, k, "per-connection reply order is request order");
            assert_eq!(resp.status, MuxStatus::Ok);
            assert_eq!(decode_value::<u64>(&resp.payload).unwrap(), (i as u64 * 100 + k) * 2);
        }
    }
    drop(clients);
    front.shutdown();
    let stats = plane.shutdown();
    assert_eq!(stats.totals().replies, 12 * 8);
    assert_eq!(stats.conns_opened, 12);
}

/// Overload sheds cross the wire as `Overloaded` NACKs carrying the shard
/// queue depth — the client-side backoff input.
#[test]
fn overload_nack_carries_queue_depth_across_the_wire() {
    struct Slow(ServiceBackend);
    impl PlaneBackend for Slow {
        fn dispatch_batch(
            &mut self,
            method: u32,
            args: Vec<AnyPayload>,
        ) -> Vec<mxn_serve::BatchReply> {
            std::thread::sleep(Duration::from_millis(20));
            self.0.dispatch_batch(method, args)
        }
    }
    let path = sock_path("overload");
    let policy = ServePolicy::default()
        .with_shards(1)
        .with_shard_queue(2)
        .with_inflight_budget(2)
        .with_client_queue(64)
        .with_max_batch(2);
    let plane = ServingPlane::new(policy, |_| {
        Box::new(Slow(ServiceBackend::new(Arc::new(Doubler) as Arc<dyn BatchService>)))
    });
    let front = u64_front(&plane, &path);
    let mut client = MuxClient::connect(&path).unwrap();
    let total = 16u64;
    for k in 0..total {
        client.send(0, TAG_U64, encode_value(&k), false).unwrap();
    }
    let (mut ok, mut shed) = (0, 0);
    for _ in 0..total {
        let resp = client.recv().unwrap();
        match resp.status {
            MuxStatus::Ok => ok += 1,
            MuxStatus::Overloaded => {
                let (depth, reason) = resp.overload_detail().unwrap();
                assert!(depth >= 2, "NACK carries the observed depth, got {depth}");
                assert_eq!(reason, 0, "admission-full on the wire");
                shed += 1;
            }
            MuxStatus::MethodNotFound => panic!("unexpected NACK kind"),
        }
    }
    assert!(shed > 0, "a 2-deep budget cannot absorb 16 instant sends");
    assert!(ok >= 2, "admitted requests still complete");
    drop(client);
    front.shutdown();
    plane.shutdown();
}
