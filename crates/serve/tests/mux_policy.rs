//! End-to-end admission control over a real Unix socket: a [`MuxServer`]
//! sheds requests with `Overloaded(depth)` NACKs and the client's
//! [`CallPolicy`] turns the reported depth into load-scaled backoff until
//! the call gets through — the wire-side counterpart of the in-process
//! PRMI shed-and-retry loop.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mxn_framework::CallPolicy;
use mxn_wire::{
    ConnId, MuxClient, MuxHandler, MuxReplier, MuxRequest, MuxResponse, MuxServer, MuxStatus,
};
use parking_lot::Mutex;

fn sock_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("mxn-mux-policy-{}-{name}.sock", std::process::id()));
    p
}

/// Sheds the first `shed_first` requests with `Overloaded(depth)`, then
/// answers `Ok` echoing the argument.
struct Shedder {
    replier: Mutex<Option<MuxReplier>>,
    shed_first: u32,
    depth: u32,
    attempts: AtomicU32,
}

impl Shedder {
    fn new(shed_first: u32, depth: u32) -> Arc<Self> {
        Arc::new(Shedder {
            replier: Mutex::new(None),
            shed_first,
            depth,
            attempts: AtomicU32::new(0),
        })
    }
}

impl MuxHandler for Shedder {
    fn on_request(&self, conn: ConnId, req: MuxRequest) {
        let replier = self.replier.lock().clone().expect("replier installed");
        let n = self.attempts.fetch_add(1, Ordering::SeqCst);
        let resp = if n < self.shed_first {
            MuxResponse::overloaded(req.call_id, self.depth, 0)
        } else {
            MuxResponse {
                call_id: req.call_id,
                status: MuxStatus::Ok,
                codec: req.codec,
                payload: req.arg,
            }
        };
        replier.reply(conn, resp);
    }
    fn on_close(&self, _conn: ConnId) {}
}

fn serve(name: &str, handler: Arc<Shedder>) -> (MuxServer, PathBuf) {
    let path = sock_path(name);
    let server = MuxServer::bind(&path, handler.clone() as Arc<dyn MuxHandler>).unwrap();
    *handler.replier.lock() = Some(server.replier());
    (server, path)
}

#[test]
fn overload_nacks_drive_load_scaled_backoff_until_success() {
    // Depth 7 → load factor 4. Two sheds then success: the client must
    // pause ≥ (4·base)/2 + (4·2·base)/2 = 30ms even at maximum jitter
    // discount, where unscaled backoff would pause at most base + 2·base
    // = 15ms. The elapsed lower bound therefore proves the reported depth
    // stretched the pauses, without any flaky upper-bound timing.
    let handler = Shedder::new(2, 7);
    let (server, path) = serve("scaled", handler.clone());

    let policy = CallPolicy {
        deadline: Duration::from_millis(500),
        max_retries: 4,
        backoff: Duration::from_millis(5),
        jitter: Some(0xfeed),
        recover: false,
    };
    assert_eq!(CallPolicy::load_factor(7), 4, "depth 7 is a 4x stretch");

    let mut client = MuxClient::connect(&path).unwrap();
    let start = Instant::now();
    let resp = client.call_with_policy(0, 12, vec![9, 9, 9], &policy).unwrap();
    let elapsed = start.elapsed();

    assert_eq!(resp.status, MuxStatus::Ok, "third attempt gets through");
    assert_eq!(resp.payload, vec![9, 9, 9]);
    assert_eq!(handler.attempts.load(Ordering::SeqCst), 3, "two sheds + one success");
    assert!(
        elapsed >= Duration::from_millis(30),
        "pauses were not load-scaled: elapsed {elapsed:?} < 30ms"
    );

    server.shutdown();
}

#[test]
fn exhausted_retries_surface_the_final_nack() {
    // A server that always sheds: the client gives up after
    // max_retries + 1 attempts and hands back the NACK with its depth, so
    // callers can see what they lost to.
    let handler = Shedder::new(u32::MAX, 1234);
    let (server, path) = serve("exhausted", handler.clone());

    let policy = CallPolicy {
        deadline: Duration::from_millis(500),
        max_retries: 2,
        backoff: Duration::from_millis(1),
        jitter: Some(1),
        recover: false,
    };
    let mut client = MuxClient::connect(&path).unwrap();
    let resp = client.call_with_policy(0, 12, vec![1], &policy).unwrap();
    assert_eq!(resp.status, MuxStatus::Overloaded);
    assert_eq!(resp.overload_detail().unwrap(), (1234, 0));
    assert_eq!(handler.attempts.load(Ordering::SeqCst), 3, "1 + max_retries attempts");

    server.shutdown();
}

#[test]
fn non_overload_statuses_do_not_retry() {
    let handler = Shedder::new(0, 0);
    let (server, path) = serve("no-retry", handler.clone());

    let mut client = MuxClient::connect(&path).unwrap();
    let policy = CallPolicy::default().seeded(Some(7));
    let resp = client.call_with_policy(0, 12, vec![4, 2], &policy).unwrap();
    assert_eq!(resp.status, MuxStatus::Ok);
    assert_eq!(handler.attempts.load(Ordering::SeqCst), 1, "a clean reply is never re-sent");

    server.shutdown();
}
