//! What a shard executor dispatches its batches *into*.
//!
//! The plane is agnostic about where method implementations live. Each
//! shard owns one [`PlaneBackend`]:
//!
//! * [`ServiceBackend`] — the method lives in-process behind a
//!   [`BatchService`]. This is the 1M-calls/s path: a batch costs one
//!   dynamic dispatch, not one per request.
//! * [`PrmiBackend`] — the method lives on a *parallel component* behind
//!   the PRMI collective layer: the whole batch ships as one
//!   [`mxn_prmi::CollBatch`] inside one `CollReq`, is executed by the
//!   provider's [`mxn_prmi::collective_serve_batched`] loop, and comes
//!   back position-tagged in one `CollResp` (§2.4's collective invocation,
//!   amortized). One serve-loop wakeup per *batch*, not per call.

use mxn_framework::{AnyPayload, BatchService, Dispatch, MethodNotFound};
use mxn_prmi::CollectiveEndpoint;
use mxn_runtime::InterComm;
use std::sync::Arc;

// `InterComm` is intentionally per-rank state (it carries a `Cell` of
// send-sequence bookkeeping), so `PrmiBackend` owns its intercomm outright
// — exactly one shard executor thread drives it, matching the collective
// layer's one-caller-per-rank discipline.

/// Outcome of one request inside a dispatched batch, position-aligned
/// with the argument it answers.
pub enum BatchReply {
    /// The method executed; here is its result.
    Reply(AnyPayload),
    /// The backend does not implement the method.
    MethodNotFound,
}

/// One shard's dispatch target. `dispatch_batch` runs on the shard's
/// executor thread; it may block (the shard is the unit of concurrency),
/// but must return exactly one outcome per argument, in order.
pub trait PlaneBackend: Send {
    /// Executes a batch of same-method requests.
    fn dispatch_batch(&mut self, method: u32, args: Vec<AnyPayload>) -> Vec<BatchReply>;

    /// Called once on the executor thread when the plane shuts down.
    fn shutdown(&mut self) {}
}

/// In-process backend: requests dispatch straight into a shared
/// [`BatchService`].
pub struct ServiceBackend {
    service: Arc<dyn BatchService>,
}

impl ServiceBackend {
    /// Wraps `service`; clones of the `Arc` may back several shards.
    pub fn new(service: Arc<dyn BatchService>) -> Self {
        ServiceBackend { service }
    }
}

impl PlaneBackend for ServiceBackend {
    fn dispatch_batch(&mut self, method: u32, args: Vec<AnyPayload>) -> Vec<BatchReply> {
        self.service
            .dispatch_batch(method, args)
            .into_iter()
            .map(|d| match d {
                Dispatch::Reply(p) => BatchReply::Reply(p),
                Dispatch::MethodNotFound => BatchReply::MethodNotFound,
            })
            .collect()
    }
}

/// PRMI bridge backend: forwards each batch as one collective batch call
/// to a parallel provider.
///
/// Arguments **must** be built with [`AnyPayload::replicable`] — the
/// collective layer multicasts the request to every provider this caller
/// rank owns, and non-replicable payloads cannot fan out. On shutdown the
/// backend sends the collective shutdown so provider serve loops exit.
pub struct PrmiBackend {
    ic: InterComm,
    endpoint: CollectiveEndpoint,
    /// Whether to send the collective shutdown when the plane stops.
    shutdown_providers: bool,
}

impl PrmiBackend {
    /// Bridges to the providers on the far side of `ic` (taking ownership:
    /// one shard thread drives this intercomm rank).
    pub fn new(ic: InterComm) -> Self {
        PrmiBackend { ic, endpoint: CollectiveEndpoint::new(), shutdown_providers: true }
    }

    /// Leaves provider serve loops running at plane shutdown (for planes
    /// that share an intercomm with other callers).
    pub fn leave_providers_running(mut self) -> Self {
        self.shutdown_providers = false;
        self
    }
}

impl PlaneBackend for PrmiBackend {
    fn dispatch_batch(&mut self, method: u32, args: Vec<AnyPayload>) -> Vec<BatchReply> {
        // Position index as the batch-item id: the collective layer hands
        // ids back verbatim, so order is reconstructible even if a future
        // provider reorders items.
        let items: Vec<(u64, AnyPayload)> =
            args.into_iter().enumerate().map(|(i, a)| (i as u64, a)).collect();
        let n = items.len();
        match self.endpoint.call_batch(&self.ic, method, items) {
            Ok(results) => {
                let mut out: Vec<Option<BatchReply>> = (0..n).map(|_| None).collect();
                for (id, payload) in results {
                    let slot = out.get_mut(id as usize).expect("provider echoed a foreign id");
                    *slot = Some(if payload.is::<MethodNotFound>() {
                        BatchReply::MethodNotFound
                    } else {
                        BatchReply::Reply(payload)
                    });
                }
                out.into_iter().map(|s| s.expect("provider answered every batch item")).collect()
            }
            // A whole-batch MethodNotFound (providers that predate batch
            // support NACK the batch itself).
            Err(mxn_prmi::PrmiError::MethodNotFound { .. }) => {
                (0..n).map(|_| BatchReply::MethodNotFound).collect()
            }
            Err(e) => panic!("PRMI bridge dispatch failed: {e}"),
        }
    }

    fn shutdown(&mut self) {
        if self.shutdown_providers {
            let _ = self.endpoint.shutdown(&self.ic);
        }
    }
}
