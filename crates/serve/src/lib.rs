//! # mxn-serve — the sharded serving plane
//!
//! The PRMI layers in this repo assume a *coupling* shape: M caller ranks
//! lock-stepped against N provider ranks. A serving plane has the opposite
//! shape — **thousands** of independent client endpoints, each issuing
//! small RMI calls at its own pace, against one provider address. Giving
//! each client its own serve loop would melt; this crate multiplexes them
//! onto a small executor pool instead:
//!
//! * Connections are channel-decoupled and hashed onto `shards` executor
//!   queues; each shard drains its queue into per-method request batches
//!   and dispatches a whole batch in one backend call — one
//!   [`BatchService`](mxn_framework::BatchService) invocation in process,
//!   or one `CollReq` through the PRMI collective serve loops
//!   ([`backend::PrmiBackend`]). Replies are demultiplexed back to their
//!   connections by sequence id, in per-connection request order.
//! * [`ServePolicy`] is the server-side contract: bounded shard queues and
//!   in-flight budgets with typed `Overloaded` NACKs (admission control),
//!   per-connection windows that park the *sender's* thread (cooperative
//!   backpressure — a slow client stalls itself, never a shard), and an
//!   optional queue-age deadline.
//! * Each shard keeps [`ShardStats`] counters and emits `serve`-category
//!   trace events (`ServeConn`/`ServeBatch`/`ServeOverload`/`ServePark`),
//!   so a plane run is observable with the same tooling as a collective.
//! * [`wire_front::WireFront`] exposes a plane to real client processes
//!   over one Unix-domain-socket listener via [`mxn_wire::mux`].
//!
//! In-process quickstart:
//!
//! ```
//! use std::sync::Arc;
//! use mxn_framework::{AnyPayload, BatchService, Dispatch, RemoteService};
//! use mxn_serve::{ServePolicy, ServiceBackend, ServingPlane};
//!
//! struct Square;
//! impl RemoteService for Square {
//!     fn dispatch(&self, method: u32, arg: AnyPayload) -> Dispatch {
//!         match method {
//!             0 => AnyPayload::new(arg.downcast::<f64>().unwrap().powi(2)).into(),
//!             _ => Dispatch::MethodNotFound,
//!         }
//!     }
//! }
//! impl BatchService for Square {}
//!
//! let service: Arc<dyn BatchService> = Arc::new(Square);
//! let plane = ServingPlane::new(ServePolicy::default(), |_shard| {
//!     Box::new(ServiceBackend::new(Arc::clone(&service)))
//! });
//! let mut client = plane.client();
//! let out = client.call(0, AnyPayload::new(3.0f64)).unwrap();
//! assert_eq!(out.downcast::<f64>().unwrap(), 9.0);
//! drop(client);
//! let stats = plane.shutdown();
//! assert_eq!(stats.totals().replies, 1);
//! ```

pub mod backend;
pub mod plane;
pub mod wire_front;

pub use backend::{BatchReply, PlaneBackend, PrmiBackend, ServiceBackend};
pub use plane::{
    PlaneClient, PlaneHandle, PlaneReceiver, PlaneReply, PlaneSender, PlaneStats, ServeError,
    ServeOutcome, ServePolicy, ServingPlane, ShardStats,
};
pub use wire_front::{DecodeFn, EncodeFn, WireFront};
