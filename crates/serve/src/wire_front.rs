//! The plane's wire front: real client processes over one UDS listener.
//!
//! [`mxn_wire::MuxServer`] owns the socket and the per-connection
//! reader/writer threads; this module is the glue that turns each mux
//! connection into a plane connection:
//!
//! * a decoded [`mxn_wire::MuxRequest`] becomes a [`PlaneSender::send_tagged`]
//!   on the connection's own reader thread — so when the plane parks a
//!   connection whose in-flight window is full, it is *that client's
//!   reader* that stalls, its socket buffer that fills, and its sends
//!   that block; every other client proceeds;
//! * a forwarder thread per connection drains the plane's replies back
//!   into framed [`mxn_wire::MuxResponse`]s, translating typed NACKs
//!   (`MethodNotFound`, `Overloaded` with queue depth) onto their wire
//!   statuses.
//!
//! Payload translation is delegated to two closures, because the plane
//! works on in-memory [`AnyPayload`]s while the wire carries codec-tagged
//! bytes — the application knows its types, this module does not.

use std::collections::{HashMap, HashSet};
use std::io;
use std::path::Path;
use std::sync::Arc;
use std::thread::JoinHandle;

use mxn_framework::{AnyPayload, ShedReason};
use mxn_wire::{ConnId, MuxHandler, MuxReplier, MuxRequest, MuxResponse, MuxServer, MuxStatus};
use parking_lot::Mutex;

use crate::plane::{PlaneHandle, PlaneSender, ServeError, ServeOutcome};

/// Decodes one wire argument (`codec` tag + bytes) into a plane payload.
/// `None` means the request is unservable and is NACKed `MethodNotFound`.
pub type DecodeFn = dyn Fn(u32, &[u8]) -> Option<AnyPayload> + Send + Sync;

/// Encodes one plane result back into `(codec, bytes)`. `None` drops the
/// reply (a codec misconfiguration the application must fix).
pub type EncodeFn = dyn Fn(AnyPayload) -> Option<(u32, Vec<u8>)> + Send + Sync;

fn shed_reason_wire(reason: ShedReason) -> u8 {
    match reason {
        ShedReason::AdmissionFull => 0,
        ShedReason::QueueDeadline => 1,
    }
}

struct FrontConn {
    sender: Mutex<Option<PlaneSender>>,
    /// Call ids whose replies are dropped (one-way requests).
    oneway: Arc<Mutex<HashSet<u64>>>,
    forwarder: Option<JoinHandle<()>>,
}

struct FrontHandler {
    plane: PlaneHandle,
    decode: Box<DecodeFn>,
    encode: Arc<EncodeFn>,
    replier: Mutex<Option<MuxReplier>>,
    conns: Mutex<HashMap<ConnId, FrontConn>>,
}

impl FrontHandler {
    /// Gets (or lazily creates, on first request) the plane connection
    /// behind a mux connection.
    fn ensure_conn(&self, conn: ConnId) {
        let mut conns = self.conns.lock();
        if conns.contains_key(&conn) {
            return;
        }
        let (sender, mut receiver) = self.plane.client().split();
        let oneway: Arc<Mutex<HashSet<u64>>> = Arc::new(Mutex::new(HashSet::new()));
        let replier = self.replier.lock().clone().expect("WireFront installed the replier at bind");
        let encode = Arc::clone(&self.encode);
        let oneway_f = Arc::clone(&oneway);
        let forwarder = std::thread::Builder::new()
            .name(format!("serve-fwd-{conn}"))
            .spawn(move || loop {
                let reply = match receiver.recv() {
                    Ok(r) => r,
                    Err(_) => return, // connection or plane closed
                };
                if oneway_f.lock().remove(&reply.seq) {
                    continue;
                }
                let resp = match reply.outcome {
                    ServeOutcome::Reply(p) => match (encode)(p) {
                        Some((codec, payload)) => MuxResponse {
                            call_id: reply.seq,
                            status: MuxStatus::Ok,
                            codec,
                            payload,
                        },
                        None => continue,
                    },
                    ServeOutcome::MethodNotFound { .. } => MuxResponse {
                        call_id: reply.seq,
                        status: MuxStatus::MethodNotFound,
                        codec: 0,
                        payload: Vec::new(),
                    },
                    ServeOutcome::Overloaded { queue_depth, reason } => {
                        MuxResponse::overloaded(reply.seq, queue_depth, shed_reason_wire(reason))
                    }
                };
                if !replier.reply(conn, resp) {
                    return; // mux connection gone; plane close follows
                }
            })
            .expect("spawn reply forwarder");
        conns.insert(
            conn,
            FrontConn { sender: Mutex::new(Some(sender)), oneway, forwarder: Some(forwarder) },
        );
    }
}

impl MuxHandler for FrontHandler {
    fn on_request(&self, conn: ConnId, req: MuxRequest) {
        self.ensure_conn(conn);
        let Some(arg) = (self.decode)(req.codec, &req.arg) else {
            // Undecodable argument: answered, never crashes the plane.
            if let Some(replier) = self.replier.lock().clone() {
                replier.reply(
                    conn,
                    MuxResponse {
                        call_id: req.call_id,
                        status: MuxStatus::MethodNotFound,
                        codec: 0,
                        payload: Vec::new(),
                    },
                );
            }
            return;
        };
        let oneway = match self.conns.lock().get(&conn) {
            Some(fc) => Arc::clone(&fc.oneway),
            None => return,
        };
        if req.oneway {
            oneway.lock().insert(req.call_id);
        }
        // Take the sender out of its slot for the duration of the send:
        // ingress may park this (reader) thread, and neither the registry
        // lock nor the slot lock may be held while parked. Requests on one
        // connection are serial, so the slot is only ever contended by a
        // racing `on_close` — which then owns closing the sender.
        let sender = self.conns.lock().get(&conn).and_then(|fc| fc.sender.lock().take());
        let send_result = match sender {
            Some(mut s) => {
                let r = s.send_tagged(req.call_id, req.method, arg);
                match self.conns.lock().get(&conn) {
                    // Connection closed while we were parked: the sender
                    // drops here, posting the plane-side close.
                    None => {}
                    Some(fc) => *fc.sender.lock() = Some(s),
                }
                r
            }
            None => Err(ServeError::Closed),
        };
        if send_result.is_err() && req.oneway {
            oneway.lock().remove(&req.call_id);
        }
    }

    fn on_close(&self, conn: ConnId) {
        let removed = self.conns.lock().remove(&conn);
        if let Some(mut fc) = removed {
            if let Some(sender) = fc.sender.lock().take() {
                sender.close(); // posts the close sentinel; forwarder exits
            }
            if let Some(h) = fc.forwarder.take() {
                let _ = h.join();
            }
        }
    }
}

/// One UDS listener serving a [`crate::plane::ServingPlane`] to external
/// client processes.
pub struct WireFront {
    server: MuxServer,
}

impl WireFront {
    /// Binds `path` and starts serving `plane` through it.
    pub fn bind(
        path: impl AsRef<Path>,
        plane: PlaneHandle,
        decode: Box<DecodeFn>,
        encode: Box<EncodeFn>,
    ) -> io::Result<WireFront> {
        let handler = Arc::new(FrontHandler {
            plane,
            decode,
            encode: Arc::from(encode),
            replier: Mutex::new(None),
            conns: Mutex::new(HashMap::new()),
        });
        let server = MuxServer::bind(path, Arc::clone(&handler) as Arc<dyn MuxHandler>)?;
        *handler.replier.lock() = Some(server.replier());
        Ok(WireFront { server })
    }

    /// Client connections currently attached.
    pub fn connections(&self) -> usize {
        self.server.connections()
    }

    /// Stops accepting and closes every connection (plane connections
    /// close with them; the plane itself keeps running).
    pub fn shutdown(self) {
        self.server.shutdown();
    }
}
