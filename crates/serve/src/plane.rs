//! The sharded serving plane: many client endpoints, few executors.
//!
//! ```text
//!  client ──send──▶ ingress (caller thread)          shard executor pool
//!                     │ park while conn full  ┌──────────────────────────┐
//!                     │ admission check       │ drain ≤ max_batch        │
//!                     └─▶ shard queue ───────▶│ split into method runs   │
//!                         (hash of conn)      │ backend.dispatch_batch   │
//!                                             │ post_many reply batches  │
//!  client ◀──recv── reply mailbox ◀───────────┴──────────────────────────┘
//! ```
//!
//! Three invariants the rest of the crate (and the property tests) lean on:
//!
//! 1. **Per-connection FIFO.** A connection hashes to exactly one shard,
//!    the shard drains its queue in arrival order, and batching groups
//!    only *consecutive* same-method requests — so replies for a
//!    connection always come back in the order its requests were sent,
//!    whatever `max_batch` is. Batched and unbatched planes produce the
//!    same reply streams.
//! 2. **Blocking is per-connection.** Cooperative backpressure parks the
//!    *calling* thread of a connection whose in-flight window is full
//!    (for the wire front that is the connection's own reader thread);
//!    the shard executors never block on a slow client.
//! 3. **Every admitted request is answered exactly once** — with a result,
//!    a typed [`MethodNotFound`] NACK, or a typed `Overloaded` NACK
//!    carrying the shard queue depth observed at shed time.
//!
//! Reply delivery reuses the runtime's [`Mailbox`]: each dispatch run
//! posts one envelope per connection via [`Mailbox::post_many`] (one lock
//! acquisition, coalesced wakeups), and receivers block on the same
//! condvar machinery every collective in the repo already uses.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mxn_framework::{AnyPayload, ShedReason};
use mxn_runtime::envelope::{Envelope, Payload, Src, Tag};
use mxn_runtime::fault::Liveness;
use mxn_runtime::mailbox::Mailbox;
use mxn_runtime::membership::Revocations;
use mxn_runtime::splitmix64;
use mxn_runtime::RuntimeError;
use mxn_trace::{EventId, TraceHandle};
use parking_lot::{Condvar, Mutex};

use crate::backend::{BatchReply, PlaneBackend};

/// Tag replies travel under in the plane's reply mailbox (one bucket per
/// connection: the envelope context is the connection id).
const REPLY_TAG: i32 = 0;

/// Tuning knobs for a [`ServingPlane`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServePolicy {
    /// Executor shards. Connections hash onto these; each shard is one
    /// thread draining one bounded queue.
    pub shards: usize,
    /// Bound on each shard's queue of admitted-but-undispatched requests.
    /// Arrivals beyond it are shed with a typed `Overloaded` NACK.
    pub shard_queue: usize,
    /// Most requests one dispatch run may carry. `1` disables batching
    /// (every request is its own run) without changing observable reply
    /// order.
    pub max_batch: usize,
    /// Per-shard bound on admitted-but-unanswered requests (queued plus
    /// in dispatch). The admission controller sheds above it.
    pub inflight_budget: usize,
    /// Per-connection in-flight window. A connection with this many
    /// unanswered requests has its caller (reader) parked until replies
    /// drain — cooperative backpressure that never blocks a shard.
    pub client_queue: usize,
    /// If set, requests older than this when an executor reaches them are
    /// shed (`ShedReason::QueueDeadline`) instead of dispatched.
    pub queue_deadline: Option<Duration>,
}

impl Default for ServePolicy {
    fn default() -> Self {
        ServePolicy {
            shards: 4,
            shard_queue: 4096,
            max_batch: 64,
            inflight_budget: 8192,
            client_queue: 256,
            queue_deadline: None,
        }
    }
}

impl ServePolicy {
    /// Sets the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "a plane needs at least one shard");
        self.shards = shards;
        self
    }
    /// Sets the per-shard queue bound.
    pub fn with_shard_queue(mut self, cap: usize) -> Self {
        self.shard_queue = cap.max(1);
        self
    }
    /// Sets the dispatch batch bound.
    pub fn with_max_batch(mut self, cap: usize) -> Self {
        self.max_batch = cap.max(1);
        self
    }
    /// Sets the per-shard in-flight budget.
    pub fn with_inflight_budget(mut self, cap: usize) -> Self {
        self.inflight_budget = cap.max(1);
        self
    }
    /// Sets the per-connection in-flight window.
    pub fn with_client_queue(mut self, cap: usize) -> Self {
        self.client_queue = cap.max(1);
        self
    }
    /// Sets the queue-age shed deadline.
    pub fn with_queue_deadline(mut self, deadline: Duration) -> Self {
        self.queue_deadline = Some(deadline);
        self
    }
}

/// What the plane answered for one request.
pub enum ServeOutcome {
    /// The method executed; here is its marshalled result.
    Reply(AnyPayload),
    /// The backend does not implement the method.
    MethodNotFound {
        /// The unknown method id.
        method: u32,
    },
    /// Admission control or the queue deadline shed the request.
    Overloaded {
        /// Shard queue depth observed at shed time.
        queue_depth: u32,
        /// Refused at admission, or expired in queue.
        reason: ShedReason,
    },
}

impl std::fmt::Debug for ServeOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeOutcome::Reply(p) => write!(f, "Reply({} bytes)", p.bytes()),
            ServeOutcome::MethodNotFound { method } => {
                write!(f, "MethodNotFound({method})")
            }
            ServeOutcome::Overloaded { queue_depth, reason } => {
                write!(f, "Overloaded(depth {queue_depth}, {reason:?})")
            }
        }
    }
}

/// One reply as delivered to a client: the request's sequence id plus its
/// outcome. Per-connection reply order equals request order.
#[derive(Debug)]
pub struct PlaneReply {
    /// The id the sender assigned the request.
    pub seq: u64,
    /// What happened.
    pub outcome: ServeOutcome,
}

/// Batch of replies for one connection — the mailbox payload unit. An
/// empty batch is the close sentinel.
struct ReplyBatch {
    items: Vec<PlaneReply>,
}

/// Errors surfaced to plane clients.
#[derive(Debug)]
pub enum ServeError {
    /// The plane (or this connection) shut down.
    Closed,
    /// Typed NACK: unknown method.
    MethodNotFound {
        /// The unknown method id.
        method: u32,
    },
    /// Typed NACK: the request was shed under load.
    Overloaded {
        /// Shard queue depth observed at shed time.
        queue_depth: u32,
        /// Why the request was shed.
        reason: ShedReason,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Closed => write!(f, "serving plane closed"),
            ServeError::MethodNotFound { method } => {
                write!(f, "serving plane: unknown method {method}")
            }
            ServeError::Overloaded { queue_depth, reason } => {
                write!(
                    f,
                    "serving plane shed request under load (queue depth {queue_depth}, {reason:?})"
                )
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// One queued request.
struct PlaneReq {
    conn: u64,
    seq: u64,
    method: u32,
    arg: AnyPayload,
    enqueued: Instant,
}

/// Per-shard monotone counters (atomics; snapshot via [`ShardStats`]).
#[derive(Default)]
struct ShardCounters {
    enqueued: AtomicU64,
    batches: AtomicU64,
    batched_items: AtomicU64,
    replies: AtomicU64,
    shed_admission: AtomicU64,
    shed_deadline: AtomicU64,
    parks: AtomicU64,
    queue_peak: AtomicU64,
    batch_peak: AtomicU64,
}

impl ShardCounters {
    fn snapshot(&self) -> ShardStats {
        ShardStats {
            enqueued: self.enqueued.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_items: self.batched_items.load(Ordering::Relaxed),
            replies: self.replies.load(Ordering::Relaxed),
            shed_admission: self.shed_admission.load(Ordering::Relaxed),
            shed_deadline: self.shed_deadline.load(Ordering::Relaxed),
            parks: self.parks.load(Ordering::Relaxed),
            queue_peak: self.queue_peak.load(Ordering::Relaxed),
            batch_peak: self.batch_peak.load(Ordering::Relaxed),
        }
    }
}

/// One shard's counters, `WorldStats`-style: plain numbers, cheap to
/// snapshot, safe to diff across a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Requests admitted onto the shard queue.
    pub enqueued: u64,
    /// Dispatch runs executed.
    pub batches: u64,
    /// Requests dispatched inside those runs.
    pub batched_items: u64,
    /// Reply items posted (results and NACKs).
    pub replies: u64,
    /// Requests shed at admission (`ShedReason::AdmissionFull`).
    pub shed_admission: u64,
    /// Requests shed by queue age (`ShedReason::QueueDeadline`).
    pub shed_deadline: u64,
    /// Times a caller was parked on its connection's in-flight window.
    pub parks: u64,
    /// Deepest queue observed at enqueue time.
    pub queue_peak: u64,
    /// Largest dispatch run observed.
    pub batch_peak: u64,
}

impl ShardStats {
    /// Field-wise sum (peaks take the max).
    fn absorb(&mut self, o: &ShardStats) {
        self.enqueued += o.enqueued;
        self.batches += o.batches;
        self.batched_items += o.batched_items;
        self.replies += o.replies;
        self.shed_admission += o.shed_admission;
        self.shed_deadline += o.shed_deadline;
        self.parks += o.parks;
        self.queue_peak = self.queue_peak.max(o.queue_peak);
        self.batch_peak = self.batch_peak.max(o.batch_peak);
    }
}

/// A whole plane's counters.
#[derive(Debug, Clone, Default)]
pub struct PlaneStats {
    /// Per-shard snapshots, indexed by shard.
    pub per_shard: Vec<ShardStats>,
    /// Connections ever opened.
    pub conns_opened: u64,
    /// Connections closed.
    pub conns_closed: u64,
}

impl PlaneStats {
    /// Sum over shards (peaks take the max).
    pub fn totals(&self) -> ShardStats {
        let mut t = ShardStats::default();
        for s in &self.per_shard {
            t.absorb(s);
        }
        t
    }
}

/// Per-connection control block.
struct ConnCtl {
    shard: usize,
    /// Unanswered requests on this connection (reserved at ingress,
    /// released when the reply posts).
    inflight: Mutex<u64>,
    cond: Condvar,
}

struct ShardState {
    queue: Mutex<VecDeque<PlaneReq>>,
    cond: Condvar,
    /// Admitted-but-unanswered requests (queue + in dispatch).
    inflight: AtomicU64,
    stats: ShardCounters,
}

struct PlaneShared {
    policy: ServePolicy,
    closed: AtomicBool,
    abort: Arc<AtomicBool>,
    mailbox: Mailbox,
    conns: Mutex<HashMap<u64, Arc<ConnCtl>>>,
    next_conn: AtomicU64,
    shards: Vec<ShardState>,
    conns_opened: AtomicU64,
    conns_closed: AtomicU64,
}

impl PlaneShared {
    /// Posts one reply batch for `conn`. Envelope context = connection id,
    /// so each connection is its own FIFO mailbox bucket.
    fn reply_envelope(&self, shard: usize, conn: u64, items: Vec<PlaneReply>) -> Envelope {
        let bytes: usize = items
            .iter()
            .map(|r| match &r.outcome {
                ServeOutcome::Reply(p) => p.bytes(),
                _ => 8,
            })
            .sum();
        Envelope::new(
            shard,
            shard,
            conn as u32,
            REPLY_TAG,
            bytes,
            None,
            Payload::owned(ReplyBatch { items }),
        )
    }

    /// Releases reply slots: shard budget and the per-connection window
    /// (waking parked callers).
    fn release(&self, shard: &ShardState, conn: &Arc<ConnCtl>, n: u64) {
        shard.inflight.fetch_sub(n, Ordering::AcqRel);
        let mut inflight = conn.inflight.lock();
        *inflight -= n;
        conn.cond.notify_all();
    }

    fn ctl(&self, conn: u64) -> Option<Arc<ConnCtl>> {
        self.conns.lock().get(&conn).cloned()
    }

    /// The ingress path: park (backpressure) → admit or shed → enqueue.
    /// Runs on the *caller's* thread; blocking here is the designed
    /// per-connection backpressure.
    fn ingress(&self, conn: u64, seq: u64, method: u32, arg: AnyPayload) -> Result<(), ServeError> {
        if self.closed.load(Ordering::Acquire) {
            return Err(ServeError::Closed);
        }
        let ctl = self.ctl(conn).ok_or(ServeError::Closed)?;
        let shard = &self.shards[ctl.shard];
        // Reserve a reply slot in the connection window, parking while full.
        {
            let mut inflight = ctl.inflight.lock();
            if *inflight >= self.policy.client_queue as u64 {
                shard.stats.parks.fetch_add(1, Ordering::Relaxed);
                mxn_trace::emit_instant(
                    EventId::ServePark,
                    [conn, *inflight, self.policy.client_queue as u64, 0],
                );
                while *inflight >= self.policy.client_queue as u64 {
                    if self.closed.load(Ordering::Acquire) {
                        return Err(ServeError::Closed);
                    }
                    ctl.cond.wait(&mut inflight);
                }
            }
            *inflight += 1;
        }
        // Admission control: bounded queue, bounded in-flight budget.
        let mut q = shard.queue.lock();
        let depth = q.len() as u64;
        if depth >= self.policy.shard_queue as u64
            || shard.inflight.load(Ordering::Acquire) >= self.policy.inflight_budget as u64
        {
            drop(q);
            {
                let mut inflight = ctl.inflight.lock();
                *inflight -= 1;
                ctl.cond.notify_all();
            }
            shard.stats.shed_admission.fetch_add(1, Ordering::Relaxed);
            shard.stats.replies.fetch_add(1, Ordering::Relaxed);
            mxn_trace::emit_instant(EventId::ServeOverload, [ctl.shard as u64, conn, depth, 0]);
            let outcome = ServeOutcome::Overloaded {
                queue_depth: depth as u32,
                reason: ShedReason::AdmissionFull,
            };
            self.mailbox.push(self.reply_envelope(
                ctl.shard,
                conn,
                vec![PlaneReply { seq, outcome }],
            ));
            return Ok(());
        }
        shard.inflight.fetch_add(1, Ordering::AcqRel);
        q.push_back(PlaneReq { conn, seq, method, arg, enqueued: Instant::now() });
        shard.stats.queue_peak.fetch_max(depth + 1, Ordering::Relaxed);
        drop(q);
        shard.cond.notify_one();
        shard.stats.enqueued.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Detaches a connection: further sends fail, the receiver wakes with
    /// `Closed` once queued replies drain.
    fn close_conn(&self, conn: u64) {
        let removed = self.conns.lock().remove(&conn);
        if let Some(ctl) = removed {
            self.conns_closed.fetch_add(1, Ordering::Relaxed);
            ctl.cond.notify_all();
            mxn_trace::emit_instant(EventId::ServeConn, [conn, ctl.shard as u64, 0, 0]);
            // Close sentinel: an empty batch.
            self.mailbox.push(self.reply_envelope(ctl.shard, conn, Vec::new()));
        }
    }

    /// One shard executor: drain → deadline-shed → method runs → dispatch
    /// → batched reply delivery.
    fn shard_loop(self: &Arc<Self>, idx: usize, backend: &mut dyn PlaneBackend) {
        let shard = &self.shards[idx];
        loop {
            let (drained, depth_left) = {
                let mut q = shard.queue.lock();
                while q.is_empty() {
                    if self.closed.load(Ordering::Acquire) {
                        return;
                    }
                    shard.cond.wait(&mut q);
                }
                let take = q.len().min(self.policy.max_batch);
                let drained: Vec<PlaneReq> = q.drain(..take).collect();
                (drained, q.len() as u64)
            };
            // Queue-deadline sheds happen before dispatch, preserving the
            // order of the survivors.
            let mut live = Vec::with_capacity(drained.len());
            for req in drained {
                let expired =
                    self.policy.queue_deadline.is_some_and(|d| req.enqueued.elapsed() > d);
                if expired {
                    shard.stats.shed_deadline.fetch_add(1, Ordering::Relaxed);
                    shard.stats.replies.fetch_add(1, Ordering::Relaxed);
                    mxn_trace::emit_instant(
                        EventId::ServeOverload,
                        [idx as u64, req.conn, depth_left, 1],
                    );
                    let outcome = ServeOutcome::Overloaded {
                        queue_depth: depth_left as u32,
                        reason: ShedReason::QueueDeadline,
                    };
                    let env = self.reply_envelope(
                        idx,
                        req.conn,
                        vec![PlaneReply { seq: req.seq, outcome }],
                    );
                    self.mailbox.push(env);
                    if let Some(ctl) = self.ctl(req.conn) {
                        self.release(shard, &ctl, 1);
                    } else {
                        shard.inflight.fetch_sub(1, Ordering::AcqRel);
                    }
                } else {
                    live.push(req);
                }
            }
            // Maximal runs of consecutive same-method requests: batching
            // that cannot reorder anything.
            let mut live = VecDeque::from(live);
            while let Some(front) = live.front() {
                let method = front.method;
                let mut run = Vec::new();
                while live.front().is_some_and(|r| r.method == method) {
                    run.push(live.pop_front().expect("front just checked"));
                }
                self.dispatch_run(idx, shard, method, run, depth_left, backend);
            }
        }
    }

    fn dispatch_run(
        self: &Arc<Self>,
        idx: usize,
        shard: &ShardState,
        method: u32,
        run: Vec<PlaneReq>,
        depth_left: u64,
        backend: &mut dyn PlaneBackend,
    ) {
        let len = run.len() as u64;
        let _span =
            mxn_trace::span(EventId::ServeBatch, [idx as u64, method as u64, len, depth_left]);
        shard.stats.batches.fetch_add(1, Ordering::Relaxed);
        shard.stats.batched_items.fetch_add(len, Ordering::Relaxed);
        shard.stats.batch_peak.fetch_max(len, Ordering::Relaxed);

        let mut conns = Vec::with_capacity(run.len());
        let mut seqs = Vec::with_capacity(run.len());
        let mut args = Vec::with_capacity(run.len());
        for req in run {
            conns.push(req.conn);
            seqs.push(req.seq);
            args.push(req.arg);
        }
        let outs = backend.dispatch_batch(method, args);
        assert_eq!(outs.len(), conns.len(), "backend broke the batch contract for method {method}");

        // Group replies per connection, preserving run order within each,
        // and deliver the whole run through one post_many.
        let mut per_conn: Vec<(u64, Vec<PlaneReply>)> = Vec::new();
        for ((conn, seq), out) in conns.iter().zip(&seqs).zip(outs) {
            let outcome = match out {
                BatchReply::Reply(p) => ServeOutcome::Reply(p),
                BatchReply::MethodNotFound => ServeOutcome::MethodNotFound { method },
            };
            let reply = PlaneReply { seq: *seq, outcome };
            match per_conn.iter_mut().find(|(c, _)| c == conn) {
                Some((_, items)) => items.push(reply),
                None => per_conn.push((*conn, vec![reply])),
            }
        }
        shard.stats.replies.fetch_add(len, Ordering::Relaxed);
        let counts: Vec<(u64, u64)> =
            per_conn.iter().map(|(c, items)| (*c, items.len() as u64)).collect();
        let envs: Vec<Envelope> = per_conn
            .into_iter()
            .map(|(conn, items)| self.reply_envelope(idx, conn, items))
            .collect();
        self.mailbox.post_many(envs);
        for (conn, n) in counts {
            if let Some(ctl) = self.ctl(conn) {
                self.release(shard, &ctl, n);
            } else {
                shard.inflight.fetch_sub(n, Ordering::AcqRel);
            }
        }
    }
}

/// Sending half of a plane connection. Single-owner by design: the wire
/// front gives it to the connection's reader thread.
pub struct PlaneSender {
    shared: Arc<PlaneShared>,
    conn: u64,
    next_seq: u64,
    closed: bool,
}

impl PlaneSender {
    /// This connection's plane-assigned id.
    pub fn conn(&self) -> u64 {
        self.conn
    }

    /// Submits a request under an auto-assigned sequence id (returned).
    /// May park the calling thread (backpressure); never blocks a shard.
    pub fn send(&mut self, method: u32, arg: AnyPayload) -> Result<u64, ServeError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.shared.ingress(self.conn, seq, method, arg)?;
        Ok(seq)
    }

    /// Submits a request under a caller-chosen sequence id (the wire front
    /// passes the client's own call id through).
    pub fn send_tagged(
        &mut self,
        seq: u64,
        method: u32,
        arg: AnyPayload,
    ) -> Result<(), ServeError> {
        self.shared.ingress(self.conn, seq, method, arg)
    }

    /// Closes the connection: pending replies still drain, then the
    /// receiver observes `Closed`.
    pub fn close(mut self) {
        self.close_inner();
    }

    fn close_inner(&mut self) {
        if !self.closed {
            self.closed = true;
            self.shared.close_conn(self.conn);
        }
    }
}

impl Drop for PlaneSender {
    fn drop(&mut self) {
        self.close_inner();
    }
}

/// Receiving half of a plane connection.
pub struct PlaneReceiver {
    shared: Arc<PlaneShared>,
    conn: u64,
    buffer: VecDeque<PlaneReply>,
}

impl PlaneReceiver {
    /// Blocks for the next reply on this connection. Replies arrive in
    /// request order.
    pub fn recv(&mut self) -> Result<PlaneReply, ServeError> {
        loop {
            if let Some(r) = self.buffer.pop_front() {
                return Ok(r);
            }
            let env = self
                .shared
                .mailbox
                .take(self.conn as u32, Src::Any, Tag::Value(REPLY_TAG), &[])
                .map_err(|e| match e {
                    RuntimeError::Aborted => ServeError::Closed,
                    other => panic!("plane reply mailbox failed: {other}"),
                })?;
            let (batch, _) = env
                .payload
                .into_owned::<ReplyBatch>()
                .unwrap_or_else(|_| panic!("foreign payload in plane reply bucket"));
            if batch.items.is_empty() {
                return Err(ServeError::Closed); // close sentinel
            }
            self.buffer.extend(batch.items);
        }
    }

    /// Non-blocking receive: `Ok(None)` when no reply has been delivered
    /// yet. Ordering and close semantics match [`PlaneReceiver::recv`].
    pub fn try_recv(&mut self) -> Result<Option<PlaneReply>, ServeError> {
        loop {
            if let Some(r) = self.buffer.pop_front() {
                return Ok(Some(r));
            }
            let Some(env) =
                self.shared.mailbox.try_take(self.conn as u32, Src::Any, Tag::Value(REPLY_TAG))
            else {
                return Ok(None);
            };
            let (batch, _) = env
                .payload
                .into_owned::<ReplyBatch>()
                .unwrap_or_else(|_| panic!("foreign payload in plane reply bucket"));
            if batch.items.is_empty() {
                return Err(ServeError::Closed); // close sentinel
            }
            self.buffer.extend(batch.items);
        }
    }
}

/// A full-duplex plane connection: a [`PlaneSender`] and [`PlaneReceiver`]
/// pair plus call conveniences. Split it to put the halves on different
/// threads.
pub struct PlaneClient {
    sender: PlaneSender,
    receiver: PlaneReceiver,
}

impl PlaneClient {
    /// This connection's plane-assigned id.
    pub fn conn(&self) -> u64 {
        self.sender.conn
    }

    /// Pipelined submit; see [`PlaneSender::send`].
    pub fn send(&mut self, method: u32, arg: AnyPayload) -> Result<u64, ServeError> {
        self.sender.send(method, arg)
    }

    /// Blocking receive; see [`PlaneReceiver::recv`].
    pub fn recv(&mut self) -> Result<PlaneReply, ServeError> {
        self.receiver.recv()
    }

    /// Non-blocking receive; see [`PlaneReceiver::try_recv`].
    pub fn try_recv(&mut self) -> Result<Option<PlaneReply>, ServeError> {
        self.receiver.try_recv()
    }

    /// One request, one reply. Must not be interleaved with pipelined
    /// `send`s — the next reply is assumed to answer this call.
    pub fn call(&mut self, method: u32, arg: AnyPayload) -> Result<AnyPayload, ServeError> {
        let seq = self.sender.send(method, arg)?;
        let reply = self.receiver.recv()?;
        assert_eq!(reply.seq, seq, "call() interleaved with pipelined sends");
        match reply.outcome {
            ServeOutcome::Reply(p) => Ok(p),
            ServeOutcome::MethodNotFound { method } => Err(ServeError::MethodNotFound { method }),
            ServeOutcome::Overloaded { queue_depth, reason } => {
                Err(ServeError::Overloaded { queue_depth, reason })
            }
        }
    }

    /// Splits into independently-owned halves.
    pub fn split(self) -> (PlaneSender, PlaneReceiver) {
        (self.sender, self.receiver)
    }
}

/// Cheap handle for opening connections and reading counters from any
/// thread.
#[derive(Clone)]
pub struct PlaneHandle {
    shared: Arc<PlaneShared>,
}

impl PlaneHandle {
    /// Opens a new connection.
    pub fn client(&self) -> PlaneClient {
        let conn = self.shared.next_conn.fetch_add(1, Ordering::Relaxed);
        assert!(conn < u32::MAX as u64, "connection ids exhausted the context space");
        let shard = (splitmix64(conn ^ 0x5e7e_517e) % self.shared.shards.len() as u64) as usize;
        let ctl = Arc::new(ConnCtl { shard, inflight: Mutex::new(0), cond: Condvar::new() });
        self.shared.conns.lock().insert(conn, ctl);
        self.shared.conns_opened.fetch_add(1, Ordering::Relaxed);
        mxn_trace::emit_instant(EventId::ServeConn, [conn, shard as u64, 1, 0]);
        PlaneClient {
            sender: PlaneSender {
                shared: Arc::clone(&self.shared),
                conn,
                next_seq: 0,
                closed: false,
            },
            receiver: PlaneReceiver {
                shared: Arc::clone(&self.shared),
                conn,
                buffer: VecDeque::new(),
            },
        }
    }

    /// Snapshot of every shard's counters.
    pub fn stats(&self) -> PlaneStats {
        PlaneStats {
            per_shard: self.shared.shards.iter().map(|s| s.stats.snapshot()).collect(),
            conns_opened: self.shared.conns_opened.load(Ordering::Relaxed),
            conns_closed: self.shared.conns_closed.load(Ordering::Relaxed),
        }
    }

    /// Whether the plane has shut down.
    pub fn is_closed(&self) -> bool {
        self.shared.closed.load(Ordering::Acquire)
    }
}

/// The sharded serving plane. See the module docs for the dataflow.
pub struct ServingPlane {
    shared: Arc<PlaneShared>,
    executors: Vec<JoinHandle<()>>,
}

impl ServingPlane {
    /// Starts a plane: `factory(shard)` builds each shard's backend (the
    /// backend moves onto the shard's executor thread).
    pub fn new(
        policy: ServePolicy,
        factory: impl FnMut(usize) -> Box<dyn PlaneBackend>,
    ) -> ServingPlane {
        Self::new_traced(policy, Vec::new(), factory)
    }

    /// Like [`ServingPlane::new`], with a trace recorder installed on each
    /// shard thread (`handles[shard % handles.len()]`), so `ServeBatch` /
    /// `ServeOverload` spans land in a collectable trace.
    pub fn new_traced(
        policy: ServePolicy,
        handles: Vec<TraceHandle>,
        mut factory: impl FnMut(usize) -> Box<dyn PlaneBackend>,
    ) -> ServingPlane {
        assert!(policy.shards > 0, "a plane needs at least one shard");
        let abort = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(PlaneShared {
            policy,
            closed: AtomicBool::new(false),
            abort: Arc::clone(&abort),
            mailbox: Mailbox::new(abort, Arc::new(Liveness::new(0)), Arc::new(Revocations::new())),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            shards: (0..policy.shards)
                .map(|_| ShardState {
                    queue: Mutex::new(VecDeque::new()),
                    cond: Condvar::new(),
                    inflight: AtomicU64::new(0),
                    stats: ShardCounters::default(),
                })
                .collect(),
            conns_opened: AtomicU64::new(0),
            conns_closed: AtomicU64::new(0),
        });
        let executors = (0..policy.shards)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                let mut backend = factory(idx);
                let handle = (!handles.is_empty()).then(|| handles[idx % handles.len()].clone());
                std::thread::Builder::new()
                    .name(format!("serve-shard-{idx}"))
                    .spawn(move || {
                        let _guard = handle.as_ref().map(|h| h.install());
                        shared.shard_loop(idx, backend.as_mut());
                        backend.shutdown();
                    })
                    .expect("spawn shard executor")
            })
            .collect();
        ServingPlane { shared, executors }
    }

    /// A cheap cloneable handle (open connections, read stats).
    pub fn handle(&self) -> PlaneHandle {
        PlaneHandle { shared: Arc::clone(&self.shared) }
    }

    /// Opens a new connection (convenience for [`PlaneHandle::client`]).
    pub fn client(&self) -> PlaneClient {
        self.handle().client()
    }

    /// Snapshot of the plane's counters.
    pub fn stats(&self) -> PlaneStats {
        self.handle().stats()
    }

    /// Drains queued work, stops the executors, wakes every blocked
    /// client, and returns the final counters.
    pub fn shutdown(mut self) -> PlaneStats {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> PlaneStats {
        self.shared.closed.store(true, Ordering::Release);
        for shard in &self.shared.shards {
            // Executors drain to empty before observing `closed`.
            shard.cond.notify_all();
        }
        for h in self.executors.drain(..) {
            let _ = h.join();
        }
        // Unblock parked senders and waiting receivers.
        for ctl in self.shared.conns.lock().values() {
            ctl.cond.notify_all();
        }
        self.shared.abort.store(true, Ordering::Release);
        self.shared.mailbox.wake_all();
        self.handle().stats()
    }
}

impl Drop for ServingPlane {
    fn drop(&mut self) {
        if !self.shared.closed.load(Ordering::Acquire) {
            self.shutdown_inner();
        }
    }
}
