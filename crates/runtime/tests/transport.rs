//! Transport-level properties of the bucketed mailbox under concurrency.
//!
//! The mailbox shards its queues into per-`(context, tag)` buckets for
//! targeted wakeups; these tests pin the user-visible guarantees that the
//! sharding must not disturb:
//!
//! * **Non-overtaking** — two messages from the same sender on the same
//!   `(context, tag)` are received in send order, with any mix of sender
//!   threads, tag interleavings, wildcard receives, and shared (multicast)
//!   envelopes in flight.
//! * **Failure detection** — `recv_timeout` still times out and a dead
//!   peer still raises `PeerDead` when the wait parks on a tag bucket.

use std::collections::HashMap;
use std::time::Duration;

use mxn_runtime::{ChannelPolicy, Comm, FaultConfig, RuntimeError, Src, Tag, World};
use proptest::prelude::*;

/// A traced message: (sender rank, tag it was sent on, per-(sender, tag)
/// sequence number).
type Traced = (usize, i32, u64);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Many sender threads, several tags each, one receiver draining with
    /// wildcard `(Src::Any, Tag::Any)` receives: per (sender, tag) the
    /// sequence numbers must arrive strictly in order, even though the
    /// messages are spread across distinct buckets and interleaved
    /// arbitrarily by the scheduler.
    #[test]
    fn non_overtaking_per_sender_tag_under_concurrency(
        senders in 1usize..5,
        ntags in 1usize..4,
        msgs in 5usize..40,
    ) {
        World::run(senders + 1, move |p| {
            let comm = p.world();
            let me = comm.rank();
            let receiver = senders; // highest rank drains
            if me < senders {
                let mut seq = vec![0u64; ntags];
                for i in 0..msgs {
                    let t = (i % ntags) as i32;
                    let payload: Traced = (me, t, seq[t as usize]);
                    seq[t as usize] += 1;
                    comm.send(receiver, t, payload).unwrap();
                }
            } else {
                let total = senders * msgs;
                let mut last: HashMap<(usize, i32), u64> = HashMap::new();
                for _ in 0..total {
                    let ((src, tag, seq), info) =
                        comm.recv_with_info::<Traced>(Src::Any, Tag::Any).unwrap();
                    assert_eq!(src, info.src, "payload vs envelope sender");
                    assert_eq!(tag, info.tag, "payload vs envelope tag");
                    let next = last.entry((src, tag)).or_insert(0);
                    assert_eq!(
                        seq, *next,
                        "message from rank {src} tag {tag} overtook its predecessor"
                    );
                    *next += 1;
                }
            }
        });
    }

    /// Shared multicast envelopes and plain owned sends interleaved on the
    /// same channel keep a single FIFO order: the receiver sees the global
    /// per-sender sequence 0..n regardless of which transport each message
    /// took.
    #[test]
    fn multicast_does_not_overtake_plain_sends(rounds in 1usize..25) {
        World::run(3, move |p| {
            let comm = p.world();
            match comm.rank() {
                0 => {
                    let mut seq = 0u64;
                    for i in 0..rounds {
                        if i % 2 == 0 {
                            comm.send(2, 9, vec![seq]).unwrap();
                            seq += 1;
                        } else {
                            // Both receivers get the same shared payload.
                            comm.multicast(&[1, 2], 9, vec![seq]).unwrap();
                            seq += 1;
                        }
                    }
                }
                1 => {
                    for i in 0..rounds {
                        if i % 2 == 1 {
                            let v: Vec<u64> = comm.recv(0, 9).unwrap();
                            assert_eq!(v, vec![i as u64]);
                        }
                    }
                }
                _ => {
                    for i in 0..rounds {
                        let v: Vec<u64> = comm.recv(0, 9).unwrap();
                        assert_eq!(v, vec![i as u64], "multicast/send interleave broke FIFO");
                    }
                }
            }
        });
    }
}

/// `recv_timeout` on a concrete tag must fire even while unrelated traffic
/// keeps landing in *other* buckets of the same mailbox (the bucket-focused
/// wait must not be woken into a lost signal, nor sleep past its deadline).
#[test]
fn recv_timeout_fires_on_empty_bucket_despite_other_traffic() {
    World::run(2, |p| {
        let comm = p.world();
        if comm.rank() == 0 {
            for i in 0..32u64 {
                comm.send(1, 1, i).unwrap();
            }
        } else {
            // Tag 2 never receives anything.
            let e = comm.recv_timeout::<u64>(0, 2, Duration::from_millis(30)).unwrap_err();
            assert!(matches!(e, RuntimeError::Timeout { .. }), "got {e}");
            // The tag-1 bucket is intact: all 32 messages drain in order.
            for i in 0..32u64 {
                assert_eq!(comm.recv::<u64>(0, 1).unwrap(), i);
            }
        }
    });
}

/// A receiver parked on a concrete-tag bucket is unblocked with `PeerDead`
/// when the awaited rank dies, rather than sleeping forever.
#[test]
fn peer_death_unblocks_bucketed_receiver() {
    let faults =
        FaultConfig::reliable(11).with_default_policy(ChannelPolicy::reliable()).with_death(0, 0);
    let (_, trace) = World::run_with_faults(2, faults, |p: &mxn_runtime::Process| {
        let comm: &Comm = p.world();
        if comm.rank() == 1 {
            let e = comm.recv::<u64>(0, 5).unwrap_err();
            assert!(matches!(e, RuntimeError::PeerDead { rank: 0 }), "got {e}");
        } else {
            // Rank 0 dies on its first operation.
            let _ = comm.send(1, 99, 0u64);
        }
    });
    assert!(!trace.events().is_empty(), "the death must be traced");
}
