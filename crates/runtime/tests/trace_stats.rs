//! The two accounting planes cannot drift: per-collective trace
//! aggregates must equal the `WorldStats` counters, and error returns
//! must bump both the counters *and* the trace.

use std::time::Duration;

use mxn_runtime::{err_code, ChannelPolicy, CollOp, EventId, FaultConfig, RuntimeError, World};

/// Drives every collective at least once, then checks that the trace's
/// per-op `CollMsg`/`CollClone`/`CollAlloc` totals equal the stats
/// tables exactly — they are emitted at the same sites, so any drift
/// means an instrumentation bug.
#[test]
fn per_collective_trace_aggregates_match_world_stats() {
    let (_, stats, trace) = World::run_traced_with_stats(4, |p| {
        let c = p.world();
        let r = c.rank();
        c.barrier().unwrap();
        let v = c.bcast(0, (r == 0).then(|| vec![1.0f64; 64])).unwrap();
        assert_eq!(v.len(), 64);
        let gathered = c.gather(1, r as u64).unwrap();
        if r == 1 {
            assert_eq!(gathered.unwrap(), vec![0, 1, 2, 3]);
        }
        let all = c.allgather(r as u32).unwrap();
        assert_eq!(all, vec![0, 1, 2, 3]);
        let mine: u64 = c.scatter(2, (r == 2).then(|| vec![10u64, 11, 12, 13])).unwrap();
        assert_eq!(mine, 10 + r as u64);
        let swapped = c.alltoall((0..4).map(|d| (r * 10 + d) as u64).collect()).unwrap();
        assert_eq!(swapped, (0..4).map(|s| (s * 10 + r) as u64).collect::<Vec<_>>());
        let red = c.reduce(0, r as u64, |a, b| *a += b).unwrap();
        if r == 0 {
            assert_eq!(red, Some(6));
        }
        // A scalar allreduce and a bulk one (both reduce + shared bcast).
        assert_eq!(c.allreduce(1u64, |a, b| *a += b).unwrap(), 4);
        let big = c.allreduce(vec![1.0f64; 1024], |a, b| {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        });
        assert_eq!(big.unwrap()[0], 4.0);
        let rs = c.reduce_scatter((0..4).map(|d| (d + r) as u64).collect(), |a, b| *a += b);
        assert_eq!(rs.unwrap(), 4 * r as u64 + 6); // Σ_src (r + src)
        let sc = c.scan(r as u64, |a, b| *a += b).unwrap();
        assert_eq!(sc, (0..=r as u64).sum::<u64>());
    });

    let agg = trace.aggregate();
    for op in CollOp::ALL {
        let i = op.index();
        let t = agg.coll.get(&(i as u64)).copied().unwrap_or_default();
        assert_eq!(
            t.messages, stats.coll_op_messages[i],
            "{op:?}: trace CollMsg count != stats messages"
        );
        assert_eq!(t.bytes, stats.coll_op_bytes[i], "{op:?}: trace bytes != stats bytes");
        assert_eq!(
            t.clones, stats.coll_op_payload_clones[i],
            "{op:?}: trace clones != stats clones"
        );
        assert_eq!(
            t.allocs, stats.coll_op_payload_allocs[i],
            "{op:?}: trace allocs != stats allocs"
        );
    }
    // The workload exercised every collective: each op shows traffic
    // except the zero-byte barrier (messages yes, bytes zero).
    for op in CollOp::ALL {
        assert!(
            stats.coll_op_messages[op.index()] > 0,
            "{op:?} was never exercised by the workload"
        );
    }
    assert!(agg.count(EventId::Collective) >= 4 * CollOp::COUNT as u64 - 4);
}

/// Satellite fix regression test: `Timeout` and `PeerDead` error returns
/// update the stats counters and emit `OpError` events *consistently* —
/// one counter bump and one event per failed operation, on every mailbox
/// branch (plain recv, intercomm recv, collective take).
#[test]
fn error_returns_update_both_accounting_planes() {
    // A lossy channel drops the only message, so rank 1 times out twice;
    // then rank 0's scheduled death turns rank 1's blocking recv into
    // PeerDead.
    let cfg = FaultConfig::reliable(0xFEED)
        .with_channel(0, 1, ChannelPolicy::lossy(1.0))
        .with_death(0, 2);
    let (_, stats, trace) = World::run_traced_with_stats_and_faults(2, cfg, |p| {
        let c = p.world();
        if c.rank() == 0 {
            c.send(1, 3, 7u8).unwrap(); // op 0: dropped
                                        // Op 1 blocks until rank 1 has timed out twice, so rank 0 is
                                        // provably alive while the timeouts happen.
            c.recv::<u8>(1, 99).unwrap();
            c.send(1, 3, 9u8).unwrap_err(); // op 2: own scheduled death
        } else {
            for _ in 0..2 {
                let e = c.recv_timeout::<u8>(0, 3, Duration::from_millis(25)).unwrap_err();
                assert!(matches!(e, RuntimeError::Timeout { .. }), "got {e}");
            }
            c.send(0, 99, 1u8).unwrap();
            let e = c.recv::<u8>(0, 3).unwrap_err();
            assert!(matches!(e, RuntimeError::PeerDead { .. }), "got {e}");
        }
    });

    assert_eq!(stats.recv_timeouts, 2, "both timeouts counted");
    assert!(stats.peer_dead_errors >= 1, "the PeerDead return counted");
    let agg = trace.aggregate();
    assert_eq!(
        agg.errors.get(&err_code::TIMEOUT).copied().unwrap_or(0),
        stats.recv_timeouts,
        "OpError(Timeout) events == recv_timeouts counter"
    );
    assert_eq!(
        agg.errors.get(&err_code::PEER_DEAD).copied().unwrap_or(0),
        stats.peer_dead_errors,
        "OpError(PeerDead) events == peer_dead_errors counter"
    );
    // The timeouts carry the awaited (src, tag) for diagnosis.
    let timeout_ev = trace
        .events
        .iter()
        .find(|e| e.id == EventId::OpError && e.args[0] == err_code::TIMEOUT)
        .expect("a Timeout OpError event");
    assert_eq!(timeout_ev.args[1], 0, "src rank recorded");
    assert_eq!(timeout_ev.args[2], 3, "tag recorded");
}
