//! Deterministic fault plane: message-level fault injection and rank death.
//!
//! Production coupling middleware cannot assume every participant stays
//! alive and every message arrives. This module makes those assumptions
//! *removable*: a [`FaultPlane`] is configured per-world with a seed and
//! per-channel [`ChannelPolicy`]s (drop, duplicate, delay, bounded reorder,
//! corruption) plus scheduled [`RankDeath`]s at a given operation count.
//!
//! Determinism is the design center. Fault decisions are *stateless hash
//! draws* keyed on `(seed, src, dst, per-channel sequence number)` — never
//! on wall-clock time or a shared mutable RNG — so the decision for the
//! k-th message on a channel is the same no matter how OS threads
//! interleave. Two runs with the same seed therefore produce byte-identical
//! [`FaultTrace`]s, which is what makes failures *replayable*: a bug found
//! under seed 42 can be re-run under seed 42 forever.
//!
//! Rank death is modelled by a [`Liveness`] registry shared by all ranks:
//! a dead rank's sends stop reaching the network and its own operations
//! fail with [`RuntimeError::PeerDead`], while peers blocked on it are
//! woken and get `PeerDead` instead of hanging (see `Mailbox`).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

use crate::error::RuntimeError;

/// Per-channel fault probabilities and delay bounds.
///
/// Probabilities are in `[0, 1]`; a message can be dropped, duplicated or
/// corrupted (mutually exclusive, tested in that order), and independently
/// delayed by `delay + U[0, jitter]`. A nonzero `jitter` yields *bounded
/// reorder*: messages may overtake each other by at most `jitter` of
/// visibility time, never unboundedly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelPolicy {
    /// Probability a message is silently dropped.
    pub drop: f64,
    /// Probability a message is delivered twice.
    pub duplicate: f64,
    /// Probability a message's envelope checksum is damaged (detectable
    /// corruption / truncation).
    pub corrupt: f64,
    /// Fixed extra visibility delay applied to every message.
    pub delay: Duration,
    /// Upper bound of a uniformly-drawn extra delay; the source of bounded
    /// reordering.
    pub jitter: Duration,
}

impl ChannelPolicy {
    /// The no-fault policy.
    pub fn reliable() -> Self {
        ChannelPolicy {
            drop: 0.0,
            duplicate: 0.0,
            corrupt: 0.0,
            delay: Duration::ZERO,
            jitter: Duration::ZERO,
        }
    }

    /// A uniformly lossy policy: every message dropped with probability `p`.
    pub fn lossy(p: f64) -> Self {
        ChannelPolicy { drop: p, ..Self::reliable() }
    }

    /// Whether this policy can ever inject a fault.
    pub fn is_reliable(&self) -> bool {
        self.drop == 0.0
            && self.duplicate == 0.0
            && self.corrupt == 0.0
            && self.delay.is_zero()
            && self.jitter.is_zero()
    }
}

impl Default for ChannelPolicy {
    fn default() -> Self {
        Self::reliable()
    }
}

/// A scheduled rank death: the rank dies when its own operation counter
/// (sends + receives initiated) reaches `at_op`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankDeath {
    /// Global (world) rank to kill.
    pub rank: usize,
    /// Operation count at which the rank dies (0 = before its first op).
    pub at_op: u64,
}

/// World-level fault-plane configuration.
#[derive(Debug, Clone, Default)]
pub struct FaultConfig {
    /// Seed for all fault decisions; same seed ⇒ byte-identical trace.
    pub seed: u64,
    /// Policy applied to every channel without an override.
    pub default_policy: ChannelPolicy,
    /// Per-channel `(src, dst)` policy overrides (global ranks).
    pub channel_policies: HashMap<(usize, usize), ChannelPolicy>,
    /// Scheduled rank deaths.
    pub deaths: Vec<RankDeath>,
}

impl FaultConfig {
    /// A fault plane that injects nothing — useful as a base to tweak.
    pub fn reliable(seed: u64) -> Self {
        FaultConfig { seed, ..Default::default() }
    }

    /// Sets the default policy (builder style).
    pub fn with_default_policy(mut self, policy: ChannelPolicy) -> Self {
        self.default_policy = policy;
        self
    }

    /// Overrides the policy of one directed channel (builder style).
    pub fn with_channel(mut self, src: usize, dst: usize, policy: ChannelPolicy) -> Self {
        self.channel_policies.insert((src, dst), policy);
        self
    }

    /// Schedules a rank death (builder style).
    pub fn with_death(mut self, rank: usize, at_op: u64) -> Self {
        self.deaths.push(RankDeath { rank, at_op });
        self
    }
}

/// What the fault plane did to one message (or rank).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// Message silently discarded.
    Dropped,
    /// Message delivered twice.
    Duplicated,
    /// Envelope checksum damaged (receiver will detect `Corrupt`).
    Corrupted,
    /// Message visibility delayed by this many microseconds.
    Delayed(u64),
    /// The rank died at this operation count.
    Death(u64),
}

/// One entry of a fault trace. Ordering is by `(src, dst, seq, kind)` so a
/// sorted trace is canonical regardless of thread interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FaultEvent {
    /// Sending global rank (for deaths: the dead rank).
    pub src: usize,
    /// Receiving global rank (for deaths: the dead rank).
    pub dst: usize,
    /// Per-channel message sequence number (for deaths: the op count).
    pub seq: u64,
    /// What happened.
    pub kind: FaultKind,
}

/// The canonical (sorted) record of every fault injected in one run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultTrace {
    events: Vec<FaultEvent>,
}

impl FaultTrace {
    /// The events, sorted canonically.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of injected faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no fault was injected.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A 64-bit digest of the canonical trace — equal digests for equal
    /// traces, cheap to assert on in determinism tests.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for e in &self.events {
            for word in [e.src as u64, e.dst as u64, e.seq, fault_kind_code(e.kind)] {
                h ^= word;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        }
        h
    }
}

fn fault_kind_code(k: FaultKind) -> u64 {
    match k {
        FaultKind::Dropped => 1,
        FaultKind::Duplicated => 2,
        FaultKind::Corrupted => 3,
        FaultKind::Delayed(us) => 4 | (us << 3),
        FaultKind::Death(op) => 5 | (op << 3),
    }
}

/// What [`FaultPlane::judge`] decided for one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Deliver unchanged.
    Deliver,
    /// Discard the message.
    Drop,
    /// Deliver the message twice.
    Duplicate,
    /// Deliver with a damaged checksum.
    Corrupt,
}

/// SplitMix64: the standard small deterministic mixer. Public so other
/// layers that need seeded, replayable draws (e.g. `CallPolicy` retry
/// jitter) share the fault plane's RNG instead of growing their own.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps a u64 draw to `[0, 1)`.
pub fn unit(draw: u64) -> f64 {
    (draw >> 11) as f64 / (1u64 << 53) as f64
}

/// Liveness registry: which global ranks are still alive.
///
/// Shared by every rank of a world; consulted by blocked receives so that a
/// wait on a dead peer fails with [`RuntimeError::PeerDead`] instead of
/// hanging forever.
pub struct Liveness {
    dead: Vec<AtomicBool>,
}

impl Liveness {
    /// All ranks alive.
    pub fn new(n: usize) -> Self {
        Liveness { dead: (0..n).map(|_| AtomicBool::new(false)).collect() }
    }

    /// Marks `rank` dead. Idempotent; returns whether this call killed it.
    pub fn kill(&self, rank: usize) -> bool {
        !self.dead[rank].swap(true, Ordering::AcqRel)
    }

    /// Clears a death verdict: `rank` is alive again. Returns whether the
    /// rank had been dead.
    ///
    /// This exists for two provisional-death cases at the wire layer: a
    /// *quarantined* zombie peer that resumes before the survivor
    /// agreement commits its eviction, and a join attempt that aborted and
    /// is retried under the same rank number by a fresh process. Once a
    /// membership agreement has consumed the death (shrink, survivor
    /// context, `agree_survivors`), the verdict is final and reviving the
    /// rank is a caller bug — the agreement layers never call this.
    pub fn revive(&self, rank: usize) -> bool {
        self.dead[rank].swap(false, Ordering::AcqRel)
    }

    /// Whether `rank` has died.
    pub fn is_dead(&self, rank: usize) -> bool {
        self.dead[rank].load(Ordering::Acquire)
    }

    /// Global ranks currently dead, ascending.
    pub fn dead_ranks(&self) -> Vec<usize> {
        (0..self.dead.len()).filter(|&r| self.is_dead(r)).collect()
    }
}

/// The per-world fault injector. All decisions are deterministic functions
/// of `(seed, channel, per-channel sequence)`; see the module docs.
pub struct FaultPlane {
    config: FaultConfig,
    /// Per-channel message counters: `chan_seq[src * n + dst]`.
    chan_seq: Vec<AtomicU64>,
    /// Per-rank operation counters (sends + receives initiated).
    rank_ops: Vec<AtomicU64>,
    /// Per-rank arming. A disarmed rank's sends and ops bypass the plane
    /// entirely — no verdicts, no sequence numbers, no death countdown.
    /// Only rank `r` writes `armed[r]`, so disarm→(exempt phase)→arm in a
    /// rank's own program order is race-free and deterministic. `Universe`
    /// uses this to keep its intercomm bootstrap reliable.
    armed: Vec<AtomicBool>,
    trace: Mutex<Vec<FaultEvent>>,
    n: usize,
}

impl FaultPlane {
    /// Builds the fault plane for an `n`-rank world; every rank starts
    /// armed.
    pub fn new(config: FaultConfig, n: usize) -> Self {
        FaultPlane {
            config,
            chan_seq: (0..n * n).map(|_| AtomicU64::new(0)).collect(),
            rank_ops: (0..n).map(|_| AtomicU64::new(0)).collect(),
            armed: (0..n).map(|_| AtomicBool::new(true)).collect(),
            trace: Mutex::new(Vec::new()),
            n,
        }
    }

    /// Arms or disarms the plane for `rank`'s *outgoing* traffic and op
    /// counting. Must only be called by rank `rank` itself (see the field
    /// docs for why that keeps runs deterministic).
    pub fn set_armed(&self, rank: usize, armed: bool) {
        self.armed[rank].store(armed, Ordering::Release);
    }

    /// Whether `rank`'s outgoing traffic currently goes through the plane.
    /// Public so recovery code can save/restore the arming state around a
    /// reliable control phase.
    pub fn is_armed(&self, rank: usize) -> bool {
        self.armed[rank].load(Ordering::Acquire)
    }

    /// The configured seed — the root of every verdict drawn here. Exposed
    /// so derived randomness (retry jitter, experiment shuffles) can be
    /// keyed off the same value and stay replayable.
    pub fn seed(&self) -> u64 {
        self.config.seed
    }

    fn policy(&self, src: usize, dst: usize) -> &ChannelPolicy {
        self.config.channel_policies.get(&(src, dst)).unwrap_or(&self.config.default_policy)
    }

    fn record(&self, event: FaultEvent) {
        self.trace.lock().push(event);
    }

    /// Judges the next message on channel `src → dst`. Returns the verdict
    /// plus any extra visibility delay. Self-messages are never faulted.
    pub fn judge(&self, src: usize, dst: usize) -> (Verdict, Duration) {
        if src == dst || !self.is_armed(src) {
            return (Verdict::Deliver, Duration::ZERO);
        }
        let policy = *self.policy(src, dst);
        if policy.is_reliable() {
            return (Verdict::Deliver, Duration::ZERO);
        }
        let seq = self.chan_seq[src * self.n + dst].fetch_add(1, Ordering::Relaxed);
        // Two independent draws: one for the fate, one for the jitter.
        let key = (src as u64) << 40 ^ (dst as u64) << 20 ^ seq.wrapping_mul(0x9e37);
        let fate = unit(splitmix64(self.config.seed ^ key));
        let jitter_draw = unit(splitmix64(self.config.seed ^ key ^ 0x6a09_e667_f3bc_c909));

        let mut delay = policy.delay;
        if !policy.jitter.is_zero() {
            delay += Duration::from_secs_f64(policy.jitter.as_secs_f64() * jitter_draw);
        }
        let verdict = if fate < policy.drop {
            self.record(FaultEvent { src, dst, seq, kind: FaultKind::Dropped });
            Verdict::Drop
        } else if fate < policy.drop + policy.duplicate {
            self.record(FaultEvent { src, dst, seq, kind: FaultKind::Duplicated });
            Verdict::Duplicate
        } else if fate < policy.drop + policy.duplicate + policy.corrupt {
            self.record(FaultEvent { src, dst, seq, kind: FaultKind::Corrupted });
            Verdict::Corrupt
        } else {
            Verdict::Deliver
        };
        if verdict != Verdict::Drop && !delay.is_zero() {
            self.record(FaultEvent {
                src,
                dst,
                seq,
                kind: FaultKind::Delayed(delay.as_micros() as u64),
            });
        }
        (verdict, delay)
    }

    /// Counts one operation by `rank` against its scheduled death, if any.
    /// Returns the rank to kill when the threshold is crossed (the caller —
    /// `WorldShared` — performs the kill so it can wake blocked receivers).
    /// Ops while disarmed are neither counted nor fatal.
    pub fn note_op(&self, rank: usize) -> Option<u64> {
        if !self.is_armed(rank) {
            return None;
        }
        let deaths: Vec<u64> =
            self.config.deaths.iter().filter(|d| d.rank == rank).map(|d| d.at_op).collect();
        if deaths.is_empty() {
            return None;
        }
        let op = self.rank_ops[rank].fetch_add(1, Ordering::Relaxed);
        if deaths.contains(&op) {
            self.record(FaultEvent { src: rank, dst: rank, seq: op, kind: FaultKind::Death(op) });
            Some(op)
        } else {
            None
        }
    }

    /// The canonical, sorted trace of everything injected so far.
    pub fn trace(&self) -> FaultTrace {
        let mut events = self.trace.lock().clone();
        events.sort_unstable();
        FaultTrace { events }
    }
}

/// Helper shared by the receive paths: the error for a wait on a dead peer.
pub fn peer_dead(local_rank: usize) -> RuntimeError {
    RuntimeError::PeerDead { rank: local_rank }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_policy_never_faults() {
        let fp = FaultPlane::new(
            FaultConfig::reliable(7).with_default_policy(ChannelPolicy::reliable()),
            4,
        );
        for _ in 0..100 {
            assert_eq!(fp.judge(0, 1), (Verdict::Deliver, Duration::ZERO));
        }
        assert!(fp.trace().is_empty());
    }

    #[test]
    fn same_seed_same_verdicts() {
        let mk = || {
            FaultPlane::new(
                FaultConfig::reliable(42).with_default_policy(ChannelPolicy {
                    drop: 0.2,
                    duplicate: 0.2,
                    corrupt: 0.2,
                    delay: Duration::ZERO,
                    jitter: Duration::from_micros(50),
                }),
                3,
            )
        };
        let a = mk();
        let b = mk();
        for _ in 0..200 {
            assert_eq!(a.judge(0, 1), b.judge(0, 1));
            assert_eq!(a.judge(1, 2), b.judge(1, 2));
        }
        assert_eq!(a.trace(), b.trace());
        assert_eq!(a.trace().digest(), b.trace().digest());
        assert!(!a.trace().is_empty(), "a 60% fault rate fired at least once in 400 draws");
    }

    #[test]
    fn different_seeds_diverge() {
        let mk = |seed| {
            FaultPlane::new(
                FaultConfig::reliable(seed).with_default_policy(ChannelPolicy::lossy(0.5)),
                2,
            )
        };
        let a = mk(1);
        let b = mk(2);
        let va: Vec<_> = (0..64).map(|_| a.judge(0, 1).0).collect();
        let vb: Vec<_> = (0..64).map(|_| b.judge(0, 1).0).collect();
        assert_ne!(va, vb, "64 coin flips under different seeds almost surely differ");
    }

    #[test]
    fn interleaving_does_not_change_per_channel_decisions() {
        // Draw channels in different global orders; per-channel sequences
        // are what key the decisions, so each channel's verdict stream is
        // identical either way.
        let mk = || {
            FaultPlane::new(
                FaultConfig::reliable(9).with_default_policy(ChannelPolicy::lossy(0.4)),
                3,
            )
        };
        let a = mk();
        let mut a01 = Vec::new();
        let mut a12 = Vec::new();
        for _ in 0..50 {
            a01.push(a.judge(0, 1).0);
            a12.push(a.judge(1, 2).0);
        }
        let b = mk();
        let mut b12 = Vec::new();
        let mut b01 = Vec::new();
        for _ in 0..50 {
            b12.push(b.judge(1, 2).0);
            b01.push(b.judge(0, 1).0);
        }
        assert_eq!(a01, b01);
        assert_eq!(a12, b12);
        assert_eq!(a.trace(), b.trace(), "sorted traces are interleaving-independent");
    }

    #[test]
    fn self_messages_never_faulted() {
        let fp = FaultPlane::new(
            FaultConfig::reliable(3).with_default_policy(ChannelPolicy::lossy(1.0)),
            2,
        );
        for _ in 0..10 {
            assert_eq!(fp.judge(1, 1).0, Verdict::Deliver);
        }
    }

    #[test]
    fn scheduled_death_fires_once_at_op() {
        let fp = FaultPlane::new(FaultConfig::reliable(0).with_death(1, 2), 2);
        assert_eq!(fp.note_op(1), None); // op 0
        assert_eq!(fp.note_op(1), None); // op 1
        assert_eq!(fp.note_op(1), Some(2)); // op 2: dies
        assert_eq!(fp.note_op(1), None); // already counted past
        assert_eq!(fp.note_op(0), None, "other ranks unaffected");
        let t = fp.trace();
        assert_eq!(t.len(), 1);
        assert_eq!(t.events()[0].kind, FaultKind::Death(2));
    }

    #[test]
    fn liveness_kill_is_idempotent() {
        let l = Liveness::new(3);
        assert!(!l.is_dead(1));
        assert!(l.kill(1));
        assert!(!l.kill(1), "second kill reports already-dead");
        assert!(l.is_dead(1));
        assert_eq!(l.dead_ranks(), vec![1]);
    }

    #[test]
    fn liveness_revive_clears_a_provisional_death() {
        let l = Liveness::new(3);
        assert!(!l.revive(2), "reviving a live rank is a no-op");
        l.kill(2);
        assert!(l.revive(2), "revive reports the rank had been dead");
        assert!(!l.is_dead(2));
        assert!(l.kill(2), "a revived rank can die again for real");
    }

    #[test]
    fn channel_override_beats_default() {
        let fp =
            FaultPlane::new(
                FaultConfig::reliable(5)
                    .with_default_policy(ChannelPolicy::lossy(1.0))
                    .with_channel(0, 1, ChannelPolicy::reliable()),
                2,
            );
        assert_eq!(fp.judge(0, 1).0, Verdict::Deliver, "overridden channel is clean");
        assert_eq!(fp.judge(1, 0).0, Verdict::Drop, "default drops everything");
    }

    #[test]
    fn trace_digest_distinguishes_traces() {
        let a = FaultPlane::new(
            FaultConfig::reliable(1).with_default_policy(ChannelPolicy::lossy(1.0)),
            2,
        );
        a.judge(0, 1);
        let b = FaultPlane::new(
            FaultConfig::reliable(1).with_default_policy(ChannelPolicy::lossy(1.0)),
            2,
        );
        b.judge(0, 1);
        b.judge(0, 1);
        assert_ne!(a.trace().digest(), b.trace().digest());
    }
}
