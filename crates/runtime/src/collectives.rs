//! Collective operations over a [`Comm`].
//!
//! All collectives must be invoked by every member of the communicator in
//! the same order. Internal traffic travels on the communicator's
//! *collective* context (`context + 1`) with tags derived from a per-handle
//! operation counter, so collectives can never be confused with user
//! point-to-point traffic or with each other.
//!
//! Algorithms follow the classic implementations: binomial-tree broadcast
//! and reduce, dissemination barrier, ring allgather, recursive-doubling
//! allreduce (with a reduce+bcast path for large payloads), recursive-halving
//! reduce-scatter, pairwise-offset and Bruck all-to-all, and a linear chain
//! scan. Because the runtime's sends are eager (never block), the simple
//! orderings are deadlock-free.
//!
//! Broadcast-shaped collectives move payloads as [`crate::Payload::Shared`]
//! envelopes: the value is allocated once (`Arc::new`) and every hop forwards
//! another handle, so a p-rank broadcast performs O(1) payload allocations.
//! The `*_shared` variants hand that `Arc` straight to the caller; the owned
//! variants unwrap it copy-on-write.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::comm::Comm;
use crate::envelope::{Envelope, Payload, Src, Tag};
use crate::error::{Result, RuntimeError};
use crate::mailbox::PeerRef;
use crate::msgsize::MsgSize;
use crate::stats::{CollOp, TrafficClass};
use crate::tracing::{coll_algo, ctx_class, record_op_error, tag_arg};
use mxn_trace::{emit_instant, span, EventId, SpanGuard};

/// Payload-size threshold (bytes) at or below which latency-optimal
/// algorithms (e.g. Bruck for the DCA alltoallv) are preferred over
/// bandwidth-optimal ones. Every member must arrive at the same choice, so
/// selection keys on quantities that are identical across ranks (the
/// uniform payload size of a collective, or an agreed-on maximum).
pub const SMALL_COLLECTIVE_BYTES: usize = 4096;

/// ⌈log₂ p⌉ — the round count of the log-depth collectives, precomputable
/// at span begin because it depends only on the communicator size.
fn ceil_log2(p: usize) -> u64 {
    p.max(1).next_power_of_two().trailing_zeros() as u64
}

impl Comm {
    fn coll_context(&self) -> u32 {
        self.context() + 1
    }

    /// Reserves a tag block for the next collective; `round` indexes within.
    fn next_coll_tag(&self) -> i32 {
        let seq = self.coll_seq.get();
        self.coll_seq.set(seq + 1);
        // 2^12 rounds per op, 2^18 ops before wrap: plenty for both the
        // widest ring collectives and long-running benchmark loops.
        ((seq % (1 << 18)) as i32) << 12
    }

    fn coll_send<T: Send + MsgSize + 'static>(
        &self,
        dst: usize,
        tag: i32,
        value: T,
        op: CollOp,
    ) -> Result<()> {
        let bytes = value.msg_size();
        self.shared().stats().record_coll(op, bytes);
        self.push_envelope(
            dst,
            self.coll_context(),
            tag,
            bytes,
            Payload::owned(value),
            None,
            TrafficClass::Collective,
        )
    }

    /// Forwards a shared handle: no payload copy, whatever the fan-out.
    fn coll_send_shared<T: Send + Sync + Clone + 'static>(
        &self,
        dst: usize,
        tag: i32,
        value: Arc<T>,
        bytes: usize,
        op: CollOp,
    ) -> Result<()> {
        self.shared().stats().record_coll(op, bytes);
        self.push_envelope(
            dst,
            self.coll_context(),
            tag,
            bytes,
            Payload::shared(value),
            None,
            TrafficClass::Collective,
        )
    }

    fn coll_peer(&self, src: usize) -> [PeerRef; 1] {
        [PeerRef { global: self.group()[src], local: src }]
    }

    /// One span per collective invocation, opened at entry so the guard
    /// also closes the span on every error return. `args` = `[op, algo,
    /// bytes_hint, rounds]`; all four are deterministic at entry (rounds
    /// depend only on `p`, the bytes hint only on this rank's own input).
    fn coll_span(&self, op: CollOp, algo: u64, bytes: usize, rounds: u64) -> SpanGuard {
        span(EventId::Collective, [op.index() as u64, algo, bytes as u64, rounds])
    }

    /// The collective receive choke point: like `Comm::recv_envelope` it
    /// keeps the two accounting planes consistent (`MailboxMatch` on a
    /// match, [`record_op_error`] on an error return), but deliberately
    /// skips `note_op` — collective ops are counted once on the send side.
    fn coll_take(&self, src: usize, tag: i32, deadline: Option<Instant>) -> Result<Envelope> {
        let mailbox = self.shared().mailbox(self.global_rank());
        let res = match deadline {
            None => mailbox.take(
                self.coll_context(),
                Src::Rank(src),
                Tag::Value(tag),
                &self.coll_peer(src),
            ),
            Some(d) => mailbox.take_timeout(
                self.coll_context(),
                Src::Rank(src),
                Tag::Value(tag),
                d.saturating_duration_since(Instant::now()),
                &self.coll_peer(src),
            ),
        };
        match &res {
            Ok(env) => emit_instant(
                EventId::MailboxMatch,
                [
                    ctx_class(self.coll_context()),
                    tag_arg(env.tag),
                    env.src_local as u64,
                    env.bytes as u64,
                ],
            ),
            Err(e) => record_op_error(self.shared().stats(), e),
        }
        res
    }

    fn coll_recv<T: 'static>(&self, src: usize, tag: i32) -> Result<T> {
        let env = self.coll_take(src, tag, None)?;
        self.downcast::<T>(env).map(|(v, _)| v)
    }

    fn coll_recv_shared<T: Send + Sync + 'static>(&self, src: usize, tag: i32) -> Result<Arc<T>> {
        let env = self.coll_take(src, tag, None)?;
        self.downcast_shared::<T>(env).map(|(v, _)| v)
    }

    /// Like `coll_recv` but gives up after the remaining share of a
    /// deadline, mapping the mailbox timeout to the collective's name.
    fn coll_recv_deadline<T: 'static>(&self, src: usize, tag: i32, deadline: Instant) -> Result<T> {
        let env = self.coll_take(src, tag, Some(deadline))?;
        self.downcast::<T>(env).map(|(v, _)| v)
    }

    /// Copy-on-write unwrap of a collective result, attributing any forced
    /// deep clone to `op`.
    fn unwrap_cow<T: Clone>(&self, arc: Arc<T>, op: CollOp) -> T {
        match Arc::try_unwrap(arc) {
            Ok(v) => v,
            Err(arc) => {
                self.shared().stats().record_coll_clones(op, 1);
                (*arc).clone()
            }
        }
    }

    /// Blocks until every member has entered the barrier.
    ///
    /// Dissemination algorithm: ⌈log₂ p⌉ rounds of pairwise notifications.
    pub fn barrier(&self) -> Result<()> {
        let p = self.size();
        let _span = self.coll_span(CollOp::Barrier, coll_algo::DISSEMINATION, 0, ceil_log2(p));
        let r = self.rank();
        let base = self.next_coll_tag();
        let mut round = 0i32;
        let mut dist = 1usize;
        while dist < p {
            let dst = (r + dist) % p;
            let src = (r + p - dist) % p;
            self.coll_send(dst, base + round, (), CollOp::Barrier)?;
            self.coll_recv::<()>(src, base + round)?;
            dist <<= 1;
            round += 1;
        }
        Ok(())
    }

    /// [`Comm::barrier`] with a deadline over the *whole* operation: if any
    /// round's notification fails to arrive before `timeout` elapses, the
    /// call fails with [`RuntimeError::Timeout`] (or
    /// [`RuntimeError::PeerDead`] when the awaited rank died) instead of
    /// hanging. The primitive for robust phase synchronization between
    /// coupled components.
    pub fn barrier_timeout(&self, timeout: Duration) -> Result<()> {
        let deadline = Instant::now() + timeout;
        let p = self.size();
        let _span = self.coll_span(CollOp::Barrier, coll_algo::DISSEMINATION, 0, ceil_log2(p));
        let r = self.rank();
        let base = self.next_coll_tag();
        let mut round = 0i32;
        let mut dist = 1usize;
        while dist < p {
            let dst = (r + dist) % p;
            let src = (r + p - dist) % p;
            self.coll_send(dst, base + round, (), CollOp::Barrier)?;
            self.coll_recv_deadline::<()>(src, base + round, deadline)?;
            dist <<= 1;
            round += 1;
        }
        Ok(())
    }

    /// Broadcasts `root`'s value to every member. `root` must pass
    /// `Some(value)`; all other ranks pass `None` and receive the value.
    ///
    /// Binomial tree over one shared payload: ⌈log₂ p⌉ hops on the critical
    /// path, exactly p−1 messages, and a single payload allocation
    /// regardless of p. Each receiver unwraps copy-on-write: leaves get the
    /// value without any copy once their subtree's handles drop.
    pub fn bcast<T: Clone + Send + Sync + MsgSize + 'static>(
        &self,
        root: usize,
        value: Option<T>,
    ) -> Result<T> {
        let bytes = value.as_ref().map_or(0, MsgSize::msg_size);
        let _span = self.coll_span(
            CollOp::Bcast,
            coll_algo::BINOMIAL_SHARED,
            bytes,
            ceil_log2(self.size()),
        );
        let arc = self.bcast_shared_as(root, value, CollOp::Bcast)?;
        Ok(self.unwrap_cow(arc, CollOp::Bcast))
    }

    /// The zero-clone broadcast: like [`Comm::bcast`], but every member
    /// receives an `Arc` handle to the *same* allocation — no payload is
    /// ever deep-copied, whatever the communicator size.
    pub fn bcast_shared<T: Clone + Send + Sync + MsgSize + 'static>(
        &self,
        root: usize,
        value: Option<T>,
    ) -> Result<Arc<T>> {
        let bytes = value.as_ref().map_or(0, MsgSize::msg_size);
        let _span = self.coll_span(
            CollOp::Bcast,
            coll_algo::BINOMIAL_SHARED,
            bytes,
            ceil_log2(self.size()),
        );
        self.bcast_shared_as(root, value, CollOp::Bcast)
    }

    fn bcast_shared_as<T: Clone + Send + Sync + MsgSize + 'static>(
        &self,
        root: usize,
        value: Option<T>,
        op: CollOp,
    ) -> Result<Arc<T>> {
        let p = self.size();
        if root >= p {
            return Err(RuntimeError::InvalidRank { rank: root, size: p });
        }
        let base = self.next_coll_tag();
        let rel = (self.rank() + p - root) % p;

        let mut value: Option<Arc<T>> = if rel == 0 {
            let v = value.ok_or_else(|| RuntimeError::CollectiveMismatch {
                detail: "bcast root passed None".into(),
            })?;
            // The broadcast's single payload allocation.
            self.shared().stats().record_coll_allocs(op, 1);
            Some(Arc::new(v))
        } else {
            None
        };

        // Receive phase: find the bit that identifies my parent.
        let mut mask = 1usize;
        while mask < p {
            if rel & mask != 0 {
                let parent = ((rel - mask) + root) % p;
                value = Some(self.coll_recv_shared::<T>(parent, base)?);
                break;
            }
            mask <<= 1;
        }
        // Send phase: forward handles to children below my identifying bit.
        let v = value.expect("bcast value present after receive phase");
        let bytes = v.msg_size();
        mask >>= 1;
        while mask > 0 {
            if rel & mask == 0 && rel + mask < p {
                let child = (rel + mask + root) % p;
                self.coll_send_shared(child, base, Arc::clone(&v), bytes, op)?;
            }
            mask >>= 1;
        }
        Ok(v)
    }

    /// Clone-per-child broadcast over the same binomial tree, retained as
    /// the baseline the zero-clone path is compared against (see the
    /// `runtime_collectives` bench): identical message count, but every
    /// parent deep-copies the payload once per child — O(p) copies total,
    /// serialized on the interior ranks.
    pub fn bcast_cloning<T: Clone + Send + MsgSize + 'static>(
        &self,
        root: usize,
        value: Option<T>,
    ) -> Result<T> {
        let p = self.size();
        let bytes = value.as_ref().map_or(0, MsgSize::msg_size);
        let _span = self.coll_span(CollOp::Bcast, coll_algo::BINOMIAL_CLONING, bytes, ceil_log2(p));
        if root >= p {
            return Err(RuntimeError::InvalidRank { rank: root, size: p });
        }
        let base = self.next_coll_tag();
        let rel = (self.rank() + p - root) % p;

        let mut value = if rel == 0 {
            Some(value.ok_or_else(|| RuntimeError::CollectiveMismatch {
                detail: "bcast root passed None".into(),
            })?)
        } else {
            None
        };

        let mut mask = 1usize;
        while mask < p {
            if rel & mask != 0 {
                let parent = ((rel - mask) + root) % p;
                value = Some(self.coll_recv::<T>(parent, base)?);
                break;
            }
            mask <<= 1;
        }
        let v = value.expect("bcast value present after receive phase");
        mask >>= 1;
        while mask > 0 {
            if rel & mask == 0 && rel + mask < p {
                let child = (rel + mask + root) % p;
                self.shared().stats().record_coll_clones(CollOp::Bcast, 1);
                self.coll_send(child, base, v.clone(), CollOp::Bcast)?;
            }
            mask >>= 1;
        }
        Ok(v)
    }

    /// Gathers one value from every member at `root` (rank order).
    /// Non-roots receive `None`.
    pub fn gather<T: Send + MsgSize + 'static>(
        &self,
        root: usize,
        value: T,
    ) -> Result<Option<Vec<T>>> {
        let p = self.size();
        let _span =
            self.coll_span(CollOp::Gather, coll_algo::LINEAR, value.msg_size(), (p as u64) - 1);
        if root >= p {
            return Err(RuntimeError::InvalidRank { rank: root, size: p });
        }
        let base = self.next_coll_tag();
        if self.rank() == root {
            let mut out: Vec<Option<T>> = (0..p).map(|_| None).collect();
            out[root] = Some(value);
            let peers = self.peers_of(Src::Any);
            for _ in 0..p - 1 {
                let res = self.shared().mailbox(self.global_rank()).take(
                    self.coll_context(),
                    Src::Any,
                    Tag::Value(base),
                    &peers,
                );
                let env = match res {
                    Ok(env) => {
                        emit_instant(
                            EventId::MailboxMatch,
                            [
                                ctx_class(self.coll_context()),
                                tag_arg(env.tag),
                                env.src_local as u64,
                                env.bytes as u64,
                            ],
                        );
                        env
                    }
                    Err(e) => {
                        record_op_error(self.shared().stats(), &e);
                        return Err(e);
                    }
                };
                let (v, info) = self.downcast::<T>(env)?;
                out[info.src] = Some(v);
            }
            Ok(Some(out.into_iter().map(|o| o.expect("every rank contributed")).collect()))
        } else {
            self.coll_send(root, base, value, CollOp::Gather)?;
            Ok(None)
        }
    }

    /// Gathers one value from every member at *every* member.
    ///
    /// Ring over shared envelopes: p−1 steps per rank, each member forwards
    /// a *handle* to the block it just received, so every block is allocated
    /// exactly once however many ranks end up holding it. The owned result
    /// unwraps each block copy-on-write.
    pub fn allgather<T: Clone + Send + Sync + MsgSize + 'static>(
        &self,
        value: T,
    ) -> Result<Vec<T>> {
        let _span = self.coll_span(
            CollOp::Allgather,
            coll_algo::RING,
            value.msg_size(),
            (self.size() as u64) - 1,
        );
        let shared = self.allgather_shared_inner(value)?;
        Ok(shared.into_iter().map(|arc| self.unwrap_cow(arc, CollOp::Allgather)).collect())
    }

    /// The zero-clone allgather: every member receives `Arc` handles to the
    /// p shared block allocations (one per contributor).
    pub fn allgather_shared<T: Clone + Send + Sync + MsgSize + 'static>(
        &self,
        value: T,
    ) -> Result<Vec<Arc<T>>> {
        let _span = self.coll_span(
            CollOp::Allgather,
            coll_algo::RING,
            value.msg_size(),
            (self.size() as u64) - 1,
        );
        self.allgather_shared_inner(value)
    }

    fn allgather_shared_inner<T: Clone + Send + Sync + MsgSize + 'static>(
        &self,
        value: T,
    ) -> Result<Vec<Arc<T>>> {
        let p = self.size();
        let r = self.rank();
        let base = self.next_coll_tag();
        let mut out: Vec<Option<Arc<T>>> = (0..p).map(|_| None).collect();
        // My contribution: the one allocation this rank makes.
        self.shared().stats().record_coll_allocs(CollOp::Allgather, 1);
        out[r] = Some(Arc::new(value));

        let next = (r + 1) % p;
        let prev = (r + p - 1) % p;
        // At step s we forward the block that originated at (r - s) mod p.
        for s in 0..p.saturating_sub(1) {
            let send_origin = (r + p - s) % p;
            let block = Arc::clone(out[send_origin].as_ref().expect("block present by induction"));
            let bytes = block.msg_size();
            self.coll_send_shared(next, base + s as i32, block, bytes, CollOp::Allgather)?;
            let recv_origin = (prev + p - s) % p;
            out[recv_origin] = Some(self.coll_recv_shared::<T>(prev, base + s as i32)?);
        }
        Ok(out.into_iter().map(|o| o.expect("ring delivered all blocks")).collect())
    }

    /// Distributes `root`'s `values` (one per member, rank order); returns
    /// this member's element. Non-roots pass `None`.
    pub fn scatter<T: Send + MsgSize + 'static>(
        &self,
        root: usize,
        values: Option<Vec<T>>,
    ) -> Result<T> {
        let bytes = values.as_ref().map_or(0, MsgSize::msg_size);
        let _span =
            self.coll_span(CollOp::Scatter, coll_algo::LINEAR, bytes, (self.size() as u64) - 1);
        self.scatter_as(root, values, CollOp::Scatter)
    }

    fn scatter_as<T: Send + MsgSize + 'static>(
        &self,
        root: usize,
        values: Option<Vec<T>>,
        op: CollOp,
    ) -> Result<T> {
        let p = self.size();
        if root >= p {
            return Err(RuntimeError::InvalidRank { rank: root, size: p });
        }
        let base = self.next_coll_tag();
        if self.rank() == root {
            let values = values.ok_or_else(|| RuntimeError::CollectiveMismatch {
                detail: "scatter root passed None".into(),
            })?;
            if values.len() != p {
                return Err(RuntimeError::CollectiveMismatch {
                    detail: format!("scatter got {} values for {} ranks", values.len(), p),
                });
            }
            let mut mine = None;
            for (dst, v) in values.into_iter().enumerate() {
                if dst == root {
                    mine = Some(v);
                } else {
                    self.coll_send(dst, base, v, op)?;
                }
            }
            Ok(mine.expect("root's own element"))
        } else {
            self.coll_recv::<T>(root, base)
        }
    }

    /// Each member provides one value per peer; returns one value from each
    /// peer. `values[i]` goes to rank `i`; result `[i]` came from rank `i`.
    ///
    /// Pairwise-offset exchange: p−1 rounds with distinct partners — the
    /// bandwidth-friendly choice for large blocks. For many small blocks,
    /// [`Comm::alltoall_bruck`] does the same exchange in ⌈log₂ p⌉ rounds.
    pub fn alltoall<T: Send + MsgSize + 'static>(&self, values: Vec<T>) -> Result<Vec<T>> {
        let p = self.size();
        let _span = self.coll_span(
            CollOp::Alltoall,
            coll_algo::PAIRWISE,
            values.msg_size(),
            (p as u64).saturating_sub(1),
        );
        let r = self.rank();
        if values.len() != p {
            return Err(RuntimeError::CollectiveMismatch {
                detail: format!("alltoall got {} values for {} ranks", values.len(), p),
            });
        }
        let base = self.next_coll_tag();
        let mut out: Vec<Option<T>> = (0..p).map(|_| None).collect();
        let mut values: Vec<Option<T>> = values.into_iter().map(Some).collect();
        out[r] = values[r].take();
        for offset in 1..p {
            let dst = (r + offset) % p;
            let src = (r + p - offset) % p;
            let block = values[dst].take().expect("each peer element used once");
            self.coll_send(dst, base, block, CollOp::Alltoall)?;
            out[src] = Some(self.coll_recv::<T>(src, base)?);
        }
        Ok(out.into_iter().map(|o| o.expect("pairwise exchange complete")).collect())
    }

    /// Bruck all-to-all: the same exchange as [`Comm::alltoall`] in
    /// ⌈log₂ p⌉ rounds instead of p−1, at the cost of each block travelling
    /// up to ⌈log₂ p⌉ hops. Latency-optimal for small blocks at large p;
    /// blocks are moved between rounds, never cloned.
    pub fn alltoall_bruck<T: Send + MsgSize + 'static>(&self, values: Vec<T>) -> Result<Vec<T>> {
        const OP: CollOp = CollOp::Alltoall;
        let p = self.size();
        let _span = self.coll_span(OP, coll_algo::BRUCK, values.msg_size(), ceil_log2(p));
        let r = self.rank();
        if values.len() != p {
            return Err(RuntimeError::CollectiveMismatch {
                detail: format!("alltoall got {} values for {} ranks", values.len(), p),
            });
        }
        if p == 1 {
            return Ok(values);
        }
        let base = self.next_coll_tag();
        // Local rotation: slot i holds the block destined for rank (r+i)%p.
        let mut staged: Vec<Option<T>> = values.into_iter().map(Some).collect();
        let mut slots: Vec<Option<T>> = (0..p).map(|i| staged[(r + i) % p].take()).collect();

        // Round j moves every slot with bit j set forward by 2^j ranks; a
        // block at slot i therefore travels a total distance of i, landing
        // at its destination with all bits consumed.
        let mut k = 1usize;
        let mut round = 0i32;
        while k < p {
            let dst = (r + k) % p;
            let src = (r + p - k) % p;
            let idxs: Vec<usize> = (0..p).filter(|i| i & k != 0).collect();
            let outgoing: Vec<T> =
                idxs.iter().map(|&i| slots[i].take().expect("slot occupied")).collect();
            self.coll_send(dst, base + round, outgoing, OP)?;
            let incoming: Vec<T> = self.coll_recv(src, base + round)?;
            if incoming.len() != idxs.len() {
                return Err(RuntimeError::CollectiveMismatch {
                    detail: format!(
                        "bruck round {round}: got {} blocks, expected {}",
                        incoming.len(),
                        idxs.len()
                    ),
                });
            }
            for (&i, v) in idxs.iter().zip(incoming) {
                slots[i] = Some(v);
            }
            k <<= 1;
            round += 1;
        }
        // Inverse rotation: slot i now holds the block from rank (r-i)%p.
        let mut out: Vec<Option<T>> = (0..p).map(|_| None).collect();
        for (i, slot) in slots.iter_mut().enumerate() {
            out[(r + p - i) % p] = slot.take();
        }
        Ok(out.into_iter().map(|o| o.expect("bruck delivered all blocks")).collect())
    }

    /// Variable-size all-to-all: `chunks[i]` (possibly empty) goes to rank
    /// `i`; returns the chunks received from each rank. This is the
    /// primitive DCA's redistribution layer is built on. Callers that can
    /// agree on a size bound across ranks may use [`Comm::alltoall_bruck`]
    /// directly for the small-message regime.
    pub fn alltoallv<T: Send + MsgSize + 'static>(
        &self,
        chunks: Vec<Vec<T>>,
    ) -> Result<Vec<Vec<T>>> {
        self.alltoall(chunks)
    }

    /// Reduces all members' values to `root` with the associative `op`
    /// (applied as `op(&mut acc, incoming)`); non-roots receive `None`.
    ///
    /// Binomial tree combine; `op` is applied in deterministic child order
    /// and partial results move up the tree without cloning.
    pub fn reduce<T, F>(&self, root: usize, value: T, op: F) -> Result<Option<T>>
    where
        T: Send + MsgSize + 'static,
        F: Fn(&mut T, T),
    {
        let _span = self.coll_span(
            CollOp::Reduce,
            coll_algo::BINOMIAL_SHARED,
            value.msg_size(),
            ceil_log2(self.size()),
        );
        self.reduce_as(root, value, op, CollOp::Reduce)
    }

    fn reduce_as<T, F>(&self, root: usize, value: T, op: F, coll: CollOp) -> Result<Option<T>>
    where
        T: Send + MsgSize + 'static,
        F: Fn(&mut T, T),
    {
        let p = self.size();
        if root >= p {
            return Err(RuntimeError::InvalidRank { rank: root, size: p });
        }
        let base = self.next_coll_tag();
        let rel = (self.rank() + p - root) % p;
        let mut acc = value;
        let mut mask = 1usize;
        loop {
            if rel & mask != 0 {
                // I have a parent: send my partial result up.
                let parent = ((rel - mask) + root) % p;
                self.coll_send(parent, base, acc, coll)?;
                return Ok(None);
            }
            if rel + mask < p {
                let child = (rel + mask + root) % p;
                let incoming = self.coll_recv::<T>(child, base)?;
                op(&mut acc, incoming);
            }
            mask <<= 1;
            if mask >= p {
                break;
            }
        }
        Ok(Some(acc))
    }

    /// Every member receives `op` folded over all members' values.
    ///
    /// One algorithm at every size: binomial reduce — partials are *moved*
    /// up the tree and folded in place, never cloned — followed by the
    /// zero-clone shared broadcast (one allocation, `Arc` handles fanned
    /// out). This replaced recursive doubling for small payloads: RD's
    /// owned-message exchange rounds force every rank to clone its
    /// accumulator once per round (both partners need both values, so the
    /// copy is inherent to the algorithm, not the transport) — p·⌈log₂ p⌉
    /// deep copies and messages per op, 2048 of each at p=256. Reduce+bcast
    /// doubles the critical-path round count to 2⌈log₂ p⌉ but sends only
    /// 2(p−1) messages and copies nothing in the reduce phase (the shared
    /// bcast's final unwrap still costs one clone per non-root rank), which
    /// wins outright in this runtime where per-message cost dominates
    /// (BENCH_runtime.json allreduce cells vs the last recursive-doubling
    /// run: 1.5x at p=16, 2.4x at p=64, 2.8x at p=256, all at 1KiB).
    pub fn allreduce<T, F>(&self, value: T, op: F) -> Result<T>
    where
        T: Clone + Send + Sync + MsgSize + 'static,
        F: Fn(&mut T, T),
    {
        let p = self.size();
        if p == 1 {
            return Ok(value);
        }
        let bytes = value.msg_size();
        let _span =
            self.coll_span(CollOp::Allreduce, coll_algo::REDUCE_BCAST, bytes, 2 * ceil_log2(p));
        let reduced = self.reduce_as(0, value, op, CollOp::Allreduce)?;
        let arc = self.bcast_shared_as(0, reduced, CollOp::Allreduce)?;
        Ok(self.unwrap_cow(arc, CollOp::Allreduce))
    }

    /// Reduces `values` (one block per member, rank order) element-wise and
    /// scatters the result: rank `r` receives the reduction of every
    /// member's `values[r]`.
    ///
    /// Power-of-two sizes use recursive halving: each round a rank sends
    /// the half of its remaining blocks the partner is responsible for (the
    /// blocks are *moved* into the message — no clones) and folds the
    /// incoming half into its own; ⌈log₂ p⌉ messages per rank, halving in
    /// volume each round. Other sizes fall back to a binomial vector reduce
    /// followed by a scatter.
    pub fn reduce_scatter<T, F>(&self, values: Vec<T>, op: F) -> Result<T>
    where
        T: Send + MsgSize + 'static,
        F: Fn(&mut T, T),
    {
        const OP: CollOp = CollOp::ReduceScatter;
        let p = self.size();
        let r = self.rank();
        if values.len() != p {
            return Err(RuntimeError::CollectiveMismatch {
                detail: format!("reduce_scatter got {} values for {} ranks", values.len(), p),
            });
        }
        if p == 1 {
            return Ok(values.into_iter().next().expect("one block for one rank"));
        }
        let algo =
            if p.is_power_of_two() { coll_algo::RECURSIVE_HALVING } else { coll_algo::LINEAR };
        let _span = self.coll_span(OP, algo, values.msg_size(), ceil_log2(p));
        if !p.is_power_of_two() {
            let reduced = self.reduce_as(
                0,
                values,
                |acc: &mut Vec<T>, incoming: Vec<T>| {
                    for (a, b) in acc.iter_mut().zip(incoming) {
                        op(a, b);
                    }
                },
                OP,
            )?;
            return self.scatter_as(0, reduced, OP);
        }

        let base = self.next_coll_tag();
        let mut blocks: Vec<Option<T>> = values.into_iter().map(Some).collect();
        let (mut lo, mut hi) = (0usize, p);
        let mut round = 0i32;
        while hi - lo > 1 {
            let half = (hi - lo) / 2;
            let mid = lo + half;
            let (partner, send_lo, send_hi, keep_lo, keep_hi) =
                if r < mid { (r + half, mid, hi, lo, mid) } else { (r - half, lo, mid, mid, hi) };
            let outgoing: Vec<T> =
                (send_lo..send_hi).map(|i| blocks[i].take().expect("unsent block")).collect();
            self.coll_send(partner, base + round, outgoing, OP)?;
            let incoming: Vec<T> = self.coll_recv(partner, base + round)?;
            if incoming.len() != keep_hi - keep_lo {
                return Err(RuntimeError::CollectiveMismatch {
                    detail: format!(
                        "reduce_scatter round {round}: got {} blocks, expected {}",
                        incoming.len(),
                        keep_hi - keep_lo
                    ),
                });
            }
            for (i, v) in (keep_lo..keep_hi).zip(incoming) {
                let acc = blocks[i].as_mut().expect("kept block");
                if partner < r {
                    let mine = std::mem::replace(acc, v);
                    op(acc, mine);
                } else {
                    op(acc, v);
                }
            }
            lo = keep_lo;
            hi = keep_hi;
            round += 1;
        }
        Ok(blocks[r].take().expect("own block fully reduced"))
    }

    /// Inclusive prefix reduction: rank r receives `op` applied to the
    /// values of ranks `0..=r`. Linear chain.
    pub fn scan<T, F>(&self, value: T, op: F) -> Result<T>
    where
        T: Clone + Send + MsgSize + 'static,
        F: Fn(&mut T, T),
    {
        let p = self.size();
        let _span = self.coll_span(
            CollOp::Scan,
            coll_algo::LINEAR,
            value.msg_size(),
            (p as u64).saturating_sub(1),
        );
        let r = self.rank();
        let base = self.next_coll_tag();
        let mut acc = value;
        if r > 0 {
            let prefix = self.coll_recv::<T>(r - 1, base)?;
            let mine = std::mem::replace(&mut acc, prefix);
            op(&mut acc, mine);
        }
        if r + 1 < p {
            self.shared().stats().record_coll_clones(CollOp::Scan, 1);
            self.coll_send(r + 1, base, acc.clone(), CollOp::Scan)?;
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn barrier_orders_phases() {
        // Every rank increments before the barrier; after it, all see n.
        for p in [1, 2, 3, 4, 7, 8] {
            let counter = Arc::new(AtomicUsize::new(0));
            let c2 = counter.clone();
            World::run(p, move |proc| {
                let c = proc.world();
                c2.fetch_add(1, Ordering::SeqCst);
                c.barrier().unwrap();
                assert_eq!(c2.load(Ordering::SeqCst), p);
            });
        }
    }

    #[test]
    fn barrier_timeout_passes_when_all_arrive() {
        World::run(4, |proc| {
            proc.world().barrier_timeout(Duration::from_secs(5)).unwrap();
        });
    }

    #[test]
    fn barrier_timeout_detects_missing_rank() {
        // Rank 0 never enters the barrier; everyone else must time out
        // rather than hang.
        World::run(3, |proc| {
            let c = proc.world();
            if c.rank() != 0 {
                let e = c.barrier_timeout(Duration::from_millis(50)).unwrap_err();
                assert!(e.is_failure_detection(), "got {e}");
            }
        });
    }

    #[test]
    fn bcast_from_every_root() {
        for p in [1, 2, 3, 5, 8] {
            for root in 0..p {
                World::run(p, move |proc| {
                    let c = proc.world();
                    let v = if c.rank() == root { Some(vec![root as u64; 3]) } else { None };
                    let got = c.bcast(root, v).unwrap();
                    assert_eq!(got, vec![root as u64; 3]);
                });
            }
        }
    }

    #[test]
    fn bcast_cloning_from_every_root() {
        for p in [1, 2, 3, 5, 8] {
            for root in 0..p {
                World::run(p, move |proc| {
                    let c = proc.world();
                    let v = if c.rank() == root { Some(vec![root as u64; 3]) } else { None };
                    assert_eq!(c.bcast_cloning(root, v).unwrap(), vec![root as u64; 3]);
                });
            }
        }
    }

    #[test]
    fn bcast_shared_hands_out_one_allocation() {
        let (results, stats) = World::run_with_stats(8, |proc| {
            let c = proc.world();
            let v = if c.rank() == 0 { Some(vec![3.25f64; 64]) } else { None };
            let arc = c.bcast_shared(0, v).unwrap();
            assert_eq!(*arc, vec![3.25; 64]);
            Arc::as_ptr(&arc) as usize
        });
        assert!(results.windows(2).all(|w| w[0] == w[1]), "all ranks see the same allocation");
        let bcast = stats.coll(crate::stats::CollOp::Bcast);
        assert_eq!(bcast.messages, 7, "bcast sends exactly p-1 messages");
        assert_eq!(bcast.payload_allocs, 1, "one allocation regardless of p");
        assert_eq!(bcast.payload_clones, 0, "shared broadcast never deep-copies");
    }

    #[test]
    fn bcast_invalid_root() {
        World::run(2, |p| {
            let c = p.world();
            assert!(matches!(
                c.bcast::<u8>(9, Some(0)),
                Err(RuntimeError::InvalidRank { rank: 9, .. })
            ));
        });
    }

    #[test]
    fn gather_collects_in_rank_order() {
        for p in [1, 2, 4, 6] {
            World::run(p, move |proc| {
                let c = proc.world();
                let got = c.gather(0, c.rank() as u32 * 10).unwrap();
                if c.rank() == 0 {
                    let expect: Vec<u32> = (0..p as u32).map(|r| r * 10).collect();
                    assert_eq!(got.unwrap(), expect);
                } else {
                    assert!(got.is_none());
                }
            });
        }
    }

    #[test]
    fn allgather_ring() {
        for p in [1, 2, 3, 4, 8] {
            World::run(p, move |proc| {
                let c = proc.world();
                let got = c.allgather(format!("r{}", c.rank())).unwrap();
                let expect: Vec<String> = (0..p).map(|r| format!("r{r}")).collect();
                assert_eq!(got, expect);
            });
        }
    }

    #[test]
    fn allgather_shared_allocates_once_per_contributor() {
        let (_, stats) = World::run_with_stats(4, |proc| {
            let c = proc.world();
            let got = c.allgather_shared(vec![c.rank() as u32; 8]).unwrap();
            for (r, arc) in got.iter().enumerate() {
                assert_eq!(**arc, vec![r as u32; 8]);
            }
        });
        let ag = stats.coll(crate::stats::CollOp::Allgather);
        assert_eq!(ag.messages, 4 * 3, "ring sends p-1 messages per rank");
        assert_eq!(ag.payload_allocs, 4, "one allocation per contributed block");
        assert_eq!(ag.payload_clones, 0);
    }

    #[test]
    fn scatter_distributes() {
        for root in 0..3 {
            World::run(3, move |proc| {
                let c = proc.world();
                let v = if c.rank() == root { Some(vec![10u8, 20, 30]) } else { None };
                assert_eq!(c.scatter(root, v).unwrap(), (c.rank() as u8 + 1) * 10);
            });
        }
    }

    #[test]
    fn scatter_wrong_count_errors() {
        World::run(2, |p| {
            let c = p.world();
            if c.rank() == 0 {
                let e = c.scatter(0, Some(vec![1u8])).unwrap_err();
                assert!(matches!(e, RuntimeError::CollectiveMismatch { .. }));
            }
            // Rank 1 would block forever; don't call on rank 1.
        });
    }

    #[test]
    fn alltoall_transpose() {
        for p in [1, 2, 3, 5] {
            World::run(p, move |proc| {
                let c = proc.world();
                let vals: Vec<u64> = (0..p).map(|d| (c.rank() * 100 + d) as u64).collect();
                let got = c.alltoall(vals).unwrap();
                let expect: Vec<u64> = (0..p).map(|s| (s * 100 + c.rank()) as u64).collect();
                assert_eq!(got, expect);
            });
        }
    }

    #[test]
    fn alltoall_bruck_matches_pairwise() {
        for p in [1, 2, 3, 4, 5, 6, 7, 8] {
            World::run(p, move |proc| {
                let c = proc.world();
                let vals: Vec<u64> = (0..p).map(|d| (c.rank() * 100 + d) as u64).collect();
                let got = c.alltoall_bruck(vals).unwrap();
                let expect: Vec<u64> = (0..p).map(|s| (s * 100 + c.rank()) as u64).collect();
                assert_eq!(got, expect);
            });
        }
    }

    #[test]
    fn alltoall_bruck_uses_logarithmic_rounds() {
        let (_, stats) = World::run_with_stats(8, |proc| {
            let c = proc.world();
            let vals: Vec<u64> = (0..8).map(|d| (c.rank() * 10 + d) as u64).collect();
            c.alltoall_bruck(vals).unwrap();
        });
        // ceil(log2 8) = 3 bundled messages per rank, vs 7 pairwise.
        assert_eq!(stats.coll(crate::stats::CollOp::Alltoall).messages, 8 * 3);
    }

    #[test]
    fn alltoallv_uneven_chunks() {
        World::run(3, |proc| {
            let c = proc.world();
            let r = c.rank();
            // Rank r sends r copies of its rank id to each peer.
            let chunks: Vec<Vec<usize>> = (0..3).map(|_| vec![r; r]).collect();
            let got = c.alltoallv(chunks).unwrap();
            for (s, chunk) in got.iter().enumerate() {
                assert_eq!(chunk, &vec![s; s]);
            }
        });
    }

    #[test]
    fn reduce_sum_every_root() {
        for p in [1, 2, 3, 4, 8] {
            for root in 0..p {
                World::run(p, move |proc| {
                    let c = proc.world();
                    let got = c.reduce(root, c.rank() as u64 + 1, |a, b| *a += b).unwrap();
                    if c.rank() == root {
                        assert_eq!(got.unwrap(), (p * (p + 1) / 2) as u64);
                    } else {
                        assert!(got.is_none());
                    }
                });
            }
        }
    }

    #[test]
    fn allreduce_max() {
        World::run(5, |proc| {
            let c = proc.world();
            let got = c.allreduce(c.rank() as i64 * 7, |a, b| *a = (*a).max(b)).unwrap();
            assert_eq!(got, 28);
        });
    }

    #[test]
    fn allreduce_small_and_large_payloads_agree() {
        // Every payload size takes reduce+bcast; both a scalar and a bulk
        // vector must produce the fold of every rank's value, at every size
        // (power of two or not).
        for p in [1, 2, 3, 4, 5, 6, 7, 8, 9] {
            World::run(p, move |proc| {
                let c = proc.world();
                let r = c.rank() as u64;
                let small = c.allreduce(r + 1, |a, b| *a += b).unwrap();
                assert_eq!(small, (p * (p + 1) / 2) as u64, "scalar at p={p}");
                let big = c
                    .allreduce(vec![r as f64; 1024], |a, b| {
                        for (x, y) in a.iter_mut().zip(b) {
                            *x += y;
                        }
                    })
                    .unwrap();
                let expect = (p * (p - 1) / 2) as f64;
                assert!(big.iter().all(|&x| x == expect), "bulk at p={p}");
            });
        }
    }

    #[test]
    fn allreduce_message_complexity_and_zero_clones() {
        // Reduce (p-1 moved partials) + shared bcast (p-1 Arc handles):
        // 2(p-1) messages total, no payload deep copies, one allocation.
        let (_, stats) = World::run_with_stats(8, |proc| {
            proc.world().allreduce(1u64, |a, b| *a += b).unwrap();
        });
        let cell = stats.coll(crate::stats::CollOp::Allreduce);
        assert_eq!(cell.messages, 2 * (8 - 1));
        // The algorithm itself never clones (partials move and fold in
        // place); the only copies are COW unwraps of the shared broadcast
        // result when handles race — bounded by p, vs p·log₂p (24) for the
        // recursive doubling this replaced.
        assert!(cell.payload_clones <= 8, "got {}", cell.payload_clones);
        assert_eq!(cell.payload_allocs, 1, "the bcast's single shared allocation");
    }

    #[test]
    fn reduce_scatter_power_of_two() {
        for p in [1, 2, 4, 8] {
            World::run(p, move |proc| {
                let c = proc.world();
                let r = c.rank();
                // Block destined for rank d carries r*100 + d.
                let blocks: Vec<u64> = (0..p).map(|d| (r * 100 + d) as u64).collect();
                let got = c.reduce_scatter(blocks, |a, b| *a += b).unwrap();
                let expect: u64 = (0..p).map(|s| (s * 100 + r) as u64).sum();
                assert_eq!(got, expect);
            });
        }
    }

    #[test]
    fn reduce_scatter_fallback_sizes() {
        for p in [3, 5, 6, 7] {
            World::run(p, move |proc| {
                let c = proc.world();
                let r = c.rank();
                let blocks: Vec<u64> = (0..p).map(|d| (r * 100 + d) as u64).collect();
                let got = c.reduce_scatter(blocks, |a, b| *a += b).unwrap();
                let expect: u64 = (0..p).map(|s| (s * 100 + r) as u64).sum();
                assert_eq!(got, expect);
            });
        }
    }

    #[test]
    fn reduce_scatter_wrong_count_errors() {
        World::run(2, |proc| {
            let c = proc.world();
            if c.rank() == 0 {
                let e = c.reduce_scatter(vec![1u8], |a, b| *a += b).unwrap_err();
                assert!(matches!(e, RuntimeError::CollectiveMismatch { .. }));
            }
        });
    }

    #[test]
    fn reduce_scatter_moves_blocks_without_cloning() {
        let (_, stats) = World::run_with_stats(8, |proc| {
            let c = proc.world();
            let blocks: Vec<u64> = (0..8).map(|d| d as u64).collect();
            c.reduce_scatter(blocks, |a, b| *a += b).unwrap();
        });
        let rs = stats.coll(crate::stats::CollOp::ReduceScatter);
        assert_eq!(rs.messages, 8 * 3, "log2(p) halving rounds per rank");
        assert_eq!(rs.payload_clones, 0, "recursive halving moves every block");
    }

    #[test]
    fn scan_prefix_sums() {
        World::run(6, |proc| {
            let c = proc.world();
            let got = c.scan(c.rank() as u64 + 1, |a, b| *a += b).unwrap();
            let r = c.rank() as u64 + 1;
            assert_eq!(got, r * (r + 1) / 2);
        });
    }

    #[test]
    fn collectives_back_to_back_do_not_cross_talk() {
        World::run(4, |proc| {
            let c = proc.world();
            for i in 0..20u64 {
                let s = c.allreduce(i, |a, b| *a += b).unwrap();
                assert_eq!(s, i * 4);
                let g = c.allgather(i + c.rank() as u64).unwrap();
                assert_eq!(g, (0..4).map(|r| i + r).collect::<Vec<_>>());
            }
        });
    }

    #[test]
    fn collectives_on_subcommunicator() {
        World::run(6, |proc| {
            let c = proc.world();
            let sub = c.split((c.rank() % 2) as i64, 0).unwrap().unwrap();
            let sum: usize = sub.allreduce(c.rank(), |a, b| *a += b).unwrap();
            let expect = if c.rank() % 2 == 0 { 2 + 4 } else { 1 + 3 + 5 };
            assert_eq!(sum, expect);
        });
    }

    #[test]
    fn collective_traffic_is_classified() {
        let (_, stats) = World::run_with_stats(4, |proc| {
            proc.world().barrier().unwrap();
        });
        assert_eq!(stats.p2p_messages, 0);
        assert!(stats.collective_messages > 0);
        // Per-op attribution agrees with the aggregate.
        let barrier = stats.coll(crate::stats::CollOp::Barrier);
        assert_eq!(barrier.messages, stats.collective_messages);
        assert_eq!(barrier.messages, 4 * 2, "dissemination: ceil(log2 4) rounds per rank");
    }
}
