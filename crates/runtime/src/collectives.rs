//! Collective operations over a [`Comm`].
//!
//! All collectives must be invoked by every member of the communicator in
//! the same order. Internal traffic travels on the communicator's
//! *collective* context (`context + 1`) with tags derived from a per-handle
//! operation counter, so collectives can never be confused with user
//! point-to-point traffic or with each other.
//!
//! Algorithms follow the classic implementations: binomial-tree broadcast
//! and reduce, dissemination barrier, ring allgather, pairwise-offset
//! all-to-all, and a linear chain scan. Because the runtime's sends are
//! eager (never block), the simple orderings are deadlock-free.

use std::time::{Duration, Instant};

use crate::comm::Comm;
use crate::envelope::{Src, Tag};
use crate::error::{Result, RuntimeError};
use crate::mailbox::PeerRef;
use crate::msgsize::MsgSize;
use crate::stats::TrafficClass;

impl Comm {
    fn coll_context(&self) -> u32 {
        self.context() + 1
    }

    /// Reserves a tag block for the next collective; `round` indexes within.
    fn next_coll_tag(&self) -> i32 {
        let seq = self.coll_seq.get();
        self.coll_seq.set(seq + 1);
        // 2^12 rounds per op, 2^18 ops before wrap: plenty for both the
        // widest ring collectives and long-running benchmark loops.
        ((seq % (1 << 18)) as i32) << 12
    }

    fn coll_send<T: Send + MsgSize + 'static>(&self, dst: usize, tag: i32, value: T) -> Result<()> {
        let bytes = value.msg_size();
        self.push_envelope(
            dst,
            self.coll_context(),
            tag,
            bytes,
            Box::new(value),
            None,
            TrafficClass::Collective,
        )
    }

    fn coll_peer(&self, src: usize) -> [PeerRef; 1] {
        [PeerRef { global: self.group()[src], local: src }]
    }

    fn coll_recv<T: 'static>(&self, src: usize, tag: i32) -> Result<T> {
        let env = self.shared().mailbox(self.global_rank()).take(
            self.coll_context(),
            Src::Rank(src),
            Tag::Value(tag),
            &self.coll_peer(src),
        )?;
        Self::downcast::<T>(env).map(|(v, _)| v)
    }

    /// Like `coll_recv` but gives up after the remaining share of a
    /// deadline, mapping the mailbox timeout to the collective's name.
    fn coll_recv_deadline<T: 'static>(
        &self,
        src: usize,
        tag: i32,
        deadline: Instant,
    ) -> Result<T> {
        let remaining = deadline.saturating_duration_since(Instant::now());
        let env = self.shared().mailbox(self.global_rank()).take_timeout(
            self.coll_context(),
            Src::Rank(src),
            Tag::Value(tag),
            remaining,
            &self.coll_peer(src),
        )?;
        Self::downcast::<T>(env).map(|(v, _)| v)
    }

    /// Blocks until every member has entered the barrier.
    ///
    /// Dissemination algorithm: ⌈log₂ p⌉ rounds of pairwise notifications.
    pub fn barrier(&self) -> Result<()> {
        let p = self.size();
        let r = self.rank();
        let base = self.next_coll_tag();
        let mut round = 0i32;
        let mut dist = 1usize;
        while dist < p {
            let dst = (r + dist) % p;
            let src = (r + p - dist) % p;
            self.coll_send(dst, base + round, ())?;
            self.coll_recv::<()>(src, base + round)?;
            dist <<= 1;
            round += 1;
        }
        Ok(())
    }

    /// [`Comm::barrier`] with a deadline over the *whole* operation: if any
    /// round's notification fails to arrive before `timeout` elapses, the
    /// call fails with [`RuntimeError::Timeout`] (or
    /// [`RuntimeError::PeerDead`] when the awaited rank died) instead of
    /// hanging. The primitive for robust phase synchronization between
    /// coupled components.
    pub fn barrier_timeout(&self, timeout: Duration) -> Result<()> {
        let deadline = Instant::now() + timeout;
        let p = self.size();
        let r = self.rank();
        let base = self.next_coll_tag();
        let mut round = 0i32;
        let mut dist = 1usize;
        while dist < p {
            let dst = (r + dist) % p;
            let src = (r + p - dist) % p;
            self.coll_send(dst, base + round, ())?;
            self.coll_recv_deadline::<()>(src, base + round, deadline)?;
            dist <<= 1;
            round += 1;
        }
        Ok(())
    }

    /// Broadcasts `root`'s value to every member. `root` must pass
    /// `Some(value)`; all other ranks pass `None` and receive the value.
    ///
    /// Binomial tree: ⌈log₂ p⌉ message hops on the critical path.
    pub fn bcast<T: Clone + Send + MsgSize + 'static>(
        &self,
        root: usize,
        value: Option<T>,
    ) -> Result<T> {
        let p = self.size();
        if root >= p {
            return Err(RuntimeError::InvalidRank { rank: root, size: p });
        }
        let base = self.next_coll_tag();
        let rel = (self.rank() + p - root) % p;

        let mut value = if rel == 0 {
            Some(value.ok_or_else(|| RuntimeError::CollectiveMismatch {
                detail: "bcast root passed None".into(),
            })?)
        } else {
            None
        };

        // Receive phase: find the bit that identifies my parent.
        let mut mask = 1usize;
        while mask < p {
            if rel & mask != 0 {
                let parent = ((rel - mask) + root) % p;
                value = Some(self.coll_recv::<T>(parent, base)?);
                break;
            }
            mask <<= 1;
        }
        // Send phase: forward to children below my identifying bit.
        let v = value.expect("bcast value present after receive phase");
        mask >>= 1;
        while mask > 0 {
            if rel & mask == 0 && rel + mask < p {
                let child = (rel + mask + root) % p;
                self.coll_send(child, base, v.clone())?;
            }
            mask >>= 1;
        }
        Ok(v)
    }

    /// Gathers one value from every member at `root` (rank order).
    /// Non-roots receive `None`.
    pub fn gather<T: Send + MsgSize + 'static>(
        &self,
        root: usize,
        value: T,
    ) -> Result<Option<Vec<T>>> {
        let p = self.size();
        if root >= p {
            return Err(RuntimeError::InvalidRank { rank: root, size: p });
        }
        let base = self.next_coll_tag();
        if self.rank() == root {
            let mut out: Vec<Option<T>> = (0..p).map(|_| None).collect();
            out[root] = Some(value);
            let peers = self.peers_of(Src::Any);
            for _ in 0..p - 1 {
                let env = self.shared().mailbox(self.global_rank()).take(
                    self.coll_context(),
                    Src::Any,
                    Tag::Value(base),
                    &peers,
                )?;
                let (v, info) = Self::downcast::<T>(env)?;
                out[info.src] = Some(v);
            }
            Ok(Some(out.into_iter().map(|o| o.expect("every rank contributed")).collect()))
        } else {
            self.coll_send(root, base, value)?;
            Ok(None)
        }
    }

    /// Gathers one value from every member at *every* member.
    ///
    /// Ring algorithm: p−1 steps, each member forwards the block it just
    /// received, so bandwidth is balanced across links.
    pub fn allgather<T: Clone + Send + MsgSize + 'static>(&self, value: T) -> Result<Vec<T>> {
        let p = self.size();
        let r = self.rank();
        let base = self.next_coll_tag();
        let mut out: Vec<Option<T>> = (0..p).map(|_| None).collect();
        out[r] = Some(value);

        let next = (r + 1) % p;
        let prev = (r + p - 1) % p;
        // At step s we forward the block that originated at (r - s) mod p.
        for s in 0..p.saturating_sub(1) {
            let send_origin = (r + p - s) % p;
            let block = out[send_origin].clone().expect("block present by induction");
            self.coll_send(next, base + s as i32, block)?;
            let recv_origin = (prev + p - s) % p;
            out[recv_origin] = Some(self.coll_recv::<T>(prev, base + s as i32)?);
        }
        Ok(out.into_iter().map(|o| o.expect("ring delivered all blocks")).collect())
    }

    /// Distributes `root`'s `values` (one per member, rank order); returns
    /// this member's element. Non-roots pass `None`.
    pub fn scatter<T: Send + MsgSize + 'static>(
        &self,
        root: usize,
        values: Option<Vec<T>>,
    ) -> Result<T> {
        let p = self.size();
        if root >= p {
            return Err(RuntimeError::InvalidRank { rank: root, size: p });
        }
        let base = self.next_coll_tag();
        if self.rank() == root {
            let values = values.ok_or_else(|| RuntimeError::CollectiveMismatch {
                detail: "scatter root passed None".into(),
            })?;
            if values.len() != p {
                return Err(RuntimeError::CollectiveMismatch {
                    detail: format!("scatter got {} values for {} ranks", values.len(), p),
                });
            }
            let mut mine = None;
            for (dst, v) in values.into_iter().enumerate() {
                if dst == root {
                    mine = Some(v);
                } else {
                    self.coll_send(dst, base, v)?;
                }
            }
            Ok(mine.expect("root's own element"))
        } else {
            self.coll_recv::<T>(root, base)
        }
    }

    /// Each member provides one value per peer; returns one value from each
    /// peer. `values[i]` goes to rank `i`; result `[i]` came from rank `i`.
    ///
    /// Pairwise-offset exchange: p−1 rounds with distinct partners.
    pub fn alltoall<T: Send + MsgSize + 'static>(&self, values: Vec<T>) -> Result<Vec<T>> {
        let p = self.size();
        let r = self.rank();
        if values.len() != p {
            return Err(RuntimeError::CollectiveMismatch {
                detail: format!("alltoall got {} values for {} ranks", values.len(), p),
            });
        }
        let base = self.next_coll_tag();
        let mut out: Vec<Option<T>> = (0..p).map(|_| None).collect();
        let mut values: Vec<Option<T>> = values.into_iter().map(Some).collect();
        out[r] = values[r].take();
        for offset in 1..p {
            let dst = (r + offset) % p;
            let src = (r + p - offset) % p;
            self.coll_send(dst, base, values[dst].take().expect("each peer element used once"))?;
            out[src] = Some(self.coll_recv::<T>(src, base)?);
        }
        Ok(out.into_iter().map(|o| o.expect("pairwise exchange complete")).collect())
    }

    /// Variable-size all-to-all: `chunks[i]` (possibly empty) goes to rank
    /// `i`; returns the chunks received from each rank. This is the
    /// primitive DCA's redistribution layer is built on.
    pub fn alltoallv<T: Send + MsgSize + 'static>(
        &self,
        chunks: Vec<Vec<T>>,
    ) -> Result<Vec<Vec<T>>> {
        self.alltoall(chunks)
    }

    /// Reduces all members' values to `root` with the associative `op`
    /// (applied as `op(&mut acc, incoming)`); non-roots receive `None`.
    ///
    /// Binomial tree combine; `op` is applied in deterministic child order.
    pub fn reduce<T, F>(&self, root: usize, value: T, op: F) -> Result<Option<T>>
    where
        T: Send + MsgSize + 'static,
        F: Fn(&mut T, T),
    {
        let p = self.size();
        if root >= p {
            return Err(RuntimeError::InvalidRank { rank: root, size: p });
        }
        let base = self.next_coll_tag();
        let rel = (self.rank() + p - root) % p;
        let mut acc = value;
        let mut mask = 1usize;
        loop {
            if rel & mask != 0 {
                // I have a parent: send my partial result up.
                let parent = ((rel - mask) + root) % p;
                self.coll_send(parent, base, acc)?;
                return Ok(None);
            }
            if rel + mask < p {
                let child = (rel + mask + root) % p;
                let incoming = self.coll_recv::<T>(child, base)?;
                op(&mut acc, incoming);
            }
            mask <<= 1;
            if mask >= p {
                break;
            }
        }
        Ok(Some(acc))
    }

    /// Reduce followed by broadcast: every member receives the result.
    pub fn allreduce<T, F>(&self, value: T, op: F) -> Result<T>
    where
        T: Clone + Send + MsgSize + 'static,
        F: Fn(&mut T, T),
    {
        let reduced = self.reduce(0, value, op)?;
        self.bcast(0, reduced)
    }

    /// Inclusive prefix reduction: rank r receives `op` applied to the
    /// values of ranks `0..=r`. Linear chain.
    pub fn scan<T, F>(&self, value: T, op: F) -> Result<T>
    where
        T: Clone + Send + MsgSize + 'static,
        F: Fn(&mut T, T),
    {
        let p = self.size();
        let r = self.rank();
        let base = self.next_coll_tag();
        let mut acc = value;
        if r > 0 {
            let prefix = self.coll_recv::<T>(r - 1, base)?;
            let mine = std::mem::replace(&mut acc, prefix);
            op(&mut acc, mine);
        }
        if r + 1 < p {
            self.coll_send(r + 1, base, acc.clone())?;
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn barrier_orders_phases() {
        // Every rank increments before the barrier; after it, all see n.
        for p in [1, 2, 3, 4, 7, 8] {
            let counter = Arc::new(AtomicUsize::new(0));
            let c2 = counter.clone();
            World::run(p, move |proc| {
                let c = proc.world();
                c2.fetch_add(1, Ordering::SeqCst);
                c.barrier().unwrap();
                assert_eq!(c2.load(Ordering::SeqCst), p);
            });
        }
    }

    #[test]
    fn barrier_timeout_passes_when_all_arrive() {
        World::run(4, |proc| {
            proc.world().barrier_timeout(Duration::from_secs(5)).unwrap();
        });
    }

    #[test]
    fn barrier_timeout_detects_missing_rank() {
        // Rank 0 never enters the barrier; everyone else must time out
        // rather than hang.
        World::run(3, |proc| {
            let c = proc.world();
            if c.rank() != 0 {
                let e = c.barrier_timeout(Duration::from_millis(50)).unwrap_err();
                assert!(e.is_failure_detection(), "got {e}");
            }
        });
    }

    #[test]
    fn bcast_from_every_root() {
        for p in [1, 2, 3, 5, 8] {
            for root in 0..p {
                World::run(p, move |proc| {
                    let c = proc.world();
                    let v = if c.rank() == root { Some(vec![root as u64; 3]) } else { None };
                    let got = c.bcast(root, v).unwrap();
                    assert_eq!(got, vec![root as u64; 3]);
                });
            }
        }
    }

    #[test]
    fn bcast_invalid_root() {
        World::run(2, |p| {
            let c = p.world();
            assert!(matches!(
                c.bcast::<u8>(9, Some(0)),
                Err(RuntimeError::InvalidRank { rank: 9, .. })
            ));
        });
    }

    #[test]
    fn gather_collects_in_rank_order() {
        for p in [1, 2, 4, 6] {
            World::run(p, move |proc| {
                let c = proc.world();
                let got = c.gather(0, c.rank() as u32 * 10).unwrap();
                if c.rank() == 0 {
                    let expect: Vec<u32> = (0..p as u32).map(|r| r * 10).collect();
                    assert_eq!(got.unwrap(), expect);
                } else {
                    assert!(got.is_none());
                }
            });
        }
    }

    #[test]
    fn allgather_ring() {
        for p in [1, 2, 3, 4, 8] {
            World::run(p, move |proc| {
                let c = proc.world();
                let got = c.allgather(format!("r{}", c.rank())).unwrap();
                let expect: Vec<String> = (0..p).map(|r| format!("r{r}")).collect();
                assert_eq!(got, expect);
            });
        }
    }

    #[test]
    fn scatter_distributes() {
        for root in 0..3 {
            World::run(3, move |proc| {
                let c = proc.world();
                let v = if c.rank() == root {
                    Some(vec![10u8, 20, 30])
                } else {
                    None
                };
                assert_eq!(c.scatter(root, v).unwrap(), (c.rank() as u8 + 1) * 10);
            });
        }
    }

    #[test]
    fn scatter_wrong_count_errors() {
        World::run(2, |p| {
            let c = p.world();
            if c.rank() == 0 {
                let e = c.scatter(0, Some(vec![1u8])).unwrap_err();
                assert!(matches!(e, RuntimeError::CollectiveMismatch { .. }));
            }
            // Rank 1 would block forever; don't call on rank 1.
        });
    }

    #[test]
    fn alltoall_transpose() {
        for p in [1, 2, 3, 5] {
            World::run(p, move |proc| {
                let c = proc.world();
                let vals: Vec<u64> = (0..p).map(|d| (c.rank() * 100 + d) as u64).collect();
                let got = c.alltoall(vals).unwrap();
                let expect: Vec<u64> = (0..p).map(|s| (s * 100 + c.rank()) as u64).collect();
                assert_eq!(got, expect);
            });
        }
    }

    #[test]
    fn alltoallv_uneven_chunks() {
        World::run(3, |proc| {
            let c = proc.world();
            let r = c.rank();
            // Rank r sends r copies of its rank id to each peer.
            let chunks: Vec<Vec<usize>> = (0..3).map(|_| vec![r; r]).collect();
            let got = c.alltoallv(chunks).unwrap();
            for (s, chunk) in got.iter().enumerate() {
                assert_eq!(chunk, &vec![s; s]);
            }
        });
    }

    #[test]
    fn reduce_sum_every_root() {
        for p in [1, 2, 3, 4, 8] {
            for root in 0..p {
                World::run(p, move |proc| {
                    let c = proc.world();
                    let got = c.reduce(root, c.rank() as u64 + 1, |a, b| *a += b).unwrap();
                    if c.rank() == root {
                        assert_eq!(got.unwrap(), (p * (p + 1) / 2) as u64);
                    } else {
                        assert!(got.is_none());
                    }
                });
            }
        }
    }

    #[test]
    fn allreduce_max() {
        World::run(5, |proc| {
            let c = proc.world();
            let got = c.allreduce(c.rank() as i64 * 7, |a, b| *a = (*a).max(b)).unwrap();
            assert_eq!(got, 28);
        });
    }

    #[test]
    fn scan_prefix_sums() {
        World::run(6, |proc| {
            let c = proc.world();
            let got = c.scan(c.rank() as u64 + 1, |a, b| *a += b).unwrap();
            let r = c.rank() as u64 + 1;
            assert_eq!(got, r * (r + 1) / 2);
        });
    }

    #[test]
    fn collectives_back_to_back_do_not_cross_talk() {
        World::run(4, |proc| {
            let c = proc.world();
            for i in 0..20u64 {
                let s = c.allreduce(i, |a, b| *a += b).unwrap();
                assert_eq!(s, i * 4);
                let g = c.allgather(i + c.rank() as u64).unwrap();
                assert_eq!(g, (0..4).map(|r| i + r).collect::<Vec<_>>());
            }
        });
    }

    #[test]
    fn collectives_on_subcommunicator() {
        World::run(6, |proc| {
            let c = proc.world();
            let sub = c.split((c.rank() % 2) as i64, 0).unwrap().unwrap();
            let sum: usize = sub.allreduce(c.rank(), |a, b| *a += b).unwrap();
            let expect = if c.rank() % 2 == 0 { 2 + 4 } else { 1 + 3 + 5 };
            assert_eq!(sum, expect);
        });
    }

    #[test]
    fn collective_traffic_is_classified() {
        let (_, stats) = World::run_with_stats(4, |proc| {
            proc.world().barrier().unwrap();
        });
        assert_eq!(stats.p2p_messages, 0);
        assert!(stats.collective_messages > 0);
    }
}
