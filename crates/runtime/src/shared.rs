//! World-global state shared by all ranks.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::envelope::{Envelope, Payload};
use crate::error::{Result, RuntimeError};
use crate::fault::{FaultConfig, FaultPlane, FaultTrace, Liveness, Verdict};
use crate::mailbox::Mailbox;
use crate::membership::Revocations;
use crate::network::{ChannelClock, NetworkModel};
use crate::stats::{FaultClass, TrafficClass, WorldStats};
use crate::tracing::{ctx_class, fault_kind, tag_arg};
use crate::transport::{InProcTransport, Transport};
use mxn_trace::{emit_instant, EventId};

/// Context id of the world communicator's point-to-point traffic.
///
/// Every communicator owns a *pair* of contexts: `ctx` for point-to-point
/// and `ctx + 1` for collective-internal traffic, mirroring MPICH's design.
pub const WORLD_CONTEXT: u32 = 0;

/// State shared by every rank of one [`crate::World`]: the mailboxes, the
/// abort flag, the communicator-context allocator and the traffic counters.
pub struct WorldShared {
    transport: InProcTransport,
    abort: Arc<AtomicBool>,
    next_context: AtomicU32,
    stats: WorldStats,
    network: Option<ChannelClock>,
    fault: Option<FaultPlane>,
    liveness: Arc<Liveness>,
    revocations: Arc<Revocations>,
}

impl WorldShared {
    /// Creates shared state for `n` ranks (instant delivery, no faults).
    pub fn new(n: usize) -> Arc<Self> {
        Self::with_config(n, None, None)
    }

    /// Creates shared state with an optional synthetic network model.
    pub fn with_network(n: usize, network: Option<NetworkModel>) -> Arc<Self> {
        Self::with_config(n, network, None)
    }

    /// Creates shared state with an optional network model and an optional
    /// fault plane.
    pub fn with_config(
        n: usize,
        network: Option<NetworkModel>,
        faults: Option<FaultConfig>,
    ) -> Arc<Self> {
        let abort = Arc::new(AtomicBool::new(false));
        let liveness = Arc::new(Liveness::new(n));
        let revocations = Arc::new(Revocations::new());
        let transport =
            InProcTransport::new(n, abort.clone(), liveness.clone(), revocations.clone());
        Arc::new(WorldShared {
            transport,
            abort,
            // Context 0/1 belong to the world communicator.
            next_context: AtomicU32::new(2),
            stats: WorldStats::new(),
            network: network.map(|m| ChannelClock::new(m, n)),
            fault: faults.map(|c| FaultPlane::new(c, n)),
            liveness,
            revocations,
        })
    }

    /// Delivery instant for a message, under the network model (if any).
    pub fn delivery_time(&self, src: usize, dst: usize, bytes: usize) -> Option<Instant> {
        self.network.as_ref().map(|c| c.delivery_time(src, dst, bytes))
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.transport.size()
    }

    /// The world's delivery mechanism.
    pub fn transport(&self) -> &InProcTransport {
        &self.transport
    }

    /// The mailbox of a global rank.
    pub fn mailbox(&self, global_rank: usize) -> &Mailbox {
        self.transport.mailbox(global_rank)
    }

    /// Allocates a fresh context *pair* and returns its point-to-point id.
    ///
    /// The caller is responsible for distributing the id to all members of
    /// the new communicator (this is what makes communicator creation a
    /// collective operation).
    pub fn allocate_context_pair(&self) -> u32 {
        self.next_context.fetch_add(2, Ordering::Relaxed)
    }

    /// Marks the world aborted and wakes every blocked receiver.
    pub fn abort(&self) {
        self.abort.store(true, Ordering::Release);
        self.transport.wake_all();
    }

    /// Whether the world has been aborted.
    pub fn is_aborted(&self) -> bool {
        self.abort.load(Ordering::Acquire)
    }

    /// The world's traffic counters.
    pub fn stats(&self) -> &WorldStats {
        &self.stats
    }

    /// The liveness registry shared by this world's ranks.
    pub fn liveness(&self) -> &Arc<Liveness> {
        &self.liveness
    }

    /// The fault plane, if one is configured.
    pub fn fault(&self) -> Option<&FaultPlane> {
        self.fault.as_ref()
    }

    /// The world's revocation state (recovery plane).
    pub fn revocations(&self) -> &Arc<Revocations> {
        &self.revocations
    }

    /// Revokes a communicator's context pair: every pending and future
    /// operation on either context fails with [`RuntimeError::Revoked`] on
    /// every rank, and all blocked receivers are woken to observe it.
    /// `context` may be either member of the pair. Idempotent; returns
    /// whether this call newly revoked the pair.
    ///
    /// The world pair (0/1) cannot be revoked — recovery protocols run on
    /// it — so revoking it is a no-op returning `false`.
    pub fn revoke_context(&self, context: u32) -> bool {
        let base = context & !1;
        if base == WORLD_CONTEXT {
            return false;
        }
        let newly = self.revocations.mark(base);
        if newly {
            emit_instant(EventId::Revoke, [ctx_class(base), 0, 0, 0]);
            self.transport.wake_all();
        }
        newly
    }

    /// Survivor context pair for the shrink of `old_context` with agreed
    /// alive-mask `mask`: the first survivor to call allocates a fresh
    /// pair, every later survivor of the same shrink reads the identical
    /// `(context, shrink_epoch)` back.
    pub fn survivor_context(&self, old_context: u32, mask: u64) -> (u32, u64) {
        self.revocations.survivor_context(old_context, mask, || self.allocate_context_pair())
    }

    /// Proposed context pair for reconfiguration attempt `attempt` of
    /// `old_context` toward the membership `mask`: the first incumbent to
    /// call allocates a fresh pair, every later incumbent of the same
    /// attempt reads the identical `(context, reconfig_epoch)` back.
    pub fn reconfig_context(&self, old_context: u32, mask: u64, attempt: u64) -> (u32, u64) {
        self.revocations
            .reconfig_context(old_context, mask, attempt, || self.allocate_context_pair())
    }

    /// The canonical trace of injected faults (empty without a fault plane).
    pub fn fault_trace(&self) -> FaultTrace {
        self.fault.as_ref().map(|f| f.trace()).unwrap_or_default()
    }

    /// Arms or disarms the fault plane for `global`'s outgoing traffic
    /// (no-op without a plane). See [`crate::fault::FaultPlane::set_armed`].
    pub fn fault_set_armed(&self, global: usize, armed: bool) {
        if let Some(fp) = &self.fault {
            fp.set_armed(global, armed);
        }
    }

    /// Marks a rank dead and wakes every blocked receiver, so waits on the
    /// dead rank fail with [`RuntimeError::PeerDead`] instead of hanging.
    pub fn kill_rank(&self, global: usize) {
        if self.liveness.kill(global) {
            self.stats.record_fault(FaultClass::RankDeath);
            emit_instant(EventId::FaultInject, [fault_kind::DEATH, global as u64, 0, 0]);
        }
        self.transport.wake_all();
    }

    /// Counts one operation by the calling rank and enforces its liveness:
    /// an already-dead caller — or one whose scheduled death this very
    /// operation triggers — gets `PeerDead` carrying its own
    /// communicator-local rank (`local`).
    pub fn note_op(&self, global: usize, local: usize) -> Result<()> {
        if self.liveness.is_dead(global) {
            return Err(RuntimeError::PeerDead { rank: local });
        }
        if let Some(fp) = &self.fault {
            if fp.note_op(global).is_some() {
                self.kill_rank(global);
                return Err(RuntimeError::PeerDead { rank: local });
            }
        }
        Ok(())
    }

    /// The single choke point every message passes through: counts the
    /// sender's operation against its scheduled death, asks the fault plane
    /// for a verdict, then delivers.
    ///
    /// A dead *destination* does not fail the send: whether the destination
    /// has reached its scheduled death yet is an artifact of thread
    /// interleaving, so failing here would make same-seed runs diverge. The
    /// message lands in a mailbox nobody will read; peers detect the death
    /// deterministically on the receive side.
    ///
    /// Ranks are global except `src_local`/`_dst_local`, which are the
    /// communicator-local numbers used in envelopes and errors. `replicate`
    /// produces a second payload when the fault plane duplicates an *owned*
    /// frame (shared payloads replicate themselves in O(1)); payloads are
    /// moved (not copied) in this in-process runtime, so without it a
    /// duplicated owned frame is delivered once and the duplication is
    /// visible only in the trace and stats.
    #[allow(clippy::too_many_arguments)]
    pub fn send_envelope(
        &self,
        src_global: usize,
        src_local: usize,
        dst_global: usize,
        _dst_local: usize,
        context: u32,
        tag: i32,
        bytes: usize,
        payload: Payload,
        replicate: Option<&dyn Fn() -> Payload>,
        class: TrafficClass,
    ) -> Result<()> {
        // A revoked context refuses new traffic before it is counted, so
        // post-revoke sends leave no trace in either accounting plane.
        self.revocations.check(context)?;
        self.note_op(src_global, src_local)?;
        self.stats.record(class, bytes);
        emit_instant(
            EventId::MailboxPost,
            [ctx_class(context), tag_arg(tag), dst_global as u64, bytes as u64],
        );
        let mut deliver_at = self.delivery_time(src_global, dst_global, bytes);
        let (verdict, delay) = match &self.fault {
            Some(fp) => fp.judge(src_global, dst_global),
            None => (Verdict::Deliver, Duration::ZERO),
        };
        if verdict != Verdict::Drop && !delay.is_zero() {
            self.stats.record_fault(FaultClass::Delayed);
            emit_instant(
                EventId::FaultInject,
                [fault_kind::DELAY, dst_global as u64, tag_arg(tag), bytes as u64],
            );
            let delayed = Instant::now() + delay;
            deliver_at = Some(deliver_at.map_or(delayed, |t| t.max(delayed)));
        }
        let mut env =
            Envelope::new(src_global, src_local, context, tag, bytes, deliver_at, payload);
        match verdict {
            Verdict::Deliver => {}
            Verdict::Drop => {
                self.stats.record_fault(FaultClass::Dropped);
                emit_instant(
                    EventId::FaultInject,
                    [fault_kind::DROP, dst_global as u64, tag_arg(tag), bytes as u64],
                );
                return Ok(());
            }
            Verdict::Duplicate => {
                self.stats.record_fault(FaultClass::Duplicated);
                emit_instant(
                    EventId::FaultInject,
                    [fault_kind::DUPLICATE, dst_global as u64, tag_arg(tag), bytes as u64],
                );
                let dup_payload =
                    env.payload.another_handle().or_else(|| replicate.map(|rep| rep()));
                if let Some(p) = dup_payload {
                    let dup =
                        Envelope::new(src_global, src_local, context, tag, bytes, deliver_at, p);
                    // Duplicate first, then the original, under one lock.
                    let res = self.transport.deliver_pair(dst_global, dup, env);
                    self.stats.note_transfer_peak(self.mailbox(dst_global).peak_bytes());
                    return res;
                }
            }
            Verdict::Corrupt => {
                self.stats.record_fault(FaultClass::Corrupted);
                emit_instant(
                    EventId::FaultInject,
                    [fault_kind::CORRUPT, dst_global as u64, tag_arg(tag), bytes as u64],
                );
                env.corrupt();
            }
        }
        let res = self.transport.deliver(dst_global, env);
        // Fold this destination's mailbox high-water mark into the world
        // peak at the same choke point that counted the bytes.
        self.stats.note_transfer_peak(self.mailbox(dst_global).peak_bytes());
        res
    }

    /// Posts one shared payload to many destinations: the multicast
    /// counterpart of [`WorldShared::send_envelope`]. Each destination goes
    /// through the same choke point (its own fault verdict, delivery clock
    /// and traffic accounting, exactly like a loop of sends), but every
    /// delivered envelope holds another `Arc` handle to the *same* payload
    /// allocation — O(1) payload allocations for p receivers.
    ///
    /// `payload` must be [`Payload::Shared`]; owned payloads cannot be
    /// handed to more than one mailbox.
    #[allow(clippy::too_many_arguments)]
    pub fn multicast_envelope(
        &self,
        src_global: usize,
        src_local: usize,
        dst_globals: &[usize],
        context: u32,
        tag: i32,
        bytes: usize,
        payload: &Payload,
        class: TrafficClass,
    ) -> Result<()> {
        for &dst_global in dst_globals {
            let handle =
                payload.another_handle().expect("multicast requires a Payload::Shared handle");
            self.send_envelope(
                src_global, src_local, dst_global, 0, context, tag, bytes, handle, None, class,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_pairs_are_disjoint() {
        let s = WorldShared::new(2);
        let a = s.allocate_context_pair();
        let b = s.allocate_context_pair();
        assert!(a >= 2, "0/1 reserved for the world communicator");
        assert_eq!(b, a + 2);
    }

    #[test]
    fn abort_is_visible_everywhere() {
        let s = WorldShared::new(3);
        assert!(!s.is_aborted());
        s.abort();
        assert!(s.is_aborted());
    }

    #[test]
    fn size_matches_mailboxes() {
        let s = WorldShared::new(5);
        assert_eq!(s.size(), 5);
        s.mailbox(4); // must not panic
    }

    #[test]
    fn send_to_dead_rank_succeeds_silently() {
        // Failing a send because the *destination* died would make outcomes
        // depend on whether the destination reached its death yet — an
        // interleaving artifact. Detection is receive-side only.
        let s = WorldShared::new(3);
        s.kill_rank(2);
        s.send_envelope(
            0,
            0,
            2,
            2,
            0,
            1,
            4,
            Payload::owned(1u32),
            None,
            TrafficClass::PointToPoint,
        )
        .unwrap();
        assert_eq!(s.mailbox(2).len(), 1, "delivered to a mailbox nobody reads");
        assert_eq!(s.stats().snapshot().rank_deaths, 1);
    }

    #[test]
    fn dead_sender_cannot_send() {
        let s = WorldShared::new(2);
        s.kill_rank(0);
        let e = s
            .send_envelope(
                0,
                0,
                1,
                1,
                0,
                1,
                4,
                Payload::owned(1u32),
                None,
                TrafficClass::PointToPoint,
            )
            .unwrap_err();
        assert_eq!(e, RuntimeError::PeerDead { rank: 0 }, "reports the caller's own rank");
        assert!(s.mailbox(1).is_empty(), "nothing was delivered");
    }

    #[test]
    fn scheduled_death_triggers_on_send() {
        let cfg = FaultConfig::reliable(1).with_death(0, 1);
        let s = WorldShared::with_config(2, None, Some(cfg));
        assert!(s
            .send_envelope(
                0,
                0,
                1,
                1,
                0,
                1,
                4,
                Payload::owned(1u32),
                None,
                TrafficClass::PointToPoint
            )
            .is_ok());
        let e = s
            .send_envelope(
                0,
                0,
                1,
                1,
                0,
                1,
                4,
                Payload::owned(2u32),
                None,
                TrafficClass::PointToPoint,
            )
            .unwrap_err();
        assert_eq!(e, RuntimeError::PeerDead { rank: 0 });
        assert!(s.liveness().is_dead(0));
        assert_eq!(s.mailbox(1).len(), 1, "only the pre-death message landed");
        assert_eq!(s.fault_trace().len(), 1);
    }

    #[test]
    fn drop_verdict_suppresses_delivery() {
        use crate::fault::ChannelPolicy;
        let cfg = FaultConfig::reliable(3).with_default_policy(ChannelPolicy::lossy(1.0));
        let s = WorldShared::with_config(2, None, Some(cfg));
        s.send_envelope(
            0,
            0,
            1,
            1,
            0,
            1,
            4,
            Payload::owned(1u32),
            None,
            TrafficClass::PointToPoint,
        )
        .unwrap();
        assert!(s.mailbox(1).is_empty());
        let snap = s.stats().snapshot();
        assert_eq!(snap.dropped_messages, 1);
        assert_eq!(snap.p2p_messages, 1, "a dropped message still counts as sent");
    }

    #[test]
    fn duplicate_verdict_delivers_twice_with_replicator() {
        use crate::fault::ChannelPolicy;
        let policy = ChannelPolicy { duplicate: 1.0, ..ChannelPolicy::reliable() };
        let cfg = FaultConfig::reliable(3).with_default_policy(policy);
        let s = WorldShared::with_config(2, None, Some(cfg));
        let rep = || Payload::owned(7u32);
        s.send_envelope(
            0,
            0,
            1,
            1,
            0,
            1,
            4,
            Payload::owned(7u32),
            Some(&rep),
            TrafficClass::PointToPoint,
        )
        .unwrap();
        assert_eq!(s.mailbox(1).len(), 2);
        assert_eq!(s.stats().snapshot().duplicated_messages, 1);
    }

    #[test]
    fn corrupt_verdict_damages_checksum() {
        use crate::envelope::{Src, Tag};
        use crate::fault::ChannelPolicy;
        let policy = ChannelPolicy { corrupt: 1.0, ..ChannelPolicy::reliable() };
        let cfg = FaultConfig::reliable(3).with_default_policy(policy);
        let s = WorldShared::with_config(2, None, Some(cfg));
        s.send_envelope(
            0,
            0,
            1,
            1,
            0,
            1,
            4,
            Payload::owned(1u32),
            None,
            TrafficClass::PointToPoint,
        )
        .unwrap();
        let env = s.mailbox(1).try_take(0, Src::Any, Tag::Any).unwrap();
        assert!(!env.verify());
        assert_eq!(s.stats().snapshot().corrupted_messages, 1);
    }

    #[test]
    fn revoked_context_refuses_sends_but_world_is_protected() {
        let s = WorldShared::new(2);
        let ctx = s.allocate_context_pair();
        assert!(s.revoke_context(ctx + 1), "either member of the pair revokes it");
        assert!(!s.revoke_context(ctx), "idempotent across the pair");
        let e = s
            .send_envelope(
                0,
                0,
                1,
                1,
                ctx,
                1,
                4,
                Payload::owned(1u32),
                None,
                TrafficClass::PointToPoint,
            )
            .unwrap_err();
        assert!(e.is_revoked());
        assert!(s.mailbox(1).is_empty(), "refused before delivery");
        assert_eq!(s.stats().snapshot().p2p_messages, 0, "refused before accounting");
        assert!(!s.revoke_context(0), "world pair is not revocable");
        assert!(!s.revoke_context(1));
        s.send_envelope(
            0,
            0,
            1,
            1,
            0,
            1,
            4,
            Payload::owned(1u32),
            None,
            TrafficClass::PointToPoint,
        )
        .unwrap();
    }

    #[test]
    fn survivor_context_is_shared_across_callers() {
        let s = WorldShared::new(2);
        let (a, e1) = s.survivor_context(2, 0b01);
        let (b, e2) = s.survivor_context(2, 0b01);
        assert_eq!((a, e1), (b, e2));
        assert!(a >= 2 && a % 2 == 0, "a real allocated pair");
        let (c, e3) = s.survivor_context(2, 0b10);
        assert_ne!(c, a);
        assert_eq!((e1, e3), (1, 2), "shrink epochs count per old context");
    }

    #[test]
    fn multicast_shares_one_allocation() {
        use crate::envelope::{Src, Tag};
        let s = WorldShared::new(4);
        let arc = Arc::new(vec![1.0f64; 8]);
        let payload = Payload::shared(Arc::clone(&arc));
        s.multicast_envelope(0, 0, &[1, 2, 3], 0, 5, 64, &payload, TrafficClass::Collective)
            .unwrap();
        drop(payload);
        // All three receivers hold handles to the same allocation.
        assert_eq!(Arc::strong_count(&arc), 4);
        for dst in 1..4 {
            let env = s.mailbox(dst).try_take(0, Src::Rank(0), Tag::Value(5)).unwrap();
            let (got, promoted) = env.payload.into_shared::<Vec<f64>>().unwrap();
            assert!(Arc::ptr_eq(&got, &arc));
            assert!(!promoted);
        }
        assert_eq!(s.stats().snapshot().collective_messages, 3);
    }

    #[test]
    fn duplicate_verdict_replicates_shared_payload_without_replicator() {
        use crate::envelope::{Src, Tag};
        use crate::fault::ChannelPolicy;
        let policy = ChannelPolicy { duplicate: 1.0, ..ChannelPolicy::reliable() };
        let cfg = FaultConfig::reliable(3).with_default_policy(policy);
        let s = WorldShared::with_config(2, None, Some(cfg));
        let payload = Payload::shared(Arc::new(9u32));
        s.send_envelope(0, 0, 1, 1, 0, 1, 4, payload, None, TrafficClass::PointToPoint).unwrap();
        assert_eq!(s.mailbox(1).len(), 2, "shared payloads self-replicate on duplication");
        for _ in 0..2 {
            let env = s.mailbox(1).try_take(0, Src::Any, Tag::Any).unwrap();
            assert_eq!(env.payload.into_owned::<u32>().unwrap().0, 9);
        }
        assert_eq!(s.stats().snapshot().duplicated_messages, 1);
    }
}
