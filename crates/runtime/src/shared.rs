//! World-global state shared by all ranks.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::mailbox::Mailbox;
use crate::network::{ChannelClock, NetworkModel};
use crate::stats::WorldStats;

/// Context id of the world communicator's point-to-point traffic.
///
/// Every communicator owns a *pair* of contexts: `ctx` for point-to-point
/// and `ctx + 1` for collective-internal traffic, mirroring MPICH's design.
pub const WORLD_CONTEXT: u32 = 0;

/// State shared by every rank of one [`crate::World`]: the mailboxes, the
/// abort flag, the communicator-context allocator and the traffic counters.
pub struct WorldShared {
    mailboxes: Vec<Mailbox>,
    abort: Arc<AtomicBool>,
    next_context: AtomicU32,
    stats: WorldStats,
    network: Option<ChannelClock>,
}

impl WorldShared {
    /// Creates shared state for `n` ranks (instant delivery).
    pub fn new(n: usize) -> Arc<Self> {
        Self::with_network(n, None)
    }

    /// Creates shared state with an optional synthetic network model.
    pub fn with_network(n: usize, network: Option<NetworkModel>) -> Arc<Self> {
        let abort = Arc::new(AtomicBool::new(false));
        let mailboxes = (0..n).map(|_| Mailbox::new(abort.clone())).collect();
        Arc::new(WorldShared {
            mailboxes,
            abort,
            // Context 0/1 belong to the world communicator.
            next_context: AtomicU32::new(2),
            stats: WorldStats::new(),
            network: network.map(|m| ChannelClock::new(m, n)),
        })
    }

    /// Delivery instant for a message, under the network model (if any).
    pub fn delivery_time(&self, src: usize, dst: usize, bytes: usize) -> Option<Instant> {
        self.network.as_ref().map(|c| c.delivery_time(src, dst, bytes))
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.mailboxes.len()
    }

    /// The mailbox of a global rank.
    pub fn mailbox(&self, global_rank: usize) -> &Mailbox {
        &self.mailboxes[global_rank]
    }

    /// Allocates a fresh context *pair* and returns its point-to-point id.
    ///
    /// The caller is responsible for distributing the id to all members of
    /// the new communicator (this is what makes communicator creation a
    /// collective operation).
    pub fn allocate_context_pair(&self) -> u32 {
        self.next_context.fetch_add(2, Ordering::Relaxed)
    }

    /// Marks the world aborted and wakes every blocked receiver.
    pub fn abort(&self) {
        self.abort.store(true, Ordering::Release);
        for m in &self.mailboxes {
            m.wake_all();
        }
    }

    /// Whether the world has been aborted.
    pub fn is_aborted(&self) -> bool {
        self.abort.load(Ordering::Acquire)
    }

    /// The world's traffic counters.
    pub fn stats(&self) -> &WorldStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_pairs_are_disjoint() {
        let s = WorldShared::new(2);
        let a = s.allocate_context_pair();
        let b = s.allocate_context_pair();
        assert!(a >= 2, "0/1 reserved for the world communicator");
        assert_eq!(b, a + 2);
    }

    #[test]
    fn abort_is_visible_everywhere() {
        let s = WorldShared::new(3);
        assert!(!s.is_aborted());
        s.abort();
        assert!(s.is_aborted());
    }

    #[test]
    fn size_matches_mailboxes() {
        let s = WorldShared::new(5);
        assert_eq!(s.size(), 5);
        s.mailbox(4); // must not panic
    }
}
