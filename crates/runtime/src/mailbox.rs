//! Per-rank mailboxes.
//!
//! Each rank owns one mailbox; senders push envelopes into the destination's
//! mailbox and receivers take the earliest envelope matching a
//! `(context, source, tag)` pattern. Internally the mailbox is split into
//! per-`(context, tag)` buckets so a post only scans and wakes the receivers
//! interested in that exact tag (targeted `notify_one` instead of a broadcast
//! to every waiter), and [`Mailbox::post_many`] deposits a whole batch under
//! one lock acquisition.
//!
//! Every envelope is stamped with a mailbox-wide monotone sequence number at
//! arrival. Within a bucket that makes the queue arrival-ordered, preserving
//! MPI's non-overtaking guarantee per (context, src, tag); across buckets it
//! lets wildcard (`Tag::Any`) receives pick the earliest arrival among all of
//! a context's buckets, exactly as the single-queue design did.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex, MutexGuard};

use crate::envelope::{Envelope, MessageInfo, Src, Tag};
use crate::error::{Result, RuntimeError};
use crate::fault::Liveness;
use crate::membership::Revocations;

/// Identity of the peer a blocked receive is waiting on, for liveness
/// checks: `global` indexes the world liveness registry, `local` is the
/// rank to report in [`RuntimeError::PeerDead`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerRef {
    /// World rank of the peer.
    pub global: usize,
    /// The peer's rank in the waiting communicator's numbering.
    pub local: usize,
}

/// One `(context, tag)` queue plus its dedicated wakeup channel.
struct Bucket {
    queue: VecDeque<Envelope>,
    /// Queued envelopes carrying a `deliver_at` (fault-plane delays).
    /// While zero — the fault-free common case — queue scans skip the
    /// `Instant::now()` read entirely.
    delayed: usize,
    /// Receivers currently blocked on exactly this (context, tag). Behind an
    /// `Arc` so a waiter can keep the condvar identity stable while the
    /// bucket map rehashes.
    cond: Arc<Condvar>,
    waiters: usize,
}

impl Bucket {
    fn new() -> Self {
        Bucket { queue: VecDeque::new(), delayed: 0, cond: Arc::new(Condvar::new()), waiters: 0 }
    }

    /// Removes the envelope at `i`, maintaining the delayed-message count.
    fn remove_at(&mut self, i: usize) -> Envelope {
        let env = self.queue.remove(i).expect("index just found");
        if env.deliver_at.is_some() {
            self.delayed -= 1;
        }
        env
    }

    /// Index of the earliest deliverable envelope from `src`.
    fn find(&self, src: Src) -> Option<usize> {
        if self.delayed == 0 {
            return self.queue.iter().position(|e| src.matches(e.src_local));
        }
        let now = Instant::now();
        self.queue
            .iter()
            .position(|e| src.matches(e.src_local) && e.deliver_at.is_none_or(|t| t <= now))
    }

    /// Earliest future delivery instant among matching messages (network
    /// model): the moment a blocked receive should re-check.
    fn earliest_pending(&self, src: Src) -> Option<Instant> {
        if self.delayed == 0 {
            return None;
        }
        self.queue.iter().filter(|e| src.matches(e.src_local)).filter_map(|e| e.deliver_at).min()
    }
}

struct Inner {
    buckets: HashMap<(u32, i32), Bucket>,
    next_seq: u64,
    /// Total queued envelopes across all buckets.
    total: usize,
    /// Receivers currently blocked with a `Tag::Any` pattern (they wait on
    /// the mailbox-wide condvar since any bucket could satisfy them).
    any_waiters: usize,
}

impl Inner {
    /// Drops a bucket that holds no messages and no waiters, so tag churn
    /// (collectives rotate through a large tag space) cannot grow the map
    /// without bound.
    fn maybe_gc(&mut self, key: (u32, i32)) {
        if let Some(b) = self.buckets.get(&key) {
            if b.queue.is_empty() && b.waiters == 0 {
                self.buckets.remove(&key);
            }
        }
    }

    /// Finds the earliest-arrival deliverable envelope matching the pattern,
    /// returning its bucket key and queue index.
    fn find(&self, context: u32, src: Src, tag: Tag) -> Option<((u32, i32), usize)> {
        match tag {
            Tag::Value(t) => {
                let key = (context, t);
                self.buckets.get(&key).and_then(|b| b.find(src)).map(|i| (key, i))
            }
            Tag::Any => {
                let mut best: Option<((u32, i32), usize, u64)> = None;
                for (&key, b) in &self.buckets {
                    if key.0 != context {
                        continue;
                    }
                    if let Some(i) = b.find(src) {
                        let seq = b.queue[i].seq;
                        if best.is_none_or(|(_, _, s)| seq < s) {
                            best = Some((key, i, seq));
                        }
                    }
                }
                best.map(|(key, i, _)| (key, i))
            }
        }
    }

    /// Removes and returns the earliest matching deliverable envelope.
    fn pop(&mut self, context: u32, src: Src, tag: Tag) -> Option<Envelope> {
        let (key, i) = self.find(context, src, tag)?;
        let env = self.buckets.get_mut(&key).expect("bucket just found").remove_at(i);
        self.total -= 1;
        self.maybe_gc(key);
        Some(env)
    }

    /// Earliest future delivery instant among messages matching the pattern.
    fn earliest_pending(&self, context: u32, src: Src, tag: Tag) -> Option<Instant> {
        match tag {
            Tag::Value(t) => self.buckets.get(&(context, t)).and_then(|b| b.earliest_pending(src)),
            Tag::Any => self
                .buckets
                .iter()
                .filter(|(key, _)| key.0 == context)
                .filter_map(|(_, b)| b.earliest_pending(src))
                .min(),
        }
    }

    /// Appends `env` to its bucket (stamping the arrival sequence) and
    /// returns the bucket's wakeup channel if any receiver is parked on it.
    fn append(&mut self, mut env: Envelope) -> Option<(Arc<Condvar>, usize)> {
        env.seq = self.next_seq;
        self.next_seq += 1;
        let bucket = self.buckets.entry((env.context, env.tag)).or_insert_with(Bucket::new);
        if env.deliver_at.is_some() {
            bucket.delayed += 1;
        }
        bucket.queue.push_back(env);
        self.total += 1;
        (bucket.waiters > 0).then(|| (bucket.cond.clone(), bucket.waiters))
    }
}

/// Wakes one bucket's waiters: a single parked receiver gets a targeted
/// `notify_one`; with several (possibly waiting on different `Src` patterns)
/// everyone re-checks.
fn notify_bucket(cond: &Condvar, waiters: usize) {
    if waiters == 1 {
        cond.notify_one();
    } else {
        cond.notify_all();
    }
}

/// A single rank's incoming-message queue.
pub struct Mailbox {
    inner: Mutex<Inner>,
    /// Wakeup channel for `Tag::Any` receivers.
    any_cond: Condvar,
    abort: Arc<AtomicBool>,
    liveness: Arc<Liveness>,
    revocations: Arc<Revocations>,
    /// Payload bytes currently queued (sent but not yet taken). In an eager
    /// transport a sent buffer is resident *here* until the receiver drains
    /// it, so this — not the sender's working set — is where redistribution
    /// memory pressure shows up.
    live_bytes: AtomicU64,
    /// High-water mark of [`Self::live_bytes`].
    peak_bytes: AtomicU64,
}

impl Mailbox {
    /// Creates an empty mailbox wired to the world's abort flag, liveness
    /// registry and revocation state.
    pub fn new(
        abort: Arc<AtomicBool>,
        liveness: Arc<Liveness>,
        revocations: Arc<Revocations>,
    ) -> Self {
        Mailbox {
            inner: Mutex::new(Inner {
                buckets: HashMap::new(),
                next_seq: 0,
                total: 0,
                any_waiters: 0,
            }),
            any_cond: Condvar::new(),
            abort,
            liveness,
            revocations,
            live_bytes: AtomicU64::new(0),
            peak_bytes: AtomicU64::new(0),
        }
    }

    /// Accounts `bytes` of newly-queued payload, raising the high-water
    /// mark. Called with the inner lock held so the peak is exact.
    fn add_live(&self, bytes: u64) {
        if bytes == 0 {
            return;
        }
        let live = self.live_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak_bytes.fetch_max(live, Ordering::Relaxed);
    }

    /// Releases `bytes` of queued payload (an envelope was taken).
    fn sub_live(&self, bytes: u64) {
        if bytes > 0 {
            self.live_bytes.fetch_sub(bytes, Ordering::Relaxed);
        }
    }

    /// Payload bytes currently queued in this mailbox.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes.load(Ordering::Relaxed)
    }

    /// High-water mark of queued payload bytes since creation (or the last
    /// [`Self::reset_peak_bytes`]).
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes.load(Ordering::Relaxed)
    }

    /// Resets the high-water mark to the current live level (between
    /// measurement phases).
    pub fn reset_peak_bytes(&self) {
        self.peak_bytes.store(self.live_bytes.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// `PeerDead` when every peer that could satisfy the wait has died.
    /// Called only *after* a failed queue scan, so messages a rank managed
    /// to send before dying still drain normally. An empty slice means the
    /// candidate set is unknown: no liveness check.
    fn check_peers(&self, peers: &[PeerRef]) -> Result<()> {
        if !peers.is_empty() && peers.iter().all(|p| self.liveness.is_dead(p.global)) {
            return Err(RuntimeError::PeerDead { rank: peers[0].local });
        }
        Ok(())
    }

    /// Deposits an envelope and wakes receivers parked on its bucket.
    pub fn push(&self, env: Envelope) {
        let bytes = env.bytes as u64;
        let mut inner = self.inner.lock();
        let bucket_wake = inner.append(env);
        self.add_live(bytes);
        let any = inner.any_waiters;
        drop(inner);
        if let Some((cond, waiters)) = bucket_wake {
            notify_bucket(&cond, waiters);
        }
        if any > 0 {
            notify_bucket(&self.any_cond, any);
        }
    }

    /// Deposits a batch of envelopes under a single lock acquisition,
    /// coalescing wakeups per bucket — the entry point for multicast fan-out
    /// and all-to-all rounds landing several messages at once.
    pub fn post_many(&self, envs: impl IntoIterator<Item = Envelope>) {
        let mut wakes: Vec<(Arc<Condvar>, usize)> = Vec::new();
        let mut batch_bytes = 0u64;
        let mut inner = self.inner.lock();
        for env in envs {
            batch_bytes += env.bytes as u64;
            if let Some((cond, waiters)) = inner.append(env) {
                if !wakes.iter().any(|(c, _)| Arc::ptr_eq(c, &cond)) {
                    wakes.push((cond, waiters));
                }
            }
        }
        self.add_live(batch_bytes);
        let any = inner.any_waiters;
        drop(inner);
        for (cond, waiters) in wakes {
            notify_bucket(&cond, waiters);
        }
        if any > 0 {
            notify_bucket(&self.any_cond, any);
        }
    }

    /// Wakes all waiters so they can observe the abort flag.
    pub fn wake_all(&self) {
        let inner = self.inner.lock();
        let conds: Vec<Arc<Condvar>> =
            inner.buckets.values().filter(|b| b.waiters > 0).map(|b| b.cond.clone()).collect();
        drop(inner);
        for cond in conds {
            cond.notify_all();
        }
        self.any_cond.notify_all();
    }

    /// Parks the calling receiver on the wakeup channel for its pattern:
    /// the bucket condvar for a concrete tag, the mailbox-wide channel for
    /// `Tag::Any`. Returns whether the wait timed out at `wake_at`.
    fn wait_for(
        &self,
        inner: &mut MutexGuard<'_, Inner>,
        context: u32,
        tag: Tag,
        wake_at: Option<Instant>,
    ) -> bool {
        match tag {
            Tag::Value(t) => {
                let key = (context, t);
                let cond = {
                    let b = inner.buckets.entry(key).or_insert_with(Bucket::new);
                    b.waiters += 1;
                    b.cond.clone()
                };
                let timed_out = match wake_at {
                    Some(at) => cond.wait_until(inner, at).timed_out(),
                    None => {
                        cond.wait(inner);
                        false
                    }
                };
                inner.buckets.get_mut(&key).expect("bucket pinned by waiter").waiters -= 1;
                inner.maybe_gc(key);
                timed_out
            }
            Tag::Any => {
                inner.any_waiters += 1;
                let timed_out = match wake_at {
                    Some(at) => self.any_cond.wait_until(inner, at).timed_out(),
                    None => {
                        self.any_cond.wait(inner);
                        false
                    }
                };
                inner.any_waiters -= 1;
                timed_out
            }
        }
    }

    /// Removes and returns the earliest matching envelope without blocking.
    ///
    /// Not revocation-checked: a non-blocking scan cannot report an error,
    /// and its callers (`iprobe`, diagnostics) tolerate stale reads. The
    /// blocking paths are the epoch boundary.
    pub fn try_take(&self, context: u32, src: Src, tag: Tag) -> Option<Envelope> {
        let env = self.inner.lock().pop(context, src, tag)?;
        self.sub_live(env.bytes as u64);
        Some(env)
    }

    /// Blocks until a matching envelope arrives and is deliverable, the
    /// world aborts, or every awaitable peer is found dead.
    pub fn take(&self, context: u32, src: Src, tag: Tag, peers: &[PeerRef]) -> Result<Envelope> {
        let mut inner = self.inner.lock();
        loop {
            // Revocation wins over queued messages: traffic from the old
            // epoch must never deliver once the context is poisoned.
            self.revocations.check(context)?;
            if let Some(env) = inner.pop(context, src, tag) {
                self.sub_live(env.bytes as u64);
                return Ok(env);
            }
            if self.abort.load(Ordering::Acquire) {
                return Err(RuntimeError::Aborted);
            }
            self.check_peers(peers)?;
            // If a matching message is in flight (network delay), sleep only
            // until it lands.
            let wake_at = inner.earliest_pending(context, src, tag);
            self.wait_for(&mut inner, context, tag, wake_at);
        }
    }

    /// Blocks until a matching envelope arrives, the world aborts, the
    /// awaitable peers all die, or `timeout` elapses.
    pub fn take_timeout(
        &self,
        context: u32,
        src: Src,
        tag: Tag,
        timeout: Duration,
        peers: &[PeerRef],
    ) -> Result<Envelope> {
        let start = Instant::now();
        let deadline = start + timeout;
        let mut inner = self.inner.lock();
        loop {
            self.revocations.check(context)?;
            if let Some(env) = inner.pop(context, src, tag) {
                self.sub_live(env.bytes as u64);
                return Ok(env);
            }
            if self.abort.load(Ordering::Acquire) {
                return Err(RuntimeError::Aborted);
            }
            self.check_peers(peers)?;
            let wake = match inner.earliest_pending(context, src, tag) {
                Some(at) if at < deadline => at,
                _ => deadline,
            };
            if self.wait_for(&mut inner, context, tag, Some(wake)) && wake >= deadline {
                // One final scan: the message may have raced the timeout.
                if let Some(env) = inner.pop(context, src, tag) {
                    self.sub_live(env.bytes as u64);
                    return Ok(env);
                }
                return Err(RuntimeError::timeout(
                    format!("message (context={context})"),
                    start.elapsed(),
                    src,
                    tag,
                ));
            }
        }
    }

    /// Returns metadata for the earliest matching envelope without removing
    /// it, or `None` if nothing matches right now.
    pub fn iprobe(&self, context: u32, src: Src, tag: Tag) -> Option<MessageInfo> {
        let inner = self.inner.lock();
        inner.find(context, src, tag).map(|(key, i)| {
            let e = &inner.buckets[&key].queue[i];
            MessageInfo { src: e.src_local, tag: e.tag, bytes: e.bytes }
        })
    }

    /// Blocks until a matching envelope is present and deliverable,
    /// returning its metadata without removing it.
    pub fn probe(
        &self,
        context: u32,
        src: Src,
        tag: Tag,
        peers: &[PeerRef],
    ) -> Result<MessageInfo> {
        let mut inner = self.inner.lock();
        loop {
            self.revocations.check(context)?;
            if let Some((key, i)) = inner.find(context, src, tag) {
                let e = &inner.buckets[&key].queue[i];
                return Ok(MessageInfo { src: e.src_local, tag: e.tag, bytes: e.bytes });
            }
            if self.abort.load(Ordering::Acquire) {
                return Err(RuntimeError::Aborted);
            }
            self.check_peers(peers)?;
            let wake_at = inner.earliest_pending(context, src, tag);
            self.wait_for(&mut inner, context, tag, wake_at);
        }
    }

    /// Number of messages currently queued (all contexts).
    pub fn len(&self) -> usize {
        self.inner.lock().total
    }

    /// Whether the mailbox is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of live `(context, tag)` buckets (test/diagnostic hook).
    pub fn bucket_count(&self) -> usize {
        self.inner.lock().buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::Payload;
    use std::thread;

    fn env(src: usize, context: u32, tag: i32, val: u32) -> Envelope {
        Envelope::new(src, src, context, tag, 4, None, Payload::owned(val))
    }

    fn mbox() -> Mailbox {
        Mailbox::new(
            Arc::new(AtomicBool::new(false)),
            Arc::new(Liveness::new(8)),
            Arc::new(Revocations::new()),
        )
    }

    fn val(e: Envelope) -> u32 {
        e.payload.into_owned::<u32>().unwrap().0
    }

    #[test]
    fn fifo_per_sender_and_tag() {
        let m = mbox();
        m.push(env(0, 0, 1, 10));
        m.push(env(0, 0, 1, 20));
        assert_eq!(val(m.take(0, Src::Rank(0), Tag::Value(1), &[]).unwrap()), 10);
        assert_eq!(val(m.take(0, Src::Rank(0), Tag::Value(1), &[]).unwrap()), 20);
    }

    #[test]
    fn tag_selective_receive_skips_nonmatching() {
        let m = mbox();
        m.push(env(0, 0, 1, 10));
        m.push(env(0, 0, 2, 20));
        assert_eq!(val(m.take(0, Src::Rank(0), Tag::Value(2), &[]).unwrap()), 20);
        assert_eq!(val(m.take(0, Src::Rank(0), Tag::Value(1), &[]).unwrap()), 10);
    }

    #[test]
    fn context_isolation() {
        let m = mbox();
        m.push(env(0, 7, 1, 10));
        assert!(m.try_take(0, Src::Any, Tag::Any).is_none());
        assert!(m.try_take(7, Src::Any, Tag::Any).is_some());
    }

    #[test]
    fn any_source_takes_earliest_arrival() {
        let m = mbox();
        m.push(env(3, 0, 1, 30));
        m.push(env(1, 0, 1, 10));
        assert_eq!(val(m.take(0, Src::Any, Tag::Value(1), &[]).unwrap()), 30);
    }

    #[test]
    fn any_tag_takes_earliest_arrival_across_buckets() {
        let m = mbox();
        m.push(env(0, 0, 7, 70));
        m.push(env(0, 0, 3, 30));
        m.push(env(0, 0, 5, 50));
        // Arrival order wins, not tag order or bucket-map iteration order.
        assert_eq!(val(m.take(0, Src::Any, Tag::Any, &[]).unwrap()), 70);
        assert_eq!(val(m.take(0, Src::Any, Tag::Any, &[]).unwrap()), 30);
        assert_eq!(val(m.take(0, Src::Any, Tag::Any, &[]).unwrap()), 50);
    }

    #[test]
    fn take_blocks_until_push() {
        let m = Arc::new(mbox());
        let m2 = m.clone();
        let h = thread::spawn(move || val(m2.take(0, Src::Rank(0), Tag::Value(9), &[]).unwrap()));
        thread::sleep(Duration::from_millis(20));
        m.push(env(0, 0, 9, 99));
        assert_eq!(h.join().unwrap(), 99);
    }

    #[test]
    fn push_to_other_bucket_does_not_satisfy_waiter() {
        let m = Arc::new(mbox());
        let m2 = m.clone();
        let h = thread::spawn(move || val(m2.take(0, Src::Rank(0), Tag::Value(9), &[]).unwrap()));
        thread::sleep(Duration::from_millis(10));
        m.push(env(0, 0, 8, 88)); // different tag: waiter must keep sleeping
        thread::sleep(Duration::from_millis(10));
        m.push(env(0, 0, 9, 99));
        assert_eq!(h.join().unwrap(), 99);
        assert_eq!(m.len(), 1, "tag-8 message still queued");
    }

    #[test]
    fn post_many_delivers_batch_in_order() {
        let m = Arc::new(mbox());
        let m2 = m.clone();
        let h = thread::spawn(move || {
            let a = val(m2.take(0, Src::Rank(0), Tag::Value(1), &[]).unwrap());
            let b = val(m2.take(0, Src::Rank(0), Tag::Value(1), &[]).unwrap());
            let c = val(m2.take(0, Src::Rank(0), Tag::Value(2), &[]).unwrap());
            (a, b, c)
        });
        thread::sleep(Duration::from_millis(10));
        m.post_many([env(0, 0, 1, 1), env(0, 0, 1, 2), env(0, 0, 2, 3)]);
        assert_eq!(h.join().unwrap(), (1, 2, 3));
    }

    #[test]
    fn timeout_fires_when_no_message() {
        let m = mbox();
        let r = m.take_timeout(0, Src::Any, Tag::Any, Duration::from_millis(20), &[]);
        assert!(matches!(r, Err(RuntimeError::Timeout { .. })));
    }

    #[test]
    fn timeout_fires_on_concrete_tag_bucket() {
        let m = mbox();
        m.push(env(0, 0, 1, 10)); // traffic on another bucket must not feed the waiter
        let r = m.take_timeout(0, Src::Rank(0), Tag::Value(2), Duration::from_millis(20), &[]);
        assert!(matches!(r, Err(RuntimeError::Timeout { .. })));
    }

    #[test]
    fn timeout_returns_message_that_arrives_in_time() {
        let m = Arc::new(mbox());
        let m2 = m.clone();
        thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            m2.push(env(0, 0, 1, 5));
        });
        let r = m.take_timeout(0, Src::Any, Tag::Any, Duration::from_secs(5), &[]).unwrap();
        assert_eq!(val(r), 5);
    }

    #[test]
    fn abort_wakes_blocked_receiver() {
        let abort = Arc::new(AtomicBool::new(false));
        let m = Arc::new(Mailbox::new(
            abort.clone(),
            Arc::new(Liveness::new(8)),
            Arc::new(Revocations::new()),
        ));
        let m2 = m.clone();
        let h = thread::spawn(move || m2.take(0, Src::Any, Tag::Any, &[]));
        thread::sleep(Duration::from_millis(10));
        abort.store(true, Ordering::Release);
        m.wake_all();
        match h.join().unwrap() {
            Err(e) => assert_eq!(e, RuntimeError::Aborted),
            Ok(_) => panic!("expected abort"),
        }
    }

    #[test]
    fn abort_wakes_concrete_tag_receiver() {
        let abort = Arc::new(AtomicBool::new(false));
        let m = Arc::new(Mailbox::new(
            abort.clone(),
            Arc::new(Liveness::new(8)),
            Arc::new(Revocations::new()),
        ));
        let m2 = m.clone();
        let h = thread::spawn(move || m2.take(3, Src::Rank(1), Tag::Value(5), &[]));
        thread::sleep(Duration::from_millis(10));
        abort.store(true, Ordering::Release);
        m.wake_all();
        assert_eq!(h.join().unwrap().unwrap_err(), RuntimeError::Aborted);
    }

    #[test]
    fn probe_does_not_consume() {
        let m = mbox();
        m.push(env(2, 0, 4, 44));
        let info = m.iprobe(0, Src::Any, Tag::Any).unwrap();
        assert_eq!(info, MessageInfo { src: 2, tag: 4, bytes: 4 });
        assert_eq!(m.len(), 1);
        assert_eq!(val(m.take(0, Src::Rank(2), Tag::Value(4), &[]).unwrap()), 44);
        assert!(m.is_empty());
    }

    #[test]
    fn blocking_probe_waits() {
        let m = Arc::new(mbox());
        let m2 = m.clone();
        let h = thread::spawn(move || m2.probe(0, Src::Any, Tag::Value(3), &[]).unwrap());
        thread::sleep(Duration::from_millis(10));
        m.push(env(1, 0, 3, 1));
        let info = h.join().unwrap();
        assert_eq!(info.src, 1);
    }

    #[test]
    fn dead_peer_unblocks_waiter() {
        let liveness = Arc::new(Liveness::new(4));
        let m = Arc::new(Mailbox::new(
            Arc::new(AtomicBool::new(false)),
            liveness.clone(),
            Arc::new(Revocations::new()),
        ));
        let m2 = m.clone();
        let h = thread::spawn(move || {
            m2.take(0, Src::Rank(1), Tag::Any, &[PeerRef { global: 2, local: 1 }])
        });
        thread::sleep(Duration::from_millis(10));
        liveness.kill(2);
        m.wake_all();
        assert_eq!(h.join().unwrap().unwrap_err(), RuntimeError::PeerDead { rank: 1 });
    }

    #[test]
    fn dead_peer_unblocks_concrete_tag_waiter() {
        let liveness = Arc::new(Liveness::new(4));
        let m = Arc::new(Mailbox::new(
            Arc::new(AtomicBool::new(false)),
            liveness.clone(),
            Arc::new(Revocations::new()),
        ));
        let m2 = m.clone();
        let h = thread::spawn(move || {
            m2.take(0, Src::Rank(1), Tag::Value(6), &[PeerRef { global: 2, local: 1 }])
        });
        thread::sleep(Duration::from_millis(10));
        liveness.kill(2);
        m.wake_all();
        assert_eq!(h.join().unwrap().unwrap_err(), RuntimeError::PeerDead { rank: 1 });
    }

    #[test]
    fn message_sent_before_death_still_drains() {
        let liveness = Arc::new(Liveness::new(4));
        let m = Mailbox::new(
            Arc::new(AtomicBool::new(false)),
            liveness.clone(),
            Arc::new(Revocations::new()),
        );
        m.push(env(1, 0, 5, 77));
        liveness.kill(1);
        // The queued message wins over the dead-peer check...
        let peer = [PeerRef { global: 1, local: 1 }];
        assert_eq!(val(m.take(0, Src::Rank(1), Tag::Value(5), &peer).unwrap()), 77);
        // ...and only then does the death surface.
        assert_eq!(
            m.take_timeout(0, Src::Rank(1), Tag::Value(5), Duration::from_secs(5), &peer)
                .unwrap_err(),
            RuntimeError::PeerDead { rank: 1 }
        );
    }

    #[test]
    fn delayed_envelope_held_until_deliver_at() {
        let m = mbox();
        let at = Instant::now() + Duration::from_millis(40);
        m.push(Envelope::new(0, 0, 0, 1, 4, Some(at), Payload::owned(7u32)));
        assert!(m.try_take(0, Src::Any, Tag::Any).is_none(), "not yet deliverable");
        thread::sleep(Duration::from_millis(60));
        assert_eq!(val(m.try_take(0, Src::Any, Tag::Any).unwrap()), 7);
        // Queue is back to the zero-delayed fast path and stays correct.
        m.push(env(0, 0, 1, 8));
        assert_eq!(val(m.take(0, Src::Any, Tag::Any, &[]).unwrap()), 8);
    }

    #[test]
    fn seq_numbers_are_monotone() {
        let m = mbox();
        m.push(env(0, 0, 0, 0));
        m.push(env(0, 0, 0, 1));
        let a = m.take(0, Src::Any, Tag::Any, &[]).unwrap();
        let b = m.take(0, Src::Any, Tag::Any, &[]).unwrap();
        assert!(a.seq < b.seq);
    }

    #[test]
    fn live_and_peak_bytes_track_queue_occupancy() {
        let m = mbox();
        assert_eq!((m.live_bytes(), m.peak_bytes()), (0, 0));
        m.push(env(0, 0, 1, 10)); // 4 bytes per envelope
        m.post_many([env(0, 0, 1, 20), env(0, 0, 2, 30)]);
        assert_eq!(m.live_bytes(), 12);
        assert_eq!(m.peak_bytes(), 12);
        m.take(0, Src::Any, Tag::Any, &[]).unwrap();
        assert_eq!(m.live_bytes(), 8);
        assert_eq!(m.peak_bytes(), 12, "high-water mark persists after drain");
        m.reset_peak_bytes();
        assert_eq!(m.peak_bytes(), 8, "reset lands on the current live level");
        m.try_take(0, Src::Any, Tag::Any).unwrap();
        m.try_take(0, Src::Any, Tag::Any).unwrap();
        assert_eq!(m.live_bytes(), 0);
    }

    #[test]
    fn drained_buckets_are_garbage_collected() {
        let m = mbox();
        for tag in 0..32 {
            m.push(env(0, 0, tag, tag as u32));
        }
        assert_eq!(m.bucket_count(), 32);
        for tag in 0..32 {
            assert_eq!(val(m.try_take(0, Src::Any, Tag::Value(tag)).unwrap()), tag as u32);
        }
        assert_eq!(m.bucket_count(), 0, "empty waiterless buckets must be dropped");
    }
}
