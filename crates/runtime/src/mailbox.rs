//! Per-rank mailboxes.
//!
//! Each rank owns one mailbox; senders push envelopes into the destination's
//! mailbox and receivers scan it for the earliest envelope matching a
//! `(context, source, tag)` pattern. Because the queue is kept in arrival
//! order and the scan takes the *first* match, the runtime preserves MPI's
//! non-overtaking guarantee: two messages from the same sender with the same
//! tag on the same context are received in the order they were sent.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::envelope::{Envelope, MessageInfo, Src, Tag};
use crate::error::{Result, RuntimeError};
use crate::fault::Liveness;

/// Identity of the peer a blocked receive is waiting on, for liveness
/// checks: `global` indexes the world liveness registry, `local` is the
/// rank to report in [`RuntimeError::PeerDead`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerRef {
    /// World rank of the peer.
    pub global: usize,
    /// The peer's rank in the waiting communicator's numbering.
    pub local: usize,
}

struct Inner {
    queue: VecDeque<Envelope>,
    next_seq: u64,
    /// Queued envelopes carrying a `deliver_at` (fault-plane delays).
    /// While zero — the fault-free common case — queue scans skip the
    /// `Instant::now()` read entirely.
    delayed: usize,
}

impl Inner {
    /// Removes the envelope at `i`, maintaining the delayed-message count.
    fn remove_at(&mut self, i: usize) -> Envelope {
        let env = self.queue.remove(i).expect("index just found");
        if env.deliver_at.is_some() {
            self.delayed -= 1;
        }
        env
    }
}

/// A single rank's incoming-message queue.
pub struct Mailbox {
    inner: Mutex<Inner>,
    cond: Condvar,
    abort: Arc<AtomicBool>,
    liveness: Arc<Liveness>,
}

impl Mailbox {
    /// Creates an empty mailbox wired to the world's abort flag and
    /// liveness registry.
    pub fn new(abort: Arc<AtomicBool>, liveness: Arc<Liveness>) -> Self {
        Mailbox {
            inner: Mutex::new(Inner { queue: VecDeque::new(), next_seq: 0, delayed: 0 }),
            cond: Condvar::new(),
            abort,
            liveness,
        }
    }

    /// `PeerDead` when every peer that could satisfy the wait has died.
    /// Called only *after* a failed queue scan, so messages a rank managed
    /// to send before dying still drain normally. An empty slice means the
    /// candidate set is unknown: no liveness check.
    fn check_peers(&self, peers: &[PeerRef]) -> Result<()> {
        if !peers.is_empty() && peers.iter().all(|p| self.liveness.is_dead(p.global)) {
            return Err(RuntimeError::PeerDead { rank: peers[0].local });
        }
        Ok(())
    }

    /// Deposits an envelope and wakes any waiting receiver.
    pub fn push(&self, mut env: Envelope) {
        let mut inner = self.inner.lock();
        env.seq = inner.next_seq;
        inner.next_seq += 1;
        if env.deliver_at.is_some() {
            inner.delayed += 1;
        }
        inner.queue.push_back(env);
        drop(inner);
        self.cond.notify_all();
    }

    /// Wakes all waiters so they can observe the abort flag.
    pub fn wake_all(&self) {
        self.cond.notify_all();
    }

    fn find(inner: &Inner, context: u32, src: Src, tag: Tag) -> Option<usize> {
        if inner.delayed == 0 {
            // Nothing in the queue carries a future delivery time, so the
            // scan needs no clock read (the fault-free hot path).
            return inner.queue.iter().position(|e| e.matches(context, src, tag));
        }
        let now = Instant::now();
        inner
            .queue
            .iter()
            .position(|e| e.matches(context, src, tag) && e.deliver_at.is_none_or(|t| t <= now))
    }

    /// Earliest future delivery instant among matching messages (network
    /// model): the moment a blocked receive should re-check.
    fn earliest_pending(inner: &Inner, context: u32, src: Src, tag: Tag) -> Option<Instant> {
        if inner.delayed == 0 {
            return None;
        }
        inner
            .queue
            .iter()
            .filter(|e| e.matches(context, src, tag))
            .filter_map(|e| e.deliver_at)
            .min()
    }

    /// Removes and returns the earliest matching envelope without blocking.
    pub fn try_take(&self, context: u32, src: Src, tag: Tag) -> Option<Envelope> {
        let mut inner = self.inner.lock();
        Self::find(&inner, context, src, tag).map(|i| inner.remove_at(i))
    }

    /// Blocks until a matching envelope arrives and is deliverable, the
    /// world aborts, or every awaitable peer is found dead.
    pub fn take(&self, context: u32, src: Src, tag: Tag, peers: &[PeerRef]) -> Result<Envelope> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(i) = Self::find(&inner, context, src, tag) {
                return Ok(inner.remove_at(i));
            }
            if self.abort.load(Ordering::Acquire) {
                return Err(RuntimeError::Aborted);
            }
            self.check_peers(peers)?;
            match Self::earliest_pending(&inner, context, src, tag) {
                // A matching message is in flight: sleep until it lands.
                Some(at) => {
                    let _ = self.cond.wait_until(&mut inner, at);
                }
                None => self.cond.wait(&mut inner),
            }
        }
    }

    /// Blocks until a matching envelope arrives, the world aborts, the
    /// awaitable peers all die, or `timeout` elapses.
    pub fn take_timeout(
        &self,
        context: u32,
        src: Src,
        tag: Tag,
        timeout: Duration,
        peers: &[PeerRef],
    ) -> Result<Envelope> {
        let start = Instant::now();
        let deadline = start + timeout;
        let mut inner = self.inner.lock();
        loop {
            if let Some(i) = Self::find(&inner, context, src, tag) {
                return Ok(inner.remove_at(i));
            }
            if self.abort.load(Ordering::Acquire) {
                return Err(RuntimeError::Aborted);
            }
            self.check_peers(peers)?;
            let wake = match Self::earliest_pending(&inner, context, src, tag) {
                Some(at) if at < deadline => at,
                _ => deadline,
            };
            if self.cond.wait_until(&mut inner, wake).timed_out() && wake >= deadline {
                // One final scan: the message may have raced the timeout.
                if let Some(i) = Self::find(&inner, context, src, tag) {
                    return Ok(inner.remove_at(i));
                }
                return Err(RuntimeError::timeout(
                    format!("message (context={context})"),
                    start.elapsed(),
                    src,
                    tag,
                ));
            }
        }
    }

    /// Returns metadata for the earliest matching envelope without removing
    /// it, or `None` if nothing matches right now.
    pub fn iprobe(&self, context: u32, src: Src, tag: Tag) -> Option<MessageInfo> {
        let inner = self.inner.lock();
        Self::find(&inner, context, src, tag).map(|i| {
            let e = &inner.queue[i];
            MessageInfo { src: e.src_local, tag: e.tag, bytes: e.bytes }
        })
    }

    /// Blocks until a matching envelope is present and deliverable,
    /// returning its metadata without removing it.
    pub fn probe(&self, context: u32, src: Src, tag: Tag, peers: &[PeerRef]) -> Result<MessageInfo> {
        let mut inner = self.inner.lock();
        loop {
            if let Some(i) = Self::find(&inner, context, src, tag) {
                let e = &inner.queue[i];
                return Ok(MessageInfo { src: e.src_local, tag: e.tag, bytes: e.bytes });
            }
            if self.abort.load(Ordering::Acquire) {
                return Err(RuntimeError::Aborted);
            }
            self.check_peers(peers)?;
            match Self::earliest_pending(&inner, context, src, tag) {
                Some(at) => {
                    let _ = self.cond.wait_until(&mut inner, at);
                }
                None => self.cond.wait(&mut inner),
            }
        }
    }

    /// Number of messages currently queued (all contexts).
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// Whether the mailbox is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn env(src: usize, context: u32, tag: i32, val: u32) -> Envelope {
        Envelope::new(src, src, context, tag, 4, None, Box::new(val))
    }

    fn mbox() -> Mailbox {
        Mailbox::new(Arc::new(AtomicBool::new(false)), Arc::new(Liveness::new(8)))
    }

    fn val(e: Envelope) -> u32 {
        *e.payload.downcast::<u32>().unwrap()
    }

    #[test]
    fn fifo_per_sender_and_tag() {
        let m = mbox();
        m.push(env(0, 0, 1, 10));
        m.push(env(0, 0, 1, 20));
        assert_eq!(val(m.take(0, Src::Rank(0), Tag::Value(1), &[]).unwrap()), 10);
        assert_eq!(val(m.take(0, Src::Rank(0), Tag::Value(1), &[]).unwrap()), 20);
    }

    #[test]
    fn tag_selective_receive_skips_nonmatching() {
        let m = mbox();
        m.push(env(0, 0, 1, 10));
        m.push(env(0, 0, 2, 20));
        assert_eq!(val(m.take(0, Src::Rank(0), Tag::Value(2), &[]).unwrap()), 20);
        assert_eq!(val(m.take(0, Src::Rank(0), Tag::Value(1), &[]).unwrap()), 10);
    }

    #[test]
    fn context_isolation() {
        let m = mbox();
        m.push(env(0, 7, 1, 10));
        assert!(m.try_take(0, Src::Any, Tag::Any).is_none());
        assert!(m.try_take(7, Src::Any, Tag::Any).is_some());
    }

    #[test]
    fn any_source_takes_earliest_arrival() {
        let m = mbox();
        m.push(env(3, 0, 1, 30));
        m.push(env(1, 0, 1, 10));
        assert_eq!(val(m.take(0, Src::Any, Tag::Value(1), &[]).unwrap()), 30);
    }

    #[test]
    fn take_blocks_until_push() {
        let m = Arc::new(mbox());
        let m2 = m.clone();
        let h = thread::spawn(move || val(m2.take(0, Src::Rank(0), Tag::Value(9), &[]).unwrap()));
        thread::sleep(Duration::from_millis(20));
        m.push(env(0, 0, 9, 99));
        assert_eq!(h.join().unwrap(), 99);
    }

    #[test]
    fn timeout_fires_when_no_message() {
        let m = mbox();
        let r = m.take_timeout(0, Src::Any, Tag::Any, Duration::from_millis(20), &[]);
        assert!(matches!(r, Err(RuntimeError::Timeout { .. })));
    }

    #[test]
    fn timeout_returns_message_that_arrives_in_time() {
        let m = Arc::new(mbox());
        let m2 = m.clone();
        thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            m2.push(env(0, 0, 1, 5));
        });
        let r = m.take_timeout(0, Src::Any, Tag::Any, Duration::from_secs(5), &[]).unwrap();
        assert_eq!(val(r), 5);
    }

    #[test]
    fn abort_wakes_blocked_receiver() {
        let abort = Arc::new(AtomicBool::new(false));
        let m = Arc::new(Mailbox::new(abort.clone(), Arc::new(Liveness::new(8))));
        let m2 = m.clone();
        let h = thread::spawn(move || m2.take(0, Src::Any, Tag::Any, &[]));
        thread::sleep(Duration::from_millis(10));
        abort.store(true, Ordering::Release);
        m.wake_all();
        match h.join().unwrap() {
            Err(e) => assert_eq!(e, RuntimeError::Aborted),
            Ok(_) => panic!("expected abort"),
        }
    }

    #[test]
    fn probe_does_not_consume() {
        let m = mbox();
        m.push(env(2, 0, 4, 44));
        let info = m.iprobe(0, Src::Any, Tag::Any).unwrap();
        assert_eq!(info, MessageInfo { src: 2, tag: 4, bytes: 4 });
        assert_eq!(m.len(), 1);
        assert_eq!(val(m.take(0, Src::Rank(2), Tag::Value(4), &[]).unwrap()), 44);
        assert!(m.is_empty());
    }

    #[test]
    fn blocking_probe_waits() {
        let m = Arc::new(mbox());
        let m2 = m.clone();
        let h = thread::spawn(move || m2.probe(0, Src::Any, Tag::Value(3), &[]).unwrap());
        thread::sleep(Duration::from_millis(10));
        m.push(env(1, 0, 3, 1));
        let info = h.join().unwrap();
        assert_eq!(info.src, 1);
    }

    #[test]
    fn dead_peer_unblocks_waiter() {
        let liveness = Arc::new(Liveness::new(4));
        let m = Arc::new(Mailbox::new(Arc::new(AtomicBool::new(false)), liveness.clone()));
        let m2 = m.clone();
        let h = thread::spawn(move || {
            m2.take(0, Src::Rank(1), Tag::Any, &[PeerRef { global: 2, local: 1 }])
        });
        thread::sleep(Duration::from_millis(10));
        liveness.kill(2);
        m.wake_all();
        assert_eq!(h.join().unwrap().unwrap_err(), RuntimeError::PeerDead { rank: 1 });
    }

    #[test]
    fn message_sent_before_death_still_drains() {
        let liveness = Arc::new(Liveness::new(4));
        let m = Mailbox::new(Arc::new(AtomicBool::new(false)), liveness.clone());
        m.push(env(1, 0, 5, 77));
        liveness.kill(1);
        // The queued message wins over the dead-peer check...
        let peer = [PeerRef { global: 1, local: 1 }];
        assert_eq!(val(m.take(0, Src::Rank(1), Tag::Value(5), &peer).unwrap()), 77);
        // ...and only then does the death surface.
        assert_eq!(
            m.take_timeout(0, Src::Rank(1), Tag::Value(5), Duration::from_secs(5), &peer)
                .unwrap_err(),
            RuntimeError::PeerDead { rank: 1 }
        );
    }

    #[test]
    fn delayed_envelope_held_until_deliver_at() {
        let m = mbox();
        let at = Instant::now() + Duration::from_millis(40);
        m.push(Envelope::new(0, 0, 0, 1, 4, Some(at), Box::new(7u32)));
        assert!(m.try_take(0, Src::Any, Tag::Any).is_none(), "not yet deliverable");
        thread::sleep(Duration::from_millis(60));
        assert_eq!(val(m.try_take(0, Src::Any, Tag::Any).unwrap()), 7);
        // Queue is back to the zero-delayed fast path and stays correct.
        m.push(env(0, 0, 1, 8));
        assert_eq!(val(m.take(0, Src::Any, Tag::Any, &[]).unwrap()), 8);
    }

    #[test]
    fn seq_numbers_are_monotone() {
        let m = mbox();
        m.push(env(0, 0, 0, 0));
        m.push(env(0, 0, 0, 1));
        let a = m.take(0, Src::Any, Tag::Any, &[]).unwrap();
        let b = m.take(0, Src::Any, Tag::Any, &[]).unwrap();
        assert!(a.seq < b.seq);
    }
}
