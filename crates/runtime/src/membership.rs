//! Epoch-based membership and fault-tolerant recovery, in the spirit of
//! MPI ULFM (User-Level Failure Mitigation).
//!
//! PR 1 made rank death *detectable*: blocked operations return
//! [`RuntimeError::PeerDead`] instead of hanging. This module makes it
//! *survivable*. The model mirrors ULFM's three primitives:
//!
//! * **revoke** — a survivor that observed a failure poisons the
//!   communicator's context pair; every pending and future operation on it
//!   fails with [`RuntimeError::Revoked`], so all participants fall out of
//!   the old epoch together instead of some hanging on stale traffic.
//! * **agree** — a fault-tolerant agreement collective over the world
//!   context (which is never revoked): two rounds of complete-graph
//!   gossip combining votes with bitwise AND. Dead participants are
//!   skipped via receive-side liveness; a second round spreads the
//!   first-round combination so all survivors decide the same value as
//!   long as failures do not cascade *during* the protocol itself.
//! * **shrink** — builds a dense survivor communicator with deterministic
//!   rank renumbering (ascending old rank) on a fresh context, agreed via
//!   `agree` so every survivor constructs the identical group.
//!
//! The recovery control channel is modelled as *reliable*: `agree`
//! temporarily disarms the caller's fault plane so drop/corrupt policies
//! cannot eat the agreement traffic (deaths are still honored — liveness
//! is checked regardless of arming). This keeps the commit protocols built
//! on top of it sound under every fault seed, which is exactly what a real
//! system buys with a separately-provisioned control network.
//!
//! Survivor contexts are distributed through a shared registry
//! ([`Revocations::survivor_context`]) keyed on `(old context, agreed
//! survivor mask)`: the first survivor to arrive allocates the fresh
//! context pair, later arrivals read the same id. Like the liveness
//! registry, this exploits the in-process runtime; a distributed
//! implementation would piggyback the id on the agreement.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::comm::Comm;
use crate::envelope::COLLECTIVE_TAG_BASE;
use crate::error::{Result, RuntimeError};
use crate::msgsize::MsgSize;
use crate::shared::WorldShared;
use crate::tracing::ctx_class;
use mxn_trace::{emit_instant, span, EventId};

/// Base of the tag range reserved for recovery-plane traffic on the world
/// context. Sits far above application tags (which stay small in practice)
/// and below [`COLLECTIVE_TAG_BASE`], so neither plane can match it.
pub(crate) const RECOVERY_TAG_BASE: i32 = COLLECTIVE_TAG_BASE - (1 << 22);

/// Tag for [`JoinOffer`] invitations to newcomer ranks, sent over the world
/// context by a reconfiguration's sponsor. Sits just below the agreement
/// tag range (and far above any tag an RMA window can produce).
pub(crate) const JOIN_TAG: i32 = RECOVERY_TAG_BASE - 1;

/// Base of the tag range reserved for one-sided RMA window traffic (see
/// [`crate::rma`]). A window's tags span `RMA_TAG_BASE ..= RMA_TAG_BASE +
/// 0x3fff`, well below [`JOIN_TAG`].
pub(crate) const RMA_TAG_BASE: i32 = RECOVERY_TAG_BASE - (1 << 22);

/// Per-peer wait inside `agree` before a silent participant is excluded.
/// Alive peers in this in-process runtime deliver promptly; only a dead
/// peer's missing contribution pays this (and usually fails fast via the
/// liveness check instead).
const AGREE_PEER_TIMEOUT: Duration = Duration::from_millis(150);

/// Encodes `(channel, seq, round)` into a recovery tag so concurrent
/// agreements on different communicators (and successive agreements on the
/// same one) never cross-match.
fn agree_tag(channel: u32, seq: u64, round: u8) -> i32 {
    RECOVERY_TAG_BASE
        + (((channel & 0x3ff) as i32) << 8)
        + (((seq & 0x3f) as i32) << 2)
        + round as i32
}

/// One gossip contribution: the sender's current AND-combined vote mask.
#[derive(Debug, Clone, Copy)]
struct AgreeMsg {
    value: u64,
}

impl MsgSize for AgreeMsg {
    fn msg_size(&self) -> usize {
        std::mem::size_of::<u64>()
    }
}

/// Registry for a shrink epoch: `(old context, survivor mask)` → the fresh
/// context pair and the 1-based shrink count of that old context.
/// `reconfigs` is the expand-direction twin, keyed additionally on the
/// attempt number so a retry after an aborted handshake gets a fresh
/// context (and therefore fresh agreement tags) instead of colliding with
/// stale traffic from the failed attempt.
#[derive(Default)]
struct RecoveryTable {
    contexts: HashMap<(u32, u64), (u32, u64)>,
    shrinks: HashMap<u32, u64>,
    reconfigs: HashMap<(u32, u64, u64), (u32, u64)>,
    reconfig_counts: HashMap<u32, u64>,
}

/// World-global revocation state: which context pairs are poisoned, the
/// global revocation epoch, and the survivor-context registry.
///
/// Shared by every mailbox of a world; consulted on every blocking receive
/// and every send so a revoked communicator fails everywhere at once.
#[derive(Default)]
pub struct Revocations {
    /// Poisoned context ids (both members of each revoked pair).
    revoked: Mutex<HashSet<u32>>,
    /// Cached `revoked.len()`; the fast path (`count == 0`, no revocations
    /// ever) skips the lock on every message operation.
    count: AtomicUsize,
    /// Bumped once per newly revoked pair.
    epoch: AtomicU64,
    table: Mutex<RecoveryTable>,
}

impl Revocations {
    /// Fresh state: nothing revoked.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether `context` has been revoked.
    #[inline]
    pub fn is_revoked(&self, context: u32) -> bool {
        self.count.load(Ordering::Acquire) != 0 && self.revoked.lock().contains(&context)
    }

    /// `Err(Revoked)` if `context` has been revoked.
    #[inline]
    pub fn check(&self, context: u32) -> Result<()> {
        if self.is_revoked(context) {
            Err(RuntimeError::Revoked { context })
        } else {
            Ok(())
        }
    }

    /// Number of context pairs revoked so far.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Poisons the pair `(base, base + 1)`. Returns whether this call newly
    /// revoked it (revocation is idempotent).
    pub(crate) fn mark(&self, base: u32) -> bool {
        let mut set = self.revoked.lock();
        let newly = set.insert(base);
        set.insert(base + 1);
        self.count.store(set.len(), Ordering::Release);
        drop(set);
        if newly {
            self.epoch.fetch_add(1, Ordering::AcqRel);
        }
        newly
    }

    /// Returns the survivor context for `(old, mask)`, allocating it via
    /// `alloc` on first arrival. All survivors of one agreed shrink get the
    /// identical `(context, shrink_epoch)` without extra messaging.
    pub(crate) fn survivor_context(
        &self,
        old: u32,
        mask: u64,
        alloc: impl FnOnce() -> u32,
    ) -> (u32, u64) {
        let mut t = self.table.lock();
        if let Some(&found) = t.contexts.get(&(old, mask)) {
            return found;
        }
        let ctx = alloc();
        let epoch = {
            let e = t.shrinks.entry(old).or_insert(0);
            *e += 1;
            *e
        };
        t.contexts.insert((old, mask), (ctx, epoch));
        (ctx, epoch)
    }

    /// Returns the proposed context for reconfiguration attempt `attempt`
    /// of `old` toward the membership described by `mask`, allocating via
    /// `alloc` on first arrival. Every incumbent participant of one
    /// reconfiguration computes the same key and therefore reads the same
    /// `(context, reconfig_epoch)` without extra messaging; newcomers learn
    /// it from their [`JoinOffer`].
    pub(crate) fn reconfig_context(
        &self,
        old: u32,
        mask: u64,
        attempt: u64,
        alloc: impl FnOnce() -> u32,
    ) -> (u32, u64) {
        let mut t = self.table.lock();
        if let Some(&found) = t.reconfigs.get(&(old, mask, attempt)) {
            return found;
        }
        let ctx = alloc();
        let epoch = {
            let e = t.reconfig_counts.entry(old).or_insert(0);
            *e += 1;
            *e
        };
        t.reconfigs.insert((old, mask, attempt), (ctx, epoch));
        (ctx, epoch)
    }
}

/// What an intercomm shrink decided, in *old* rank numbering — the data a
/// coupling layer needs to re-derive decompositions over the survivor set.
/// `local_survivors[k]` is the old local rank that became new rank `k`
/// (dense renumbering preserves ascending old-rank order on both sides).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShrinkReport {
    /// Old this-side local ranks that survived, ascending.
    pub local_survivors: Vec<usize>,
    /// Old remote-side local ranks that survived, ascending.
    pub remote_survivors: Vec<usize>,
    /// 1-based count of shrinks this channel has undergone.
    pub epoch: u64,
}

/// What an intercomm reconfiguration (expand or graceful contract)
/// committed, in *global* rank numbering and from the caller's own
/// perspective (`local` = the caller's side) — the data a coupling layer
/// needs to re-derive decompositions over both memberships and move the
/// elements between epochs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReconfigReport {
    /// Global ranks of the caller's side before the reconfiguration.
    pub old_local_group: Vec<usize>,
    /// Global ranks of the opposite side before the reconfiguration.
    pub old_remote_group: Vec<usize>,
    /// Global ranks of the caller's side after the reconfiguration.
    pub new_local_group: Vec<usize>,
    /// Global ranks of the opposite side after the reconfiguration.
    pub new_remote_group: Vec<usize>,
    /// 1-based count of reconfigurations this channel has undergone.
    pub epoch: u64,
    /// The attempt number that committed.
    pub attempt: u64,
}

/// The sponsor's invitation to one newcomer rank: everything the joiner
/// needs to take part in the commit vote and, on commit, construct its
/// intercomm handle. Groups are written from the *joiner's* perspective
/// (`local` = the side it is joining).
///
/// Public (not `pub(crate)`) because the wire transport sends the same
/// offer across a process boundary: [`JoinOffer::to_wire_bytes`] /
/// [`JoinOffer::from_wire_bytes`] are its length-prefixed little-endian
/// framing, used by `mxn-wire`'s spare-process join handshake.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinOffer {
    /// Which intercomm side the newcomer joins (0 or 1).
    pub side: usize,
    /// The newcomer's local rank within its side's new group.
    pub local_rank: usize,
    /// The proposed context pair base for the new epoch.
    pub context: u32,
    /// Reconfiguration attempt number of the proposing handshake.
    pub attempt: u64,
    /// 1-based reconfiguration epoch of the channel.
    pub epoch: u64,
    /// Global ranks of the joiner's side after the reconfiguration.
    pub local_group: Vec<usize>,
    /// Global ranks of the opposite side after the reconfiguration.
    pub remote_group: Vec<usize>,
    /// Pre-reconfiguration groups, joiner's perspective — for data rebind.
    pub old_local_group: Vec<usize>,
    /// Pre-reconfiguration opposite side, joiner's perspective.
    pub old_remote_group: Vec<usize>,
    /// Sorted union of old and new members: the vote membership.
    pub participants: Vec<usize>,
}

impl MsgSize for JoinOffer {
    fn msg_size(&self) -> usize {
        let vec_elems = self.local_group.len()
            + self.remote_group.len()
            + self.old_local_group.len()
            + self.old_remote_group.len()
            + self.participants.len();
        vec_elems * std::mem::size_of::<usize>() + 5 * std::mem::size_of::<u64>()
    }
}

impl JoinOffer {
    /// Serializes the offer for transmission across a process boundary:
    /// fixed scalars little-endian, each group as a `u32` length prefix
    /// followed by `u64` ranks. The in-proc path never pays this — offers
    /// inside one address space move as typed envelopes.
    pub fn to_wire_bytes(&self) -> Vec<u8> {
        fn put_group(out: &mut Vec<u8>, group: &[usize]) {
            out.extend_from_slice(&(group.len() as u32).to_le_bytes());
            for &r in group {
                out.extend_from_slice(&(r as u64).to_le_bytes());
            }
        }
        let mut out = Vec::with_capacity(self.msg_size() + 32);
        out.extend_from_slice(&(self.side as u64).to_le_bytes());
        out.extend_from_slice(&(self.local_rank as u64).to_le_bytes());
        out.extend_from_slice(&self.context.to_le_bytes());
        out.extend_from_slice(&self.attempt.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        put_group(&mut out, &self.local_group);
        put_group(&mut out, &self.remote_group);
        put_group(&mut out, &self.old_local_group);
        put_group(&mut out, &self.old_remote_group);
        put_group(&mut out, &self.participants);
        out
    }

    /// Total decoder for [`JoinOffer::to_wire_bytes`]: any truncated or
    /// trailing-garbage input returns `None`, never panics — the bytes
    /// arrive over a wire that injects faults.
    pub fn from_wire_bytes(bytes: &[u8]) -> Option<JoinOffer> {
        struct Cursor<'a>(&'a [u8]);
        impl Cursor<'_> {
            fn u64(&mut self) -> Option<u64> {
                let (head, rest) = self.0.split_at_checked(8)?;
                self.0 = rest;
                Some(u64::from_le_bytes(head.try_into().ok()?))
            }
            fn u32(&mut self) -> Option<u32> {
                let (head, rest) = self.0.split_at_checked(4)?;
                self.0 = rest;
                Some(u32::from_le_bytes(head.try_into().ok()?))
            }
            fn group(&mut self) -> Option<Vec<usize>> {
                let len = self.u32()? as usize;
                if len > self.0.len() / 8 {
                    return None; // forged length, refuse to allocate it
                }
                (0..len).map(|_| self.u64().map(|r| r as usize)).collect()
            }
        }
        let mut c = Cursor(bytes);
        let offer = JoinOffer {
            side: c.u64()? as usize,
            local_rank: c.u64()? as usize,
            context: c.u32()?,
            attempt: c.u64()?,
            epoch: c.u64()?,
            local_group: c.group()?,
            remote_group: c.group()?,
            old_local_group: c.group()?,
            old_remote_group: c.group()?,
            participants: c.group()?,
        };
        if c.0.is_empty() {
            Some(offer)
        } else {
            None
        }
    }
}

/// Fault-tolerant agreement over `members` (world ranks, identical order on
/// every participant): two AND-combining gossip rounds on the world
/// context. Returns the combined value; dead or silent members are
/// excluded from the combination.
pub(crate) fn agree_over(
    shared: &Arc<WorldShared>,
    my_global: usize,
    members: &[usize],
    channel: u32,
    seq: u64,
    value: u64,
) -> Result<u64> {
    assert!(members.len() <= 64, "agreement masks are u64: at most 64 participants");
    // Reliable control channel: message faults are disarmed for the
    // protocol's own traffic, then the previous arming is restored.
    let was_armed = shared.fault().map(|fp| fp.is_armed(my_global));
    shared.fault_set_armed(my_global, false);
    let result = agree_rounds(shared, my_global, members, channel, seq, value);
    if was_armed == Some(true) {
        shared.fault_set_armed(my_global, true);
    }
    result
}

fn agree_rounds(
    shared: &Arc<WorldShared>,
    my_global: usize,
    members: &[usize],
    channel: u32,
    seq: u64,
    value: u64,
) -> Result<u64> {
    let world = Comm::world(shared.clone(), my_global);
    let mut guard = span(EventId::Agree, [members.len() as u64, seq, 0, 0]);
    let mut acc = value;
    let mut heard = 0u64;
    for round in 0..2u8 {
        let tag = agree_tag(channel, seq, round);
        for &peer in members.iter().filter(|&&p| p != my_global) {
            // Sends to dead peers succeed silently, so an error here is the
            // caller's own death (or abort): propagate.
            world.send(peer, tag, AgreeMsg { value: acc })?;
        }
        for &peer in members.iter().filter(|&&p| p != my_global) {
            match world.recv_timeout::<AgreeMsg>(peer, tag, AGREE_PEER_TIMEOUT) {
                Ok(m) => {
                    acc &= m.value;
                    heard += 1;
                }
                // Dead or silent: excluded from the combination.
                Err(e) if e.is_failure_detection() => {}
                Err(e) => return Err(e),
            }
        }
    }
    guard.set_end([members.len() as u64, heard, 0, 0]);
    Ok(acc)
}

/// The recovery view of a [`Comm`]: ULFM-style revoke / agree / shrink.
/// Obtained via [`Comm::membership`].
pub struct Membership<'a> {
    comm: &'a Comm,
}

impl<'a> Membership<'a> {
    pub(crate) fn new(comm: &'a Comm) -> Self {
        Membership { comm }
    }

    /// Local ranks currently alive, ascending. A snapshot — deaths after
    /// the call are not reflected.
    pub fn survivors(&self) -> Vec<usize> {
        let liveness = self.comm.shared().liveness();
        (0..self.comm.size()).filter(|&r| !liveness.is_dead(self.comm.group()[r])).collect()
    }

    /// Whether this communicator's context has been revoked.
    pub fn is_revoked(&self) -> bool {
        self.comm.shared().revocations().is_revoked(self.comm.context())
    }

    /// Poisons this communicator's context pair: every pending and future
    /// operation on it (point-to-point and collective) fails with
    /// [`RuntimeError::Revoked`] on every rank. Idempotent; returns whether
    /// this call newly revoked it. The world communicator cannot be
    /// revoked — recovery itself runs on it — so revoking it returns
    /// `false` and changes nothing.
    pub fn revoke(&self) -> bool {
        self.comm.shared().revoke_context(self.comm.context())
    }

    /// Fault-tolerant agreement across the group: returns the bitwise AND
    /// of every surviving member's `value`. Must be called by all surviving
    /// members, in the same recovery order.
    pub fn agree(&self, value: u64) -> Result<u64> {
        let comm = self.comm;
        let seq = comm.recovery_seq.get();
        comm.recovery_seq.set(seq + 1);
        agree_over(comm.shared(), comm.global_rank(), comm.group(), comm.context(), seq, value)
    }

    /// Builds the dense survivor communicator: members agree on the alive
    /// mask, dead ranks are dropped, and survivors are renumbered 0..s in
    /// ascending old-rank order on a fresh context. Deaths *during* the
    /// call surface on the next shrink, exactly like ULFM's
    /// `MPI_Comm_shrink`.
    pub fn shrink(&self) -> Result<Comm> {
        let comm = self.comm;
        let shared = comm.shared();
        let n = comm.size();
        assert!(n <= 64, "shrink masks are u64: at most 64 participants");
        let liveness = shared.liveness();
        let mut mask = 0u64;
        for (i, &g) in comm.group().iter().enumerate() {
            if !liveness.is_dead(g) {
                mask |= 1 << i;
            }
        }
        let seq = comm.recovery_seq.get();
        comm.recovery_seq.set(seq + 1);
        let agreed =
            agree_over(shared, comm.global_rank(), comm.group(), comm.context(), seq, mask)?;
        let survivors: Vec<usize> = (0..n).filter(|&i| agreed & (1 << i) != 0).collect();
        let my_new = survivors
            .iter()
            .position(|&i| i == comm.rank())
            .ok_or(RuntimeError::PeerDead { rank: comm.rank() })?;
        let (ctx, _epoch) = shared.survivor_context(comm.context(), agreed);
        emit_instant(EventId::Shrink, [n as u64, survivors.len() as u64, ctx_class(ctx), 0]);
        let group: Vec<usize> = survivors.iter().map(|&i| comm.group()[i]).collect();
        Ok(Comm::from_parts(shared.clone(), Arc::new(group), my_new, ctx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::{Src, Tag};
    use crate::fault::FaultConfig;
    use crate::world::World;
    use std::time::Duration;

    #[test]
    fn revoke_poisons_pending_and_future_ops() {
        World::run(2, |p| {
            let c = p.world();
            let d = c.dup().unwrap();
            if c.rank() == 0 {
                // Wait for rank 1 to be parked on the derived comm, then
                // revoke it from the other side.
                c.recv::<u8>(1, 1).unwrap();
                assert!(d.membership().revoke());
                assert!(!d.membership().revoke(), "idempotent");
                // Future ops fail too, on the revoker itself.
                let e = d.send(1, 9, 1u8).unwrap_err();
                assert!(e.is_revoked(), "send on revoked ctx: {e}");
            } else {
                c.send(0, 1, 1u8).unwrap();
                let e = d.recv::<u8>(0, 3).unwrap_err();
                assert_eq!(e, RuntimeError::Revoked { context: d.context() });
                // Collectives ride ctx + 1 of the pair: poisoned as well.
                let e = d.barrier().unwrap_err();
                assert!(e.is_revoked(), "collective on revoked ctx: {e}");
            }
            // World traffic is unaffected.
            let peer = 1 - c.rank();
            c.send(peer, 5, 7u8).unwrap();
            assert_eq!(c.recv::<u8>(peer, 5).unwrap(), 7);
        });
    }

    #[test]
    fn world_context_cannot_be_revoked() {
        World::run(1, |p| {
            let c = p.world();
            assert!(!c.membership().revoke());
            assert!(!c.membership().is_revoked());
            c.send(0, 0, 3u8).unwrap();
            assert_eq!(c.recv::<u8>(0, 0).unwrap(), 3);
        });
    }

    #[test]
    fn revoked_messages_already_queued_are_not_delivered() {
        World::run(2, |p| {
            let c = p.world();
            let d = c.dup().unwrap();
            if c.rank() == 0 {
                d.send(1, 4, 9u8).unwrap(); // queued before the revoke
                c.send(1, 0, 0u8).unwrap(); // "sent" signal
            } else {
                c.recv::<u8>(0, 0).unwrap();
                d.membership().revoke();
                let e = d.recv::<u8>(0, 4).unwrap_err();
                assert!(e.is_revoked(), "stale-epoch message must not deliver: {e}");
            }
        });
    }

    #[test]
    fn agree_ands_votes_and_skips_the_dead() {
        let cfg = FaultConfig::reliable(7);
        let (masks, _) = World::run_with_faults(3, cfg, |p| {
            if p.rank() == 0 {
                p.kill_rank(0);
                return 0;
            }
            let c = p.world();
            let vote = if c.rank() == 1 { 0b110 } else { 0b111 };
            c.membership().agree(vote).unwrap()
        });
        assert_eq!(masks[1], 0b110);
        assert_eq!(masks[2], 0b110, "all survivors agree on the AND of survivor votes");
    }

    #[test]
    fn shrink_renumbers_and_survivor_comm_works() {
        let cfg = FaultConfig::reliable(11);
        World::run_with_faults(4, cfg, |p| {
            if p.rank() == 1 {
                p.kill_rank(1);
                return;
            }
            // Shrink drops only deaths already visible; wait for the kill.
            while !p.is_dead(1) {
                std::thread::yield_now();
            }
            let c = p.world();
            let d = c.dup().unwrap();
            let s = d.membership().shrink().unwrap();
            assert_eq!(s.size(), 3);
            let expect_rank = match c.rank() {
                0 => 0,
                2 => 1,
                3 => 2,
                _ => unreachable!(),
            };
            assert_eq!(s.rank(), expect_rank, "dense ascending renumbering");
            assert_eq!(s.group(), &[0, 2, 3]);
            assert_ne!(s.context(), d.context(), "fresh context pair");
            // The survivor communicator is fully operational, collectives
            // included.
            let total: u64 = s.allreduce(c.rank() as u64, |a, b| *a += b).unwrap();
            assert_eq!(total, 2 + 3);
        });
    }

    #[test]
    fn repeated_shrink_is_idempotent_on_the_same_failure() {
        let cfg = FaultConfig::reliable(13);
        World::run_with_faults(3, cfg, |p| {
            if p.rank() == 2 {
                p.kill_rank(2);
                return;
            }
            while !p.is_dead(2) {
                std::thread::yield_now();
            }
            let c = p.world();
            let d = c.dup().unwrap();
            let s1 = d.membership().shrink().unwrap();
            let s2 = d.membership().shrink().unwrap();
            assert_eq!(s1.context(), s2.context(), "same survivor mask, same context");
            assert_eq!(s1.rank(), s2.rank());
        });
    }

    #[test]
    fn agree_tags_stay_below_collective_base() {
        for channel in [0u32, 2, 1023, 4096] {
            for seq in [0u64, 1, 63, 64] {
                for round in 0..2u8 {
                    let t = agree_tag(channel, seq, round);
                    assert!(t >= RECOVERY_TAG_BASE);
                    assert!(t < COLLECTIVE_TAG_BASE);
                }
            }
        }
    }

    #[test]
    fn survivor_context_registry_is_deterministic() {
        let r = Revocations::new();
        let (a, e1) = r.survivor_context(6, 0b101, || 40);
        let (b, e2) = r.survivor_context(6, 0b101, || panic!("must not re-allocate"));
        assert_eq!((a, e1), (b, e2));
        let (c, e3) = r.survivor_context(6, 0b100, || 42);
        assert_eq!(c, 42);
        assert_eq!(e3, 2, "second shrink of the same channel");
    }

    #[test]
    fn reconfig_context_registry_keys_on_attempt() {
        let r = Revocations::new();
        let (a, e1) = r.reconfig_context(6, 0b111, 0, || 50);
        let (b, e2) = r.reconfig_context(6, 0b111, 0, || panic!("must not re-allocate"));
        assert_eq!((a, e1), (b, e2));
        // A retry after an aborted handshake is a different attempt:
        // fresh context, next reconfig epoch.
        let (c, e3) = r.reconfig_context(6, 0b111, 1, || 52);
        assert_eq!(c, 52);
        assert_eq!(e3, 2);
        // Independent of the shrink registry.
        let (d, s1) = r.survivor_context(6, 0b111, || 54);
        assert_eq!((d, s1), (54, 1));
    }

    // Tag-layout invariants, pinned at compile time: join offers sit below
    // the recovery plane, RMA window tags cannot collide with join offers,
    // and everything stays far above application tags.
    const _: () = {
        assert!(JOIN_TAG < RECOVERY_TAG_BASE);
        assert!(RMA_TAG_BASE + 0x3fff < JOIN_TAG);
        assert!(RMA_TAG_BASE > 0);
    };

    #[test]
    fn revocation_epoch_counts_pairs() {
        let r = Revocations::new();
        assert_eq!(r.epoch(), 0);
        assert!(r.mark(4));
        assert!(r.is_revoked(4));
        assert!(r.is_revoked(5), "collective context revoked with its pair");
        assert!(!r.is_revoked(6));
        assert!(!r.mark(4));
        assert_eq!(r.epoch(), 1);
        assert!(r.check(4).is_err());
        assert!(r.check(0).is_ok());
    }

    #[test]
    fn pending_recv_is_woken_by_revoke() {
        // A receiver already parked inside `take` (not just about to enter)
        // must be woken and see Revoked.
        World::run(2, |p| {
            let c = p.world();
            let d = c.dup().unwrap();
            if c.rank() == 0 {
                std::thread::sleep(Duration::from_millis(30));
                d.membership().revoke();
            } else {
                let e = d.recv::<u8>(0, 3).unwrap_err();
                assert!(e.is_revoked());
            }
        });
    }

    #[test]
    fn join_offer_wire_bytes_roundtrip_and_reject_damage() {
        let offer = JoinOffer {
            side: 1,
            local_rank: 2,
            context: 0x40,
            attempt: 3,
            epoch: 7,
            local_group: vec![0, 1, 5],
            remote_group: vec![2, 3],
            old_local_group: vec![0, 1],
            old_remote_group: vec![2, 3],
            participants: vec![0, 1, 2, 3, 5],
        };
        let bytes = offer.to_wire_bytes();
        assert_eq!(JoinOffer::from_wire_bytes(&bytes), Some(offer.clone()));
        // Truncation at every prefix length decodes to None, never panics.
        for cut in 0..bytes.len() {
            assert_eq!(JoinOffer::from_wire_bytes(&bytes[..cut]), None, "cut at {cut}");
        }
        // Trailing garbage is rejected (total decode, no silent slack).
        let mut long = bytes.clone();
        long.push(0);
        assert_eq!(JoinOffer::from_wire_bytes(&long), None);
        // A forged group length cannot drive allocation.
        let mut forged = bytes;
        let group_len_off = 8 + 8 + 4 + 8 + 8;
        forged[group_len_off..group_len_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(JoinOffer::from_wire_bytes(&forged), None);
    }

    #[test]
    fn try_take_ignores_revocation_but_take_does_not() {
        // Non-blocking try_take is documented as not revocation-checked;
        // the blocking paths are the epoch boundary.
        use crate::envelope::{Envelope, Payload};
        use crate::fault::Liveness;
        use crate::mailbox::Mailbox;
        use std::sync::atomic::AtomicBool;
        let revs = Arc::new(Revocations::new());
        let m = Mailbox::new(
            Arc::new(AtomicBool::new(false)),
            Arc::new(Liveness::new(2)),
            revs.clone(),
        );
        m.push(Envelope::new(0, 0, 6, 1, 4, None, Payload::owned(5u8)));
        m.push(Envelope::new(0, 0, 6, 1, 4, None, Payload::owned(6u8)));
        revs.mark(6);
        assert!(m.try_take(6, Src::Any, Tag::Any).is_some());
        assert!(m.take(6, Src::Any, Tag::Any, &[]).unwrap_err().is_revoked());
    }
}
