//! Worlds: pools of ranks running as threads.
//!
//! [`World::run`] is the runtime's entry point — the analogue of `mpirun`.
//! It spawns one OS thread per rank, hands each a [`Process`] handle, and
//! joins them all, propagating the first panic (after aborting the world so
//! no rank blocks forever on a receive that can no longer arrive).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crate::comm::Comm;
use crate::fault::{FaultConfig, FaultTrace};
use crate::network::NetworkModel;
use crate::shared::WorldShared;
use crate::stats::StatsSnapshot;
use mxn_trace::{RunTrace, TraceCollector};

/// A rank's handle to its world: gives access to the world communicator.
pub struct Process {
    shared: Arc<WorldShared>,
    global_rank: usize,
    world_comm: Comm,
}

impl Process {
    fn new(shared: Arc<WorldShared>, global_rank: usize) -> Self {
        let world_comm = Comm::world(shared.clone(), global_rank);
        Process { shared, global_rank, world_comm }
    }

    /// This rank's world rank.
    pub fn rank(&self) -> usize {
        self.global_rank
    }

    /// Total number of ranks in the world.
    pub fn size(&self) -> usize {
        self.shared.size()
    }

    /// The world communicator (all ranks, context 0).
    pub fn world(&self) -> &Comm {
        &self.world_comm
    }

    /// Live traffic counters for the whole world.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats().snapshot()
    }

    /// Whether world rank `rank` has been marked dead by the fault plane
    /// (or by [`Process::kill_rank`]).
    pub fn is_dead(&self, rank: usize) -> bool {
        self.shared.liveness().is_dead(rank)
    }

    /// Marks world rank `rank` dead, waking every blocked receiver so waits
    /// involving it fail with `PeerDead` instead of hanging. Idempotent.
    /// Intended for failure-injection tests; scripted deaths normally come
    /// from [`crate::fault::FaultConfig::with_death`].
    pub fn kill_rank(&self, rank: usize) {
        self.shared.kill_rank(rank);
    }

    /// The canonical trace of faults injected so far (empty when the world
    /// runs without a fault plane).
    pub fn fault_trace(&self) -> FaultTrace {
        self.shared.fault_trace()
    }

    /// Arms or disarms the fault plane for **this rank's** outgoing traffic
    /// and op counting (no-op without a plane). While disarmed, sends are
    /// delivered verbatim and scheduled deaths do not tick. Because the
    /// flag is per-rank and only toggled from the rank's own control flow,
    /// exempting a bootstrap phase this way preserves same-seed determinism.
    /// [`crate::Universe`] disarms during its intercomm mesh setup.
    pub fn set_faults_armed(&self, armed: bool) {
        self.shared.fault_set_armed(self.global_rank, armed);
    }

    /// Seed of the world's fault plane, if one is configured. Lets retry
    /// policies derive deterministic jitter from the same seed that drives
    /// the injected faults, so a whole faulted run replays from one number.
    pub fn fault_seed(&self) -> Option<u64> {
        self.shared.fault().map(|f| f.seed())
    }
}

/// A parallel "machine": `n` ranks running one function SPMD-style.
pub struct World;

impl World {
    /// Runs `f` on `n` ranks (threads) and returns their results in rank
    /// order. Panics in any rank abort the world (waking all blocked
    /// receives) and are re-thrown here.
    pub fn run<R, F>(n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&Process) -> R + Send + Sync,
    {
        Self::run_with_stats(n, f).0
    }

    /// Runs an *elastic* computation: a universe of `capacity` ranks (the
    /// `MPI_UNIVERSE_SIZE` analogue) of which only the first `active` start
    /// out as workers; the rest are spare capacity. `f` receives
    /// `(process, is_active)` — spares typically park in
    /// [`crate::InterComm::await_join`] until an expand epoch admits them.
    /// Liveness, mailboxes and the fault plane are provisioned for the full
    /// capacity, so admission is purely a membership-level handshake.
    pub fn run_elastic<R, F>(active: usize, capacity: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&Process, bool) -> R + Send + Sync,
    {
        assert!(active <= capacity, "active ranks cannot exceed the universe capacity");
        Self::run(capacity, move |p| f(p, p.rank() < active))
    }

    /// Like [`World::run`] but every inter-rank message is delayed by the
    /// synthetic [`NetworkModel`] — cluster-shaped timing on one machine.
    pub fn run_with_network<R, F>(n: usize, network: NetworkModel, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&Process) -> R + Send + Sync,
    {
        Self::run_inner(n, Some(network), None, false, f).0
    }

    /// Like [`World::run`] but also returns the final traffic counters.
    pub fn run_with_stats<R, F>(n: usize, f: F) -> (Vec<R>, StatsSnapshot)
    where
        R: Send,
        F: Fn(&Process) -> R + Send + Sync,
    {
        let (results, stats, _, _) = Self::run_inner(n, None, None, false, f);
        (results, stats)
    }

    /// Like [`World::run`] but with the trace plane armed: every rank
    /// records structured events into a per-rank buffer, and the merged
    /// [`RunTrace`] is returned after teardown. Identical programs with
    /// identical seeds produce identical trace digests (see
    /// [`RunTrace::digest`]).
    pub fn run_traced<R, F>(n: usize, f: F) -> (Vec<R>, RunTrace)
    where
        R: Send,
        F: Fn(&Process) -> R + Send + Sync,
    {
        let (results, _, _, trace) = Self::run_inner(n, None, None, true, f);
        (results, trace.expect("tracing was requested"))
    }

    /// [`World::run_traced`] plus the final traffic counters, for
    /// cross-checking trace aggregates against [`StatsSnapshot`].
    pub fn run_traced_with_stats<R, F>(n: usize, f: F) -> (Vec<R>, StatsSnapshot, RunTrace)
    where
        R: Send,
        F: Fn(&Process) -> R + Send + Sync,
    {
        let (results, stats, _, trace) = Self::run_inner(n, None, None, true, f);
        (results, stats, trace.expect("tracing was requested"))
    }

    /// [`World::run_with_faults`] with the trace plane armed: fault
    /// injections appear in the [`RunTrace`] as `FaultInject` events
    /// alongside the runtime's own spans.
    pub fn run_traced_with_faults<R, F>(
        n: usize,
        faults: FaultConfig,
        f: F,
    ) -> (Vec<R>, FaultTrace, RunTrace)
    where
        R: Send,
        F: Fn(&Process) -> R + Send + Sync,
    {
        let (results, _, fault_trace, trace) = Self::run_inner(n, None, Some(faults), true, f);
        (results, fault_trace, trace.expect("tracing was requested"))
    }

    /// [`World::run_traced_with_faults`] plus the final traffic counters —
    /// the full-visibility harness the error-accounting cross-checks use.
    pub fn run_traced_with_stats_and_faults<R, F>(
        n: usize,
        faults: FaultConfig,
        f: F,
    ) -> (Vec<R>, StatsSnapshot, RunTrace)
    where
        R: Send,
        F: Fn(&Process) -> R + Send + Sync,
    {
        let (results, stats, _, trace) = Self::run_inner(n, None, Some(faults), true, f);
        (results, stats, trace.expect("tracing was requested"))
    }

    /// Like [`World::run`] but with a deterministic [`FaultConfig`] injecting
    /// message drops, duplication, corruption, delays, and scheduled rank
    /// deaths. Returns per-rank results plus the canonical [`FaultTrace`]:
    /// the same seed and communication pattern yield a byte-identical trace.
    ///
    /// Rank closures must treat failure-detection errors (`PeerDead`,
    /// `Timeout`) as values rather than panicking, so surviving ranks can
    /// report results after a scripted death.
    pub fn run_with_faults<R, F>(n: usize, faults: FaultConfig, f: F) -> (Vec<R>, FaultTrace)
    where
        R: Send,
        F: Fn(&Process) -> R + Send + Sync,
    {
        let (results, _, trace, _) = Self::run_inner(n, None, Some(faults), false, f);
        (results, trace)
    }

    fn run_inner<R, F>(
        n: usize,
        network: Option<NetworkModel>,
        faults: Option<FaultConfig>,
        trace: bool,
        f: F,
    ) -> (Vec<R>, StatsSnapshot, FaultTrace, Option<RunTrace>)
    where
        R: Send,
        F: Fn(&Process) -> R + Send + Sync,
    {
        assert!(n > 0, "world must have at least one rank");
        let shared = WorldShared::with_config(n, network, faults);
        let collector = trace.then(|| TraceCollector::new(n));
        let f = &f;
        let mut outcomes: Vec<std::thread::Result<R>> = Vec::with_capacity(n);

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for rank in 0..n {
                let shared = shared.clone();
                let recorder = collector.as_ref().map(|c| c.handle(rank));
                handles.push(scope.spawn(move || {
                    let _trace_guard = recorder.as_ref().map(|h| h.install());
                    let proc = Process::new(shared.clone(), rank);
                    let result = catch_unwind(AssertUnwindSafe(|| f(&proc)));
                    if result.is_err() {
                        // Wake every blocked receiver so the world drains.
                        shared.abort();
                    }
                    result
                }));
            }
            for h in handles {
                outcomes.push(h.join().expect("rank thread itself never panics"));
            }
        });
        let run_trace = collector.map(TraceCollector::finish);

        let mut results = Vec::with_capacity(n);
        let mut first_panic = None;
        for outcome in outcomes {
            match outcome {
                Ok(r) => results.push(r),
                Err(p) => {
                    if first_panic.is_none() {
                        first_panic = Some(p);
                    }
                }
            }
        }
        if let Some(p) = first_panic {
            resume_unwind(p);
        }
        let trace = shared.fault_trace();
        (results, shared.stats().snapshot(), trace, run_trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::RuntimeError;

    #[test]
    fn ranks_and_sizes() {
        let r = World::run(4, |p| (p.rank(), p.size()));
        assert_eq!(r, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn single_rank_world() {
        assert_eq!(World::run(1, |p| p.rank()), vec![0]);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        World::run(0, |_| ());
    }

    #[test]
    fn results_in_rank_order() {
        let r = World::run(8, |p| p.rank() * p.rank());
        assert_eq!(r, (0..8).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn panic_propagates_and_unblocks_peers() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            World::run(3, |p| {
                if p.rank() == 0 {
                    panic!("rank 0 exploded");
                }
                // Ranks 1 and 2 block on a message that never comes; the
                // abort must wake them rather than hang the test.
                let e = p.world().recv::<u8>(0, 0).unwrap_err();
                assert_eq!(e, RuntimeError::Aborted);
            });
        }));
        let payload = result.unwrap_err();
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("rank 0 exploded"));
    }

    #[test]
    fn stats_returned_after_run() {
        let (_, stats) = World::run_with_stats(2, |p| {
            let c = p.world();
            if c.rank() == 0 {
                c.send(1, 0, 7u64).unwrap();
            } else {
                c.recv::<u64>(0, 0).unwrap();
            }
        });
        assert_eq!(stats.p2p_messages, 1);
        assert_eq!(stats.p2p_bytes, 8);
    }

    #[test]
    fn process_stats_visible_during_run() {
        World::run(2, |p| {
            let c = p.world();
            if c.rank() == 0 {
                c.send(1, 0, 1u8).unwrap();
                c.recv::<u8>(1, 1).unwrap();
                assert!(p.stats().p2p_messages >= 2);
            } else {
                c.recv::<u8>(0, 0).unwrap();
                c.send(0, 1, 1u8).unwrap();
            }
        });
    }
}
