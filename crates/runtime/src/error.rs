//! Error types for the message-passing runtime.

use std::fmt;
use std::time::Duration;

use crate::envelope::{Src, Tag};

/// Errors produced by runtime operations.
///
/// Most message-passing calls in a correct program cannot fail; the error
/// variants exist to surface *detectable* misuse (bad ranks, type confusion)
/// and to support deadlock and failure-injection experiments via
/// [`RuntimeError::Timeout`], [`RuntimeError::PeerDead`] and
/// [`RuntimeError::Corrupt`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// A receive with a deadline expired before a matching message arrived.
    ///
    /// This is the primary deadlock-detection mechanism used by the Figure 5
    /// PRMI synchronization experiments.
    Timeout {
        /// Human-readable description of what was being waited for.
        waiting_for: String,
        /// How long the caller actually waited before giving up.
        elapsed: Duration,
        /// The source pattern that was being matched.
        src: Src,
        /// The tag pattern that was being matched.
        tag: Tag,
    },
    /// The world was aborted because another rank panicked.
    Aborted,
    /// A blocking operation targeted (or was waiting on) a rank that died.
    ///
    /// Raised by the liveness registry consulted in `recv`/`recv_timeout`
    /// and the collectives, so peers of a dead rank fail fast instead of
    /// hanging. `rank` is the dead peer's rank in the caller's group.
    PeerDead {
        /// The dead peer, in the communicator-local numbering of the call.
        rank: usize,
    },
    /// A received envelope failed its integrity check (payload truncated or
    /// corrupted in flight, e.g. by an injected fault).
    Corrupt {
        /// Sending rank of the damaged envelope (group-local).
        src: usize,
        /// Tag of the damaged envelope.
        tag: i32,
    },
    /// A rank argument was outside the communicator's group.
    InvalidRank {
        /// The offending rank.
        rank: usize,
        /// The size of the communicator it was used with.
        size: usize,
    },
    /// A typed receive matched an envelope whose payload had a different
    /// concrete type.
    TypeMismatch {
        /// The type the receiver asked for.
        expected: &'static str,
        /// Sending rank of the mismatched envelope.
        src: usize,
        /// Tag of the mismatched envelope.
        tag: i32,
    },
    /// A collective was invoked with inconsistent arguments across ranks
    /// (detected where cheaply possible, e.g. mismatched counts).
    CollectiveMismatch {
        /// Description of the inconsistency.
        detail: String,
    },
    /// The communicator context was revoked by the recovery plane: a
    /// survivor called `Membership::revoke` (or `InterComm::revoke`) after
    /// observing a failure, poisoning every pending and future operation on
    /// that context so all participants fall out of the old epoch together.
    Revoked {
        /// The revoked context id (point-to-point context of the pair).
        context: u32,
    },
    /// A membership reconfiguration (expand or graceful contract) aborted
    /// before commit: the join-handshake vote was not unanimous, usually
    /// because a participant died mid-handshake. The *old* communicator is
    /// untouched and fully operational — this error IS the transactional
    /// rollback; the caller may retry with a fresh participant set.
    ReconfigAborted {
        /// The proposed (never-committed) context of the aborted attempt.
        context: u32,
        /// The attempt number that aborted.
        attempt: u64,
    },
}

impl RuntimeError {
    /// Builds a [`RuntimeError::Timeout`] recording what was waited on.
    pub fn timeout(waiting_for: impl Into<String>, elapsed: Duration, src: Src, tag: Tag) -> Self {
        RuntimeError::Timeout { waiting_for: waiting_for.into(), elapsed, src, tag }
    }

    /// True for the failure-detection variants (`Timeout`/`PeerDead`),
    /// the errors a caller can meaningfully retry or degrade around.
    pub fn is_failure_detection(&self) -> bool {
        matches!(self, RuntimeError::Timeout { .. } | RuntimeError::PeerDead { .. })
    }

    /// True when a peer was declared dead — including a *quarantined*
    /// wire-transport zombie, which poisons its rank through the same
    /// [`crate::Liveness`] registry and therefore surfaces as this variant.
    pub fn is_peer_dead(&self) -> bool {
        matches!(self, RuntimeError::PeerDead { .. })
    }

    /// True if the operation failed because its communicator was revoked;
    /// the caller should join the shrink/heal protocol rather than retry
    /// on the same context.
    pub fn is_revoked(&self) -> bool {
        matches!(self, RuntimeError::Revoked { .. })
    }

    /// True if a membership reconfiguration rolled back before commit; the
    /// caller's pre-reconfiguration communicator is still valid and a retry
    /// with a fresh participant set is safe.
    pub fn is_reconfig_aborted(&self) -> bool {
        matches!(self, RuntimeError::ReconfigAborted { .. })
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Timeout { waiting_for, elapsed, src, tag } => {
                write!(
                    f,
                    "timed out after {elapsed:?} waiting for {waiting_for} (src={src:?}, tag={tag:?})"
                )
            }
            RuntimeError::Aborted => write!(f, "world aborted (another rank panicked)"),
            RuntimeError::PeerDead { rank } => {
                write!(f, "peer rank {rank} died; operation cannot complete")
            }
            RuntimeError::Corrupt { src, tag } => {
                write!(f, "envelope (src={src}, tag={tag}) failed its integrity check")
            }
            RuntimeError::InvalidRank { rank, size } => {
                write!(f, "rank {rank} out of range for communicator of size {size}")
            }
            RuntimeError::TypeMismatch { expected, src, tag } => write!(
                f,
                "type mismatch: receive of `{expected}` matched envelope (src={src}, tag={tag}) \
                 holding a different type"
            ),
            RuntimeError::CollectiveMismatch { detail } => {
                write!(f, "inconsistent collective arguments: {detail}")
            }
            RuntimeError::Revoked { context } => {
                write!(f, "communicator context {context} was revoked by the recovery plane")
            }
            RuntimeError::ReconfigAborted { context, attempt } => {
                write!(
                    f,
                    "membership reconfiguration attempt {attempt} (proposed context {context}) \
                     aborted; the old communicator remains valid"
                )
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Convenience alias used throughout the runtime.
pub type Result<T> = std::result::Result<T, RuntimeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_timeout() {
        let e = RuntimeError::timeout(
            "barrier round 2",
            Duration::from_millis(250),
            Src::Rank(1),
            Tag::Value(7),
        );
        let s = e.to_string();
        assert!(s.contains("barrier round 2"));
        assert!(s.contains("250ms"));
        assert!(s.contains("Rank(1)"));
    }

    #[test]
    fn display_peer_dead() {
        let e = RuntimeError::PeerDead { rank: 3 };
        assert!(e.to_string().contains("peer rank 3"));
    }

    #[test]
    fn display_corrupt() {
        let e = RuntimeError::Corrupt { src: 2, tag: 9 };
        let s = e.to_string();
        assert!(s.contains("src=2"));
        assert!(s.contains("integrity"));
    }

    #[test]
    fn display_invalid_rank() {
        let e = RuntimeError::InvalidRank { rank: 9, size: 4 };
        assert!(e.to_string().contains("rank 9"));
        assert!(e.to_string().contains("size 4"));
    }

    #[test]
    fn display_type_mismatch_names_type() {
        let e = RuntimeError::TypeMismatch { expected: "alloc::vec::Vec<f64>", src: 1, tag: 7 };
        let s = e.to_string();
        assert!(s.contains("Vec<f64>"));
        assert!(s.contains("src=1"));
    }

    #[test]
    fn failure_detection_classification() {
        assert!(RuntimeError::PeerDead { rank: 0 }.is_failure_detection());
        assert!(
            RuntimeError::timeout("x", Duration::ZERO, Src::Any, Tag::Any).is_failure_detection()
        );
        assert!(!RuntimeError::Aborted.is_failure_detection());
    }

    #[test]
    fn revoked_classification_and_display() {
        let e = RuntimeError::Revoked { context: 6 };
        assert!(e.is_revoked());
        assert!(!e.is_failure_detection());
        assert!(e.to_string().contains("context 6"));
        assert!(!RuntimeError::Aborted.is_revoked());
    }

    #[test]
    fn reconfig_abort_classification_and_display() {
        let e = RuntimeError::ReconfigAborted { context: 8, attempt: 2 };
        assert!(e.is_reconfig_aborted());
        assert!(!e.is_failure_detection());
        assert!(!e.is_revoked());
        assert!(e.to_string().contains("attempt 2"));
        assert!(e.to_string().contains("remains valid"));
        assert!(!RuntimeError::Aborted.is_reconfig_aborted());
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(RuntimeError::Aborted, RuntimeError::Aborted);
        assert_ne!(RuntimeError::Aborted, RuntimeError::InvalidRank { rank: 0, size: 1 });
    }
}
