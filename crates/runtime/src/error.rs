//! Error types for the message-passing runtime.

use std::fmt;

/// Errors produced by runtime operations.
///
/// Most message-passing calls in a correct program cannot fail; the error
/// variants exist to surface *detectable* misuse (bad ranks, type confusion)
/// and to support deadlock experiments via [`RuntimeError::Timeout`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// A receive with a deadline expired before a matching message arrived.
    ///
    /// This is the primary deadlock-detection mechanism used by the Figure 5
    /// PRMI synchronization experiments.
    Timeout {
        /// Human-readable description of what was being waited for.
        waiting_for: String,
    },
    /// The world was aborted because another rank panicked.
    Aborted,
    /// A rank argument was outside the communicator's group.
    InvalidRank {
        /// The offending rank.
        rank: usize,
        /// The size of the communicator it was used with.
        size: usize,
    },
    /// A typed receive matched an envelope whose payload had a different
    /// concrete type.
    TypeMismatch {
        /// The type the receiver asked for.
        expected: &'static str,
        /// Sending rank of the mismatched envelope.
        src: usize,
        /// Tag of the mismatched envelope.
        tag: i32,
    },
    /// A collective was invoked with inconsistent arguments across ranks
    /// (detected where cheaply possible, e.g. mismatched counts).
    CollectiveMismatch {
        /// Description of the inconsistency.
        detail: String,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Timeout { waiting_for } => {
                write!(f, "timed out waiting for {waiting_for}")
            }
            RuntimeError::Aborted => write!(f, "world aborted (another rank panicked)"),
            RuntimeError::InvalidRank { rank, size } => {
                write!(f, "rank {rank} out of range for communicator of size {size}")
            }
            RuntimeError::TypeMismatch { expected, src, tag } => write!(
                f,
                "type mismatch: receive of `{expected}` matched envelope (src={src}, tag={tag}) \
                 holding a different type"
            ),
            RuntimeError::CollectiveMismatch { detail } => {
                write!(f, "inconsistent collective arguments: {detail}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Convenience alias used throughout the runtime.
pub type Result<T> = std::result::Result<T, RuntimeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_timeout() {
        let e = RuntimeError::Timeout { waiting_for: "barrier round 2".into() };
        assert!(e.to_string().contains("barrier round 2"));
    }

    #[test]
    fn display_invalid_rank() {
        let e = RuntimeError::InvalidRank { rank: 9, size: 4 };
        assert!(e.to_string().contains("rank 9"));
        assert!(e.to_string().contains("size 4"));
    }

    #[test]
    fn display_type_mismatch_names_type() {
        let e = RuntimeError::TypeMismatch { expected: "alloc::vec::Vec<f64>", src: 1, tag: 7 };
        let s = e.to_string();
        assert!(s.contains("Vec<f64>"));
        assert!(s.contains("src=1"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(RuntimeError::Aborted, RuntimeError::Aborted);
        assert_ne!(
            RuntimeError::Aborted,
            RuntimeError::InvalidRank { rank: 0, size: 1 }
        );
    }
}
