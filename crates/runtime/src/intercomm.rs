//! Inter-communicators: point-to-point messaging between two disjoint
//! groups ("parallel programs"), the substrate for inter-framework M×N
//! transfers (Figure 3 of the paper).

use std::cell::Cell;
use std::sync::Arc;
use std::time::Duration;

use crate::comm::Comm;
use crate::envelope::{Envelope, MessageInfo, Payload, Src, Tag};
use crate::error::{Result, RuntimeError};
use crate::mailbox::PeerRef;
use crate::membership::{agree_over, JoinOffer, ReconfigReport, ShrinkReport, JOIN_TAG};
use crate::msgsize::MsgSize;
use crate::shared::WorldShared;
use crate::stats::{MailboxGauge, TrafficClass};
use crate::tracing::{ctx_class, record_op_error, tag_arg};
use mxn_trace::{emit_instant, EventId};

/// A one-sided handle to an inter-communicator.
///
/// Each side addresses the *other* side's ranks by their remote-local rank
/// (0-based within the remote group), exactly like `MPI_Comm_remote_size` /
/// inter-communicator point-to-point in MPI.
pub struct InterComm {
    shared: Arc<WorldShared>,
    /// My rank within my own (local) group.
    local_rank: usize,
    /// Size of my own group.
    local_size: usize,
    /// My global world rank.
    my_global: usize,
    /// Global ranks of my own (local) group, index = local rank.
    local_group: Arc<Vec<usize>>,
    /// Global ranks of the remote group, index = remote-local rank.
    remote_group: Arc<Vec<usize>>,
    /// Shared context for inter-group traffic.
    context: u32,
    /// Which side of the intercomm this handle is (0 or 1, as passed to
    /// [`InterComm::create`]); gives the two programs a symmetric identity.
    side: usize,
    /// Per-handle recovery sequence number (agreements and shrinks over an
    /// intercomm are ordered, like collectives).
    recovery_seq: Cell<u64>,
}

impl std::fmt::Debug for InterComm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InterComm")
            .field("side", &self.side)
            .field("local_rank", &self.local_rank)
            .field("local_group", &self.local_group)
            .field("remote_group", &self.remote_group)
            .field("context", &self.context)
            .finish()
    }
}

impl InterComm {
    /// Builds both-side handles collectively over `pair`, a communicator
    /// containing exactly the union of the two groups. `side` is 0 or 1 and
    /// must be consistent per group. Returns `(local_comm, intercomm)`.
    pub fn create(pair: &Comm, side: usize) -> Result<(Comm, InterComm)> {
        assert!(side < 2, "side must be 0 or 1");
        let sides: Vec<usize> = pair.allgather(side)?;
        let local = pair.split(side as i64, 0)?.expect("side is a valid non-negative color");

        // Remote group in pair-rank order (split preserves parent order for
        // equal keys, so remote-local rank k is the k-th remote pair rank).
        let remote_group: Vec<usize> =
            (0..pair.size()).filter(|&r| sides[r] != side).map(|r| pair.group()[r]).collect();
        if remote_group.is_empty() {
            return Err(RuntimeError::CollectiveMismatch {
                detail: "intercomm requires both sides non-empty".into(),
            });
        }

        let ctx = if pair.rank() == 0 {
            let ctx = pair.shared().allocate_context_pair();
            pair.bcast(0, Some(ctx))?
        } else {
            pair.bcast::<u32>(0, None)?
        };

        let ic = InterComm {
            shared: pair.shared().clone(),
            local_rank: local.rank(),
            local_size: local.size(),
            my_global: pair.global_rank(),
            local_group: Arc::new(local.group().to_vec()),
            remote_group: Arc::new(remote_group),
            context: ctx,
            side,
            recovery_seq: Cell::new(0),
        };
        Ok((local, ic))
    }

    /// This handle's side index (0 or 1) — consistent across the ranks of
    /// one program and opposite on the peer program.
    pub fn side(&self) -> usize {
        self.side
    }

    /// My rank within my own group.
    pub fn local_rank(&self) -> usize {
        self.local_rank
    }

    /// Size of my own group.
    pub fn local_size(&self) -> usize {
        self.local_size
    }

    /// Size of the remote group.
    pub fn remote_size(&self) -> usize {
        self.remote_group.len()
    }

    /// The world ranks of my own group, in local-rank order. Elastic
    /// reconfiguration (connection-level expand/contract) uses these as
    /// the member lists of the redistribution window.
    pub fn local_group(&self) -> &[usize] {
        &self.local_group
    }

    /// The world ranks of the remote group, in remote-rank order.
    pub fn remote_group(&self) -> &[usize] {
        &self.remote_group
    }

    /// `(live, peak)` payload bytes of this rank's own mailbox — what the
    /// eager transport has queued for this rank right now and the most it
    /// ever held. Spans all communicators (the mailbox is per *rank*).
    pub fn mailbox_bytes(&self) -> (u64, u64) {
        let mb = self.shared.mailbox(self.local_group[self.local_rank]);
        (mb.live_bytes(), mb.peak_bytes())
    }

    /// Resets this rank's mailbox byte high-water mark to its current live
    /// level (between measurement phases).
    pub fn reset_mailbox_peak(&self) {
        self.shared.mailbox(self.local_group[self.local_rank]).reset_peak_bytes();
    }

    /// Takes one *measured* mailbox-depth sample for this rank: live bytes,
    /// the byte high-water mark since the previous sample, and the number
    /// of queued envelopes. The peak is reset as part of the read (so each
    /// sample covers exactly the interval since the last), and the gauge is
    /// published through [`crate::WorldStats::note_queue_gauge`] — this is
    /// the sampling point autoscaling policies are meant to feed on,
    /// replacing caller-invented synthetic load numbers.
    pub fn sample_mailbox_gauge(&self) -> MailboxGauge {
        let mb = self.shared.mailbox(self.local_group[self.local_rank]);
        let gauge = MailboxGauge {
            live_bytes: mb.live_bytes(),
            peak_bytes: mb.peak_bytes(),
            depth_msgs: mb.len() as u64,
        };
        mb.reset_peak_bytes();
        self.shared.stats().note_queue_gauge(&gauge);
        gauge
    }

    fn check_remote(&self, rank: usize) -> Result<()> {
        if rank < self.remote_group.len() {
            Ok(())
        } else {
            Err(RuntimeError::InvalidRank { rank, size: self.remote_group.len() })
        }
    }

    /// The remote peers that could satisfy a receive matching `src`.
    fn peers_of(&self, src: Src) -> Vec<PeerRef> {
        match src {
            Src::Rank(r) if r < self.remote_group.len() => {
                vec![PeerRef { global: self.remote_group[r], local: r }]
            }
            Src::Rank(_) => Vec::new(),
            Src::Any => self
                .remote_group
                .iter()
                .enumerate()
                .map(|(r, &g)| PeerRef { global: g, local: r })
                .collect(),
        }
    }

    /// Whether remote-local rank `r` has been marked dead.
    pub fn is_remote_dead(&self, r: usize) -> bool {
        r < self.remote_group.len() && self.shared.liveness().is_dead(self.remote_group[r])
    }

    /// The lowest-numbered dead rank on *either* side of the intercomm, as
    /// a world rank — or `None` while everyone is alive. Lets a collective
    /// transfer fail consistently on every surviving rank.
    pub fn any_dead(&self) -> Option<usize> {
        let liveness = self.shared.liveness();
        self.local_group
            .iter()
            .chain(self.remote_group.iter())
            .copied()
            .filter(|&g| liveness.is_dead(g))
            .min()
    }

    /// Sends to remote-local rank `dst`.
    ///
    /// Under a fault plane a send fails with [`RuntimeError::PeerDead`] only
    /// when the sending rank's own scheduled death triggers; a dead remote
    /// rank is detected on the receive side (see [`InterComm::recv_timeout`]
    /// and [`InterComm::is_remote_dead`]).
    pub fn send<T: Send + MsgSize + 'static>(&self, dst: usize, tag: i32, value: T) -> Result<()> {
        self.check_remote(dst)?;
        let bytes = value.msg_size();
        let dst_global = self.remote_group[dst];
        self.shared.send_envelope(
            self.my_global,
            self.local_rank,
            dst_global,
            dst,
            self.context,
            tag,
            bytes,
            Payload::owned(value),
            None,
            TrafficClass::PointToPoint,
        )
    }

    /// Sends one value to *many* remote-local ranks as a single shared
    /// payload: one allocation however many destinations, each receiver
    /// unwrapping copy-on-write (or borrowing it outright via
    /// [`InterComm::recv_shared`]). This is the transport under collective
    /// remote method invocation, where one caller's argument fans out to
    /// every rank of the remote program.
    pub fn multicast<T: Send + Sync + Clone + MsgSize + 'static>(
        &self,
        dsts: &[usize],
        tag: i32,
        value: T,
    ) -> Result<()> {
        for &d in dsts {
            self.check_remote(d)?;
        }
        match dsts {
            [] => Ok(()),
            [dst] => self.send(*dst, tag, value),
            _ => {
                let bytes = value.msg_size();
                self.shared.stats().record_payload_alloc();
                let payload = Payload::shared(Arc::new(value));
                let dst_globals: Vec<usize> = dsts.iter().map(|&d| self.remote_group[d]).collect();
                self.shared.multicast_envelope(
                    self.my_global,
                    self.local_rank,
                    &dst_globals,
                    self.context,
                    tag,
                    bytes,
                    &payload,
                    TrafficClass::PointToPoint,
                )
            }
        }
    }

    fn downcast<T: 'static>(&self, env: Envelope) -> Result<(T, MessageInfo)> {
        let info = MessageInfo { src: env.src_local, tag: env.tag, bytes: env.bytes };
        if !env.verify() {
            let err = RuntimeError::Corrupt { src: info.src, tag: info.tag };
            record_op_error(self.shared.stats(), &err);
            return Err(err);
        }
        match env.payload.into_owned::<T>() {
            Ok((v, cloned)) => {
                if cloned {
                    self.shared.stats().record_payload_clone();
                }
                Ok((v, info))
            }
            Err(_) => {
                let err = RuntimeError::TypeMismatch {
                    expected: std::any::type_name::<T>(),
                    src: info.src,
                    tag: info.tag,
                };
                record_op_error(self.shared.stats(), &err);
                Err(err)
            }
        }
    }

    /// The intercomm's receive choke point, mirroring `Comm::recv_envelope`:
    /// `MailboxMatch` on a match, uniform error accounting on failure.
    fn recv_envelope(&self, src: Src, tag: Tag, timeout: Option<Duration>) -> Result<Envelope> {
        let res = self.shared.note_op(self.my_global, self.local_rank).and_then(|()| {
            let mailbox = self.shared.mailbox(self.my_global);
            match timeout {
                None => mailbox.take(self.context, src, tag, &self.peers_of(src)),
                Some(t) => mailbox.take_timeout(self.context, src, tag, t, &self.peers_of(src)),
            }
        });
        match &res {
            Ok(env) => emit_instant(
                EventId::MailboxMatch,
                [ctx_class(self.context), tag_arg(env.tag), env.src_local as u64, env.bytes as u64],
            ),
            Err(e) => record_op_error(self.shared.stats(), e),
        }
        res
    }

    /// Receives a multicast payload as a shared handle — zero-copy: the
    /// returned `Arc` aliases the sender's single allocation.
    pub fn recv_shared<T: Send + Sync + 'static>(
        &self,
        src: impl Into<Src>,
        tag: impl Into<Tag>,
    ) -> Result<Arc<T>> {
        let src = src.into();
        let env = self.recv_envelope(src, tag.into(), None)?;
        let info = MessageInfo { src: env.src_local, tag: env.tag, bytes: env.bytes };
        if !env.verify() {
            let err = RuntimeError::Corrupt { src: info.src, tag: info.tag };
            record_op_error(self.shared.stats(), &err);
            return Err(err);
        }
        env.payload.into_shared::<T>().map(|(v, _)| v).map_err(|_| {
            let err = RuntimeError::TypeMismatch {
                expected: std::any::type_name::<T>(),
                src: info.src,
                tag: info.tag,
            };
            record_op_error(self.shared.stats(), &err);
            err
        })
    }

    /// Receives from the remote group; `src` is a remote-local rank pattern.
    ///
    /// Fails with [`RuntimeError::PeerDead`] instead of hanging when every
    /// remote rank that could satisfy the receive has died.
    pub fn recv<T: 'static>(&self, src: impl Into<Src>, tag: impl Into<Tag>) -> Result<T> {
        self.recv_with_info(src, tag).map(|(v, _)| v)
    }

    /// Receive with sender metadata (for `Src::Any`).
    pub fn recv_with_info<T: 'static>(
        &self,
        src: impl Into<Src>,
        tag: impl Into<Tag>,
    ) -> Result<(T, MessageInfo)> {
        let src = src.into();
        let env = self.recv_envelope(src, tag.into(), None)?;
        self.downcast(env)
    }

    /// Receive with a deadline (deadlock detection across programs).
    pub fn recv_timeout<T: 'static>(
        &self,
        src: impl Into<Src>,
        tag: impl Into<Tag>,
        timeout: Duration,
    ) -> Result<T> {
        self.recv_timeout_with_info(src, tag, timeout).map(|(v, _)| v)
    }

    /// Receive with a deadline and sender metadata (for `Src::Any`).
    pub fn recv_timeout_with_info<T: 'static>(
        &self,
        src: impl Into<Src>,
        tag: impl Into<Tag>,
        timeout: Duration,
    ) -> Result<(T, MessageInfo)> {
        let src = src.into();
        let env = self.recv_envelope(src, tag.into(), Some(timeout))?;
        self.downcast(env)
    }

    /// Non-blocking receive attempt.
    pub fn try_recv<T: 'static>(
        &self,
        src: impl Into<Src>,
        tag: impl Into<Tag>,
    ) -> Result<Option<(T, MessageInfo)>> {
        match self.shared.mailbox(self.my_global).try_take(self.context, src.into(), tag.into()) {
            Some(env) => self.downcast(env).map(Some),
            None => Ok(None),
        }
    }

    /// Checks for a queued remote message without consuming it.
    pub fn iprobe(&self, src: impl Into<Src>, tag: impl Into<Tag>) -> Option<MessageInfo> {
        self.shared.mailbox(self.my_global).iprobe(self.context, src.into(), tag.into())
    }

    /// Both groups' global ranks, sorted — the agreement membership, which
    /// every rank of either side computes identically.
    fn union_sorted(&self) -> Vec<usize> {
        let mut m: Vec<usize> =
            self.local_group.iter().chain(self.remote_group.iter()).copied().collect();
        m.sort_unstable();
        m
    }

    /// Poisons this intercomm's context: every pending and future operation
    /// on it fails with [`RuntimeError::Revoked`] on both sides. Idempotent;
    /// returns whether this call newly revoked it.
    pub fn revoke(&self) -> bool {
        self.shared.revoke_context(self.context)
    }

    /// Whether this intercomm's context has been revoked.
    pub fn is_revoked(&self) -> bool {
        self.shared.revocations().is_revoked(self.context)
    }

    /// Fault-tolerant agreement across *both* groups: returns the bitwise
    /// AND of every surviving participant's `value`. Must be called by all
    /// survivors of both sides, in the same recovery order.
    pub fn agree(&self, value: u64) -> Result<u64> {
        let members = self.union_sorted();
        let seq = self.recovery_seq.get();
        self.recovery_seq.set(seq + 1);
        agree_over(&self.shared, self.my_global, &members, self.context, seq, value)
    }

    /// Boolean all-or-nothing vote over both groups: `true` iff every
    /// surviving participant voted `true`. The decision is a pure function
    /// of the agreed value, so all survivors decide identically — the
    /// primitive under transactional transfer commit.
    pub fn agree_all(&self, ok: bool) -> Result<bool> {
        self.agree(if ok { u64::MAX } else { 0 }).map(|v| v == u64::MAX)
    }

    /// Shrinks the intercomm to its survivors: both sides agree on the
    /// alive set, dead ranks are dropped from both groups, and each side is
    /// densely renumbered in ascending old-rank order on a fresh context.
    /// Idempotent for a given failure pattern (the survivor context is
    /// keyed on the agreed mask), so repeated heals of the same failure
    /// converge. The report maps new ranks back to old ones so coupling
    /// layers can re-derive data decompositions.
    pub fn shrink_with_report(&self) -> Result<(InterComm, ShrinkReport)> {
        let members = self.union_sorted();
        assert!(members.len() <= 64, "shrink masks are u64: at most 64 participants");
        let liveness = self.shared.liveness();
        let mut mask = 0u64;
        for (i, &g) in members.iter().enumerate() {
            if !liveness.is_dead(g) {
                mask |= 1 << i;
            }
        }
        let seq = self.recovery_seq.get();
        self.recovery_seq.set(seq + 1);
        let agreed = agree_over(&self.shared, self.my_global, &members, self.context, seq, mask)?;
        let alive = |g: usize| {
            let i = members.binary_search(&g).expect("member lists are identical");
            agreed & (1 << i) != 0
        };
        let local_survivors: Vec<usize> =
            (0..self.local_group.len()).filter(|&r| alive(self.local_group[r])).collect();
        let remote_survivors: Vec<usize> =
            (0..self.remote_group.len()).filter(|&r| alive(self.remote_group[r])).collect();
        if local_survivors.is_empty() || remote_survivors.is_empty() {
            return Err(RuntimeError::CollectiveMismatch {
                detail: "shrink would leave one side of the intercomm empty".into(),
            });
        }
        let my_new = local_survivors
            .iter()
            .position(|&r| r == self.local_rank)
            .ok_or(RuntimeError::PeerDead { rank: self.local_rank })?;
        let (ctx, epoch) = self.shared.survivor_context(self.context, agreed);
        emit_instant(
            EventId::Shrink,
            [
                members.len() as u64,
                (local_survivors.len() + remote_survivors.len()) as u64,
                ctx_class(ctx),
                0,
            ],
        );
        let ic = InterComm {
            shared: self.shared.clone(),
            local_rank: my_new,
            local_size: local_survivors.len(),
            my_global: self.my_global,
            local_group: Arc::new(local_survivors.iter().map(|&r| self.local_group[r]).collect()),
            remote_group: Arc::new(
                remote_survivors.iter().map(|&r| self.remote_group[r]).collect(),
            ),
            context: ctx,
            side: self.side,
            recovery_seq: Cell::new(0),
        };
        Ok((ic, ShrinkReport { local_survivors, remote_survivors, epoch }))
    }

    /// Full mask over `n` vote bits.
    fn full_mask(n: usize) -> u64 {
        if n >= 64 {
            u64::MAX
        } else {
            (1u64 << n) - 1
        }
    }

    /// Collectively rebuilds this intercomm over new memberships — the
    /// grow-direction twin of [`InterComm::shrink_with_report`], and also
    /// the *graceful* (data-preserving) contract.
    ///
    /// `new_local` / `new_remote` are the complete global-rank lists of the
    /// two sides after the reconfiguration, from the caller's perspective;
    /// every incumbent member (both sides, including members that are about
    /// to leave) must call this with consistent arguments. Ranks present in
    /// the new membership but not in the old one are *newcomers* and must
    /// concurrently be parked in [`InterComm::await_join`] on the same
    /// world.
    ///
    /// The handshake is transactional: the lowest incumbent global rank
    /// (the *sponsor*) invites each newcomer with a [`JoinOffer`] over the
    /// world context, then every participant — incumbents, newcomers and
    /// leavers alike — votes on the observed alive set with the
    /// fault-tolerant agreement, on the proposed context's channel so
    /// attempts never cross-match. Commit requires a unanimous, all-alive
    /// vote; anything less returns [`RuntimeError::ReconfigAborted`] on
    /// every survivor and leaves the old intercomm untouched (that error
    /// *is* the rollback — retry with a fresh participant set). On commit
    /// the sponsor revokes the old context so stale traffic cannot leak
    /// across epochs, and every participant emits an `Expand` trace event.
    ///
    /// Like the agreement itself, the whole handshake runs with the
    /// caller's message-fault plane disarmed: reconfiguration is control
    /// traffic on the reliable plane (deaths are still honored).
    ///
    /// Returns `(None, report)` for a leaver, `(Some(ic), report)` for a
    /// member of the new epoch; `ic.recovery_seq` restarts at 0 for all.
    pub fn reconfigure(
        &self,
        new_local: Vec<usize>,
        new_remote: Vec<usize>,
    ) -> Result<(Option<InterComm>, ReconfigReport)> {
        if new_local.is_empty() || new_remote.is_empty() {
            return Err(RuntimeError::CollectiveMismatch {
                detail: "reconfigure requires both sides non-empty".into(),
            });
        }
        let mut new_members: Vec<usize> =
            new_local.iter().chain(new_remote.iter()).copied().collect();
        new_members.sort_unstable();
        if new_members.windows(2).any(|w| w[0] == w[1]) {
            return Err(RuntimeError::CollectiveMismatch {
                detail: "new memberships must be disjoint and duplicate-free".into(),
            });
        }
        let old_members = self.union_sorted();
        let mut participants = old_members.clone();
        participants.extend(new_members.iter().copied());
        participants.sort_unstable();
        participants.dedup();
        assert!(participants.len() <= 64, "reconfigure masks are u64: at most 64 participants");

        // In lockstep on every incumbent: reconfigure is collective.
        let attempt = self.recovery_seq.get();
        self.recovery_seq.set(attempt + 1);

        let mut new_mask = 0u64;
        for (i, &g) in participants.iter().enumerate() {
            if new_members.binary_search(&g).is_ok() {
                new_mask |= 1 << i;
            }
        }
        let (ctx, epoch) = self.shared.reconfig_context(self.context, new_mask, attempt);

        // Reliable control plane for the whole handshake, not just the
        // vote: join offers must not be droppable either.
        let was_armed = self.shared.fault().map(|fp| fp.is_armed(self.my_global));
        self.shared.fault_set_armed(self.my_global, false);
        let result = self.reconfigure_inner(
            new_local,
            new_remote,
            &old_members,
            &participants,
            ctx,
            epoch,
            attempt,
        );
        if was_armed == Some(true) {
            self.shared.fault_set_armed(self.my_global, true);
        }
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn reconfigure_inner(
        &self,
        new_local: Vec<usize>,
        new_remote: Vec<usize>,
        old_members: &[usize],
        participants: &[usize],
        ctx: u32,
        epoch: u64,
        attempt: u64,
    ) -> Result<(Option<InterComm>, ReconfigReport)> {
        let sponsor = old_members[0];
        if self.my_global == sponsor {
            let world = Comm::world(self.shared.clone(), self.my_global);
            let newcomers =
                participants.iter().copied().filter(|g| old_members.binary_search(g).is_err());
            for g in newcomers {
                // The offer is written from the joiner's perspective.
                let offer = if let Some(i) = new_local.iter().position(|&x| x == g) {
                    JoinOffer {
                        side: self.side,
                        local_rank: i,
                        context: ctx,
                        attempt,
                        epoch,
                        local_group: new_local.clone(),
                        remote_group: new_remote.clone(),
                        old_local_group: self.local_group.to_vec(),
                        old_remote_group: self.remote_group.to_vec(),
                        participants: participants.to_vec(),
                    }
                } else {
                    let i = new_remote
                        .iter()
                        .position(|&x| x == g)
                        .expect("participant is in one of the new groups");
                    JoinOffer {
                        side: 1 - self.side,
                        local_rank: i,
                        context: ctx,
                        attempt,
                        epoch,
                        local_group: new_remote.clone(),
                        remote_group: new_local.clone(),
                        old_local_group: self.remote_group.to_vec(),
                        old_remote_group: self.local_group.to_vec(),
                        participants: participants.to_vec(),
                    }
                };
                world.send(g, JOIN_TAG, offer)?;
            }
        }

        let liveness = self.shared.liveness();
        let mut alive_mask = 0u64;
        for (i, &g) in participants.iter().enumerate() {
            if !liveness.is_dead(g) {
                alive_mask |= 1 << i;
            }
        }
        let agreed = agree_over(&self.shared, self.my_global, participants, ctx, 0, alive_mask)?;
        if agreed != Self::full_mask(participants.len()) {
            return Err(RuntimeError::ReconfigAborted { context: ctx, attempt });
        }

        emit_instant(
            EventId::Expand,
            [
                participants.len() as u64,
                (new_local.len() + new_remote.len()) as u64,
                ctx_class(ctx),
                attempt,
            ],
        );
        // One designated revoker: the Revoke trace event fires only on the
        // newly-revoking caller, so racing revokes would be digest-racy.
        if self.my_global == sponsor {
            self.shared.revoke_context(self.context);
        }
        let report = ReconfigReport {
            old_local_group: self.local_group.to_vec(),
            old_remote_group: self.remote_group.to_vec(),
            new_local_group: new_local.clone(),
            new_remote_group: new_remote.clone(),
            epoch,
            attempt,
        };
        let ic = new_local.iter().position(|&g| g == self.my_global).map(|r| InterComm {
            shared: self.shared.clone(),
            local_rank: r,
            local_size: new_local.len(),
            my_global: self.my_global,
            local_group: Arc::new(new_local),
            remote_group: Arc::new(new_remote),
            context: ctx,
            side: self.side,
            recovery_seq: Cell::new(0),
        });
        Ok((ic, report))
    }

    /// Grows the intercomm: appends `add_local` / `add_remote` (global
    /// ranks, each parked in [`InterComm::await_join`]) to the two groups.
    /// Collective over every incumbent member; see
    /// [`InterComm::reconfigure`] for the handshake and abort semantics.
    pub fn expand(
        &self,
        add_local: &[usize],
        add_remote: &[usize],
    ) -> Result<(InterComm, ReconfigReport)> {
        let mut new_local = self.local_group.to_vec();
        new_local.extend_from_slice(add_local);
        let mut new_remote = self.remote_group.to_vec();
        new_remote.extend_from_slice(add_remote);
        let (ic, report) = self.reconfigure(new_local, new_remote)?;
        Ok((ic.expect("expand keeps every incumbent member"), report))
    }

    /// Gracefully contracts the intercomm to the given *local ranks* on
    /// each side (ascending), with the leavers still participating in the
    /// commit vote (unlike [`InterComm::shrink_with_report`], which drops
    /// the dead). Leavers receive `(None, report)`; the data they own can
    /// be moved off before the old context is retired via the report.
    pub fn contract(
        &self,
        keep_local_ranks: &[usize],
        keep_remote_ranks: &[usize],
    ) -> Result<(Option<InterComm>, ReconfigReport)> {
        let pick = |group: &[usize], keep: &[usize]| -> Result<Vec<usize>> {
            keep.iter()
                .map(|&r| {
                    group
                        .get(r)
                        .copied()
                        .ok_or(RuntimeError::InvalidRank { rank: r, size: group.len() })
                })
                .collect()
        };
        let new_local = pick(&self.local_group, keep_local_ranks)?;
        let new_remote = pick(&self.remote_group, keep_remote_ranks)?;
        self.reconfigure(new_local, new_remote)
    }

    /// Parks a newcomer rank until a reconfiguration sponsor invites it,
    /// then takes part in the commit vote. `world` must be the rank's world
    /// communicator. On commit returns the newcomer's handle in the new
    /// epoch; on an aborted handshake returns
    /// [`RuntimeError::ReconfigAborted`] (the caller may park again for the
    /// retry), and on `timeout` without any invitation the underlying
    /// [`RuntimeError::Timeout`].
    pub fn await_join(world: &Comm, timeout: Duration) -> Result<InterComm> {
        Self::await_join_with_report(world, timeout).map(|(ic, _)| ic)
    }

    /// [`InterComm::await_join`] plus the same [`ReconfigReport`] every
    /// incumbent receives from [`InterComm::expand`], so a joiner can
    /// drive the data-rebind half of the reconfiguration (it needs the
    /// old groups to know who holds the pre-grow shards).
    pub fn await_join_with_report(
        world: &Comm,
        timeout: Duration,
    ) -> Result<(InterComm, ReconfigReport)> {
        let shared = world.shared().clone();
        let my_global = world.global_rank();
        let was_armed = shared.fault().map(|fp| fp.is_armed(my_global));
        shared.fault_set_armed(my_global, false);
        let result = Self::await_join_inner(&shared, world, my_global, timeout);
        if was_armed == Some(true) {
            shared.fault_set_armed(my_global, true);
        }
        result
    }

    fn await_join_inner(
        shared: &Arc<WorldShared>,
        world: &Comm,
        my_global: usize,
        timeout: Duration,
    ) -> Result<(InterComm, ReconfigReport)> {
        let offer: JoinOffer = world.recv_timeout(Src::Any, JOIN_TAG, timeout)?;
        let liveness = shared.liveness();
        let mut alive_mask = 0u64;
        for (i, &g) in offer.participants.iter().enumerate() {
            if !liveness.is_dead(g) {
                alive_mask |= 1 << i;
            }
        }
        let agreed =
            agree_over(shared, my_global, &offer.participants, offer.context, 0, alive_mask)?;
        if agreed != Self::full_mask(offer.participants.len()) {
            return Err(RuntimeError::ReconfigAborted {
                context: offer.context,
                attempt: offer.attempt,
            });
        }
        emit_instant(
            EventId::Expand,
            [
                offer.participants.len() as u64,
                (offer.local_group.len() + offer.remote_group.len()) as u64,
                ctx_class(offer.context),
                offer.attempt,
            ],
        );
        let report = ReconfigReport {
            old_local_group: offer.old_local_group,
            old_remote_group: offer.old_remote_group,
            new_local_group: offer.local_group.clone(),
            new_remote_group: offer.remote_group.clone(),
            epoch: offer.epoch,
            attempt: offer.attempt,
        };
        let ic = InterComm {
            shared: shared.clone(),
            local_rank: offer.local_rank,
            local_size: offer.local_group.len(),
            my_global,
            local_group: Arc::new(offer.local_group),
            remote_group: Arc::new(offer.remote_group),
            context: offer.context,
            side: offer.side,
            recovery_seq: Cell::new(0),
        };
        Ok((ic, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    /// Splits a world of m + n ranks into two programs joined by an
    /// intercomm; returns per-rank (local_rank, remote_size, probe result).
    fn two_programs(m: usize, n: usize) {
        World::run(m + n, move |p| {
            let world = p.world();
            let side = usize::from(p.rank() >= m);
            let (local, ic) = InterComm::create(world, side).unwrap();

            assert_eq!(local.size(), if side == 0 { m } else { n });
            assert_eq!(ic.local_size(), local.size());
            assert_eq!(ic.remote_size(), if side == 0 { n } else { m });
            assert_eq!(ic.local_rank(), local.rank());

            // Every rank of side 0 sends its local rank to remote rank
            // (local_rank % n); side 1 counts what it receives.
            if side == 0 {
                ic.send(local.rank() % n, 7, local.rank() as u64).unwrap();
            } else {
                let expect: Vec<usize> = (0..m).filter(|r| r % n == local.rank()).collect();
                let mut got = Vec::new();
                for _ in &expect {
                    let (v, info) = ic.recv_with_info::<u64>(Src::Any, 7).unwrap();
                    assert_eq!(v as usize, info.src);
                    got.push(v as usize);
                }
                got.sort_unstable();
                assert_eq!(got, expect);
            }
        });
    }

    #[test]
    fn m_equals_n() {
        two_programs(3, 3);
    }

    #[test]
    fn m_greater_than_n() {
        two_programs(8, 3);
    }

    #[test]
    fn m_less_than_n() {
        two_programs(2, 5);
    }

    #[test]
    fn one_sided_singleton() {
        two_programs(1, 4);
    }

    #[test]
    fn intercomm_isolated_from_world_traffic() {
        World::run(2, |p| {
            let world = p.world();
            let (_, ic) = InterComm::create(world, p.rank()).unwrap();
            if p.rank() == 0 {
                world.send(1, 3, 1u8).unwrap();
                ic.send(0, 3, 2u8).unwrap();
            } else {
                // The intercomm receive must not see the world message even
                // though src/tag patterns would match.
                assert_eq!(ic.recv::<u8>(0, 3).unwrap(), 2);
                assert_eq!(world.recv::<u8>(0, 3).unwrap(), 1);
            }
        });
    }

    #[test]
    fn invalid_remote_rank() {
        World::run(2, |p| {
            let (_, ic) = InterComm::create(p.world(), p.rank()).unwrap();
            assert!(matches!(
                ic.send(5, 0, 0u8),
                Err(RuntimeError::InvalidRank { rank: 5, size: 1 })
            ));
        });
    }

    #[test]
    fn empty_side_rejected() {
        World::run(2, |p| {
            let r = InterComm::create(p.world(), 0);
            assert!(matches!(r, Err(RuntimeError::CollectiveMismatch { .. })));
        });
    }

    #[test]
    fn timeout_across_programs() {
        World::run(2, |p| {
            let (_, ic) = InterComm::create(p.world(), p.rank()).unwrap();
            let e = ic.recv_timeout::<u8>(0, 0, Duration::from_millis(10)).unwrap_err();
            assert!(matches!(e, RuntimeError::Timeout { .. }));
        });
    }

    #[test]
    fn revoke_poisons_both_sides() {
        World::run(4, |p| {
            let side = usize::from(p.rank() >= 2);
            let (local, ic) = InterComm::create(p.world(), side).unwrap();
            if p.rank() == 0 {
                assert!(ic.revoke());
                assert!(!ic.revoke(), "idempotent");
                assert!(ic.is_revoked());
                let e = ic.send(0, 1, 1u8).unwrap_err();
                assert!(e.is_revoked());
            } else {
                let e = ic.recv::<u8>(Src::Any, Tag::Any).unwrap_err();
                assert!(e.is_revoked(), "both sides fall out of the epoch: {e}");
            }
            // Intra-side communicators and the world keep working.
            local.barrier().unwrap();
        });
    }

    #[test]
    fn agree_all_is_unanimous_or_false_everywhere() {
        let votes = World::run(4, |p| {
            let side = usize::from(p.rank() >= 2);
            let (_, ic) = InterComm::create(p.world(), side).unwrap();
            let first = ic.agree_all(true).unwrap();
            let second = ic.agree_all(p.rank() != 3).unwrap();
            (first, second)
        });
        for (first, second) in votes {
            assert!(first, "unanimous yes commits");
            assert!(!second, "one dissent rolls everyone back");
        }
    }

    #[test]
    fn expand_admits_newcomers_on_both_sides() {
        World::run(6, |p| {
            let world = p.world();
            // Start: side 0 = {0,1}, side 1 = {2,3}; ranks 4 and 5 are
            // spare capacity that joins one side each.
            let color = if p.rank() < 4 { 0 } else { -1 };
            let pair = world.split(color, 0).unwrap();
            if p.rank() >= 4 {
                let ic = InterComm::await_join(world, Duration::from_secs(5)).unwrap();
                assert_eq!(ic.side(), usize::from(p.rank() == 5));
                assert_eq!(ic.local_rank(), 2, "appended after the incumbents");
                assert_eq!(ic.local_size(), 3);
                assert_eq!(ic.remote_size(), 3);
                // The new epoch carries traffic newcomer-to-newcomer.
                let (mine, theirs) = (p.rank() as u64, if p.rank() == 4 { 5 } else { 4 });
                ic.send(2, 9, mine).unwrap();
                assert_eq!(ic.recv::<u64>(2, 9).unwrap(), theirs);
                return;
            }
            let side = usize::from(p.rank() >= 2);
            let (_, ic) = InterComm::create(&pair.unwrap(), side).unwrap();
            let (add_local, add_remote) =
                if side == 0 { (&[4][..], &[5][..]) } else { (&[5][..], &[4][..]) };
            let (grown, report) = ic.expand(add_local, add_remote).unwrap();
            assert_eq!(report.epoch, 1);
            assert_eq!(grown.local_size(), 3);
            assert_eq!(grown.remote_size(), 3);
            assert_eq!(grown.local_rank(), ic.local_rank(), "incumbents keep their rank");
            if side == 0 {
                assert_eq!(report.old_local_group, vec![0, 1]);
                assert_eq!(report.new_local_group, vec![0, 1, 4]);
                assert_eq!(report.new_remote_group, vec![2, 3, 5]);
            }
            // The old epoch is retired (by the sponsor, so slightly after
            // other ranks commit): stale traffic cannot match.
            while !ic.is_revoked() {
                std::thread::yield_now();
            }
            // And the grown channel works incumbent-to-incumbent too.
            grown.send(grown.local_rank(), 3, p.rank() as u64).unwrap();
            let (v, info) = grown.recv_with_info::<u64>(Src::Any, 3).unwrap();
            assert_eq!(info.src, grown.local_rank());
            let expect = if side == 0 { p.rank() + 2 } else { p.rank() - 2 };
            assert_eq!(v, expect as u64);
        });
    }

    #[test]
    fn expand_aborts_and_rolls_back_when_newcomer_dies_then_retry_commits() {
        use crate::fault::FaultConfig;
        let cfg = FaultConfig::reliable(17);
        World::run_with_faults(6, cfg, |p| {
            let world = p.world();
            // side 0 = {0,1}, side 1 = {2,3}; rank 4 dies before joining,
            // rank 5 is the healthy spare the retry admits instead.
            let color = if p.rank() < 4 { 0 } else { -1 };
            let pair = world.split(color, 0).unwrap();
            if p.rank() == 4 {
                p.kill_rank(4);
                return;
            }
            if p.rank() == 5 {
                let ic = InterComm::await_join(world, Duration::from_secs(5)).unwrap();
                assert_eq!(ic.local_rank(), 2);
                assert_eq!(ic.recv::<u64>(0, 11).unwrap(), 7);
                return;
            }
            // The kill must be visible before the vote so every incumbent
            // observes the same (partial) alive set.
            while !p.is_dead(4) {
                std::thread::yield_now();
            }
            let side = usize::from(p.rank() >= 2);
            let (_, ic) = InterComm::create(&pair.unwrap(), side).unwrap();
            let attempt1 =
                if side == 0 { ic.expand(&[4], &[]) } else { ic.expand(&[], &[4]) }.unwrap_err();
            assert!(attempt1.is_reconfig_aborted(), "dead joiner aborts the vote: {attempt1}");
            // Transactional rollback: the old epoch is untouched and live.
            assert!(!ic.is_revoked());
            ic.send(ic.local_rank(), 3, p.rank() as u64).unwrap();
            let echoed = ic.recv::<u64>(ic.local_rank(), 3).unwrap();
            let expect = if side == 0 { p.rank() + 2 } else { p.rank() - 2 };
            assert_eq!(echoed, expect as u64);
            // Retry with the healthy spare commits on a fresh attempt.
            let (grown, report) =
                if side == 0 { ic.expand(&[5], &[]) } else { ic.expand(&[], &[5]) }.unwrap();
            assert_eq!(report.attempt, 1, "second attempt");
            assert_eq!(grown.local_size() + grown.remote_size(), 5);
            // Rank 5 joined side 0; side 1's first rank greets it.
            if p.rank() == 2 {
                grown.send(2, 11, 7u64).unwrap();
            }
        });
    }

    #[test]
    fn contract_retires_leavers_gracefully() {
        World::run(5, |p| {
            // side 0 = {0,1,2}, side 1 = {3,4}; local rank 2 of side 0
            // leaves voluntarily (no death involved).
            let side = usize::from(p.rank() >= 3);
            let (_, ic) = InterComm::create(p.world(), side).unwrap();
            let (shrunk, report) = ic.contract(&[0, 1], &[0, 1]).unwrap();
            assert_eq!(report.epoch, 1);
            if p.rank() == 2 {
                assert!(shrunk.is_none(), "leavers get no handle in the new epoch");
                assert_eq!(report.new_local_group, vec![0, 1]);
                return;
            }
            let shrunk = shrunk.unwrap();
            assert_eq!(shrunk.local_size() + shrunk.remote_size(), 4);
            // Retired by the sponsor once the contract commits.
            while !ic.is_revoked() {
                std::thread::yield_now();
            }
            shrunk.send(shrunk.local_rank(), 6, p.rank() as u64).unwrap();
            let v = shrunk.recv::<u64>(shrunk.local_rank(), 6).unwrap();
            let expect = if side == 0 { p.rank() + 3 } else { p.rank() - 3 };
            assert_eq!(v, expect as u64);
        });
    }

    #[test]
    fn await_join_times_out_without_invitation() {
        World::run(1, |p| {
            let e = InterComm::await_join(p.world(), Duration::from_millis(10)).unwrap_err();
            assert!(matches!(e, RuntimeError::Timeout { .. }));
        });
    }

    #[test]
    fn shrink_drops_dead_ranks_from_both_groups() {
        use crate::fault::FaultConfig;
        let cfg = FaultConfig::reliable(5);
        World::run_with_faults(5, cfg, |p| {
            // Side 0 = ranks {0,1,2}, side 1 = ranks {3,4}; rank 1 dies.
            let side = usize::from(p.rank() >= 3);
            let (_, ic) = InterComm::create(p.world(), side).unwrap();
            if p.rank() == 1 {
                p.kill_rank(1);
                return;
            }
            // Shrink drops only deaths already visible; wait for the kill.
            while !p.is_dead(1) {
                std::thread::yield_now();
            }
            let (healed, report) = ic.shrink_with_report().unwrap();
            if side == 0 {
                assert_eq!(report.local_survivors, vec![0, 2]);
                assert_eq!(report.remote_survivors, vec![0, 1]);
                assert_eq!(healed.local_size(), 2);
                assert_eq!(healed.remote_size(), 2);
                assert_eq!(healed.local_rank(), if p.rank() == 0 { 0 } else { 1 });
            } else {
                assert_eq!(report.local_survivors, vec![0, 1]);
                assert_eq!(report.remote_survivors, vec![0, 2]);
                assert_eq!(healed.remote_size(), 2);
            }
            assert_eq!(report.epoch, 1);
            // The healed channel carries traffic with the new numbering:
            // side-0 new rank r sends to side-1 new rank r.
            if side == 0 {
                healed.send(healed.local_rank(), 9, p.rank() as u64).unwrap();
            } else {
                let (v, info) = healed.recv_with_info::<u64>(Src::Any, 9).unwrap();
                assert_eq!(info.src, healed.local_rank());
                assert_eq!(v, 2 * healed.local_rank() as u64, "old rank of the new sender");
            }
        });
    }
}
