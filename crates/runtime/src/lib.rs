//! # mxn-runtime — an MPI-like message-passing runtime for M×N research
//!
//! This crate is the substrate beneath the whole `mxn` workspace: an
//! in-process message-passing runtime with MPI semantics, where each rank is
//! an OS thread and payloads move by ownership transfer. It exists because
//! the systems reproduced from the paper (the CCA M×N component, PRMI,
//! DCA, InterComm, MCT) are all *defined in terms of* message-passing
//! semantics — matching, non-overtaking ordering, communicators, and
//! collectives — and those semantics are reproduced here exactly:
//!
//! * **Point-to-point**: eager [`Comm::send`] / blocking [`Comm::recv`] with
//!   `(source, tag)` matching including wildcards, plus nonblocking
//!   [`Comm::isend`] / [`Comm::irecv`], probes, and timeouts
//!   ([`Comm::recv_timeout`]) for the deadlock experiments of Figure 5.
//! * **Communicators**: [`Comm::dup`], [`Comm::split`], [`Comm::subgroup`],
//!   each with a private message context.
//! * **Collectives**: barrier, bcast, gather, scatter, allgather,
//!   alltoall(v), reduce, allreduce, scan (see [`collectives`]).
//! * **Inter-communicators** ([`InterComm`]) and multi-program
//!   [`Universe`]s for coupled-code runs (the "M job talks to N job" case).
//! * **Traffic accounting** ([`stats`]): every payload reports its wire
//!   size via [`MsgSize`], so benchmarks can report message counts and
//!   volumes that transfer to a real cluster.
//! * **Deterministic fault injection** ([`fault`]): a seeded
//!   [`FaultConfig`] drops, duplicates, corrupts, and delays messages and
//!   kills ranks mid-run ([`World::run_with_faults`]); blocked peers of a
//!   dead rank get [`RuntimeError::PeerDead`] instead of hanging, and the
//!   same seed always reproduces a byte-identical [`FaultTrace`].
//! * **Self-healing recovery** ([`membership`]): ULFM-style epoch-based
//!   membership — survivors `revoke` a failed communicator's context,
//!   `agree` on the alive set with a fault-tolerant agreement, and `shrink`
//!   to a dense survivor communicator on a fresh context
//!   ([`Comm::membership`], [`InterComm::shrink_with_report`]).
//!
//! ## Quick example
//!
//! ```
//! use mxn_runtime::World;
//!
//! let sums = World::run(4, |p| {
//!     let comm = p.world();
//!     comm.allreduce(comm.rank() as u64, |a, b| *a += b).unwrap()
//! });
//! assert_eq!(sums, vec![6, 6, 6, 6]);
//! ```

pub mod cart;
pub mod collectives;
pub mod comm;
pub mod envelope;
pub mod error;
pub mod fault;
pub mod intercomm;
pub mod mailbox;
pub mod membership;
pub mod msgsize;
pub mod network;
pub mod ops;
pub mod request;
pub mod rma;
pub mod shared;
pub mod stats;
pub mod tracing;
pub mod transport;
pub mod universe;
pub mod world;

pub use cart::{dims_create, CartComm};
pub use collectives::SMALL_COLLECTIVE_BYTES;
pub use comm::Comm;
pub use envelope::{MessageInfo, Payload, Src, Tag};
pub use error::{Result, RuntimeError};
pub use fault::{
    splitmix64, unit, ChannelPolicy, FaultConfig, FaultEvent, FaultKind, FaultTrace, Liveness,
    RankDeath,
};
pub use intercomm::InterComm;
pub use membership::{JoinOffer, Membership, ReconfigReport, Revocations, ShrinkReport};
pub use msgsize::MsgSize;
pub use network::NetworkModel;
pub use request::{wait_all, RecvRequest, SendRequest};
pub use rma::RmaWindow;
pub use stats::{
    record_buffer_lease, record_pool_bytes, record_schedule_build, record_schedule_copy,
    record_transfer_acquired, record_transfer_released, reset_schedule_stats, schedule_stats,
    CollOp, CollOpStats, MailboxGauge, ScheduleStats, StatsSnapshot, TrafficClass, WorldStats,
};
pub use tracing::{coll_algo, err_code, fault_kind};
pub use transport::{InProcTransport, Transport};
pub use universe::{ProgramCtx, Universe};
pub use world::{Process, World};

// The trace plane's public surface, re-exported so downstream code (tests,
// examples, benches) can collect and digest traces without a direct
// `mxn-trace` dependency.
pub use mxn_trace::{
    CollTotals, EventId, Phase, RunTrace, TraceAggregate, TraceCollector, TraceEvent, TraceHandle,
};
