//! Traffic accounting.
//!
//! The runtime counts every message and its reported wire size (see
//! [`crate::MsgSize`]), split into point-to-point and collective-internal
//! traffic. Benchmarks report these counters alongside wall-clock time so
//! that results stay meaningful on a real cluster, where message count and
//! volume — not thread-to-thread copy speed — dominate.

use std::sync::atomic::{AtomicU64, Ordering};

/// Which runtime layer produced a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficClass {
    /// A user-level `send`/`recv` pair.
    PointToPoint,
    /// Internal traffic of a collective operation (barrier, bcast, ...).
    Collective,
}

/// A fault injected by the fault plane, for accounting purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Message silently dropped.
    Dropped,
    /// Message delivered twice.
    Duplicated,
    /// Message delivered with a damaged checksum.
    Corrupted,
    /// Message visibility delayed beyond the network model.
    Delayed,
    /// A rank died.
    RankDeath,
}

/// Live counters for one world. All methods are thread-safe.
#[derive(Default)]
pub struct WorldStats {
    p2p_msgs: AtomicU64,
    p2p_bytes: AtomicU64,
    coll_msgs: AtomicU64,
    coll_bytes: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    corrupted: AtomicU64,
    delayed: AtomicU64,
    deaths: AtomicU64,
}

impl WorldStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sent message of `bytes` wire bytes.
    pub fn record(&self, class: TrafficClass, bytes: usize) {
        match class {
            TrafficClass::PointToPoint => {
                self.p2p_msgs.fetch_add(1, Ordering::Relaxed);
                self.p2p_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
            }
            TrafficClass::Collective => {
                self.coll_msgs.fetch_add(1, Ordering::Relaxed);
                self.coll_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
            }
        }
    }

    /// Records one injected fault (called by the fault plane's send path).
    pub fn record_fault(&self, class: FaultClass) {
        let counter = match class {
            FaultClass::Dropped => &self.dropped,
            FaultClass::Duplicated => &self.duplicated,
            FaultClass::Corrupted => &self.corrupted,
            FaultClass::Delayed => &self.delayed,
            FaultClass::RankDeath => &self.deaths,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            p2p_messages: self.p2p_msgs.load(Ordering::Relaxed),
            p2p_bytes: self.p2p_bytes.load(Ordering::Relaxed),
            collective_messages: self.coll_msgs.load(Ordering::Relaxed),
            collective_bytes: self.coll_bytes.load(Ordering::Relaxed),
            dropped_messages: self.dropped.load(Ordering::Relaxed),
            duplicated_messages: self.duplicated.load(Ordering::Relaxed),
            corrupted_messages: self.corrupted.load(Ordering::Relaxed),
            delayed_messages: self.delayed.load(Ordering::Relaxed),
            rank_deaths: self.deaths.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero (used between benchmark phases).
    pub fn reset(&self) {
        self.p2p_msgs.store(0, Ordering::Relaxed);
        self.p2p_bytes.store(0, Ordering::Relaxed);
        self.coll_msgs.store(0, Ordering::Relaxed);
        self.coll_bytes.store(0, Ordering::Relaxed);
        self.dropped.store(0, Ordering::Relaxed);
        self.duplicated.store(0, Ordering::Relaxed);
        self.corrupted.store(0, Ordering::Relaxed);
        self.delayed.store(0, Ordering::Relaxed);
        self.deaths.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of a world's traffic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Point-to-point messages sent.
    pub p2p_messages: u64,
    /// Point-to-point bytes sent.
    pub p2p_bytes: u64,
    /// Collective-internal messages sent.
    pub collective_messages: u64,
    /// Collective-internal bytes sent.
    pub collective_bytes: u64,
    /// Messages dropped by the fault plane.
    pub dropped_messages: u64,
    /// Messages duplicated by the fault plane.
    pub duplicated_messages: u64,
    /// Messages corrupted by the fault plane.
    pub corrupted_messages: u64,
    /// Messages delayed by the fault plane (beyond the network model).
    pub delayed_messages: u64,
    /// Ranks that died (scheduled or explicit kills).
    pub rank_deaths: u64,
}

impl StatsSnapshot {
    /// Total messages of both classes.
    pub fn total_messages(&self) -> u64 {
        self.p2p_messages + self.collective_messages
    }

    /// Total bytes of both classes.
    pub fn total_bytes(&self) -> u64 {
        self.p2p_bytes + self.collective_bytes
    }

    /// Total faults of every class injected by the fault plane.
    pub fn total_faults(&self) -> u64 {
        self.dropped_messages
            + self.duplicated_messages
            + self.corrupted_messages
            + self.delayed_messages
            + self.rank_deaths
    }

    /// Difference `self - earlier`, for measuring a phase.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            p2p_messages: self.p2p_messages - earlier.p2p_messages,
            p2p_bytes: self.p2p_bytes - earlier.p2p_bytes,
            collective_messages: self.collective_messages - earlier.collective_messages,
            collective_bytes: self.collective_bytes - earlier.collective_bytes,
            dropped_messages: self.dropped_messages - earlier.dropped_messages,
            duplicated_messages: self.duplicated_messages - earlier.duplicated_messages,
            corrupted_messages: self.corrupted_messages - earlier.corrupted_messages,
            delayed_messages: self.delayed_messages - earlier.delayed_messages,
            rank_deaths: self.rank_deaths - earlier.rank_deaths,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let s = WorldStats::new();
        s.record(TrafficClass::PointToPoint, 100);
        s.record(TrafficClass::PointToPoint, 50);
        s.record(TrafficClass::Collective, 8);
        let snap = s.snapshot();
        assert_eq!(snap.p2p_messages, 2);
        assert_eq!(snap.p2p_bytes, 150);
        assert_eq!(snap.collective_messages, 1);
        assert_eq!(snap.collective_bytes, 8);
        assert_eq!(snap.total_messages(), 3);
        assert_eq!(snap.total_bytes(), 158);
    }

    #[test]
    fn since_computes_phase_delta() {
        let s = WorldStats::new();
        s.record(TrafficClass::PointToPoint, 10);
        let before = s.snapshot();
        s.record(TrafficClass::PointToPoint, 20);
        s.record(TrafficClass::Collective, 5);
        let delta = s.snapshot().since(&before);
        assert_eq!(delta.p2p_messages, 1);
        assert_eq!(delta.p2p_bytes, 20);
        assert_eq!(delta.collective_bytes, 5);
    }

    #[test]
    fn reset_zeroes() {
        let s = WorldStats::new();
        s.record(TrafficClass::Collective, 5);
        s.record_fault(FaultClass::Dropped);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn fault_counters_accumulate() {
        let s = WorldStats::new();
        s.record_fault(FaultClass::Dropped);
        s.record_fault(FaultClass::Dropped);
        s.record_fault(FaultClass::Duplicated);
        s.record_fault(FaultClass::Corrupted);
        s.record_fault(FaultClass::Delayed);
        s.record_fault(FaultClass::RankDeath);
        let snap = s.snapshot();
        assert_eq!(snap.dropped_messages, 2);
        assert_eq!(snap.duplicated_messages, 1);
        assert_eq!(snap.corrupted_messages, 1);
        assert_eq!(snap.delayed_messages, 1);
        assert_eq!(snap.rank_deaths, 1);
        assert_eq!(snap.total_faults(), 6);
        assert_eq!(snap.total_messages(), 0, "faults are not traffic");
    }
}
