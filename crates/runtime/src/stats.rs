//! Traffic accounting.
//!
//! The runtime counts every message and its reported wire size (see
//! [`crate::MsgSize`]), split into point-to-point and collective-internal
//! traffic. Benchmarks report these counters alongside wall-clock time so
//! that results stay meaningful on a real cluster, where message count and
//! volume — not thread-to-thread copy speed — dominate.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Which runtime layer produced a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficClass {
    /// A user-level `send`/`recv` pair.
    PointToPoint,
    /// Internal traffic of a collective operation (barrier, bcast, ...).
    Collective,
}

/// A fault injected by the fault plane, for accounting purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Message silently dropped.
    Dropped,
    /// Message delivered twice.
    Duplicated,
    /// Message delivered with a damaged checksum.
    Corrupted,
    /// Message visibility delayed beyond the network model.
    Delayed,
    /// A rank died.
    RankDeath,
}

/// Live counters for one world. All methods are thread-safe.
#[derive(Default)]
pub struct WorldStats {
    p2p_msgs: AtomicU64,
    p2p_bytes: AtomicU64,
    coll_msgs: AtomicU64,
    coll_bytes: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    corrupted: AtomicU64,
    delayed: AtomicU64,
    deaths: AtomicU64,
}

impl WorldStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sent message of `bytes` wire bytes.
    pub fn record(&self, class: TrafficClass, bytes: usize) {
        match class {
            TrafficClass::PointToPoint => {
                self.p2p_msgs.fetch_add(1, Ordering::Relaxed);
                self.p2p_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
            }
            TrafficClass::Collective => {
                self.coll_msgs.fetch_add(1, Ordering::Relaxed);
                self.coll_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
            }
        }
    }

    /// Records one injected fault (called by the fault plane's send path).
    pub fn record_fault(&self, class: FaultClass) {
        let counter = match class {
            FaultClass::Dropped => &self.dropped,
            FaultClass::Duplicated => &self.duplicated,
            FaultClass::Corrupted => &self.corrupted,
            FaultClass::Delayed => &self.delayed,
            FaultClass::RankDeath => &self.deaths,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            p2p_messages: self.p2p_msgs.load(Ordering::Relaxed),
            p2p_bytes: self.p2p_bytes.load(Ordering::Relaxed),
            collective_messages: self.coll_msgs.load(Ordering::Relaxed),
            collective_bytes: self.coll_bytes.load(Ordering::Relaxed),
            dropped_messages: self.dropped.load(Ordering::Relaxed),
            duplicated_messages: self.duplicated.load(Ordering::Relaxed),
            corrupted_messages: self.corrupted.load(Ordering::Relaxed),
            delayed_messages: self.delayed.load(Ordering::Relaxed),
            rank_deaths: self.deaths.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero (used between benchmark phases).
    pub fn reset(&self) {
        self.p2p_msgs.store(0, Ordering::Relaxed);
        self.p2p_bytes.store(0, Ordering::Relaxed);
        self.coll_msgs.store(0, Ordering::Relaxed);
        self.coll_bytes.store(0, Ordering::Relaxed);
        self.dropped.store(0, Ordering::Relaxed);
        self.duplicated.store(0, Ordering::Relaxed);
        self.corrupted.store(0, Ordering::Relaxed);
        self.delayed.store(0, Ordering::Relaxed);
        self.deaths.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of a world's traffic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Point-to-point messages sent.
    pub p2p_messages: u64,
    /// Point-to-point bytes sent.
    pub p2p_bytes: u64,
    /// Collective-internal messages sent.
    pub collective_messages: u64,
    /// Collective-internal bytes sent.
    pub collective_bytes: u64,
    /// Messages dropped by the fault plane.
    pub dropped_messages: u64,
    /// Messages duplicated by the fault plane.
    pub duplicated_messages: u64,
    /// Messages corrupted by the fault plane.
    pub corrupted_messages: u64,
    /// Messages delayed by the fault plane (beyond the network model).
    pub delayed_messages: u64,
    /// Ranks that died (scheduled or explicit kills).
    pub rank_deaths: u64,
}

impl StatsSnapshot {
    /// Total messages of both classes.
    pub fn total_messages(&self) -> u64 {
        self.p2p_messages + self.collective_messages
    }

    /// Total bytes of both classes.
    pub fn total_bytes(&self) -> u64 {
        self.p2p_bytes + self.collective_bytes
    }

    /// Total faults of every class injected by the fault plane.
    pub fn total_faults(&self) -> u64 {
        self.dropped_messages
            + self.duplicated_messages
            + self.corrupted_messages
            + self.delayed_messages
            + self.rank_deaths
    }

    /// Difference `self - earlier`, for measuring a phase.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            p2p_messages: self.p2p_messages - earlier.p2p_messages,
            p2p_bytes: self.p2p_bytes - earlier.p2p_bytes,
            collective_messages: self.collective_messages - earlier.collective_messages,
            collective_bytes: self.collective_bytes - earlier.collective_bytes,
            dropped_messages: self.dropped_messages - earlier.dropped_messages,
            duplicated_messages: self.duplicated_messages - earlier.duplicated_messages,
            corrupted_messages: self.corrupted_messages - earlier.corrupted_messages,
            delayed_messages: self.delayed_messages - earlier.delayed_messages,
            rank_deaths: self.rank_deaths - earlier.rank_deaths,
        }
    }
}

/// Per-thread schedule-pipeline counters.
///
/// Schedule construction and transfer execution are measured per rank, and
/// in this runtime every rank is its own thread — so thread-local counters
/// give each rank (and each `cargo test` thread) a deterministic, isolated
/// view without cross-rank interference.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleStats {
    /// Schedules built on this thread.
    pub builds: u64,
    /// Candidate peers examined across all builds — the pruning metric: a
    /// naive build probes `nranks` peers, a pruned build only the peers
    /// whose patches can overlap.
    pub peer_probes: u64,
    /// Non-empty per-peer pair lists emitted by builds.
    pub pairs_emitted: u64,
    /// Elements moved through plan-driven pack/unpack/local copies.
    pub elements_copied: u64,
    /// Contiguous copy runs executed by plan-driven transfers.
    pub copy_runs: u64,
    /// Transfer buffers leased from a pool.
    pub buffer_leases: u64,
    /// Leases that had to allocate a fresh buffer (pool empty). In steady
    /// state this stops growing: buffers circulate instead.
    pub buffer_allocs: u64,
}

thread_local! {
    static SCHEDULE_STATS: Cell<ScheduleStats> = const { Cell::new(ScheduleStats {
        builds: 0,
        peer_probes: 0,
        pairs_emitted: 0,
        elements_copied: 0,
        copy_runs: 0,
        buffer_leases: 0,
        buffer_allocs: 0,
    }) };
}

/// Snapshot of this thread's schedule counters.
pub fn schedule_stats() -> ScheduleStats {
    SCHEDULE_STATS.with(Cell::get)
}

/// Zeroes this thread's schedule counters (between measurement phases).
pub fn reset_schedule_stats() {
    SCHEDULE_STATS.with(|c| c.set(ScheduleStats::default()));
}

/// Records one schedule build: candidate peers examined and non-empty
/// per-peer pair lists produced.
pub fn record_schedule_build(peer_probes: u64, pairs_emitted: u64) {
    SCHEDULE_STATS.with(|c| {
        let mut s = c.get();
        s.builds += 1;
        s.peer_probes += peer_probes;
        s.pairs_emitted += pairs_emitted;
        c.set(s);
    });
}

/// Records plan-driven copy work: `elements` moved in `runs` contiguous runs.
pub fn record_schedule_copy(elements: u64, runs: u64) {
    SCHEDULE_STATS.with(|c| {
        let mut s = c.get();
        s.elements_copied += elements;
        s.copy_runs += runs;
        c.set(s);
    });
}

/// Records a transfer-buffer lease; `fresh` when the pool had to allocate.
pub fn record_buffer_lease(fresh: bool) {
    SCHEDULE_STATS.with(|c| {
        let mut s = c.get();
        s.buffer_leases += 1;
        s.buffer_allocs += u64::from(fresh);
        c.set(s);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_counters_are_thread_local() {
        reset_schedule_stats();
        record_schedule_build(3, 2);
        record_schedule_copy(100, 4);
        record_buffer_lease(true);
        record_buffer_lease(false);
        let s = schedule_stats();
        assert_eq!(s.builds, 1);
        assert_eq!(s.peer_probes, 3);
        assert_eq!(s.pairs_emitted, 2);
        assert_eq!(s.elements_copied, 100);
        assert_eq!(s.copy_runs, 4);
        assert_eq!(s.buffer_leases, 2);
        assert_eq!(s.buffer_allocs, 1);

        let other = std::thread::spawn(schedule_stats).join().unwrap();
        assert_eq!(other, ScheduleStats::default(), "isolated per thread");

        reset_schedule_stats();
        assert_eq!(schedule_stats(), ScheduleStats::default());
    }

    #[test]
    fn record_and_snapshot() {
        let s = WorldStats::new();
        s.record(TrafficClass::PointToPoint, 100);
        s.record(TrafficClass::PointToPoint, 50);
        s.record(TrafficClass::Collective, 8);
        let snap = s.snapshot();
        assert_eq!(snap.p2p_messages, 2);
        assert_eq!(snap.p2p_bytes, 150);
        assert_eq!(snap.collective_messages, 1);
        assert_eq!(snap.collective_bytes, 8);
        assert_eq!(snap.total_messages(), 3);
        assert_eq!(snap.total_bytes(), 158);
    }

    #[test]
    fn since_computes_phase_delta() {
        let s = WorldStats::new();
        s.record(TrafficClass::PointToPoint, 10);
        let before = s.snapshot();
        s.record(TrafficClass::PointToPoint, 20);
        s.record(TrafficClass::Collective, 5);
        let delta = s.snapshot().since(&before);
        assert_eq!(delta.p2p_messages, 1);
        assert_eq!(delta.p2p_bytes, 20);
        assert_eq!(delta.collective_bytes, 5);
    }

    #[test]
    fn reset_zeroes() {
        let s = WorldStats::new();
        s.record(TrafficClass::Collective, 5);
        s.record_fault(FaultClass::Dropped);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn fault_counters_accumulate() {
        let s = WorldStats::new();
        s.record_fault(FaultClass::Dropped);
        s.record_fault(FaultClass::Dropped);
        s.record_fault(FaultClass::Duplicated);
        s.record_fault(FaultClass::Corrupted);
        s.record_fault(FaultClass::Delayed);
        s.record_fault(FaultClass::RankDeath);
        let snap = s.snapshot();
        assert_eq!(snap.dropped_messages, 2);
        assert_eq!(snap.duplicated_messages, 1);
        assert_eq!(snap.corrupted_messages, 1);
        assert_eq!(snap.delayed_messages, 1);
        assert_eq!(snap.rank_deaths, 1);
        assert_eq!(snap.total_faults(), 6);
        assert_eq!(snap.total_messages(), 0, "faults are not traffic");
    }
}
