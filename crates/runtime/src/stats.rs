//! Traffic accounting.
//!
//! The runtime counts every message and its reported wire size (see
//! [`crate::MsgSize`]), split into point-to-point and collective-internal
//! traffic. Benchmarks report these counters alongside wall-clock time so
//! that results stay meaningful on a real cluster, where message count and
//! volume — not thread-to-thread copy speed — dominate.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Which runtime layer produced a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficClass {
    /// A user-level `send`/`recv` pair.
    PointToPoint,
    /// Internal traffic of a collective operation (barrier, bcast, ...).
    Collective,
}

/// A collective operation, for per-algorithm traffic accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollOp {
    /// Dissemination barrier.
    Barrier,
    /// Binomial-tree broadcast.
    Bcast,
    /// Root-gather.
    Gather,
    /// Root-scatter.
    Scatter,
    /// Ring allgather.
    Allgather,
    /// All-to-all exchange (pairwise or Bruck).
    Alltoall,
    /// Binomial-tree reduction.
    Reduce,
    /// Recursive-halving reduce-scatter.
    ReduceScatter,
    /// Allreduce (recursive doubling or reduce+bcast).
    Allreduce,
    /// Linear-chain prefix scan.
    Scan,
}

impl CollOp {
    /// Number of distinct collective operations.
    pub const COUNT: usize = 10;
    /// Every operation, in counter-table order.
    pub const ALL: [CollOp; Self::COUNT] = [
        CollOp::Barrier,
        CollOp::Bcast,
        CollOp::Gather,
        CollOp::Scatter,
        CollOp::Allgather,
        CollOp::Alltoall,
        CollOp::Reduce,
        CollOp::ReduceScatter,
        CollOp::Allreduce,
        CollOp::Scan,
    ];

    /// Position in the per-op counter tables. Also the stable op code
    /// carried in trace-event args (`CollMsg`/`CollClone`/`CollAlloc`).
    pub fn index(self) -> usize {
        match self {
            CollOp::Barrier => 0,
            CollOp::Bcast => 1,
            CollOp::Gather => 2,
            CollOp::Scatter => 3,
            CollOp::Allgather => 4,
            CollOp::Alltoall => 5,
            CollOp::Reduce => 6,
            CollOp::ReduceScatter => 7,
            CollOp::Allreduce => 8,
            CollOp::Scan => 9,
        }
    }

    /// Stable lowercase name, for reports.
    pub fn name(self) -> &'static str {
        match self {
            CollOp::Barrier => "barrier",
            CollOp::Bcast => "bcast",
            CollOp::Gather => "gather",
            CollOp::Scatter => "scatter",
            CollOp::Allgather => "allgather",
            CollOp::Alltoall => "alltoall",
            CollOp::Reduce => "reduce",
            CollOp::ReduceScatter => "reduce_scatter",
            CollOp::Allreduce => "allreduce",
            CollOp::Scan => "scan",
        }
    }
}

/// A fault injected by the fault plane, for accounting purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Message silently dropped.
    Dropped,
    /// Message delivered twice.
    Duplicated,
    /// Message delivered with a damaged checksum.
    Corrupted,
    /// Message visibility delayed beyond the network model.
    Delayed,
    /// A rank died.
    RankDeath,
}

/// Live counters for one world. All methods are thread-safe.
#[derive(Default)]
pub struct WorldStats {
    p2p_msgs: AtomicU64,
    p2p_bytes: AtomicU64,
    coll_msgs: AtomicU64,
    coll_bytes: AtomicU64,
    /// Per-[`CollOp`] message/byte/clone/alloc counters, indexed by
    /// [`CollOp::index`].
    coll_op_msgs: [AtomicU64; CollOp::COUNT],
    coll_op_bytes: [AtomicU64; CollOp::COUNT],
    coll_op_clones: [AtomicU64; CollOp::COUNT],
    coll_op_allocs: [AtomicU64; CollOp::COUNT],
    /// Deep payload copies anywhere in the transport (copy-on-write unwraps
    /// of shared payloads, explicit collective clones, replicated sends).
    payload_clones: AtomicU64,
    /// Payload allocations made to *share* a value (one `Arc::new` per
    /// multicast/shared broadcast, regardless of receiver count).
    payload_allocs: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    corrupted: AtomicU64,
    delayed: AtomicU64,
    deaths: AtomicU64,
    /// Receives that failed with [`crate::RuntimeError::Timeout`].
    recv_timeouts: AtomicU64,
    /// Operations that failed with [`crate::RuntimeError::PeerDead`].
    peer_dead_errors: AtomicU64,
    /// High-water mark of payload bytes resident in any single rank's
    /// mailbox — the per-rank peak transfer memory an eager transport
    /// actually commits. Folded in at the send choke point.
    transfer_peak_bytes: AtomicU64,
    /// Latest measured mailbox-depth gauge (see [`MailboxGauge`]); written
    /// by [`WorldStats::note_queue_gauge`] at sampling points, read by
    /// autoscaling policy drivers.
    queue_live_bytes: AtomicU64,
    queue_peak_bytes: AtomicU64,
    queue_depth_msgs: AtomicU64,
}

/// One measured sample of a rank's mailbox occupancy — the *queue depth*
/// an autoscaler judges load by. Unlike the monotone counters above, this
/// is a gauge: each sample replaces the last. `peak_bytes` is the
/// high-water mark since the previous sample (the sampler resets it), so a
/// backlog that built and drained entirely between samples is still seen.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MailboxGauge {
    /// Payload bytes resident in the mailbox right now.
    pub live_bytes: u64,
    /// High-water mark of resident bytes since the previous sample.
    pub peak_bytes: u64,
    /// Messages queued (undelivered envelopes) right now.
    pub depth_msgs: u64,
}

impl WorldStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sent message of `bytes` wire bytes.
    pub fn record(&self, class: TrafficClass, bytes: usize) {
        match class {
            TrafficClass::PointToPoint => {
                self.p2p_msgs.fetch_add(1, Ordering::Relaxed);
                self.p2p_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
            }
            TrafficClass::Collective => {
                self.coll_msgs.fetch_add(1, Ordering::Relaxed);
                self.coll_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
            }
        }
    }

    /// Records one message of `bytes` wire bytes attributed to a specific
    /// collective algorithm (in addition to the aggregate
    /// [`TrafficClass::Collective`] counters, which the send path updates).
    pub fn record_coll(&self, op: CollOp, bytes: usize) {
        let i = op.index();
        self.coll_op_msgs[i].fetch_add(1, Ordering::Relaxed);
        self.coll_op_bytes[i].fetch_add(bytes as u64, Ordering::Relaxed);
        // Trace and counters update at the same site so the two accounting
        // paths cannot drift (asserted by the trace/stats cross-check test).
        mxn_trace::emit_instant(mxn_trace::EventId::CollMsg, [i as u64, bytes as u64, 0, 0]);
    }

    /// Records `n` deep payload copies performed by a collective algorithm.
    pub fn record_coll_clones(&self, op: CollOp, n: u64) {
        if n > 0 {
            self.coll_op_clones[op.index()].fetch_add(n, Ordering::Relaxed);
            self.payload_clones.fetch_add(n, Ordering::Relaxed);
            mxn_trace::emit_instant(mxn_trace::EventId::CollClone, [op.index() as u64, n, 0, 0]);
        }
    }

    /// Records `n` shared-payload allocations made by a collective algorithm.
    pub fn record_coll_allocs(&self, op: CollOp, n: u64) {
        if n > 0 {
            self.coll_op_allocs[op.index()].fetch_add(n, Ordering::Relaxed);
            self.payload_allocs.fetch_add(n, Ordering::Relaxed);
            mxn_trace::emit_instant(mxn_trace::EventId::CollAlloc, [op.index() as u64, n, 0, 0]);
        }
    }

    /// Records one deep payload copy outside any collective (copy-on-write
    /// unwrap of a shared point-to-point payload, replicated send).
    pub fn record_payload_clone(&self) {
        self.payload_clones.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one shared-payload allocation outside any collective.
    pub fn record_payload_alloc(&self) {
        self.payload_allocs.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one injected fault (called by the fault plane's send path).
    pub fn record_fault(&self, class: FaultClass) {
        let counter = match class {
            FaultClass::Dropped => &self.dropped,
            FaultClass::Duplicated => &self.duplicated,
            FaultClass::Corrupted => &self.corrupted,
            FaultClass::Delayed => &self.delayed,
            FaultClass::RankDeath => &self.deaths,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one receive that failed with `Timeout`.
    pub fn record_recv_timeout(&self) {
        self.recv_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one operation that failed with `PeerDead`.
    pub fn record_peer_dead_error(&self) {
        self.peer_dead_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Raises the per-rank transfer-memory high-water mark to `peak` if it
    /// is higher than anything recorded so far (CAS-max).
    pub fn note_transfer_peak(&self, peak: u64) {
        self.transfer_peak_bytes.fetch_max(peak, Ordering::Relaxed);
    }

    /// Stores the latest measured mailbox-depth gauge. Samplers (e.g.
    /// `InterComm::sample_mailbox_gauge`) call this so the most recent
    /// measured queue depth is visible alongside the world counters.
    pub fn note_queue_gauge(&self, gauge: &MailboxGauge) {
        self.queue_live_bytes.store(gauge.live_bytes, Ordering::Relaxed);
        self.queue_peak_bytes.store(gauge.peak_bytes, Ordering::Relaxed);
        self.queue_depth_msgs.store(gauge.depth_msgs, Ordering::Relaxed);
    }

    /// The most recent gauge stored by [`WorldStats::note_queue_gauge`]
    /// (zeroed if nothing has sampled yet).
    pub fn queue_gauge(&self) -> MailboxGauge {
        MailboxGauge {
            live_bytes: self.queue_live_bytes.load(Ordering::Relaxed),
            peak_bytes: self.queue_peak_bytes.load(Ordering::Relaxed),
            depth_msgs: self.queue_depth_msgs.load(Ordering::Relaxed),
        }
    }

    /// Snapshot of the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        let table = |arr: &[AtomicU64; CollOp::COUNT]| {
            let mut out = [0u64; CollOp::COUNT];
            for (o, a) in out.iter_mut().zip(arr) {
                *o = a.load(Ordering::Relaxed);
            }
            out
        };
        StatsSnapshot {
            p2p_messages: self.p2p_msgs.load(Ordering::Relaxed),
            p2p_bytes: self.p2p_bytes.load(Ordering::Relaxed),
            collective_messages: self.coll_msgs.load(Ordering::Relaxed),
            collective_bytes: self.coll_bytes.load(Ordering::Relaxed),
            coll_op_messages: table(&self.coll_op_msgs),
            coll_op_bytes: table(&self.coll_op_bytes),
            coll_op_payload_clones: table(&self.coll_op_clones),
            coll_op_payload_allocs: table(&self.coll_op_allocs),
            payload_clones: self.payload_clones.load(Ordering::Relaxed),
            payload_allocs: self.payload_allocs.load(Ordering::Relaxed),
            dropped_messages: self.dropped.load(Ordering::Relaxed),
            duplicated_messages: self.duplicated.load(Ordering::Relaxed),
            corrupted_messages: self.corrupted.load(Ordering::Relaxed),
            delayed_messages: self.delayed.load(Ordering::Relaxed),
            rank_deaths: self.deaths.load(Ordering::Relaxed),
            recv_timeouts: self.recv_timeouts.load(Ordering::Relaxed),
            peer_dead_errors: self.peer_dead_errors.load(Ordering::Relaxed),
            transfer_peak_bytes: self.transfer_peak_bytes.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero (used between benchmark phases).
    pub fn reset(&self) {
        self.p2p_msgs.store(0, Ordering::Relaxed);
        self.p2p_bytes.store(0, Ordering::Relaxed);
        self.coll_msgs.store(0, Ordering::Relaxed);
        self.coll_bytes.store(0, Ordering::Relaxed);
        for table in
            [&self.coll_op_msgs, &self.coll_op_bytes, &self.coll_op_clones, &self.coll_op_allocs]
        {
            for a in table {
                a.store(0, Ordering::Relaxed);
            }
        }
        self.payload_clones.store(0, Ordering::Relaxed);
        self.payload_allocs.store(0, Ordering::Relaxed);
        self.dropped.store(0, Ordering::Relaxed);
        self.duplicated.store(0, Ordering::Relaxed);
        self.corrupted.store(0, Ordering::Relaxed);
        self.delayed.store(0, Ordering::Relaxed);
        self.deaths.store(0, Ordering::Relaxed);
        self.recv_timeouts.store(0, Ordering::Relaxed);
        self.peer_dead_errors.store(0, Ordering::Relaxed);
        self.transfer_peak_bytes.store(0, Ordering::Relaxed);
        self.queue_live_bytes.store(0, Ordering::Relaxed);
        self.queue_peak_bytes.store(0, Ordering::Relaxed);
        self.queue_depth_msgs.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of a world's traffic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Point-to-point messages sent.
    pub p2p_messages: u64,
    /// Point-to-point bytes sent.
    pub p2p_bytes: u64,
    /// Collective-internal messages sent.
    pub collective_messages: u64,
    /// Collective-internal bytes sent.
    pub collective_bytes: u64,
    /// Messages per collective algorithm, indexed like [`CollOp::ALL`].
    pub coll_op_messages: [u64; CollOp::COUNT],
    /// Bytes per collective algorithm.
    pub coll_op_bytes: [u64; CollOp::COUNT],
    /// Deep payload copies per collective algorithm.
    pub coll_op_payload_clones: [u64; CollOp::COUNT],
    /// Shared-payload allocations per collective algorithm.
    pub coll_op_payload_allocs: [u64; CollOp::COUNT],
    /// Deep payload copies across the whole transport.
    pub payload_clones: u64,
    /// Shared-payload allocations across the whole transport.
    pub payload_allocs: u64,
    /// Messages dropped by the fault plane.
    pub dropped_messages: u64,
    /// Messages duplicated by the fault plane.
    pub duplicated_messages: u64,
    /// Messages corrupted by the fault plane.
    pub corrupted_messages: u64,
    /// Messages delayed by the fault plane (beyond the network model).
    pub delayed_messages: u64,
    /// Ranks that died (scheduled or explicit kills).
    pub rank_deaths: u64,
    /// Receives that returned a `Timeout` error.
    pub recv_timeouts: u64,
    /// Operations that returned a `PeerDead` error.
    pub peer_dead_errors: u64,
    /// High-water mark of payload bytes resident in any single rank's
    /// mailbox. A *high-water mark*, not a counter: [`Self::since`] carries
    /// the later value instead of subtracting (reset between phases to
    /// measure one phase's peak).
    pub transfer_peak_bytes: u64,
}

impl StatsSnapshot {
    /// Total messages of both classes.
    pub fn total_messages(&self) -> u64 {
        self.p2p_messages + self.collective_messages
    }

    /// Total bytes of both classes.
    pub fn total_bytes(&self) -> u64 {
        self.p2p_bytes + self.collective_bytes
    }

    /// Total faults of every class injected by the fault plane.
    pub fn total_faults(&self) -> u64 {
        self.dropped_messages
            + self.duplicated_messages
            + self.corrupted_messages
            + self.delayed_messages
            + self.rank_deaths
    }

    /// Per-algorithm view: (messages, bytes, payload clones, payload allocs)
    /// attributed to `op`.
    pub fn coll(&self, op: CollOp) -> CollOpStats {
        let i = CollOp::ALL.iter().position(|o| *o == op).expect("op in table");
        CollOpStats {
            messages: self.coll_op_messages[i],
            bytes: self.coll_op_bytes[i],
            payload_clones: self.coll_op_payload_clones[i],
            payload_allocs: self.coll_op_payload_allocs[i],
        }
    }

    /// Difference `self - earlier`, for measuring a phase.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        let sub = |a: &[u64; CollOp::COUNT], b: &[u64; CollOp::COUNT]| {
            let mut out = [0u64; CollOp::COUNT];
            for i in 0..CollOp::COUNT {
                out[i] = a[i] - b[i];
            }
            out
        };
        StatsSnapshot {
            p2p_messages: self.p2p_messages - earlier.p2p_messages,
            p2p_bytes: self.p2p_bytes - earlier.p2p_bytes,
            collective_messages: self.collective_messages - earlier.collective_messages,
            collective_bytes: self.collective_bytes - earlier.collective_bytes,
            coll_op_messages: sub(&self.coll_op_messages, &earlier.coll_op_messages),
            coll_op_bytes: sub(&self.coll_op_bytes, &earlier.coll_op_bytes),
            coll_op_payload_clones: sub(
                &self.coll_op_payload_clones,
                &earlier.coll_op_payload_clones,
            ),
            coll_op_payload_allocs: sub(
                &self.coll_op_payload_allocs,
                &earlier.coll_op_payload_allocs,
            ),
            payload_clones: self.payload_clones - earlier.payload_clones,
            payload_allocs: self.payload_allocs - earlier.payload_allocs,
            dropped_messages: self.dropped_messages - earlier.dropped_messages,
            duplicated_messages: self.duplicated_messages - earlier.duplicated_messages,
            corrupted_messages: self.corrupted_messages - earlier.corrupted_messages,
            delayed_messages: self.delayed_messages - earlier.delayed_messages,
            rank_deaths: self.rank_deaths - earlier.rank_deaths,
            recv_timeouts: self.recv_timeouts - earlier.recv_timeouts,
            peer_dead_errors: self.peer_dead_errors - earlier.peer_dead_errors,
            // High-water mark: monotone, so the later snapshot's value *is*
            // the peak over the combined interval.
            transfer_peak_bytes: self.transfer_peak_bytes,
        }
    }
}

/// Per-collective-algorithm counters extracted from a [`StatsSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CollOpStats {
    /// Messages sent by this algorithm.
    pub messages: u64,
    /// Payload bytes sent by this algorithm.
    pub bytes: u64,
    /// Deep payload copies performed by this algorithm.
    pub payload_clones: u64,
    /// Shared-payload allocations performed by this algorithm.
    pub payload_allocs: u64,
}

/// Per-thread schedule-pipeline counters.
///
/// Schedule construction and transfer execution are measured per rank, and
/// in this runtime every rank is its own thread — so thread-local counters
/// give each rank (and each `cargo test` thread) a deterministic, isolated
/// view without cross-rank interference.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleStats {
    /// Schedules built on this thread.
    pub builds: u64,
    /// Candidate peers examined across all builds — the pruning metric: a
    /// naive build probes `nranks` peers, a pruned build only the peers
    /// whose patches can overlap.
    pub peer_probes: u64,
    /// Non-empty per-peer pair lists emitted by builds.
    pub pairs_emitted: u64,
    /// Elements moved through plan-driven pack/unpack/local copies.
    pub elements_copied: u64,
    /// Contiguous copy runs executed by plan-driven transfers.
    pub copy_runs: u64,
    /// Transfer buffers leased from a pool.
    pub buffer_leases: u64,
    /// Leases that had to allocate a fresh buffer (pool empty). In steady
    /// state this stops growing: buffers circulate instead.
    pub buffer_allocs: u64,
    /// Transfer bytes this rank's executor currently holds live (leased or
    /// packed, not yet sent / not yet recycled).
    pub transfer_live_bytes: u64,
    /// High-water mark of [`Self::transfer_live_bytes`] — the executor-side
    /// half of per-rank peak transfer memory (the mailbox-side half lives in
    /// [`StatsSnapshot::transfer_peak_bytes`]).
    pub transfer_peak_bytes: u64,
    /// High-water mark of bytes parked idle in `TransferBuffers` pools on
    /// this thread.
    pub pool_peak_bytes: u64,
}

thread_local! {
    static SCHEDULE_STATS: Cell<ScheduleStats> = const { Cell::new(ScheduleStats {
        builds: 0,
        peer_probes: 0,
        pairs_emitted: 0,
        elements_copied: 0,
        copy_runs: 0,
        buffer_leases: 0,
        buffer_allocs: 0,
        transfer_live_bytes: 0,
        transfer_peak_bytes: 0,
        pool_peak_bytes: 0,
    }) };
}

/// Snapshot of this thread's schedule counters.
pub fn schedule_stats() -> ScheduleStats {
    SCHEDULE_STATS.with(Cell::get)
}

/// Zeroes this thread's schedule counters (between measurement phases).
pub fn reset_schedule_stats() {
    SCHEDULE_STATS.with(|c| c.set(ScheduleStats::default()));
}

/// Records one schedule build: candidate peers examined and non-empty
/// per-peer pair lists produced.
pub fn record_schedule_build(peer_probes: u64, pairs_emitted: u64) {
    SCHEDULE_STATS.with(|c| {
        let mut s = c.get();
        s.builds += 1;
        s.peer_probes += peer_probes;
        s.pairs_emitted += pairs_emitted;
        c.set(s);
    });
}

/// Records plan-driven copy work: `elements` moved in `runs` contiguous runs.
pub fn record_schedule_copy(elements: u64, runs: u64) {
    SCHEDULE_STATS.with(|c| {
        let mut s = c.get();
        s.elements_copied += elements;
        s.copy_runs += runs;
        c.set(s);
    });
}

/// Records a transfer-buffer lease; `fresh` when the pool had to allocate.
pub fn record_buffer_lease(fresh: bool) {
    SCHEDULE_STATS.with(|c| {
        let mut s = c.get();
        s.buffer_leases += 1;
        s.buffer_allocs += u64::from(fresh);
        c.set(s);
    });
}

/// Records `bytes` of transfer memory acquired by this rank's executor
/// (buffer leased and filled), raising the thread's high-water mark.
pub fn record_transfer_acquired(bytes: u64) {
    SCHEDULE_STATS.with(|c| {
        let mut s = c.get();
        s.transfer_live_bytes += bytes;
        s.transfer_peak_bytes = s.transfer_peak_bytes.max(s.transfer_live_bytes);
        c.set(s);
    });
}

/// Records `bytes` of transfer memory released (buffer sent away or
/// recycled).
pub fn record_transfer_released(bytes: u64) {
    SCHEDULE_STATS.with(|c| {
        let mut s = c.get();
        s.transfer_live_bytes = s.transfer_live_bytes.saturating_sub(bytes);
        c.set(s);
    });
}

/// Raises this thread's idle-pool-bytes high-water mark to `idle_bytes`.
pub fn record_pool_bytes(idle_bytes: u64) {
    SCHEDULE_STATS.with(|c| {
        let mut s = c.get();
        s.pool_peak_bytes = s.pool_peak_bytes.max(idle_bytes);
        c.set(s);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_counters_are_thread_local() {
        reset_schedule_stats();
        record_schedule_build(3, 2);
        record_schedule_copy(100, 4);
        record_buffer_lease(true);
        record_buffer_lease(false);
        let s = schedule_stats();
        assert_eq!(s.builds, 1);
        assert_eq!(s.peer_probes, 3);
        assert_eq!(s.pairs_emitted, 2);
        assert_eq!(s.elements_copied, 100);
        assert_eq!(s.copy_runs, 4);
        assert_eq!(s.buffer_leases, 2);
        assert_eq!(s.buffer_allocs, 1);

        let other = std::thread::spawn(schedule_stats).join().unwrap();
        assert_eq!(other, ScheduleStats::default(), "isolated per thread");

        reset_schedule_stats();
        assert_eq!(schedule_stats(), ScheduleStats::default());
    }

    #[test]
    fn transfer_peak_is_a_high_water_mark() {
        let s = WorldStats::new();
        s.note_transfer_peak(100);
        s.note_transfer_peak(40);
        let snap = s.snapshot();
        assert_eq!(snap.transfer_peak_bytes, 100, "lower observations never regress the peak");
        s.note_transfer_peak(250);
        let later = s.snapshot();
        assert_eq!(later.transfer_peak_bytes, 250);
        assert_eq!(later.since(&snap).transfer_peak_bytes, 250, "since carries, not subtracts");
        s.reset();
        assert_eq!(s.snapshot().transfer_peak_bytes, 0);
    }

    #[test]
    fn executor_transfer_and_pool_peaks_track_live_bytes() {
        reset_schedule_stats();
        record_transfer_acquired(64);
        record_transfer_acquired(32);
        record_transfer_released(64);
        record_transfer_acquired(16);
        record_pool_bytes(40);
        record_pool_bytes(8);
        let s = schedule_stats();
        assert_eq!(s.transfer_live_bytes, 48);
        assert_eq!(s.transfer_peak_bytes, 96);
        assert_eq!(s.pool_peak_bytes, 40);
        reset_schedule_stats();
    }

    #[test]
    fn record_and_snapshot() {
        let s = WorldStats::new();
        s.record(TrafficClass::PointToPoint, 100);
        s.record(TrafficClass::PointToPoint, 50);
        s.record(TrafficClass::Collective, 8);
        let snap = s.snapshot();
        assert_eq!(snap.p2p_messages, 2);
        assert_eq!(snap.p2p_bytes, 150);
        assert_eq!(snap.collective_messages, 1);
        assert_eq!(snap.collective_bytes, 8);
        assert_eq!(snap.total_messages(), 3);
        assert_eq!(snap.total_bytes(), 158);
    }

    #[test]
    fn since_computes_phase_delta() {
        let s = WorldStats::new();
        s.record(TrafficClass::PointToPoint, 10);
        let before = s.snapshot();
        s.record(TrafficClass::PointToPoint, 20);
        s.record(TrafficClass::Collective, 5);
        let delta = s.snapshot().since(&before);
        assert_eq!(delta.p2p_messages, 1);
        assert_eq!(delta.p2p_bytes, 20);
        assert_eq!(delta.collective_bytes, 5);
    }

    #[test]
    fn reset_zeroes() {
        let s = WorldStats::new();
        s.record(TrafficClass::Collective, 5);
        s.record_fault(FaultClass::Dropped);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn per_collective_counters_accumulate_and_reset() {
        let s = WorldStats::new();
        s.record_coll(CollOp::Bcast, 100);
        s.record_coll(CollOp::Bcast, 100);
        s.record_coll(CollOp::Allreduce, 8);
        s.record_coll_clones(CollOp::Bcast, 3);
        s.record_coll_allocs(CollOp::Bcast, 1);
        s.record_payload_clone();
        s.record_payload_alloc();
        let before = s.snapshot();
        let bcast = before.coll(CollOp::Bcast);
        assert_eq!(
            bcast,
            CollOpStats { messages: 2, bytes: 200, payload_clones: 3, payload_allocs: 1 }
        );
        assert_eq!(before.coll(CollOp::Allreduce).messages, 1);
        assert_eq!(before.coll(CollOp::Barrier), CollOpStats::default());
        assert_eq!(before.payload_clones, 4, "per-op clones roll up into the global counter");
        assert_eq!(before.payload_allocs, 2);

        s.record_coll(CollOp::Bcast, 50);
        let delta = s.snapshot().since(&before);
        assert_eq!(
            delta.coll(CollOp::Bcast),
            CollOpStats { messages: 1, bytes: 50, ..Default::default() }
        );

        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn coll_op_table_is_consistent() {
        assert_eq!(CollOp::ALL.len(), CollOp::COUNT);
        for (i, op) in CollOp::ALL.iter().enumerate() {
            assert_eq!(op.index(), i, "{} out of order", op.name());
        }
    }

    #[test]
    fn fault_counters_accumulate() {
        let s = WorldStats::new();
        s.record_fault(FaultClass::Dropped);
        s.record_fault(FaultClass::Dropped);
        s.record_fault(FaultClass::Duplicated);
        s.record_fault(FaultClass::Corrupted);
        s.record_fault(FaultClass::Delayed);
        s.record_fault(FaultClass::RankDeath);
        let snap = s.snapshot();
        assert_eq!(snap.dropped_messages, 2);
        assert_eq!(snap.duplicated_messages, 1);
        assert_eq!(snap.corrupted_messages, 1);
        assert_eq!(snap.delayed_messages, 1);
        assert_eq!(snap.rank_deaths, 1);
        assert_eq!(snap.total_faults(), 6);
        assert_eq!(snap.total_messages(), 0, "faults are not traffic");
    }

    #[test]
    fn recv_error_counters_accumulate_and_reset() {
        let s = WorldStats::new();
        s.record_recv_timeout();
        s.record_recv_timeout();
        s.record_peer_dead_error();
        let snap = s.snapshot();
        assert_eq!(snap.recv_timeouts, 2);
        assert_eq!(snap.peer_dead_errors, 1);
        let delta = s.snapshot().since(&snap);
        assert_eq!(delta.recv_timeouts, 0);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }
}
