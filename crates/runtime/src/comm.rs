//! Communicators: groups of ranks with isolated message contexts.

use std::any::type_name;
use std::cell::Cell;
use std::sync::Arc;
use std::time::Duration;

use crate::envelope::{Envelope, MessageInfo, Payload, Src, Tag};
use crate::error::{Result, RuntimeError};
use crate::mailbox::PeerRef;
use crate::msgsize::MsgSize;
use crate::shared::{WorldShared, WORLD_CONTEXT};
use crate::stats::TrafficClass;
use crate::tracing::{ctx_class, record_op_error, tag_arg};
use mxn_trace::{emit_instant, EventId};

/// A communicator: an ordered group of world ranks plus a private message
/// context, held by one rank (communicators are per-thread handles, exactly
/// like `MPI_Comm` values).
///
/// Point-to-point operations address peers by *communicator-local* rank.
/// Collective operations (see [`crate::collectives`]) must be called by every
/// member, in the same order.
pub struct Comm {
    shared: Arc<WorldShared>,
    /// Global rank per local rank; index = local rank.
    group: Arc<Vec<usize>>,
    /// This rank's local rank within `group`.
    local_rank: usize,
    /// Point-to-point context (collective context is `context + 1`).
    context: u32,
    /// Per-handle collective sequence number; members stay in lock-step
    /// because collectives are ordered.
    pub(crate) coll_seq: Cell<u64>,
    /// Per-handle recovery sequence number (agreements/shrinks are ordered
    /// collectives too, on the recovery tag space).
    pub(crate) recovery_seq: Cell<u64>,
}

impl Comm {
    /// Builds the world communicator handle for `global_rank`.
    pub(crate) fn world(shared: Arc<WorldShared>, global_rank: usize) -> Self {
        let n = shared.size();
        Comm {
            shared,
            group: Arc::new((0..n).collect()),
            local_rank: global_rank,
            context: WORLD_CONTEXT,
            coll_seq: Cell::new(0),
            recovery_seq: Cell::new(0),
        }
    }

    pub(crate) fn from_parts(
        shared: Arc<WorldShared>,
        group: Arc<Vec<usize>>,
        local_rank: usize,
        context: u32,
    ) -> Self {
        Comm {
            shared,
            group,
            local_rank,
            context,
            coll_seq: Cell::new(0),
            recovery_seq: Cell::new(0),
        }
    }

    /// This rank's rank within the communicator.
    pub fn rank(&self) -> usize {
        self.local_rank
    }

    /// Number of ranks in the communicator.
    pub fn size(&self) -> usize {
        self.group.len()
    }

    /// The global (world) ranks of the members, in local-rank order.
    pub fn group(&self) -> &[usize] {
        &self.group
    }

    /// This rank's global (world) rank.
    pub fn global_rank(&self) -> usize {
        self.group[self.local_rank]
    }

    /// The communicator's point-to-point context id.
    pub fn context(&self) -> u32 {
        self.context
    }

    /// `(live, peak)` payload bytes of this rank's own mailbox: what is
    /// queued for this rank right now, and the most that has ever been.
    /// Spans all communicators of the world (the mailbox is per *rank*).
    pub fn mailbox_bytes(&self) -> (u64, u64) {
        let mb = self.shared.mailbox(self.global_rank());
        (mb.live_bytes(), mb.peak_bytes())
    }

    /// Resets this rank's mailbox byte high-water mark to its current live
    /// level (between measurement phases).
    pub fn reset_mailbox_peak(&self) {
        self.shared.mailbox(self.global_rank()).reset_peak_bytes();
    }

    pub(crate) fn shared(&self) -> &Arc<WorldShared> {
        &self.shared
    }

    /// The recovery view of this communicator: ULFM-style revoke / agree /
    /// shrink. See [`crate::membership::Membership`].
    pub fn membership(&self) -> crate::membership::Membership<'_> {
        crate::membership::Membership::new(self)
    }

    fn check_rank(&self, rank: usize) -> Result<()> {
        if rank < self.group.len() {
            Ok(())
        } else {
            Err(RuntimeError::InvalidRank { rank, size: self.group.len() })
        }
    }

    /// The peers that could satisfy a receive matching `src`: a single rank,
    /// or (for `Src::Any`) every other member. Used for dead-peer detection
    /// in blocked waits.
    pub(crate) fn peers_of(&self, src: Src) -> Vec<PeerRef> {
        match src {
            Src::Rank(r) if r < self.group.len() => {
                vec![PeerRef { global: self.group[r], local: r }]
            }
            Src::Rank(_) => Vec::new(),
            Src::Any => (0..self.group.len())
                .filter(|&r| r != self.local_rank)
                .map(|r| PeerRef { global: self.group[r], local: r })
                .collect(),
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn push_envelope(
        &self,
        dst_local: usize,
        context: u32,
        tag: i32,
        bytes: usize,
        payload: Payload,
        replicate: Option<&dyn Fn() -> Payload>,
        class: TrafficClass,
    ) -> Result<()> {
        let dst_global = self.group[dst_local];
        self.shared.send_envelope(
            self.global_rank(),
            self.local_rank,
            dst_global,
            dst_local,
            context,
            tag,
            bytes,
            payload,
            replicate,
            class,
        )
    }

    /// Sends `value` to communicator-local rank `dst` with `tag`.
    ///
    /// Sends never block: the runtime models an eager/buffered MPI send, so
    /// deadlock can only arise from receives (which is exactly the behaviour
    /// the PRMI synchronization experiments need). Under a fault plane a
    /// send fails with [`RuntimeError::PeerDead`] only when the sending
    /// rank's own scheduled death triggers; a dead *destination* is detected
    /// on the receive side, keeping same-seed runs deterministic.
    pub fn send<T: Send + MsgSize + 'static>(&self, dst: usize, tag: i32, value: T) -> Result<()> {
        self.check_rank(dst)?;
        let bytes = value.msg_size();
        self.push_envelope(
            dst,
            self.context,
            tag,
            bytes,
            Payload::owned(value),
            None,
            TrafficClass::PointToPoint,
        )
    }

    /// Like [`Comm::send`] for clonable values. Payloads normally move into
    /// the destination mailbox, so a fault plane that duplicates a frame has
    /// no second copy to deliver; this variant posts the value as a shared
    /// payload, which replicates itself in O(1) — no eager clone, and the
    /// sole receiver unwraps it without copying.
    pub fn send_replicable<T: Send + Sync + Clone + MsgSize + 'static>(
        &self,
        dst: usize,
        tag: i32,
        value: T,
    ) -> Result<()> {
        self.check_rank(dst)?;
        let bytes = value.msg_size();
        self.shared.stats().record_payload_alloc();
        self.push_envelope(
            dst,
            self.context,
            tag,
            bytes,
            Payload::shared(Arc::new(value)),
            None,
            TrafficClass::PointToPoint,
        )
    }

    /// Sends one shared payload to every rank in `dsts` (communicator-local,
    /// duplicates allowed): O(1) payload allocations however many receivers.
    /// Receivers see an ordinary message — `recv` unwraps copy-on-write,
    /// [`Comm::recv_shared`] borrows the shared allocation outright.
    pub fn multicast<T: Send + Sync + Clone + MsgSize + 'static>(
        &self,
        dsts: &[usize],
        tag: i32,
        value: T,
    ) -> Result<()> {
        for &d in dsts {
            self.check_rank(d)?;
        }
        match dsts {
            [] => Ok(()),
            // A single destination needs no sharing machinery.
            [dst] => self.send(*dst, tag, value),
            _ => {
                let bytes = value.msg_size();
                let payload = Payload::shared(Arc::new(value));
                self.shared.stats().record_payload_alloc();
                let dst_globals: Vec<usize> = dsts.iter().map(|&d| self.group[d]).collect();
                self.shared.multicast_envelope(
                    self.global_rank(),
                    self.local_rank,
                    &dst_globals,
                    self.context,
                    tag,
                    bytes,
                    &payload,
                    TrafficClass::PointToPoint,
                )
            }
        }
    }

    pub(crate) fn downcast<T: 'static>(&self, env: Envelope) -> Result<(T, MessageInfo)> {
        let info = MessageInfo { src: env.src_local, tag: env.tag, bytes: env.bytes };
        if !env.verify() {
            let err = RuntimeError::Corrupt { src: info.src, tag: info.tag };
            record_op_error(self.shared.stats(), &err);
            return Err(err);
        }
        match env.payload.into_owned::<T>() {
            Ok((v, cloned)) => {
                if cloned {
                    self.shared.stats().record_payload_clone();
                }
                Ok((v, info))
            }
            Err(_) => {
                let err = RuntimeError::TypeMismatch {
                    expected: type_name::<T>(),
                    src: info.src,
                    tag: info.tag,
                };
                record_op_error(self.shared.stats(), &err);
                Err(err)
            }
        }
    }

    pub(crate) fn downcast_shared<T: Send + Sync + 'static>(
        &self,
        env: Envelope,
    ) -> Result<(Arc<T>, MessageInfo)> {
        let info = MessageInfo { src: env.src_local, tag: env.tag, bytes: env.bytes };
        if !env.verify() {
            let err = RuntimeError::Corrupt { src: info.src, tag: info.tag };
            record_op_error(self.shared.stats(), &err);
            return Err(err);
        }
        match env.payload.into_shared::<T>() {
            Ok((arc, _promoted)) => Ok((arc, info)),
            Err(_) => {
                let err = RuntimeError::TypeMismatch {
                    expected: type_name::<T>(),
                    src: info.src,
                    tag: info.tag,
                };
                record_op_error(self.shared.stats(), &err);
                Err(err)
            }
        }
    }

    /// Every blocking receive funnels through here: counts the caller's
    /// operation, takes the earliest match, and keeps both accounting
    /// planes consistent — a matched envelope emits `MailboxMatch`, an
    /// error return (`Timeout`/`PeerDead`/`Aborted`) goes through
    /// [`record_op_error`] so it bumps the stats counters *and* the trace,
    /// never just one.
    pub(crate) fn recv_envelope(
        &self,
        context: u32,
        src: Src,
        tag: Tag,
        timeout: Option<Duration>,
    ) -> Result<Envelope> {
        let res = self.shared.note_op(self.global_rank(), self.local_rank).and_then(|()| {
            let mailbox = self.shared.mailbox(self.global_rank());
            match timeout {
                None => mailbox.take(context, src, tag, &self.peers_of(src)),
                Some(t) => mailbox.take_timeout(context, src, tag, t, &self.peers_of(src)),
            }
        });
        match &res {
            Ok(env) => emit_instant(
                EventId::MailboxMatch,
                [ctx_class(context), tag_arg(env.tag), env.src_local as u64, env.bytes as u64],
            ),
            Err(e) => record_op_error(self.shared.stats(), e),
        }
        res
    }

    /// Receives the earliest message matching `src`/`tag`, blocking until one
    /// arrives. Returns the payload.
    ///
    /// Under a fault plane the receive fails with
    /// [`RuntimeError::PeerDead`] instead of hanging when every rank that
    /// could satisfy it has died, and with [`RuntimeError::Corrupt`] when
    /// the matched envelope fails its integrity check.
    pub fn recv<T: 'static>(&self, src: impl Into<Src>, tag: impl Into<Tag>) -> Result<T> {
        self.recv_with_info(src, tag).map(|(v, _)| v)
    }

    /// Like [`Comm::recv`] but also returns the sender/tag/size metadata
    /// (needed with `Src::Any` / `Tag::Any`).
    pub fn recv_with_info<T: 'static>(
        &self,
        src: impl Into<Src>,
        tag: impl Into<Tag>,
    ) -> Result<(T, MessageInfo)> {
        let src = src.into();
        let env = self.recv_envelope(self.context, src, tag.into(), None)?;
        self.downcast(env)
    }

    /// Like [`Comm::recv`] but borrows a shared payload without copying it:
    /// the zero-clone receive side of [`Comm::multicast`] and the shared
    /// collectives. Owned payloads are promoted into a fresh `Arc` (an O(1)
    /// pointer move, not a deep copy).
    pub fn recv_shared<T: Send + Sync + 'static>(
        &self,
        src: impl Into<Src>,
        tag: impl Into<Tag>,
    ) -> Result<Arc<T>> {
        let src = src.into();
        let env = self.recv_envelope(self.context, src, tag.into(), None)?;
        self.downcast_shared(env).map(|(v, _)| v)
    }

    /// Receives with a deadline; `Err(Timeout)` if nothing matched in time.
    /// This is the deadlock-detection primitive.
    pub fn recv_timeout<T: 'static>(
        &self,
        src: impl Into<Src>,
        tag: impl Into<Tag>,
        timeout: Duration,
    ) -> Result<T> {
        let src = src.into();
        let env = self.recv_envelope(self.context, src, tag.into(), Some(timeout))?;
        self.downcast(env).map(|(v, _)| v)
    }

    /// Non-blocking receive: `Ok(None)` when no matching message is queued.
    pub fn try_recv<T: 'static>(
        &self,
        src: impl Into<Src>,
        tag: impl Into<Tag>,
    ) -> Result<Option<(T, MessageInfo)>> {
        match self.shared.mailbox(self.global_rank()).try_take(self.context, src.into(), tag.into())
        {
            Some(env) => self.downcast(env).map(Some),
            None => Ok(None),
        }
    }

    /// Blocks until a matching message is queued, without consuming it.
    pub fn probe(&self, src: impl Into<Src>, tag: impl Into<Tag>) -> Result<MessageInfo> {
        let src = src.into();
        let res = self.shared.note_op(self.global_rank(), self.local_rank).and_then(|()| {
            self.shared.mailbox(self.global_rank()).probe(
                self.context,
                src,
                tag.into(),
                &self.peers_of(src),
            )
        });
        if let Err(e) = &res {
            record_op_error(self.shared.stats(), e);
        }
        res
    }

    /// Checks for a matching queued message without consuming or blocking.
    pub fn iprobe(&self, src: impl Into<Src>, tag: impl Into<Tag>) -> Option<MessageInfo> {
        self.shared.mailbox(self.global_rank()).iprobe(self.context, src.into(), tag.into())
    }

    /// Combined send-then-receive, the classic shift primitive.
    pub fn sendrecv<S: Send + MsgSize + 'static, R: 'static>(
        &self,
        dst: usize,
        send_tag: i32,
        value: S,
        src: usize,
        recv_tag: i32,
    ) -> Result<R> {
        self.send(dst, send_tag, value)?;
        self.recv(src, recv_tag)
    }

    /// Duplicates the communicator into a fresh context. Collective.
    pub fn dup(&self) -> Result<Comm> {
        let ctx = if self.local_rank == 0 {
            let ctx = self.shared.allocate_context_pair();
            self.bcast(0, Some(ctx))?
        } else {
            self.bcast::<u32>(0, None)?
        };
        Ok(Comm::from_parts(self.shared.clone(), self.group.clone(), self.local_rank, ctx))
    }

    /// Splits the communicator by `color`, ordering members of each new
    /// communicator by `(key, old rank)`. A negative color opts out
    /// (returns `None`). Collective.
    pub fn split(&self, color: i64, key: i64) -> Result<Option<Comm>> {
        // Everyone learns everyone's (color, key).
        let all: Vec<(i64, i64)> = self.allgather((color, key))?;

        if color < 0 {
            // Still participate in context distribution: opted-out ranks are
            // simply never sent a context id.
            return Ok(None);
        }

        // Members of my color, ordered by (key, old local rank).
        let mut members: Vec<usize> = (0..all.len()).filter(|&r| all[r].0 == color).collect();
        members.sort_by_key(|&r| (all[r].1, r));
        let my_new_rank = members
            .iter()
            .position(|&r| r == self.local_rank)
            .expect("calling rank is in its own color group");

        // The lowest *old* rank of the color allocates the context and sends
        // it to the other members over the parent communicator.
        let owner = *members.iter().min().expect("non-empty color group");
        const SPLIT_TAG: i32 = crate::envelope::COLLECTIVE_TAG_BASE + 1;
        let ctx = if self.local_rank == owner {
            let ctx = self.shared.allocate_context_pair();
            // One shared payload fans out to every other member.
            let others: Vec<usize> =
                members.iter().filter(|&&m| m != self.local_rank).map(|&m| self.group[m]).collect();
            if !others.is_empty() {
                let payload = Payload::shared(Arc::new(ctx));
                self.shared.stats().record_payload_alloc();
                self.shared.multicast_envelope(
                    self.global_rank(),
                    self.local_rank,
                    &others,
                    self.context,
                    SPLIT_TAG,
                    std::mem::size_of::<u32>(),
                    &payload,
                    TrafficClass::Collective,
                )?;
            }
            ctx
        } else {
            let env = self.shared.mailbox(self.global_rank()).take(
                self.context,
                Src::Rank(owner),
                Tag::Value(SPLIT_TAG),
                &self.peers_of(Src::Rank(owner)),
            )?;
            self.downcast::<u32>(env)?.0
        };

        let group: Vec<usize> = members.iter().map(|&m| self.group[m]).collect();
        Ok(Some(Comm::from_parts(self.shared.clone(), Arc::new(group), my_new_rank, ctx)))
    }

    /// Creates a sub-communicator containing exactly `ranks` (parent-local,
    /// need not be sorted; new ranks follow the given order). Collective over
    /// the parent; non-members receive `None`.
    pub fn subgroup(&self, ranks: &[usize]) -> Result<Option<Comm>> {
        let key = ranks.iter().position(|&r| r == self.local_rank);
        let color = if key.is_some() { 0 } else { -1 };
        self.split(color, key.map_or(0, |k| k as i64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    #[test]
    fn ring_pass() {
        let results = World::run(4, |p| {
            let c = p.world();
            let next = (c.rank() + 1) % c.size();
            let prev = (c.rank() + c.size() - 1) % c.size();
            c.send(next, 0, c.rank() as u64).unwrap();
            c.recv::<u64>(prev, 0).unwrap()
        });
        assert_eq!(results, vec![3, 0, 1, 2]);
    }

    #[test]
    fn send_to_invalid_rank_errors() {
        World::run(2, |p| {
            let c = p.world();
            let e = c.send(5, 0, 1u8).unwrap_err();
            assert!(matches!(e, RuntimeError::InvalidRank { rank: 5, size: 2 }));
        });
    }

    #[test]
    fn type_mismatch_is_reported() {
        World::run(2, |p| {
            let c = p.world();
            if c.rank() == 0 {
                c.send(1, 3, 42u32).unwrap();
            } else {
                let e = c.recv::<f64>(0, 3).unwrap_err();
                assert!(matches!(e, RuntimeError::TypeMismatch { src: 0, tag: 3, .. }));
            }
        });
    }

    #[test]
    fn wildcard_receive_reports_sender() {
        World::run(3, |p| {
            let c = p.world();
            if c.rank() == 2 {
                let (v, info) = c.recv_with_info::<u32>(Src::Any, Tag::Any).unwrap();
                assert_eq!(v as usize, info.src);
                let (v2, info2) = c.recv_with_info::<u32>(Src::Any, Tag::Any).unwrap();
                assert_eq!(v2 as usize, info2.src);
                assert_ne!(info.src, info2.src);
            } else {
                c.send(2, c.rank() as i32, c.rank() as u32).unwrap();
            }
        });
    }

    #[test]
    fn sendrecv_shift() {
        let res = World::run(3, |p| {
            let c = p.world();
            let next = (c.rank() + 1) % 3;
            let prev = (c.rank() + 2) % 3;
            c.sendrecv::<usize, usize>(next, 1, c.rank(), prev, 1).unwrap()
        });
        assert_eq!(res, vec![2, 0, 1]);
    }

    #[test]
    fn try_recv_and_iprobe() {
        World::run(2, |p| {
            let c = p.world();
            if c.rank() == 0 {
                assert!(c.try_recv::<u8>(Src::Any, Tag::Any).unwrap().is_none());
                c.send(1, 0, 9u8).unwrap();
            } else {
                // Wait until the message is visible, then probe + take it.
                let info = c.probe(0, 0).unwrap();
                assert_eq!(info.bytes, 1);
                assert!(c.iprobe(0, 0).is_some());
                let (v, _) = c.try_recv::<u8>(0, 0).unwrap().unwrap();
                assert_eq!(v, 9);
                assert!(c.iprobe(0, 0).is_none());
            }
        });
    }

    #[test]
    fn dup_isolates_traffic() {
        World::run(2, |p| {
            let c = p.world();
            let d = c.dup().unwrap();
            assert_ne!(c.context(), d.context());
            if c.rank() == 0 {
                c.send(1, 0, 1u8).unwrap();
                d.send(1, 0, 2u8).unwrap();
            } else {
                // Receive on the dup first: the world message must not match.
                assert_eq!(d.recv::<u8>(0, 0).unwrap(), 2);
                assert_eq!(c.recv::<u8>(0, 0).unwrap(), 1);
            }
        });
    }

    #[test]
    fn split_into_even_odd() {
        World::run(5, |p| {
            let c = p.world();
            let sub = c.split((c.rank() % 2) as i64, 0).unwrap().unwrap();
            let expected_size = if c.rank() % 2 == 0 { 3 } else { 2 };
            assert_eq!(sub.size(), expected_size);
            assert_eq!(sub.rank(), c.rank() / 2);
            // Global ranks recorded correctly.
            assert_eq!(sub.group()[sub.rank()], c.rank());
            // Traffic within the sub-communicator works.
            let total: u64 = sub.allreduce(c.rank() as u64, |a, b| *a += b).unwrap();
            let expected: u64 = if c.rank() % 2 == 0 { 2 + 4 } else { 1 + 3 };
            assert_eq!(total, expected);
        });
    }

    #[test]
    fn split_key_reorders_ranks() {
        World::run(3, |p| {
            let c = p.world();
            // Reverse order via key.
            let sub = c.split(0, -(c.rank() as i64)).unwrap().unwrap();
            assert_eq!(sub.rank(), c.size() - 1 - c.rank());
        });
    }

    #[test]
    fn split_negative_color_opts_out() {
        World::run(4, |p| {
            let c = p.world();
            let color = if c.rank() == 3 { -1 } else { 0 };
            let sub = c.split(color, 0).unwrap();
            if c.rank() == 3 {
                assert!(sub.is_none());
            } else {
                assert_eq!(sub.unwrap().size(), 3);
            }
        });
    }

    #[test]
    fn subgroup_follows_given_order() {
        World::run(4, |p| {
            let c = p.world();
            let sub = c.subgroup(&[2, 0]).unwrap();
            match c.rank() {
                0 => assert_eq!(sub.unwrap().rank(), 1),
                2 => assert_eq!(sub.unwrap().rank(), 0),
                _ => assert!(sub.is_none()),
            }
        });
    }

    #[test]
    fn recv_timeout_detects_missing_message() {
        World::run(1, |p| {
            let c = p.world();
            let e = c.recv_timeout::<u8>(0, 0, Duration::from_millis(10)).unwrap_err();
            assert!(matches!(e, RuntimeError::Timeout { .. }));
        });
    }

    #[test]
    fn stats_count_messages() {
        let (_, stats) = World::run_with_stats(2, |p| {
            let c = p.world();
            if c.rank() == 0 {
                c.send(1, 0, vec![0.0f64; 10]).unwrap();
            } else {
                c.recv::<Vec<f64>>(0, 0).unwrap();
            }
        });
        assert_eq!(stats.p2p_messages, 1);
        assert_eq!(stats.p2p_bytes, 80);
    }

    #[test]
    fn multicast_delivers_to_every_destination() {
        let (_, stats) = World::run_with_stats(4, |p| {
            let c = p.world();
            if c.rank() == 0 {
                c.multicast(&[1, 2, 3], 7, vec![1.5f64; 16]).unwrap();
            } else {
                assert_eq!(c.recv::<Vec<f64>>(0, 7).unwrap(), vec![1.5; 16]);
            }
        });
        assert_eq!(stats.p2p_messages, 3);
        assert_eq!(stats.payload_allocs, 1, "one shared allocation for three receivers");
        // Two receivers unwrap while other handles live; the last is free.
        assert!(stats.payload_clones <= 2);
    }

    #[test]
    fn recv_shared_borrows_the_multicast_allocation() {
        let (_, stats) = World::run_with_stats(3, |p| {
            let c = p.world();
            if c.rank() == 0 {
                c.multicast(&[1, 2], 7, String::from("shared")).unwrap();
            } else {
                let arc = c.recv_shared::<String>(0, 7).unwrap();
                assert_eq!(*arc, "shared");
            }
        });
        assert_eq!(stats.payload_allocs, 1);
        assert_eq!(stats.payload_clones, 0, "Arc receivers never deep-copy");
    }

    #[test]
    fn multicast_to_one_or_zero_destinations() {
        World::run(2, |p| {
            let c = p.world();
            if c.rank() == 0 {
                c.multicast(&[], 1, 1u8).unwrap(); // no-op
                c.multicast(&[1], 1, 2u8).unwrap(); // plain send
            } else {
                assert_eq!(c.recv::<u8>(0, 1).unwrap(), 2);
            }
        });
    }

    #[test]
    fn send_replicable_is_clone_free_without_faults() {
        let (_, stats) = World::run_with_stats(2, |p| {
            let c = p.world();
            if c.rank() == 0 {
                c.send_replicable(1, 0, vec![9u64; 8]).unwrap();
            } else {
                assert_eq!(c.recv::<Vec<u64>>(0, 0).unwrap(), vec![9; 8]);
            }
        });
        assert_eq!(stats.payload_clones, 0, "sole receiver unwraps the shared payload in place");
    }
}
