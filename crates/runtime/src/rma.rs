//! One-sided RMA windows: expose / put / get / fence over the envelope
//! transport.
//!
//! Dynamic reconfiguration wants one-sided data motion: when an epoch's
//! membership changes, the new owner of a region knows what it needs and
//! *pulls* it (or the old owner *pushes* it) without the peer posting a
//! matching receive — the argument of the RMA-reconfiguration line of work
//! (see PAPERS.md). This module reproduces the MPI one-sided model in
//! BSP-style *active target* form, the flavor every redistribution epoch
//! actually uses:
//!
//! * [`RmaWindow::expose`] publishes a rank's local `f64` block to a
//!   window group.
//! * [`RmaWindow::put`] / [`RmaWindow::get_runs`] issue one-sided
//!   operations eagerly; they complete only at the fence.
//! * [`RmaWindow::fence`] closes the access epoch: every member announces
//!   how many operations it issued toward each peer, applies all puts it
//!   is the target of, serves all gets, and collects its own get results
//!   (returned in issue order).
//!
//! The fence is deterministic and deadlock-free by construction: all sends
//! (operation traffic at issue time, completion counts at fence entry)
//! precede every blocking receive, and the drain walks the member list in
//! one agreed order. Under the in-process transport a put is an ownership
//! transfer — the "network" cost is the envelope, exactly like the rest of
//! the runtime, so the trace plane ([`EventId::RmaPut`] et al.) is how
//! experiments see one-sidedness.

use std::collections::VecDeque;
use std::time::Duration;

use crate::comm::Comm;
use crate::envelope::Tag;
use crate::error::{Result, RuntimeError};
use crate::membership::RMA_TAG_BASE;
use crate::msgsize::MsgSize;
use mxn_trace::{emit_instant, span, EventId};

/// How long a fence waits on any single peer's contribution before
/// declaring the epoch broken. Alive peers in the in-process runtime
/// deliver promptly; only a death mid-epoch pays this.
const RMA_FENCE_TIMEOUT: Duration = Duration::from_secs(5);

/// Message kinds multiplexed onto a window's tag block.
const KIND_FIN: u8 = 0;
const KIND_PUT: u8 = 1;
const KIND_GET_REQ: u8 = 2;
const KIND_GET_RESP: u8 = 3;

/// Tag for `(win_id, kind)`: windows get disjoint 4-tag blocks inside the
/// reserved RMA range (window ids collide modulo 4096; concurrent windows
/// on one communicator should use distinct low bits).
fn rma_tag(win_id: u32, kind: u8) -> i32 {
    RMA_TAG_BASE + (((win_id & 0xfff) as i32) << 2) + kind as i32
}

/// Fence announcement: how many puts and gets the sender issued toward the
/// receiver this epoch.
#[derive(Debug, Clone, Copy)]
struct RmaFin {
    puts: u64,
    gets: u64,
}

impl MsgSize for RmaFin {
    fn msg_size(&self) -> usize {
        2 * std::mem::size_of::<u64>()
    }
}

/// One-sided put: write `data` at `dst_off` in the target's exposed block.
#[derive(Debug, Clone)]
struct RmaPutMsg {
    dst_off: usize,
    data: Vec<f64>,
}

impl MsgSize for RmaPutMsg {
    fn msg_size(&self) -> usize {
        std::mem::size_of::<u64>() + self.data.len() * std::mem::size_of::<f64>()
    }
}

/// One-sided get request: read the `(offset, len)` runs of the target's
/// exposed block.
#[derive(Debug, Clone)]
struct RmaGetReq {
    runs: Vec<(usize, usize)>,
}

impl MsgSize for RmaGetReq {
    fn msg_size(&self) -> usize {
        self.runs.len() * 2 * std::mem::size_of::<u64>()
    }
}

/// Get response: the requested runs, concatenated.
#[derive(Debug, Clone)]
struct RmaGetResp {
    data: Vec<f64>,
}

impl MsgSize for RmaGetResp {
    fn msg_size(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }
}

/// An exposed local block plus the access-epoch state of one member.
///
/// All members pass identical `(win_id, members)`; `members` are
/// comm-local ranks, ascending, and include the caller (self-targeted
/// operations are legal and go through the same path). See the module docs
/// for the epoch discipline.
pub struct RmaWindow<'a> {
    comm: &'a Comm,
    members: Vec<usize>,
    win_id: u32,
    data: Vec<f64>,
    /// Per-member `(puts, gets)` issued this epoch, indexed like `members`.
    sent: Vec<(u64, u64)>,
    /// Member index of each issued get, in issue order.
    get_order: Vec<usize>,
}

impl<'a> RmaWindow<'a> {
    /// Opens a window exposing `data` to `members` (comm-local ranks,
    /// strictly ascending, self included). Collective over the members.
    pub fn expose(
        comm: &'a Comm,
        win_id: u32,
        members: Vec<usize>,
        data: Vec<f64>,
    ) -> Result<RmaWindow<'a>> {
        if members.is_empty() || members.windows(2).any(|w| w[0] >= w[1]) {
            return Err(RuntimeError::CollectiveMismatch {
                detail: "window members must be non-empty and strictly ascending".into(),
            });
        }
        if let Some(&bad) = members.iter().find(|&&m| m >= comm.size()) {
            return Err(RuntimeError::InvalidRank { rank: bad, size: comm.size() });
        }
        if !members.contains(&comm.rank()) {
            return Err(RuntimeError::CollectiveMismatch {
                detail: format!("window members must include the caller (rank {})", comm.rank()),
            });
        }
        emit_instant(
            EventId::RmaExpose,
            [win_id as u64, data.len() as u64, members.len() as u64, 0],
        );
        let sent = vec![(0, 0); members.len()];
        Ok(RmaWindow { comm, members, win_id, data, sent, get_order: Vec::new() })
    }

    /// The exposed block (updated by remote puts only at a fence).
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the window, returning the exposed block.
    pub fn into_data(self) -> Vec<f64> {
        self.data
    }

    fn member_index(&self, target: usize) -> Result<usize> {
        self.members
            .binary_search(&target)
            .map_err(|_| RuntimeError::InvalidRank { rank: target, size: self.comm.size() })
    }

    /// One-sided write of `data` at `dst_off` in `target`'s exposed block
    /// (`target` is a comm-local member rank). Completes at the next
    /// [`RmaWindow::fence`]; until then the target's block is unchanged.
    pub fn put(&mut self, target: usize, dst_off: usize, data: Vec<f64>) -> Result<()> {
        let idx = self.member_index(target)?;
        emit_instant(
            EventId::RmaPut,
            [self.win_id as u64, target as u64, dst_off as u64, data.len() as u64],
        );
        self.comm.send(target, rma_tag(self.win_id, KIND_PUT), RmaPutMsg { dst_off, data })?;
        self.sent[idx].0 += 1;
        Ok(())
    }

    /// One-sided read of the `(offset, len)` runs of `target`'s exposed
    /// block. The data arrives at the next [`RmaWindow::fence`], which
    /// returns all issued gets' runs (concatenated per get) in issue order.
    pub fn get_runs(&mut self, target: usize, runs: Vec<(usize, usize)>) -> Result<()> {
        let idx = self.member_index(target)?;
        let elems: usize = runs.iter().map(|&(_, len)| len).sum();
        emit_instant(
            EventId::RmaGet,
            [self.win_id as u64, target as u64, runs.len() as u64, elems as u64],
        );
        self.comm.send(target, rma_tag(self.win_id, KIND_GET_REQ), RmaGetReq { runs })?;
        self.sent[idx].1 += 1;
        self.get_order.push(idx);
        Ok(())
    }

    /// Closes the access epoch: applies every put this rank is the target
    /// of, serves every get against the exposed block, and returns this
    /// rank's own get results in issue order. Collective over the members;
    /// afterwards the window is ready for the next epoch.
    ///
    /// Deterministic drain order (ascending member rank) keeps traces
    /// digest-stable; a peer silent for [`RMA_FENCE_TIMEOUT`] (it died
    /// mid-epoch) surfaces as a failure-detection error.
    pub fn fence(&mut self) -> Result<Vec<Vec<f64>>> {
        let my_puts: u64 = self.sent.iter().map(|s| s.0).sum();
        let my_gets: u64 = self.sent.iter().map(|s| s.1).sum();
        let mut guard = span(EventId::RmaFence, [self.win_id as u64, my_puts, my_gets, 0]);

        // Phase 0: announce per-peer completion counts. All operation
        // traffic was already sent eagerly at issue time, so after this
        // loop everything the drain below waits for is in flight.
        for (idx, &m) in self.members.iter().enumerate() {
            let (puts, gets) = self.sent[idx];
            self.comm.send(m, rma_tag(self.win_id, KIND_FIN), RmaFin { puts, gets })?;
        }

        // Phase 1: drain each member in ascending order — its counts, its
        // puts into our block, its gets against our block (served
        // immediately; responses are sends, so no cycle).
        let fin_tag = Tag::Value(rma_tag(self.win_id, KIND_FIN));
        let put_tag = Tag::Value(rma_tag(self.win_id, KIND_PUT));
        let req_tag = Tag::Value(rma_tag(self.win_id, KIND_GET_REQ));
        let mut served_puts = 0u64;
        let mut served_gets = 0u64;
        for &m in &self.members {
            let fin: RmaFin = self.comm.recv_timeout(m, fin_tag, RMA_FENCE_TIMEOUT)?;
            for _ in 0..fin.puts {
                let put: RmaPutMsg = self.comm.recv_timeout(m, put_tag, RMA_FENCE_TIMEOUT)?;
                let end = put.dst_off + put.data.len();
                if end > self.data.len() {
                    return Err(RuntimeError::CollectiveMismatch {
                        detail: format!(
                            "put from member {m} spans {}..{end} but the exposed block has {} \
                             elements",
                            put.dst_off,
                            self.data.len()
                        ),
                    });
                }
                self.data[put.dst_off..end].copy_from_slice(&put.data);
                served_puts += 1;
            }
            for _ in 0..fin.gets {
                let req: RmaGetReq = self.comm.recv_timeout(m, req_tag, RMA_FENCE_TIMEOUT)?;
                let total: usize = req.runs.iter().map(|&(_, len)| len).sum();
                let mut out = Vec::with_capacity(total);
                for &(off, len) in &req.runs {
                    let end = off + len;
                    if end > self.data.len() {
                        return Err(RuntimeError::CollectiveMismatch {
                            detail: format!(
                                "get from member {m} reads {off}..{end} but the exposed block \
                                 has {} elements",
                                self.data.len()
                            ),
                        });
                    }
                    out.extend_from_slice(&self.data[off..end]);
                }
                self.comm.send(m, rma_tag(self.win_id, KIND_GET_RESP), RmaGetResp { data: out })?;
                served_gets += 1;
            }
        }

        // Phase 2: collect our own get results. Per-peer FIFO order is
        // guaranteed by the transport; reassemble into global issue order.
        let resp_tag = Tag::Value(rma_tag(self.win_id, KIND_GET_RESP));
        let mut per_member: Vec<VecDeque<Vec<f64>>> =
            self.members.iter().map(|_| VecDeque::new()).collect();
        for (idx, &m) in self.members.iter().enumerate() {
            for _ in 0..self.sent[idx].1 {
                let resp: RmaGetResp = self.comm.recv_timeout(m, resp_tag, RMA_FENCE_TIMEOUT)?;
                per_member[idx].push_back(resp.data);
            }
        }
        let results: Vec<Vec<f64>> = self
            .get_order
            .iter()
            .map(|&idx| per_member[idx].pop_front().expect("one response per issued get"))
            .collect();

        self.sent.iter_mut().for_each(|s| *s = (0, 0));
        self.get_order.clear();
        guard.set_end([self.win_id as u64, served_puts, served_gets, 0]);
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    #[test]
    fn put_writes_remote_block_at_the_fence() {
        World::run(2, |p| {
            let c = p.world();
            let mine = vec![c.rank() as f64; 4];
            let mut win = RmaWindow::expose(c, 7, vec![0, 1], mine).unwrap();
            if c.rank() == 0 {
                win.put(1, 2, vec![40.0, 41.0]).unwrap();
            }
            let got = win.fence().unwrap();
            assert!(got.is_empty());
            if c.rank() == 1 {
                assert_eq!(win.data(), &[1.0, 1.0, 40.0, 41.0]);
            } else {
                assert_eq!(win.data(), &[0.0; 4], "no put targeted rank 0");
            }
        });
    }

    #[test]
    fn get_runs_return_in_issue_order() {
        World::run(3, |p| {
            let c = p.world();
            let base = (c.rank() * 10) as f64;
            let mine: Vec<f64> = (0..6).map(|i| base + i as f64).collect();
            let mut win = RmaWindow::expose(c, 3, vec![0, 1, 2], mine).unwrap();
            if c.rank() == 0 {
                // Issue order deliberately interleaves targets, including a
                // second get to the same peer and a self-get.
                win.get_runs(2, vec![(0, 2)]).unwrap();
                win.get_runs(1, vec![(4, 2), (0, 1)]).unwrap();
                win.get_runs(2, vec![(5, 1)]).unwrap();
                win.get_runs(0, vec![(3, 3)]).unwrap();
            }
            let got = win.fence().unwrap();
            if c.rank() == 0 {
                assert_eq!(
                    got,
                    vec![vec![20.0, 21.0], vec![14.0, 15.0, 10.0], vec![25.0], vec![3.0, 4.0, 5.0],]
                );
            } else {
                assert!(got.is_empty());
            }
        });
    }

    #[test]
    fn window_supports_repeated_epochs() {
        World::run(2, |p| {
            let c = p.world();
            let mut win = RmaWindow::expose(c, 9, vec![0, 1], vec![0.0; 2]).unwrap();
            for epoch in 1..=3u32 {
                if c.rank() == 0 {
                    win.put(1, 0, vec![epoch as f64]).unwrap();
                    win.fence().unwrap();
                } else {
                    win.fence().unwrap();
                    assert_eq!(win.data()[0], epoch as f64);
                }
            }
        });
    }

    #[test]
    fn puts_from_one_source_apply_in_program_order() {
        World::run(2, |p| {
            let c = p.world();
            let mut win = RmaWindow::expose(c, 1, vec![0, 1], vec![0.0; 3]).unwrap();
            if c.rank() == 0 {
                win.put(1, 0, vec![1.0, 1.0]).unwrap();
                win.put(1, 1, vec![2.0, 2.0]).unwrap();
            }
            win.fence().unwrap();
            if c.rank() == 1 {
                assert_eq!(win.data(), &[1.0, 2.0, 2.0], "later put overwrites the overlap");
            }
        });
    }

    #[test]
    fn single_rank_window_self_operations() {
        World::run(1, |p| {
            let c = p.world();
            let mut win = RmaWindow::expose(c, 5, vec![0], vec![1.0, 2.0, 3.0]).unwrap();
            win.put(0, 0, vec![9.0]).unwrap();
            win.get_runs(0, vec![(1, 2)]).unwrap();
            let got = win.fence().unwrap();
            // Within one member's drain, puts apply before gets are
            // served: the get sees the put at offset 0 already landed, and
            // its own runs (offsets 1..3) are untouched by it.
            assert_eq!(got, vec![vec![2.0, 3.0]]);
            assert_eq!(win.data(), &[9.0, 2.0, 3.0]);
        });
    }

    #[test]
    fn window_subset_of_a_larger_comm() {
        World::run(3, |p| {
            let c = p.world();
            // Rank 1 is not a member and does nothing.
            if c.rank() == 1 {
                return;
            }
            let mut win = RmaWindow::expose(c, 2, vec![0, 2], vec![c.rank() as f64; 2]).unwrap();
            if c.rank() == 0 {
                win.put(2, 0, vec![7.0]).unwrap();
            }
            win.fence().unwrap();
            if c.rank() == 2 {
                assert_eq!(win.data(), &[7.0, 2.0]);
            }
        });
    }

    #[test]
    fn invalid_members_and_targets_are_rejected() {
        World::run(2, |p| {
            let c = p.world();
            if c.rank() == 0 {
                assert!(RmaWindow::expose(c, 0, vec![], vec![]).is_err(), "empty");
                assert!(RmaWindow::expose(c, 0, vec![0, 0], vec![]).is_err(), "not ascending");
                assert!(RmaWindow::expose(c, 0, vec![0, 9], vec![]).is_err(), "out of range");
                assert!(RmaWindow::expose(c, 0, vec![1], vec![]).is_err(), "caller excluded");
                let mut win = RmaWindow::expose(c, 0, vec![0], vec![0.0]).unwrap();
                assert!(win.put(1, 0, vec![1.0]).is_err(), "non-member target");
                assert!(win.get_runs(1, vec![(0, 1)]).is_err());
            }
        });
    }

    #[test]
    fn out_of_bounds_put_fails_the_target_fence() {
        World::run(2, |p| {
            let c = p.world();
            let mut win = RmaWindow::expose(c, 4, vec![0, 1], vec![0.0; 2]).unwrap();
            if c.rank() == 0 {
                win.put(1, 1, vec![1.0, 2.0]).unwrap();
                // Rank 1's fence fails before serving, so don't block on it.
                let _ = win.fence();
            } else {
                let e = win.fence().unwrap_err();
                assert!(matches!(e, RuntimeError::CollectiveMismatch { .. }), "{e}");
            }
        });
    }
}
