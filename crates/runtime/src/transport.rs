//! The transport seam: where envelopes leave the sender's hands.
//!
//! Everything above this layer — communicators, collectives, the fault
//! plane, RMI serve loops — speaks [`Envelope`]s. Everything below it is a
//! delivery mechanism. [`Transport`] is the boundary: an object that accepts
//! a fully-formed envelope addressed to a destination rank and gets it into
//! that rank's [`Mailbox`], by whatever means.
//!
//! Two implementations exist:
//!
//! * [`InProcTransport`] (here): ranks are threads, delivery is a mutex-
//!   guarded push into the destination's mailbox. Payloads move or share an
//!   `Arc` — zero serialization, zero copies. This is the fast path every
//!   [`crate::World`] uses, and [`crate::shared::WorldShared`] stores it as
//!   a concrete field (no dynamic dispatch on the hot path).
//! * `UdsTransport` (in the `mxn-wire` crate): ranks are OS processes,
//!   delivery is a length-prefixed CRC-checked frame over a Unix-domain
//!   socket, and a reader thread on the far side pushes the decoded
//!   envelope into a local mailbox. Payloads must be byte-encodable
//!   (`Payload::Shared` handles cannot cross a process boundary).
//!
//! The trait deliberately sits *below* the fault plane and the network
//! model: `WorldShared::send_envelope` applies verdicts and delivery clocks
//! first, then hands the surviving envelope to the transport. A wire
//! transport injects its own frame-level faults (bit flips on real bytes)
//! instead, which is the point: the same judgement, different physics.

use crate::envelope::Envelope;
use crate::error::Result;
use crate::fault::Liveness;
use crate::mailbox::Mailbox;
use crate::membership::Revocations;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// A delivery mechanism for envelopes.
///
/// Implementations must be usable from every rank concurrently, must
/// preserve per-`(src, dst)` send order for envelopes they deliver, and
/// must make delivered envelopes visible through the destination's mailbox
/// (waking its blocked receivers). They are *not* responsible for fault
/// verdicts, traffic accounting, or revocation checks — the caller has
/// already applied those.
pub trait Transport: Send + Sync {
    /// A short static label ("inproc", "uds") for stats and traces.
    fn kind(&self) -> &'static str;

    /// Number of ranks this transport can address *right now* (the
    /// current membership).
    fn size(&self) -> usize;

    /// Upper bound on ranks this transport could ever address. Equal to
    /// [`Transport::size`] for fixed-membership transports; elastic
    /// transports (a wire mesh with parked spare capacity) report the
    /// preallocated ceiling so callers can size rank-indexed tables once.
    fn capacity(&self) -> usize {
        self.size()
    }

    /// Delivers one envelope to `dst`'s mailbox.
    fn deliver(&self, dst: usize, env: Envelope) -> Result<()>;

    /// Delivers two envelopes to `dst` atomically with respect to other
    /// deliveries (used by the fault plane's duplicate verdict, so the
    /// duplicate and the original land adjacently).
    fn deliver_pair(&self, dst: usize, first: Envelope, second: Envelope) -> Result<()>;

    /// Wakes every receiver blocked on any mailbox this transport feeds
    /// (abort, revocation, and death propagation).
    fn wake_all(&self);
}

/// The in-process transport: one mailbox per rank, delivery by moving the
/// envelope under the destination's bucket lock. This is the zero-copy path
/// the benchmarks gate — `deliver` is exactly the `mailbox.push` the
/// runtime always did.
pub struct InProcTransport {
    mailboxes: Vec<Mailbox>,
}

impl InProcTransport {
    /// One mailbox per rank, all sharing the world's abort flag, liveness
    /// registry and revocation table.
    pub fn new(
        n: usize,
        abort: Arc<AtomicBool>,
        liveness: Arc<Liveness>,
        revocations: Arc<Revocations>,
    ) -> Self {
        let mailboxes = (0..n)
            .map(|_| Mailbox::new(abort.clone(), liveness.clone(), revocations.clone()))
            .collect();
        InProcTransport { mailboxes }
    }

    /// Direct access to a rank's mailbox (receive side needs matching,
    /// probing and blocking — richer than the deliver-only trait surface).
    pub fn mailbox(&self, rank: usize) -> &Mailbox {
        &self.mailboxes[rank]
    }
}

impl Transport for InProcTransport {
    fn kind(&self) -> &'static str {
        "inproc"
    }

    fn size(&self) -> usize {
        self.mailboxes.len()
    }

    fn deliver(&self, dst: usize, env: Envelope) -> Result<()> {
        self.mailboxes[dst].push(env);
        Ok(())
    }

    fn deliver_pair(&self, dst: usize, first: Envelope, second: Envelope) -> Result<()> {
        self.mailboxes[dst].post_many([first, second]);
        Ok(())
    }

    fn wake_all(&self) {
        for m in &self.mailboxes {
            m.wake_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::{Payload, Src, Tag};

    fn transport(n: usize) -> InProcTransport {
        InProcTransport::new(
            n,
            Arc::new(AtomicBool::new(false)),
            Arc::new(Liveness::new(n)),
            Arc::new(Revocations::new()),
        )
    }

    fn env(src: usize, tag: i32, v: u32) -> Envelope {
        Envelope::new(src, src, 0, tag, 4, None, Payload::owned(v))
    }

    #[test]
    fn deliver_lands_in_destination_mailbox() {
        let t = transport(2);
        t.deliver(1, env(0, 7, 42)).unwrap();
        let got = t.mailbox(1).try_take(0, Src::Rank(0), Tag::Value(7)).unwrap();
        assert_eq!(got.payload.into_owned::<u32>().unwrap().0, 42);
        assert_eq!(t.kind(), "inproc");
        assert_eq!(t.size(), 2);
    }

    #[test]
    fn deliver_pair_is_adjacent_and_ordered() {
        let t = transport(2);
        t.deliver_pair(1, env(0, 7, 1), env(0, 7, 2)).unwrap();
        assert_eq!(t.mailbox(1).len(), 2);
        let a = t.mailbox(1).try_take(0, Src::Any, Tag::Any).unwrap();
        let b = t.mailbox(1).try_take(0, Src::Any, Tag::Any).unwrap();
        assert_eq!(a.payload.into_owned::<u32>().unwrap().0, 1);
        assert_eq!(b.payload.into_owned::<u32>().unwrap().0, 2);
    }

    #[test]
    fn trait_object_delivery_matches_concrete() {
        // The wire crate holds the transport as `dyn Transport`; the seam
        // must behave identically through the vtable.
        let t = transport(3);
        let dyn_t: &dyn Transport = &t;
        dyn_t.deliver(2, env(1, 9, 7)).unwrap();
        dyn_t.wake_all();
        assert_eq!(t.mailbox(2).len(), 1);
    }
}
