//! Message size accounting.
//!
//! The runtime moves payloads by ownership transfer (ranks are threads in one
//! address space), so no bytes actually cross a wire. To keep benchmark
//! results portable to a real cluster, every payload type reports the number
//! of bytes an MPI implementation would have to move for it, and the runtime
//! aggregates those counts in [`crate::stats::WorldStats`].

/// Number of bytes a message of this type would occupy on the wire.
///
/// Implementations should count the *transitive* payload (e.g. a `Vec<f64>`
/// of length `n` reports `8 * n`), not Rust bookkeeping such as capacity or
/// pointers. All types sent through [`crate::Comm::send`] must implement
/// this trait.
pub trait MsgSize {
    /// Wire size of `self` in bytes.
    fn msg_size(&self) -> usize;
}

/// Implements [`MsgSize`] for plain-old-data types as `size_of::<T>()`.
///
/// Downstream crates use this for their own POD message structs:
///
/// ```
/// use mxn_runtime::impl_msg_size_pod;
/// #[derive(Clone, Copy)]
/// struct Header { _a: u64, _b: u32 }
/// impl_msg_size_pod!(Header);
/// ```
#[macro_export]
macro_rules! impl_msg_size_pod {
    ($($t:ty),* $(,)?) => {
        $(impl $crate::MsgSize for $t {
            fn msg_size(&self) -> usize {
                ::std::mem::size_of::<$t>()
            }
        })*
    };
}

impl_msg_size_pod!(
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
    bool,
    char,
    ()
);

impl MsgSize for String {
    fn msg_size(&self) -> usize {
        self.len()
    }
}

impl MsgSize for &'static str {
    fn msg_size(&self) -> usize {
        self.len()
    }
}

impl<T: MsgSize> MsgSize for Vec<T> {
    fn msg_size(&self) -> usize {
        self.iter().map(MsgSize::msg_size).sum()
    }
}

impl<T: MsgSize> MsgSize for Box<T> {
    fn msg_size(&self) -> usize {
        (**self).msg_size()
    }
}

impl<T: MsgSize> MsgSize for Option<T> {
    fn msg_size(&self) -> usize {
        1 + self.as_ref().map_or(0, MsgSize::msg_size)
    }
}

impl<T: MsgSize, E: MsgSize> MsgSize for std::result::Result<T, E> {
    fn msg_size(&self) -> usize {
        1 + match self {
            Ok(v) => v.msg_size(),
            Err(e) => e.msg_size(),
        }
    }
}

impl<T: MsgSize, const N: usize> MsgSize for [T; N] {
    fn msg_size(&self) -> usize {
        self.iter().map(MsgSize::msg_size).sum()
    }
}

impl<A: MsgSize> MsgSize for (A,) {
    fn msg_size(&self) -> usize {
        self.0.msg_size()
    }
}

impl<A: MsgSize, B: MsgSize> MsgSize for (A, B) {
    fn msg_size(&self) -> usize {
        self.0.msg_size() + self.1.msg_size()
    }
}

impl<A: MsgSize, B: MsgSize, C: MsgSize> MsgSize for (A, B, C) {
    fn msg_size(&self) -> usize {
        self.0.msg_size() + self.1.msg_size() + self.2.msg_size()
    }
}

impl<A: MsgSize, B: MsgSize, C: MsgSize, D: MsgSize> MsgSize for (A, B, C, D) {
    fn msg_size(&self) -> usize {
        self.0.msg_size() + self.1.msg_size() + self.2.msg_size() + self.3.msg_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pod_sizes() {
        assert_eq!(1u8.msg_size(), 1);
        assert_eq!(1.0f64.msg_size(), 8);
        assert_eq!(().msg_size(), 0);
        assert_eq!(true.msg_size(), 1);
    }

    #[test]
    fn vec_counts_elements() {
        let v = vec![0.0f64; 100];
        assert_eq!(v.msg_size(), 800);
        let nested: Vec<Vec<u32>> = vec![vec![1, 2], vec![3]];
        assert_eq!(nested.msg_size(), 12);
    }

    #[test]
    fn string_counts_utf8_bytes() {
        assert_eq!("abc".to_string().msg_size(), 3);
        assert_eq!("é".to_string().msg_size(), 2);
    }

    #[test]
    fn tuples_and_options() {
        assert_eq!((1u32, 2.0f64).msg_size(), 12);
        assert_eq!(Some(7u64).msg_size(), 9);
        assert_eq!(None::<u64>.msg_size(), 1);
        let r: std::result::Result<u32, u8> = Ok(3);
        assert_eq!(r.msg_size(), 5);
    }

    #[test]
    fn arrays_and_boxes() {
        assert_eq!([1u16; 4].msg_size(), 8);
        assert_eq!(Box::new(5.0f32).msg_size(), 4);
    }

    #[test]
    fn pod_macro_for_custom_struct() {
        #[derive(Clone, Copy)]
        struct H {
            _a: u64,
            _b: u32,
        }
        impl_msg_size_pod!(H);
        assert_eq!(H { _a: 0, _b: 0 }.msg_size(), std::mem::size_of::<H>());
    }
}
