//! An optional synthetic network model.
//!
//! By default the runtime delivers messages instantly (threads sharing
//! memory). For cluster-shaped experiments, a [`NetworkModel`] delays the
//! *visibility* of each inter-rank message by `latency + bytes/bandwidth`,
//! while preserving MPI's non-overtaking guarantee: per (sender, receiver)
//! pair, delivery times are monotone, so a small message can never pass an
//! earlier large one on the same channel.
//!
//! This turns the benchmarks' message counts into wall-clock effects —
//! e.g. the schedule-reuse and message-aggregation advantages of the M×N
//! schedules become latency-bound, as they are on real interconnects.

use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// Per-message cost model: `delay = latency + bytes / bandwidth`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// Fixed per-message latency.
    pub latency: Duration,
    /// Link bandwidth in bytes/second (`f64::INFINITY` = unlimited).
    pub bytes_per_sec: f64,
}

impl NetworkModel {
    /// A latency-only model (infinite bandwidth).
    pub fn latency_only(latency: Duration) -> Self {
        NetworkModel { latency, bytes_per_sec: f64::INFINITY }
    }

    /// The transfer delay for one message of `bytes`.
    pub fn delay(&self, bytes: usize) -> Duration {
        let transfer = if self.bytes_per_sec.is_finite() && self.bytes_per_sec > 0.0 {
            Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec)
        } else {
            Duration::ZERO
        };
        self.latency + transfer
    }
}

/// Tracks per-channel (sender → receiver) delivery horizons so delivery
/// times stay monotone per channel (non-overtaking).
pub struct ChannelClock {
    model: NetworkModel,
    /// `horizons[src * n + dst]` = earliest next delivery instant.
    horizons: Vec<Mutex<Option<Instant>>>,
    n: usize,
}

impl ChannelClock {
    /// Creates clocks for an `n`-rank world.
    pub fn new(model: NetworkModel, n: usize) -> Self {
        ChannelClock { model, horizons: (0..n * n).map(|_| Mutex::new(None)).collect(), n }
    }

    /// Computes (and records) the delivery instant for a message of
    /// `bytes` from `src` to `dst`, sent now. Self-messages are immediate.
    pub fn delivery_time(&self, src: usize, dst: usize, bytes: usize) -> Instant {
        let now = Instant::now();
        if src == dst {
            return now;
        }
        let mut horizon = self.horizons[src * self.n + dst].lock();
        let candidate = now + self.model.delay(bytes);
        let at = match *horizon {
            Some(h) if h > candidate => h,
            _ => candidate,
        };
        *horizon = Some(at);
        at
    }

    /// The model in force.
    pub fn model(&self) -> NetworkModel {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_combines_latency_and_bandwidth() {
        let m = NetworkModel { latency: Duration::from_micros(10), bytes_per_sec: 1e6 };
        // 1000 bytes at 1 MB/s = 1 ms + 10 µs.
        assert_eq!(m.delay(1000), Duration::from_micros(1010));
        let lat = NetworkModel::latency_only(Duration::from_micros(5));
        assert_eq!(lat.delay(1 << 20), Duration::from_micros(5));
    }

    #[test]
    fn channel_delivery_is_monotone() {
        let c = ChannelClock::new(
            NetworkModel { latency: Duration::from_micros(1), bytes_per_sec: 1e3 },
            2,
        );
        // A large message followed by a tiny one: the tiny one must not
        // overtake.
        let t1 = c.delivery_time(0, 1, 10_000); // 10 s of transfer
        let t2 = c.delivery_time(0, 1, 1);
        assert!(t2 >= t1, "non-overtaking per channel");
        // The reverse channel is independent.
        let t3 = c.delivery_time(1, 0, 1);
        assert!(t3 < t1);
    }

    #[test]
    fn self_messages_are_immediate() {
        let c = ChannelClock::new(NetworkModel::latency_only(Duration::from_secs(1)), 2);
        let t = c.delivery_time(1, 1, 1 << 30);
        assert!(t <= Instant::now());
    }
}

#[cfg(test)]
mod integration_tests {
    use super::*;
    use crate::world::World;

    #[test]
    fn latency_delays_visibility() {
        World::run_with_network(2, NetworkModel::latency_only(Duration::from_millis(30)), |p| {
            let c = p.world();
            if c.rank() == 0 {
                c.send(1, 0, 7u8).unwrap();
                // Tell rank 1 the send happened (also delayed 30ms, so
                // use it only as a lower-bound marker).
            } else {
                let start = Instant::now();
                let v: u8 = c.recv(0, 0).unwrap();
                assert_eq!(v, 7);
                assert!(
                    start.elapsed() >= Duration::from_millis(25),
                    "message visible too early: {:?}",
                    start.elapsed()
                );
            }
        });
    }

    #[test]
    fn try_recv_respects_inflight_messages() {
        World::run_with_network(2, NetworkModel::latency_only(Duration::from_millis(40)), |p| {
            let c = p.world();
            if c.rank() == 0 {
                c.send(1, 1, 1u8).unwrap();
            } else {
                // The message is in flight for ~40ms: early polls miss.
                let start = Instant::now();
                let mut polls = 0;
                let v = loop {
                    if let Some((v, _)) = c.try_recv::<u8>(0, 1).unwrap() {
                        break v;
                    }
                    polls += 1;
                    std::thread::yield_now();
                    if start.elapsed() > Duration::from_secs(5) {
                        panic!("message never became visible");
                    }
                };
                assert_eq!(v, 1);
                assert!(polls > 0, "at least one poll saw the in-flight message hidden");
                assert!(start.elapsed() >= Duration::from_millis(35));
            }
        });
    }

    #[test]
    fn bandwidth_term_scales_with_size() {
        // 1 MB at 10 MB/s = 100 ms; small message ≈ latency only.
        let model = NetworkModel { latency: Duration::from_millis(1), bytes_per_sec: 10e6 };
        World::run_with_network(2, model, |p| {
            let c = p.world();
            if c.rank() == 0 {
                c.send(1, 0, vec![0u8; 1_000_000]).unwrap();
                c.send(1, 1, 0u8).unwrap();
            } else {
                let start = Instant::now();
                // FIFO per channel: the small message cannot overtake.
                let _: Vec<u8> = c.recv(0, 0).unwrap();
                let big = start.elapsed();
                let _: u8 = c.recv(0, 1).unwrap();
                assert!(big >= Duration::from_millis(90), "bandwidth delay applied: {big:?}");
            }
        });
    }

    #[test]
    fn collectives_work_under_network_model() {
        let model = NetworkModel::latency_only(Duration::from_micros(200));
        let sums = World::run_with_network(4, model, |p| {
            let c = p.world();
            c.allreduce(c.rank() as u64, |a, b| *a += b).unwrap()
        });
        assert_eq!(sums, vec![6, 6, 6, 6]);
    }
}
