//! Cartesian process topologies.
//!
//! The paper's decompositions live on process grids ("one simulation
//! executes on a set of M processes" arranged 2×2×2, Figure 1); MPI codes
//! express that with Cartesian topologies. [`dims_create`] balances a
//! rank count over dimensions and [`CartComm`] provides rank↔coordinate
//! mapping and neighbour shifts (with optional periodicity) — the pieces
//! stencil codes combine with `mxn_schedule`'s halo exchange.

use crate::comm::Comm;
use crate::error::{Result, RuntimeError};

/// Balances `nnodes` ranks over `ndims` dimensions (the `MPI_Dims_create`
/// heuristic): prime factors are folded, largest first, into the currently
/// smallest dimension; the result is sorted non-increasing.
pub fn dims_create(nnodes: usize, ndims: usize) -> Vec<usize> {
    assert!(nnodes > 0 && ndims > 0);
    let mut factors = Vec::new();
    let mut n = nnodes;
    let mut d = 2;
    while d * d <= n {
        while n.is_multiple_of(d) {
            factors.push(d);
            n /= d;
        }
        d += 1;
    }
    if n > 1 {
        factors.push(n);
    }
    factors.sort_unstable_by(|a, b| b.cmp(a));
    let mut dims = vec![1usize; ndims];
    for f in factors {
        let smallest =
            dims.iter().enumerate().min_by_key(|(_, &v)| v).map(|(i, _)| i).expect("ndims ≥ 1");
        dims[smallest] *= f;
    }
    dims.sort_unstable_by(|a, b| b.cmp(a));
    dims
}

/// A communicator with Cartesian structure.
pub struct CartComm {
    comm: Comm,
    dims: Vec<usize>,
    periodic: Vec<bool>,
}

impl CartComm {
    /// Attaches a Cartesian topology to `comm`. `dims` must multiply to
    /// the communicator size; `periodic` flags each dimension.
    pub fn new(comm: Comm, dims: Vec<usize>, periodic: Vec<bool>) -> Result<CartComm> {
        if dims.iter().product::<usize>() != comm.size() {
            return Err(RuntimeError::CollectiveMismatch {
                detail: format!(
                    "dims {:?} do not multiply to the communicator size {}",
                    dims,
                    comm.size()
                ),
            });
        }
        if dims.len() != periodic.len() {
            return Err(RuntimeError::CollectiveMismatch {
                detail: "one periodicity flag per dimension required".into(),
            });
        }
        Ok(CartComm { comm, dims, periodic })
    }

    /// The underlying communicator.
    pub fn comm(&self) -> &Comm {
        &self.comm
    }

    /// Grid dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// This rank's grid coordinates (row-major rank order).
    pub fn coords(&self) -> Vec<usize> {
        self.coords_of(self.comm.rank())
    }

    /// Coordinates of any rank.
    pub fn coords_of(&self, mut rank: usize) -> Vec<usize> {
        assert!(rank < self.comm.size());
        let mut c = vec![0; self.dims.len()];
        for d in (0..self.dims.len()).rev() {
            c[d] = rank % self.dims[d];
            rank /= self.dims[d];
        }
        c
    }

    /// Rank at the given coordinates.
    pub fn rank_of(&self, coords: &[usize]) -> usize {
        assert_eq!(coords.len(), self.dims.len());
        let mut r = 0;
        for (d, (&c, &dim)) in coords.iter().zip(&self.dims).enumerate() {
            assert!(c < dim, "coordinate {c} out of range on dim {d}");
            r = r * dim + c;
        }
        r
    }

    /// The `(source, dest)` neighbour ranks for a shift of `disp` along
    /// `dim` (like `MPI_Cart_shift`): `dest` is where this rank's data
    /// goes, `source` is where incoming data originates. `None` marks a
    /// non-periodic boundary.
    pub fn shift(&self, dim: usize, disp: isize) -> (Option<usize>, Option<usize>) {
        let c = self.coords();
        let offset = |delta: isize| -> Option<usize> {
            let extent = self.dims[dim] as isize;
            let raw = c[dim] as isize + delta;
            if self.periodic[dim] {
                let wrapped = raw.rem_euclid(extent) as usize;
                let mut nc = c.clone();
                nc[dim] = wrapped;
                Some(self.rank_of(&nc))
            } else if (0..extent).contains(&raw) {
                let mut nc = c.clone();
                nc[dim] = raw as usize;
                Some(self.rank_of(&nc))
            } else {
                None
            }
        };
        (offset(-disp), offset(disp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    #[test]
    fn dims_create_balances() {
        assert_eq!(dims_create(12, 2), vec![4, 3]);
        assert_eq!(dims_create(8, 3), vec![2, 2, 2]);
        assert_eq!(dims_create(27, 3), vec![3, 3, 3]);
        assert_eq!(dims_create(7, 2), vec![7, 1]);
        assert_eq!(dims_create(1, 3), vec![1, 1, 1]);
        assert_eq!(dims_create(24, 2), vec![6, 4]);
        // Always multiplies back.
        for n in 1..40 {
            for nd in 1..4 {
                assert_eq!(dims_create(n, nd).iter().product::<usize>(), n);
            }
        }
    }

    #[test]
    fn coords_roundtrip() {
        World::run(12, |p| {
            let cart =
                CartComm::new(p.world().dup().unwrap(), vec![4, 3], vec![false, false]).unwrap();
            let c = cart.coords();
            assert_eq!(cart.rank_of(&c), p.rank());
            assert_eq!(cart.coords_of(p.rank()), c);
        });
    }

    #[test]
    fn invalid_dims_rejected() {
        World::run(4, |p| {
            let r = CartComm::new(p.world().dup().unwrap(), vec![3, 2], vec![false, false]);
            assert!(r.is_err());
            let r = CartComm::new(p.world().dup().unwrap(), vec![2, 2], vec![false]);
            assert!(r.is_err());
        });
    }

    #[test]
    fn shift_nonperiodic_boundaries() {
        World::run(4, |p| {
            let cart = CartComm::new(p.world().dup().unwrap(), vec![4], vec![false]).unwrap();
            let (src, dst) = cart.shift(0, 1);
            match p.rank() {
                0 => {
                    assert_eq!(src, None);
                    assert_eq!(dst, Some(1));
                }
                3 => {
                    assert_eq!(src, Some(2));
                    assert_eq!(dst, None);
                }
                r => {
                    assert_eq!(src, Some(r - 1));
                    assert_eq!(dst, Some(r + 1));
                }
            }
        });
    }

    #[test]
    fn periodic_ring_shift_exchange() {
        World::run(5, |p| {
            let cart = CartComm::new(p.world().dup().unwrap(), vec![5], vec![true]).unwrap();
            let (src, dst) = cart.shift(0, 1);
            let (src, dst) = (src.unwrap(), dst.unwrap());
            cart.comm().send(dst, 0, p.rank() as u64).unwrap();
            let got: u64 = cart.comm().recv(src, 0).unwrap();
            assert_eq!(got as usize, (p.rank() + 4) % 5);
        });
    }

    #[test]
    fn shift_2d_mixed_periodicity() {
        World::run(6, |p| {
            let cart =
                CartComm::new(p.world().dup().unwrap(), vec![2, 3], vec![false, true]).unwrap();
            let c = cart.coords();
            // Dim 1 is periodic: always both neighbours.
            let (s1, d1) = cart.shift(1, 1);
            assert!(s1.is_some() && d1.is_some());
            assert_eq!(cart.coords_of(d1.unwrap())[1], (c[1] + 1) % 3);
            // Dim 0 is not: edges lose a neighbour.
            let (s0, d0) = cart.shift(0, 1);
            if c[0] == 0 {
                assert!(s0.is_none() && d0.is_some());
            } else {
                assert!(s0.is_some() && d0.is_none());
            }
        });
    }
}
