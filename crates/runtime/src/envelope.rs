//! Message envelopes, payload representations and matching patterns.

use std::any::Any;
use std::sync::Arc;
use std::time::Instant;

/// Tag value ranges reserved by the runtime itself.
///
/// User code may use any non-negative tag below [`COLLECTIVE_TAG_BASE`];
/// collective operations stamp their traffic with tags at or above it so that
/// point-to-point traffic on the same communicator context can never match a
/// collective's internal messages.
pub const COLLECTIVE_TAG_BASE: i32 = i32::MAX - (1 << 24);

/// Source-rank pattern for a receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Src {
    /// Match messages from exactly this (communicator-local) rank.
    Rank(usize),
    /// Match messages from any rank (`MPI_ANY_SOURCE`).
    Any,
}

impl Src {
    /// Does this pattern accept a message from `rank`?
    pub fn matches(&self, rank: usize) -> bool {
        match self {
            Src::Rank(r) => *r == rank,
            Src::Any => true,
        }
    }
}

impl From<usize> for Src {
    fn from(r: usize) -> Self {
        Src::Rank(r)
    }
}

/// Tag pattern for a receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tag {
    /// Match messages with exactly this tag.
    Value(i32),
    /// Match messages with any tag (`MPI_ANY_TAG`).
    Any,
}

impl Tag {
    /// Does this pattern accept a message with `tag`?
    pub fn matches(&self, tag: i32) -> bool {
        match self {
            Tag::Value(t) => *t == tag,
            Tag::Any => true,
        }
    }
}

impl From<i32> for Tag {
    fn from(t: i32) -> Self {
        Tag::Value(t)
    }
}

/// Copy-on-write unwrap of a shared payload into an owned box; the flag is
/// `true` when a deep clone was required (other handles still live).
pub type UnwrapShared = fn(Arc<dyn Any + Send + Sync>) -> (Box<dyn Any + Send>, bool);

/// A message payload in flight.
///
/// Payloads travel as type-erased values because all ranks share one address
/// space; the typed façade lives in [`crate::Comm`]. Point-to-point sends move
/// the value ([`Payload::Owned`]); multicast paths post one `Arc`-shared
/// allocation to many mailboxes ([`Payload::Shared`]) so a p-rank broadcast
/// performs O(1) payload allocations instead of O(p) deep copies.
pub enum Payload {
    /// A uniquely-owned value, moved from sender to receiver.
    Owned(Box<dyn Any + Send>),
    /// One allocation shared among many receivers. `unwrap_value` is captured
    /// at construction (where the concrete type is known) and performs the
    /// copy-on-write unwrap: zero-copy when this handle is the last one,
    /// a single deep clone otherwise.
    Shared {
        /// The shared value.
        value: Arc<dyn Any + Send + Sync>,
        /// Copy-on-write unwrap of `value`, captured where `T` is known.
        unwrap_value: UnwrapShared,
    },
}

impl Payload {
    /// Wraps a value for single-receiver delivery.
    pub fn owned<T: Any + Send>(value: T) -> Self {
        Payload::Owned(Box::new(value))
    }

    /// Wraps an `Arc` handle for shared delivery to one of many receivers.
    pub fn shared<T: Any + Send + Sync + Clone>(value: Arc<T>) -> Self {
        Payload::Shared {
            value,
            unwrap_value: |any| {
                let arc =
                    any.downcast::<T>().expect("unwrap_value is captured with the payload type");
                match Arc::try_unwrap(arc) {
                    Ok(v) => (Box::new(v), false),
                    Err(arc) => (Box::new((*arc).clone()), true),
                }
            },
        }
    }

    /// Is the contained value of type `T`?
    pub fn is<T: Any>(&self) -> bool {
        match self {
            Payload::Owned(b) => b.is::<T>(),
            Payload::Shared { value, .. } => (**value).is::<T>(),
        }
    }

    /// Is this a [`Payload::Shared`] handle?
    pub fn is_shared(&self) -> bool {
        matches!(self, Payload::Shared { .. })
    }

    /// Another handle to the same payload: O(1) for shared payloads, `None`
    /// for owned ones (the caller must supply its own replication strategy).
    pub fn another_handle(&self) -> Option<Payload> {
        match self {
            Payload::Owned(_) => None,
            Payload::Shared { value, unwrap_value } => {
                Some(Payload::Shared { value: Arc::clone(value), unwrap_value: *unwrap_value })
            }
        }
    }

    /// Extracts the value as owned `T`. Shared payloads unwrap copy-on-write;
    /// the flag reports whether a deep clone happened. On type mismatch the
    /// payload is returned unchanged.
    pub fn into_owned<T: Any>(self) -> Result<(T, bool), Payload> {
        match self {
            Payload::Owned(b) => match b.downcast::<T>() {
                Ok(v) => Ok((*v, false)),
                Err(b) => Err(Payload::Owned(b)),
            },
            Payload::Shared { value, unwrap_value } => {
                if !(*value).is::<T>() {
                    return Err(Payload::Shared { value, unwrap_value });
                }
                let (boxed, cloned) = unwrap_value(value);
                let v = boxed.downcast::<T>().expect("unwrap_value preserves the payload type");
                Ok((*v, cloned))
            }
        }
    }

    /// Extracts the value as `Arc<T>` without copying the payload. Owned
    /// payloads are moved into a fresh `Arc`; the flag reports whether that
    /// (O(1), pointer-sized) promotion happened. On type mismatch the payload
    /// is returned unchanged.
    pub fn into_shared<T: Any + Send + Sync>(self) -> Result<(Arc<T>, bool), Payload> {
        match self {
            Payload::Owned(b) => match b.downcast::<T>() {
                Ok(v) => Ok((Arc::new(*v), true)),
                Err(b) => Err(Payload::Owned(b)),
            },
            Payload::Shared { value, unwrap_value } => match value.downcast::<T>() {
                Ok(arc) => Ok((arc, false)),
                Err(value) => Err(Payload::Shared { value, unwrap_value }),
            },
        }
    }
}

impl std::fmt::Debug for Payload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Payload::Owned(_) => f.write_str("Payload::Owned"),
            Payload::Shared { value, .. } => {
                write!(f, "Payload::Shared(handles={})", Arc::strong_count(value))
            }
        }
    }
}

/// A message in flight: routing metadata plus the type-erased payload.
pub struct Envelope {
    /// Global (world) rank of the sender.
    pub src_global: usize,
    /// Communicator-local rank of the sender, as seen by the receiver's
    /// communicator.
    pub src_local: usize,
    /// Communicator context the message belongs to.
    pub context: u32,
    /// User or collective tag.
    pub tag: i32,
    /// Monotone per-mailbox arrival sequence, used for FIFO matching.
    pub seq: u64,
    /// Wire size the payload reported at send time.
    pub bytes: usize,
    /// Integrity checksum over the envelope metadata, stamped at send time.
    /// The fault plane damages it to model payload truncation/corruption;
    /// receivers detect the damage via [`Envelope::verify`].
    pub checksum: u64,
    /// Under a network model: the instant the message becomes visible to
    /// receives. `None` = immediately deliverable.
    pub deliver_at: Option<Instant>,
    /// The payload itself.
    pub payload: Payload,
}

impl std::fmt::Debug for Envelope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Envelope")
            .field("src_global", &self.src_global)
            .field("src_local", &self.src_local)
            .field("context", &self.context)
            .field("tag", &self.tag)
            .field("seq", &self.seq)
            .field("bytes", &self.bytes)
            .field("checksum", &self.checksum)
            .finish_non_exhaustive()
    }
}

impl Envelope {
    /// Builds an envelope with a freshly computed checksum (`seq` is
    /// assigned by the destination mailbox on push).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        src_global: usize,
        src_local: usize,
        context: u32,
        tag: i32,
        bytes: usize,
        deliver_at: Option<Instant>,
        payload: Payload,
    ) -> Self {
        let checksum = Self::expected_checksum(src_global, context, tag, bytes);
        Envelope {
            src_global,
            src_local,
            context,
            tag,
            seq: 0,
            bytes,
            checksum,
            deliver_at,
            payload,
        }
    }

    /// The checksum a well-formed envelope with these fields must carry.
    pub fn expected_checksum(src_global: usize, context: u32, tag: i32, bytes: usize) -> u64 {
        // splitmix64-style mix of the metadata words.
        let mut h = (src_global as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ ((context as u64) << 32 | (tag as u32 as u64))
            ^ (bytes as u64).rotate_left(17);
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^ (h >> 31)
    }

    /// Whether the envelope's checksum matches its metadata.
    pub fn verify(&self) -> bool {
        self.checksum
            == Self::expected_checksum(self.src_global, self.context, self.tag, self.bytes)
    }

    /// Damages the checksum to model in-flight payload corruption or
    /// truncation; [`Envelope::verify`] will fail afterwards.
    pub fn corrupt(&mut self) {
        self.checksum ^= 0xdead_beef_dead_beef;
    }

    /// Does this envelope match the given (context, src, tag) patterns?
    pub fn matches(&self, context: u32, src: Src, tag: Tag) -> bool {
        self.context == context && src.matches(self.src_local) && tag.matches(self.tag)
    }
}

/// Metadata about a matched but not yet received message, as returned by
/// probe operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageInfo {
    /// Communicator-local rank of the sender.
    pub src: usize,
    /// Message tag.
    pub tag: i32,
    /// Wire size of the payload in bytes.
    pub bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(src_local: usize, context: u32, tag: i32) -> Envelope {
        Envelope::new(src_local, src_local, context, tag, 0, None, Payload::owned(()))
    }

    #[test]
    fn src_matching() {
        assert!(Src::Any.matches(3));
        assert!(Src::Rank(3).matches(3));
        assert!(!Src::Rank(3).matches(4));
        assert_eq!(Src::from(5usize), Src::Rank(5));
    }

    #[test]
    fn tag_matching() {
        assert!(Tag::Any.matches(-1));
        assert!(Tag::Value(7).matches(7));
        assert!(!Tag::Value(7).matches(8));
        assert_eq!(Tag::from(9), Tag::Value(9));
    }

    #[test]
    fn envelope_matches_all_three_fields() {
        let e = env(2, 10, 5);
        assert!(e.matches(10, Src::Rank(2), Tag::Value(5)));
        assert!(e.matches(10, Src::Any, Tag::Any));
        assert!(!e.matches(11, Src::Any, Tag::Any), "wrong context");
        assert!(!e.matches(10, Src::Rank(1), Tag::Any), "wrong src");
        assert!(!e.matches(10, Src::Any, Tag::Value(6)), "wrong tag");
    }

    #[test]
    fn collective_tags_do_not_collide_with_small_user_tags() {
        const { assert!(COLLECTIVE_TAG_BASE > 1 << 20) }
    }

    #[test]
    fn fresh_envelope_verifies() {
        assert!(env(1, 2, 3).verify());
    }

    #[test]
    fn corruption_is_detected() {
        let mut e = env(1, 2, 3);
        e.corrupt();
        assert!(!e.verify());
        e.corrupt();
        assert!(e.verify(), "corruption is an involution on the checksum");
    }

    #[test]
    fn owned_payload_roundtrips_without_clone() {
        let p = Payload::owned(vec![1u32, 2, 3]);
        assert!(p.is::<Vec<u32>>());
        assert!(!p.is_shared());
        let (v, cloned) = p.into_owned::<Vec<u32>>().unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        assert!(!cloned);
    }

    #[test]
    fn shared_payload_last_handle_unwraps_without_clone() {
        let p = Payload::shared(Arc::new(String::from("hi")));
        let (v, cloned) = p.into_owned::<String>().unwrap();
        assert_eq!(v, "hi");
        assert!(!cloned, "sole handle must unwrap in place");
    }

    #[test]
    fn shared_payload_clones_only_while_other_handles_live() {
        let arc = Arc::new(vec![9u64; 4]);
        let p = Payload::shared(Arc::clone(&arc));
        let (v, cloned) = p.into_owned::<Vec<u64>>().unwrap();
        assert_eq!(v, *arc);
        assert!(cloned, "a live outside handle forces a copy-on-write clone");
    }

    #[test]
    fn shared_payload_into_shared_is_zero_copy() {
        let arc = Arc::new(vec![1.0f64; 8]);
        let p = Payload::shared(Arc::clone(&arc));
        let (got, promoted) = p.into_shared::<Vec<f64>>().unwrap();
        assert!(Arc::ptr_eq(&got, &arc));
        assert!(!promoted);
        let (promoted_arc, promoted) = Payload::owned(7u32).into_shared::<u32>().unwrap();
        assert_eq!(*promoted_arc, 7);
        assert!(promoted, "owned payloads are promoted into a fresh Arc");
    }

    #[test]
    fn payload_type_mismatch_returns_payload() {
        let p = Payload::shared(Arc::new(1u8));
        let p = p.into_owned::<u16>().unwrap_err();
        assert!(p.is::<u8>(), "mismatch must hand the payload back intact");
        assert!(Payload::owned(1u8).into_shared::<u16>().is_err());
    }

    #[test]
    fn another_handle_shares_the_allocation() {
        let p = Payload::shared(Arc::new(5i64));
        let dup = p.another_handle().expect("shared payloads replicate in O(1)");
        let (a, _) = p.into_owned::<i64>().unwrap();
        let (b, _) = dup.into_owned::<i64>().unwrap();
        assert_eq!((a, b), (5, 5));
        assert!(Payload::owned(5i64).another_handle().is_none());
    }

    #[test]
    fn checksum_depends_on_metadata() {
        let a = Envelope::expected_checksum(0, 0, 0, 0);
        assert_ne!(a, Envelope::expected_checksum(1, 0, 0, 0));
        assert_ne!(a, Envelope::expected_checksum(0, 1, 0, 0));
        assert_ne!(a, Envelope::expected_checksum(0, 0, 1, 0));
        assert_ne!(a, Envelope::expected_checksum(0, 0, 0, 1));
    }
}
