//! Message envelopes and matching patterns.

use std::any::Any;
use std::time::Instant;

/// Tag value ranges reserved by the runtime itself.
///
/// User code may use any non-negative tag below [`COLLECTIVE_TAG_BASE`];
/// collective operations stamp their traffic with tags at or above it so that
/// point-to-point traffic on the same communicator context can never match a
/// collective's internal messages.
pub const COLLECTIVE_TAG_BASE: i32 = i32::MAX - (1 << 24);

/// Source-rank pattern for a receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Src {
    /// Match messages from exactly this (communicator-local) rank.
    Rank(usize),
    /// Match messages from any rank (`MPI_ANY_SOURCE`).
    Any,
}

impl Src {
    /// Does this pattern accept a message from `rank`?
    pub fn matches(&self, rank: usize) -> bool {
        match self {
            Src::Rank(r) => *r == rank,
            Src::Any => true,
        }
    }
}

impl From<usize> for Src {
    fn from(r: usize) -> Self {
        Src::Rank(r)
    }
}

/// Tag pattern for a receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tag {
    /// Match messages with exactly this tag.
    Value(i32),
    /// Match messages with any tag (`MPI_ANY_TAG`).
    Any,
}

impl Tag {
    /// Does this pattern accept a message with `tag`?
    pub fn matches(&self, tag: i32) -> bool {
        match self {
            Tag::Value(t) => *t == tag,
            Tag::Any => true,
        }
    }
}

impl From<i32> for Tag {
    fn from(t: i32) -> Self {
        Tag::Value(t)
    }
}

/// A message in flight: routing metadata plus the boxed payload.
///
/// Payloads travel as `Box<dyn Any + Send>` because all ranks share one
/// address space; the typed façade lives in [`crate::Comm`].
pub struct Envelope {
    /// Global (world) rank of the sender.
    pub src_global: usize,
    /// Communicator-local rank of the sender, as seen by the receiver's
    /// communicator.
    pub src_local: usize,
    /// Communicator context the message belongs to.
    pub context: u32,
    /// User or collective tag.
    pub tag: i32,
    /// Monotone per-mailbox arrival sequence, used for FIFO matching.
    pub seq: u64,
    /// Wire size the payload reported at send time.
    pub bytes: usize,
    /// Under a network model: the instant the message becomes visible to
    /// receives. `None` = immediately deliverable.
    pub deliver_at: Option<Instant>,
    /// The payload itself.
    pub payload: Box<dyn Any + Send>,
}

impl Envelope {
    /// Does this envelope match the given (context, src, tag) patterns?
    pub fn matches(&self, context: u32, src: Src, tag: Tag) -> bool {
        self.context == context && src.matches(self.src_local) && tag.matches(self.tag)
    }
}

/// Metadata about a matched but not yet received message, as returned by
/// probe operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageInfo {
    /// Communicator-local rank of the sender.
    pub src: usize,
    /// Message tag.
    pub tag: i32,
    /// Wire size of the payload in bytes.
    pub bytes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(src_local: usize, context: u32, tag: i32) -> Envelope {
        Envelope {
            src_global: src_local,
            src_local,
            context,
            tag,
            seq: 0,
            bytes: 0,
            deliver_at: None,
            payload: Box::new(()),
        }
    }

    #[test]
    fn src_matching() {
        assert!(Src::Any.matches(3));
        assert!(Src::Rank(3).matches(3));
        assert!(!Src::Rank(3).matches(4));
        assert_eq!(Src::from(5usize), Src::Rank(5));
    }

    #[test]
    fn tag_matching() {
        assert!(Tag::Any.matches(-1));
        assert!(Tag::Value(7).matches(7));
        assert!(!Tag::Value(7).matches(8));
        assert_eq!(Tag::from(9), Tag::Value(9));
    }

    #[test]
    fn envelope_matches_all_three_fields() {
        let e = env(2, 10, 5);
        assert!(e.matches(10, Src::Rank(2), Tag::Value(5)));
        assert!(e.matches(10, Src::Any, Tag::Any));
        assert!(!e.matches(11, Src::Any, Tag::Any), "wrong context");
        assert!(!e.matches(10, Src::Rank(1), Tag::Any), "wrong src");
        assert!(!e.matches(10, Src::Any, Tag::Value(6)), "wrong tag");
    }

    #[test]
    fn collective_tags_do_not_collide_with_small_user_tags() {
        assert!(COLLECTIVE_TAG_BASE > 1 << 20);
    }
}
