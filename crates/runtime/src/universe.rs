//! Universes: several parallel programs ("M×N jobs") in one run.
//!
//! [`Universe::run`] is the analogue of launching two or more `mpirun` jobs
//! that will couple to each other: it builds one world spanning all
//! programs, gives each rank its program-local communicator, and
//! pre-establishes an [`InterComm`] between every pair of programs.

use crate::comm::Comm;
use crate::error::Result;
use crate::fault::{FaultConfig, FaultTrace};
use crate::intercomm::InterComm;
use crate::stats::StatsSnapshot;
use crate::world::{Process, World};
use mxn_trace::RunTrace;

/// Per-rank context inside a multi-program universe.
pub struct ProgramCtx {
    /// Index of this rank's program within the universe.
    pub program: usize,
    /// Communicator over this rank's program only.
    pub comm: Comm,
    /// Inter-communicators to every other program; index = program id
    /// (`None` at this rank's own program id).
    intercomms: Vec<Option<InterComm>>,
}

impl ProgramCtx {
    /// The inter-communicator to program `other`.
    ///
    /// # Panics
    /// If `other` is this rank's own program or out of range.
    pub fn intercomm(&self, other: usize) -> &InterComm {
        self.intercomms[other].as_ref().expect("no intercomm to own program; use `comm` instead")
    }

    /// Number of programs in the universe.
    pub fn num_programs(&self) -> usize {
        self.intercomms.len()
    }
}

/// Entry point for coupled multi-program runs.
pub struct Universe;

impl Universe {
    /// Runs `f` on a universe of `sizes.len()` programs with the given rank
    /// counts; results come back in world-rank order (program 0's ranks
    /// first). The world communicator remains reachable via [`Process`].
    pub fn run<R, F>(sizes: &[usize], f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&Process, &ProgramCtx) -> R + Send + Sync,
    {
        Self::run_with_stats(sizes, f).0
    }

    /// Like [`Universe::run`] but also returns final traffic counters.
    pub fn run_with_stats<R, F>(sizes: &[usize], f: F) -> (Vec<R>, StatsSnapshot)
    where
        R: Send,
        F: Fn(&Process, &ProgramCtx) -> R + Send + Sync,
    {
        let (total, starts) = Self::layout(sizes);
        World::run_with_stats(total, move |p| {
            let ctx = Self::setup(p, sizes, &starts).expect("universe setup is deadlock-free");
            f(p, &ctx)
        })
    }

    /// Like [`Universe::run`] but with the trace plane armed: the merged
    /// [`RunTrace`] covers bootstrap (program splits, intercomm mesh) and
    /// the coupling traffic of `f` alike.
    pub fn run_traced<R, F>(sizes: &[usize], f: F) -> (Vec<R>, RunTrace)
    where
        R: Send,
        F: Fn(&Process, &ProgramCtx) -> R + Send + Sync,
    {
        let (total, starts) = Self::layout(sizes);
        World::run_traced(total, move |p| {
            let ctx = Self::setup(p, sizes, &starts).expect("universe setup is deadlock-free");
            f(p, &ctx)
        })
    }

    /// Like [`Universe::run`] but under a deterministic [`FaultConfig`];
    /// returns per-rank results plus the canonical [`FaultTrace`]. Rank
    /// closures must surface failure-detection errors (`PeerDead`,
    /// `Timeout`) as values rather than panicking.
    ///
    /// The universe's own bootstrap (program splits and the intercomm mesh)
    /// runs with the fault plane disarmed, so lossy policies and scheduled
    /// deaths cannot strand setup: faults apply to the coupling traffic
    /// only, and a death's `at_op` counts ops from the start of `f`.
    pub fn run_with_faults<R, F>(sizes: &[usize], faults: FaultConfig, f: F) -> (Vec<R>, FaultTrace)
    where
        R: Send,
        F: Fn(&Process, &ProgramCtx) -> R + Send + Sync,
    {
        let (total, starts) = Self::layout(sizes);
        World::run_with_faults(total, faults, move |p| {
            p.set_faults_armed(false);
            let ctx = Self::setup(p, sizes, &starts).expect("universe setup is deadlock-free");
            p.set_faults_armed(true);
            f(p, &ctx)
        })
    }

    fn layout(sizes: &[usize]) -> (usize, Vec<usize>) {
        assert!(sizes.len() >= 2, "universe needs at least two programs");
        assert!(sizes.iter().all(|&s| s > 0), "every program needs at least one rank");
        let total: usize = sizes.iter().sum();
        let starts: Vec<usize> = sizes
            .iter()
            .scan(0, |acc, &s| {
                let start = *acc;
                *acc += s;
                Some(start)
            })
            .collect();
        (total, starts)
    }

    fn setup(p: &Process, sizes: &[usize], starts: &[usize]) -> Result<ProgramCtx> {
        let world = p.world();
        let my_prog =
            starts.iter().rposition(|&s| p.rank() >= s).expect("every rank belongs to a program");

        let comm = world.split(my_prog as i64, 0)?.expect("program color is non-negative");

        // Establish an intercomm for every unordered pair of programs; all
        // world ranks take part in each split (non-members opt out). The
        // splits and `InterComm::create` ride on the world's collectives
        // (shared-envelope bcast/allgather), so bootstrap traffic stays
        // O(1) payload allocations per exchange even at large p.
        let nprog = sizes.len();
        let mut intercomms: Vec<Option<InterComm>> = (0..nprog).map(|_| None).collect();
        for a in 0..nprog {
            for b in (a + 1)..nprog {
                let in_pair = my_prog == a || my_prog == b;
                let color = if in_pair { 0 } else { -1 };
                let pair = world.split(color, 0)?;
                if let Some(pair) = pair {
                    let side = usize::from(my_prog == b);
                    let (_, ic) = InterComm::create(&pair, side)?;
                    let other = if my_prog == a { b } else { a };
                    intercomms[other] = Some(ic);
                }
            }
        }

        Ok(ProgramCtx { program: my_prog, comm, intercomms })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::Src;

    #[test]
    fn programs_get_correct_comms() {
        Universe::run(&[2, 3], |p, ctx| {
            if p.rank() < 2 {
                assert_eq!(ctx.program, 0);
                assert_eq!(ctx.comm.size(), 2);
                assert_eq!(ctx.comm.rank(), p.rank());
            } else {
                assert_eq!(ctx.program, 1);
                assert_eq!(ctx.comm.size(), 3);
                assert_eq!(ctx.comm.rank(), p.rank() - 2);
            }
            assert_eq!(ctx.num_programs(), 2);
        });
    }

    #[test]
    fn cross_program_exchange() {
        Universe::run(&[2, 4], |_, ctx| match ctx.program {
            0 => {
                let ic = ctx.intercomm(1);
                assert_eq!(ic.remote_size(), 4);
                for dst in 0..4 {
                    ic.send(dst, 1, ctx.comm.rank() as u64).unwrap();
                }
            }
            _ => {
                let ic = ctx.intercomm(0);
                assert_eq!(ic.remote_size(), 2);
                let mut got = vec![
                    ic.recv::<u64>(Src::Any, 1).unwrap(),
                    ic.recv::<u64>(Src::Any, 1).unwrap(),
                ];
                got.sort_unstable();
                assert_eq!(got, vec![0, 1]);
            }
        });
    }

    #[test]
    fn three_programs_all_pairs() {
        Universe::run(&[1, 2, 1], |_, ctx| {
            let me = ctx.program;
            for other in 0..3 {
                if other == me {
                    continue;
                }
                let ic = ctx.intercomm(other);
                if ctx.comm.rank() == 0 {
                    ic.send(0, 9, me as u32).unwrap();
                }
            }
            if ctx.comm.rank() == 0 {
                let mut got: Vec<u32> = (0..3)
                    .filter(|&o| o != me)
                    .map(|o| ctx.intercomm(o).recv::<u32>(0, 9).unwrap())
                    .collect();
                got.sort_unstable();
                let expect: Vec<u32> = (0..3u32).filter(|&o| o as usize != me).collect();
                assert_eq!(got, expect);
            }
        });
    }

    #[test]
    fn program_collectives_are_independent() {
        Universe::run(&[3, 2], |_, ctx| {
            let sum: usize = ctx.comm.allreduce(ctx.comm.rank(), |a, b| *a += b).unwrap();
            let expect = if ctx.program == 0 { 3 } else { 1 };
            assert_eq!(sum, expect);
        });
    }

    #[test]
    #[should_panic(expected = "at least two programs")]
    fn single_program_rejected() {
        Universe::run(&[3], |_, _| ());
    }
}
