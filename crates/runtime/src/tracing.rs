//! The runtime's trace vocabulary: stable numeric codes embedded in
//! trace-event args.
//!
//! `mxn-trace` defines the event ids and the recorder; the args are plain
//! `u64`s whose meaning is fixed here. Like the event ids themselves,
//! these codes are part of the golden-trace format — never renumber, only
//! append.

use crate::envelope::{Src, Tag, COLLECTIVE_TAG_BASE};
use crate::error::RuntimeError;
use crate::membership::RECOVERY_TAG_BASE;
use crate::stats::WorldStats;
use mxn_trace::{emit_instant, EventId};

/// Error codes: `args[0]` of [`EventId::OpError`].
pub mod err_code {
    /// A receive deadline expired.
    pub const TIMEOUT: u64 = 1;
    /// The operation's peer (or the caller itself) died.
    pub const PEER_DEAD: u64 = 2;
    /// An envelope failed its integrity check.
    pub const CORRUPT: u64 = 3;
    /// A typed receive matched a payload of a different type.
    pub const TYPE_MISMATCH: u64 = 4;
    /// The world aborted (another rank panicked).
    pub const ABORTED: u64 = 5;
    /// Any other runtime error.
    pub const OTHER: u64 = 6;
    /// The operation's communicator context was revoked.
    pub const REVOKED: u64 = 7;
}

/// Fault kinds: `args[0]` of [`EventId::FaultInject`].
pub mod fault_kind {
    /// Message dropped.
    pub const DROP: u64 = 1;
    /// Message delivered twice.
    pub const DUPLICATE: u64 = 2;
    /// Payload checksum damaged.
    pub const CORRUPT: u64 = 3;
    /// Delivery delayed beyond the network model.
    pub const DELAY: u64 = 4;
    /// A rank died.
    pub const DEATH: u64 = 5;
}

/// Collective algorithm codes: `args[1]` of [`EventId::Collective`] Begin.
pub mod coll_algo {
    /// Dissemination barrier.
    pub const DISSEMINATION: u64 = 1;
    /// Binomial tree over shared envelopes.
    pub const BINOMIAL_SHARED: u64 = 2;
    /// Binomial tree with a deep clone per child (baseline).
    pub const BINOMIAL_CLONING: u64 = 3;
    /// Ring exchange.
    pub const RING: u64 = 4;
    /// Pairwise exchange.
    pub const PAIRWISE: u64 = 5;
    /// Bruck log-round exchange.
    pub const BRUCK: u64 = 6;
    /// Recursive doubling.
    pub const RECURSIVE_DOUBLING: u64 = 7;
    /// Binomial reduce + shared broadcast.
    pub const REDUCE_BCAST: u64 = 8;
    /// Recursive halving.
    pub const RECURSIVE_HALVING: u64 = 9;
    /// Linear chain / root loop.
    pub const LINEAR: u64 = 10;
}

/// Deterministic classification of a context id for event args.
///
/// Raw context ids come from a racy global allocator
/// ([`crate::shared::WorldShared::allocate_context_pair`]), so the id a
/// given communicator receives is *physical* — two runs of the same
/// program can order concurrent `split`s differently. Mailbox events
/// therefore record the class, which is a pure function of the program:
/// 0 = world point-to-point, 1 = world collective, 2 = derived
/// point-to-point, 3 = derived collective.
pub(crate) fn ctx_class(context: u32) -> u64 {
    match context {
        0 => 0,
        1 => 1,
        c if c % 2 == 0 => 2,
        _ => 3,
    }
}

/// `Src` pattern encoded for trace args (`Any` = `u64::MAX`).
pub(crate) fn src_arg(src: Src) -> u64 {
    match src {
        Src::Any => u64::MAX,
        Src::Rank(r) => r as u64,
    }
}

/// `Tag` pattern encoded for trace args (`Any` = `u64::MAX`; values keep
/// their `i32` bit pattern, zero-extended).
pub(crate) fn tag_pat_arg(tag: Tag) -> u64 {
    match tag {
        Tag::Any => u64::MAX,
        Tag::Value(t) => tag_arg(t),
    }
}

/// Concrete tag encoded for trace args (`i32` bit pattern, zero-extended,
/// so negative tags stay deterministic and fit in 32 bits).
///
/// Recovery-plane agreement tags embed the context id of the communicator
/// the agreement runs on (bits 8..18 above [`RECOVERY_TAG_BASE`]), and
/// context ids are *physical* — see [`ctx_class`]. Tags in that range have
/// their channel bits replaced by the context class, keeping the logical
/// sequence/round bits, so agreement traffic digests identically across
/// runs that ordered their context allocations differently.
pub(crate) fn tag_arg(tag: i32) -> u64 {
    if (RECOVERY_TAG_BASE..COLLECTIVE_TAG_BASE).contains(&tag) {
        let rel = (tag - RECOVERY_TAG_BASE) as u32;
        let class = ctx_class((rel >> 8) & 0x3ff);
        return RECOVERY_TAG_BASE as u64 + (class << 8) + (rel & 0xff) as u64;
    }
    tag as u32 as u64
}

/// Uniform error-return accounting: bumps the matching `WorldStats`
/// counter (`Timeout`/`PeerDead` — the satellite-fix counters) and emits
/// one `OpError` event with `[code, src, tag]`. Called on every failed
/// receive/probe path so error returns are visible in both accounting
/// planes, never just one.
pub(crate) fn record_op_error(stats: &WorldStats, err: &RuntimeError) {
    let (code, src, tag) = match err {
        RuntimeError::Timeout { src, tag, .. } => {
            stats.record_recv_timeout();
            (err_code::TIMEOUT, src_arg(*src), tag_pat_arg(*tag))
        }
        RuntimeError::PeerDead { rank } => {
            stats.record_peer_dead_error();
            (err_code::PEER_DEAD, *rank as u64, 0)
        }
        RuntimeError::Corrupt { src, tag } => (err_code::CORRUPT, *src as u64, tag_arg(*tag)),
        RuntimeError::TypeMismatch { src, tag, .. } => {
            (err_code::TYPE_MISMATCH, *src as u64, tag_arg(*tag))
        }
        RuntimeError::Aborted => (err_code::ABORTED, 0, 0),
        RuntimeError::Revoked { context } => (err_code::REVOKED, ctx_class(*context), 0),
        _ => (err_code::OTHER, 0, 0),
    };
    emit_instant(EventId::OpError, [code, src, tag, 0]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_encodings_are_stable() {
        assert_eq!(src_arg(Src::Any), u64::MAX);
        assert_eq!(src_arg(Src::Rank(3)), 3);
        assert_eq!(tag_pat_arg(Tag::Any), u64::MAX);
        assert_eq!(tag_arg(-1), 0xffff_ffff);
        assert_eq!(tag_arg(7), 7);
        assert_eq!(ctx_class(0), 0);
        assert_eq!(ctx_class(1), 1);
        assert_eq!(ctx_class(2), 2);
        assert_eq!(ctx_class(10), 2);
        assert_eq!(ctx_class(3), 3);
        assert_eq!(ctx_class(11), 3);
    }

    #[test]
    fn recovery_tags_drop_their_physical_channel_bits() {
        // Two agreements that differ only in the (racy) context id of the
        // communicator they run on — same class, same seq, same round —
        // must record the same arg.
        let tag_for =
            |ch: i32, seq: i32, round: i32| RECOVERY_TAG_BASE + (ch << 8) + (seq << 2) + round;
        assert_eq!(tag_arg(tag_for(4, 3, 1)), tag_arg(tag_for(6, 3, 1)));
        // Different classes, sequences, or rounds stay distinguishable.
        assert_ne!(tag_arg(tag_for(4, 3, 1)), tag_arg(tag_for(5, 3, 1)));
        assert_ne!(tag_arg(tag_for(4, 3, 1)), tag_arg(tag_for(4, 2, 1)));
        assert_ne!(tag_arg(tag_for(4, 3, 1)), tag_arg(tag_for(4, 3, 0)));
        // Tags outside the recovery range are untouched.
        assert_eq!(tag_arg(RECOVERY_TAG_BASE - 1), (RECOVERY_TAG_BASE - 1) as u64);
        assert_eq!(tag_arg(COLLECTIVE_TAG_BASE), COLLECTIVE_TAG_BASE as u64);
    }

    #[test]
    fn op_error_updates_the_matching_counter() {
        let stats = WorldStats::new();
        record_op_error(
            &stats,
            &RuntimeError::timeout("x", std::time::Duration::ZERO, Src::Rank(1), Tag::Value(2)),
        );
        record_op_error(&stats, &RuntimeError::PeerDead { rank: 4 });
        record_op_error(&stats, &RuntimeError::Corrupt { src: 0, tag: 1 });
        let snap = stats.snapshot();
        assert_eq!(snap.recv_timeouts, 1);
        assert_eq!(snap.peer_dead_errors, 1);
    }
}
