//! Predefined reduction operators.
//!
//! The generic [`crate::Comm::reduce`]/[`crate::Comm::allreduce`] take any
//! associative closure; this module provides the standard MPI operator
//! set — including the indexed `MINLOC`/`MAXLOC` pairs parallel codes use
//! to find *where* an extremum lives — so call sites read like MPI.

/// Element-wise sum of two equal-length vectors (for multi-value
/// reductions).
#[allow(clippy::ptr_arg)] // must match the `Fn(&mut T, T)` reduction-op shape with T = Vec<f64>
pub fn vec_sum(acc: &mut Vec<f64>, incoming: Vec<f64>) {
    debug_assert_eq!(acc.len(), incoming.len(), "vector reduction length mismatch");
    for (a, b) in acc.iter_mut().zip(incoming) {
        *a += b;
    }
}

/// Scalar sum.
pub fn sum<T: std::ops::AddAssign>(acc: &mut T, incoming: T) {
    *acc += incoming;
}

/// Scalar product.
pub fn prod<T: std::ops::MulAssign>(acc: &mut T, incoming: T) {
    *acc *= incoming;
}

/// Scalar minimum (total orders; use [`fmin`] for floats).
pub fn min<T: Ord + Copy>(acc: &mut T, incoming: T) {
    if incoming < *acc {
        *acc = incoming;
    }
}

/// Scalar maximum (total orders; use [`fmax`] for floats).
pub fn max<T: Ord + Copy>(acc: &mut T, incoming: T) {
    if incoming > *acc {
        *acc = incoming;
    }
}

/// Float minimum (NaN-propagating like `f64::min` is NaN-ignoring; this
/// follows IEEE `minNum`: NaNs are ignored unless both are NaN).
pub fn fmin(acc: &mut f64, incoming: f64) {
    *acc = acc.min(incoming);
}

/// Float maximum (see [`fmin`]).
pub fn fmax(acc: &mut f64, incoming: f64) {
    *acc = acc.max(incoming);
}

/// Logical AND.
pub fn land(acc: &mut bool, incoming: bool) {
    *acc &= incoming;
}

/// Logical OR.
pub fn lor(acc: &mut bool, incoming: bool) {
    *acc |= incoming;
}

/// A value tagged with its owner (typically a rank), for `MINLOC`/`MAXLOC`.
pub type Loc = (f64, usize);

/// `MPI_MINLOC`: keeps the smaller value; ties go to the smaller index.
pub fn minloc(acc: &mut Loc, incoming: Loc) {
    if incoming.0 < acc.0 || (incoming.0 == acc.0 && incoming.1 < acc.1) {
        *acc = incoming;
    }
}

/// `MPI_MAXLOC`: keeps the larger value; ties go to the smaller index.
pub fn maxloc(acc: &mut Loc, incoming: Loc) {
    if incoming.0 > acc.0 || (incoming.0 == acc.0 && incoming.1 < acc.1) {
        *acc = incoming;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    #[test]
    fn scalar_ops() {
        let mut a = 3u64;
        sum(&mut a, 4);
        assert_eq!(a, 7);
        prod(&mut a, 2);
        assert_eq!(a, 14);
        let mut m = 5i32;
        min(&mut m, 2);
        max(&mut m, 2);
        assert_eq!(m, 2);
        let mut f = 1.5;
        fmin(&mut f, -0.5);
        assert_eq!(f, -0.5);
        fmax(&mut f, 9.0);
        assert_eq!(f, 9.0);
        let mut b = true;
        land(&mut b, false);
        assert!(!b);
        lor(&mut b, true);
        assert!(b);
    }

    #[test]
    fn vector_sum_reduction() {
        let mut acc = vec![1.0, 2.0];
        vec_sum(&mut acc, vec![10.0, 20.0]);
        assert_eq!(acc, vec![11.0, 22.0]);
    }

    #[test]
    fn loc_ops_break_ties_toward_lower_index() {
        let mut a = (1.0, 3);
        minloc(&mut a, (1.0, 1));
        assert_eq!(a, (1.0, 1));
        minloc(&mut a, (0.5, 9));
        assert_eq!(a, (0.5, 9));
        let mut b = (1.0, 3);
        maxloc(&mut b, (1.0, 1));
        assert_eq!(b, (1.0, 1));
        maxloc(&mut b, (2.0, 7));
        assert_eq!(b, (2.0, 7));
    }

    #[test]
    fn allreduce_with_named_ops() {
        World::run(4, |p| {
            let c = p.world();
            let total: u64 = c.allreduce(c.rank() as u64, sum).unwrap();
            assert_eq!(total, 6);
            // Who holds the largest value of (rank*7 mod 5)?
            let mine = ((c.rank() * 7) % 5) as f64;
            let (val, who) = c.allreduce((mine, c.rank()), maxloc).unwrap();
            assert_eq!(val, 4.0);
            assert_eq!(who, 2, "rank 2 holds 14 mod 5 = 4");
            // Vector reduction.
            let v = vec![c.rank() as f64, 1.0];
            let s = c.allreduce(v, vec_sum).unwrap();
            assert_eq!(s, vec![6.0, 4.0]);
        });
    }
}
