//! Nonblocking point-to-point operations.
//!
//! Sends in this runtime are eager (they deposit the payload and return), so
//! [`SendRequest`] completes immediately; it exists so code ported from MPI
//! keeps its shape. [`RecvRequest`] is a genuine deferred receive: it pins
//! the `(src, tag)` pattern at post time and can be tested or waited on
//! later, letting components overlap computation with communication — the
//! "asynchronous, nonblocking transfers" feature of Section 3 of the paper.

use std::time::Duration;

use crate::comm::Comm;
use crate::envelope::{Src, Tag};
use crate::error::Result;
use crate::msgsize::MsgSize;

/// Handle for a nonblocking send. Always already complete.
#[derive(Debug)]
#[must_use = "wait on send requests to mirror MPI semantics"]
pub struct SendRequest(());

impl SendRequest {
    /// Completes immediately.
    pub fn wait(self) -> Result<()> {
        Ok(())
    }

    /// Always `true` for eager sends.
    pub fn test(&self) -> bool {
        true
    }
}

/// Handle for a nonblocking receive of a `T`.
#[must_use = "irecv does nothing until waited or tested"]
pub struct RecvRequest<'c, T> {
    comm: &'c Comm,
    src: Src,
    tag: Tag,
    received: Option<T>,
}

impl<'c, T: 'static> RecvRequest<'c, T> {
    /// Polls for completion; returns `true` once the message has been
    /// matched (the payload is then held inside the request).
    pub fn test(&mut self) -> Result<bool> {
        if self.received.is_some() {
            return Ok(true);
        }
        if let Some((v, _)) = self.comm.try_recv::<T>(self.src, self.tag)? {
            self.received = Some(v);
            return Ok(true);
        }
        Ok(false)
    }

    /// Blocks until the message arrives and returns the payload.
    pub fn wait(mut self) -> Result<T> {
        if let Some(v) = self.received.take() {
            return Ok(v);
        }
        self.comm.recv(self.src, self.tag)
    }

    /// Blocks with a deadline.
    pub fn wait_timeout(mut self, timeout: Duration) -> Result<T> {
        if let Some(v) = self.received.take() {
            return Ok(v);
        }
        self.comm.recv_timeout(self.src, self.tag, timeout)
    }
}

impl Comm {
    /// Nonblocking send. Eager: the payload is deposited before returning.
    pub fn isend<T: Send + MsgSize + 'static>(
        &self,
        dst: usize,
        tag: i32,
        value: T,
    ) -> Result<SendRequest> {
        self.send(dst, tag, value)?;
        Ok(SendRequest(()))
    }

    /// Posts a nonblocking receive for a `T` matching `src`/`tag`.
    pub fn irecv<T: 'static>(
        &self,
        src: impl Into<Src>,
        tag: impl Into<Tag>,
    ) -> RecvRequest<'_, T> {
        RecvRequest { comm: self, src: src.into(), tag: tag.into(), received: None }
    }
}

/// Waits for every request, returning payloads in request order.
pub fn wait_all<T: 'static>(requests: Vec<RecvRequest<'_, T>>) -> Result<Vec<T>> {
    requests.into_iter().map(RecvRequest::wait).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    #[test]
    fn isend_completes_immediately() {
        World::run(2, |p| {
            let c = p.world();
            if c.rank() == 0 {
                let req = c.isend(1, 0, 42u32).unwrap();
                assert!(req.test());
                req.wait().unwrap();
            } else {
                assert_eq!(c.recv::<u32>(0, 0).unwrap(), 42);
            }
        });
    }

    #[test]
    fn irecv_test_then_wait() {
        World::run(2, |p| {
            let c = p.world();
            if c.rank() == 0 {
                // Give rank 1 a moment to post and poll first.
                std::thread::sleep(Duration::from_millis(20));
                c.send(1, 5, 7u8).unwrap();
            } else {
                let mut req = c.irecv::<u8>(0, 5);
                // Not yet there (probabilistically; must not panic either way).
                let _ = req.test().unwrap();
                assert_eq!(req.wait().unwrap(), 7);
            }
        });
    }

    #[test]
    fn irecv_test_consumes_once() {
        World::run(2, |p| {
            let c = p.world();
            if c.rank() == 0 {
                c.send(1, 1, 9u8).unwrap();
            } else {
                let mut req = c.irecv::<u8>(0, 1);
                while !req.test().unwrap() {
                    std::thread::yield_now();
                }
                // test() again is still true, and wait() yields the value.
                assert!(req.test().unwrap());
                assert_eq!(req.wait().unwrap(), 9);
            }
        });
    }

    #[test]
    fn wait_all_collects_in_order() {
        World::run(3, |p| {
            let c = p.world();
            if c.rank() == 0 {
                let reqs = vec![c.irecv::<u64>(1, 0), c.irecv::<u64>(2, 0)];
                assert_eq!(wait_all(reqs).unwrap(), vec![100, 200]);
            } else {
                c.send(0, 0, c.rank() as u64 * 100).unwrap();
            }
        });
    }

    #[test]
    fn wait_timeout_on_missing_message() {
        World::run(1, |p| {
            let c = p.world();
            let req = c.irecv::<u8>(0, 0);
            assert!(req.wait_timeout(Duration::from_millis(10)).is_err());
        });
    }
}
