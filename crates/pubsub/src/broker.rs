//! The broker: retained topics, dynamic subscriber sets, in-flight
//! transformation.

use std::collections::HashMap;

use mxn_dad::{Extents, Region};
use mxn_runtime::{InterComm, Result, Src};

use crate::{ToBroker, UpdateMsg, PUB_TAG, SUB_TAG, UPD_TAG};

struct Subscription {
    /// Subscriber's client rank (remote-local on the broker's intercomm).
    rank: usize,
    region: Region,
    scale: f64,
    offset: f64,
}

#[derive(Default)]
struct Topic {
    /// Latest committed field (the retained message), once something has
    /// been published.
    data: Option<(Extents, Vec<f64>)>,
    version: u64,
    subs: Vec<Subscription>,
}

/// Counters reported when the broker shuts down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BrokerStats {
    /// Commits fanned out.
    pub commits: u64,
    /// Region updates pushed to subscribers.
    pub updates_sent: u64,
    /// Subscriptions accepted over the broker's lifetime.
    pub subscriptions: u64,
    /// Unsubscribes processed.
    pub unsubscribes: u64,
}

fn push_update(ic: &InterComm, name: &str, topic: &Topic, sub: &Subscription) -> Result<bool> {
    let Some((extents, values)) = &topic.data else {
        return Ok(false);
    };
    // Extract + transform the subscriber's region in one pass (the
    // in-flight transformation: the publisher never sees it).
    let out: Vec<f64> = sub
        .region
        .iter()
        .map(|idx| sub.scale * values[extents.linear(&idx)] + sub.offset)
        .collect();
    ic.send(
        sub.rank,
        UPD_TAG,
        UpdateMsg {
            topic: name.to_string(),
            version: topic.version,
            lo: sub.region.lo().to_vec(),
            hi: sub.region.hi().to_vec(),
            values: out,
        },
    )?;
    Ok(true)
}

/// Runs the broker loop on one rank until a `Shutdown` message arrives.
/// `ic` is the intercomm to the client universe (publishers *and*
/// subscribers live on the remote side; neither knows about the other).
pub fn run_broker(ic: &InterComm) -> Result<BrokerStats> {
    let mut topics: HashMap<String, Topic> = HashMap::new();
    let mut stats = BrokerStats::default();
    loop {
        let (msg, info) = ic.recv_with_info::<ToBroker>(Src::Any, PUB_TAG)?;
        match msg {
            ToBroker::Shutdown => return Ok(stats),
            ToBroker::Subscribe { topic, lo, hi, scale, offset } => {
                topics.entry(topic.clone()).or_default();
                stats.subscriptions += 1;
                let sub =
                    Subscription { rank: info.src, region: Region::new(lo, hi), scale, offset };
                // Late joiner: immediately push the retained version.
                {
                    let t = &topics[&topic];
                    if t.version > 0 && push_update(ic, &topic, t, &sub)? {
                        stats.updates_sent += 1;
                    }
                }
                let entry = topics.get_mut(&topic).expect("just inserted");
                // Replace any previous subscription from the same rank.
                entry.subs.retain(|s| s.rank != info.src);
                entry.subs.push(sub);
                // Ack with the current version so the subscriber can
                // proceed deterministically.
                let v = entry.version;
                ic.send(info.src, SUB_TAG, v)?;
            }
            ToBroker::Unsubscribe { topic } => {
                if let Some(t) = topics.get_mut(&topic) {
                    t.subs.retain(|s| s.rank != info.src);
                    stats.unsubscribes += 1;
                }
                ic.send(info.src, SUB_TAG, 0u64)?;
            }
            ToBroker::Publish { topic, extents, lo, hi, values, commit } => {
                let extents = Extents::new(extents);
                let entry = topics.entry(topic.clone()).or_default();
                let reset = match &entry.data {
                    Some((e, _)) => *e != extents,
                    None => true,
                };
                if reset {
                    // New or re-decomposed topic: fresh retained buffer.
                    entry.data = Some((extents.clone(), vec![0.0; extents.total()]));
                    entry.version = 0;
                }
                let (e, buf) = entry.data.as_mut().expect("just ensured");
                let region = Region::new(lo, hi);
                debug_assert_eq!(region.len(), values.len());
                for (k, idx) in region.iter().enumerate() {
                    buf[e.linear(&idx)] = values[k];
                }
                if commit {
                    entry.version += 1;
                    stats.commits += 1;
                    let entry = &topics[&topic];
                    for sub in &entry.subs {
                        if push_update(ic, &topic, entry, sub)? {
                            stats.updates_sent += 1;
                        }
                    }
                }
            }
        }
    }
}
