//! Publisher and subscriber client handles.

use mxn_dad::{Dad, LocalArray, Region};
use mxn_runtime::{InterComm, Result};

use crate::{ToBroker, UpdateMsg, PUB_TAG, SUB_TAG, UPD_TAG};

/// The in-flight transformation a subscriber requests: `y = scale·x +
/// offset`, applied *at the broker* so endpoints never agree on units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transform {
    /// Multiplicative factor.
    pub scale: f64,
    /// Additive offset.
    pub offset: f64,
}

impl Transform {
    /// The identity transformation.
    pub fn identity() -> Self {
        Transform { scale: 1.0, offset: 0.0 }
    }
}

/// One rank of a publishing cohort.
pub struct Publisher {
    topic: String,
    dad: Dad,
    my_rank: usize,
    /// Program-local rank that carries the commit flag (highest publisher
    /// rank, by convention).
    committer: bool,
}

impl Publisher {
    /// Creates a publisher for `topic`, whose field is decomposed by
    /// `dad`; `my_rank`/`nranks` locate this rank in the publishing
    /// cohort.
    pub fn new(topic: &str, dad: Dad, my_rank: usize, nranks: usize) -> Self {
        assert!(my_rank < nranks);
        Publisher { topic: topic.to_string(), dad, my_rank, committer: my_rank + 1 == nranks }
    }

    /// Publishes this rank's portion. Call on every cohort rank each step;
    /// the broker fans out to subscribers once the commit (from the
    /// highest rank) arrives. The cohort must publish in rank order per
    /// step only in the sense that the committer publishes *after* its own
    /// data is sent — which this method guarantees locally; cross-rank
    /// ordering is handled by a preceding barrier in the caller when the
    /// field must be globally consistent per version.
    pub fn publish(&self, ic: &InterComm, local: &LocalArray<f64>) -> Result<()> {
        for i in 0..local.num_patches() {
            let (region, buf) = local.patch(i);
            let last_patch = i + 1 == local.num_patches();
            ic.send(
                0,
                PUB_TAG,
                ToBroker::Publish {
                    topic: self.topic.clone(),
                    extents: self.dad.extents().dims().to_vec(),
                    lo: region.lo().to_vec(),
                    hi: region.hi().to_vec(),
                    values: buf.to_vec(),
                    commit: self.committer && last_patch,
                },
            )?;
        }
        Ok(())
    }

    /// The topic name.
    pub fn topic(&self) -> &str {
        &self.topic
    }

    /// Whether this rank carries the commit flag.
    pub fn is_committer(&self) -> bool {
        self.committer
    }

    /// This rank's index in the cohort.
    pub fn rank(&self) -> usize {
        self.my_rank
    }
}

/// A delivered update.
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    /// Topic the update belongs to.
    pub topic: String,
    /// The broker's version counter at commit time.
    pub version: u64,
    /// The region this subscriber asked for.
    pub region: Region,
    /// Transformed values, row-major in `region`.
    pub values: Vec<f64>,
}

/// One subscriber rank.
pub struct Subscriber;

impl Subscriber {
    /// Subscribes this rank to `region` of `topic`, with an in-flight
    /// `transform`. Returns the topic's current version (0 = nothing
    /// retained yet); if > 0, a retained [`Update`] is already on its way.
    pub fn subscribe(
        ic: &InterComm,
        topic: &str,
        region: &Region,
        transform: Transform,
    ) -> Result<u64> {
        ic.send(
            0,
            PUB_TAG,
            ToBroker::Subscribe {
                topic: topic.to_string(),
                lo: region.lo().to_vec(),
                hi: region.hi().to_vec(),
                scale: transform.scale,
                offset: transform.offset,
            },
        )?;
        ic.recv(0, SUB_TAG)
    }

    /// Removes this rank's subscription; in-flight updates may still be
    /// queued and should be drained or ignored by version.
    pub fn unsubscribe(ic: &InterComm, topic: &str) -> Result<()> {
        ic.send(0, PUB_TAG, ToBroker::Unsubscribe { topic: topic.to_string() })?;
        let _: u64 = ic.recv(0, SUB_TAG)?;
        Ok(())
    }

    /// Blocks for the next update pushed to this rank.
    pub fn next_update(ic: &InterComm) -> Result<Update> {
        let m: UpdateMsg = ic.recv(0, UPD_TAG)?;
        Ok(Update {
            topic: m.topic,
            version: m.version,
            region: Region::new(m.lo, m.hi),
            values: m.values,
        })
    }

    /// Non-blocking update poll.
    pub fn try_update(ic: &InterComm) -> Result<Option<Update>> {
        Ok(ic.try_recv::<UpdateMsg>(0, UPD_TAG)?.map(|(m, _)| Update {
            topic: m.topic,
            version: m.version,
            region: Region::new(m.lo, m.hi),
            values: m.values,
        }))
    }
}

/// Administrative shutdown of the broker.
pub fn shutdown_broker(ic: &InterComm) -> Result<()> {
    ic.send(0, PUB_TAG, ToBroker::Shutdown)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::run_broker;
    use mxn_dad::Extents;
    use mxn_runtime::Universe;

    /// Clients: ranks 0-1 publish (2-rank cohort), rank 2 subscribes, rank
    /// 3 joins late and leaves early. Broker: the second program.
    #[test]
    fn dynamic_pubsub_with_inflight_transform() {
        Universe::run(&[4, 1], |_, ctx| {
            if ctx.program == 1 {
                let stats = run_broker(ctx.intercomm(0)).unwrap();
                assert_eq!(stats.commits, 3);
                assert_eq!(stats.subscriptions, 2);
                assert_eq!(stats.unsubscribes, 1);
                return;
            }
            let ic = ctx.intercomm(1);
            let rank = ctx.comm.rank();
            let dad = Dad::block(Extents::new([8]), &[2]).unwrap();
            match rank {
                0 | 1 => {
                    // Publishing cohort: field value = step * 100 + index.
                    let publisher = Publisher::new("pressure", dad.clone(), rank, 2);
                    assert_eq!(publisher.is_committer(), rank == 1);
                    // Wait for the early subscriber to be registered so the
                    // version sequence below is deterministic.
                    if rank == 0 {
                        ctx.comm.recv::<()>(2, 44).unwrap();
                    }
                    for step in 1..=3u64 {
                        let local = LocalArray::from_fn(&dad, rank, |idx| {
                            step as f64 * 100.0 + idx[0] as f64
                        });
                        // Strict alternation between the two publisher
                        // ranks so every committed version is consistent:
                        // rank 0 publishes, hands the token to rank 1 (the
                        // committer), and waits for it back before the
                        // next step.
                        if rank == 0 {
                            publisher.publish(ic, &local).unwrap();
                            ctx.comm.send(1, 42, ()).unwrap();
                            ctx.comm.recv::<()>(1, 45).unwrap();
                        } else {
                            ctx.comm.recv::<()>(0, 42).unwrap();
                            publisher.publish(ic, &local).unwrap();
                            ctx.comm.send(0, 45, ()).unwrap();
                        }
                    }
                    // Signal subscribers that publishing is done.
                    if rank == 0 {
                        ctx.comm.send(2, 43, ()).unwrap();
                        ctx.comm.send(3, 43, ()).unwrap();
                    }
                }
                2 => {
                    // Early subscriber, with a Pa→hPa-style transform.
                    let region = Region::new([2], [6]);
                    let v0 = Subscriber::subscribe(
                        ic,
                        "pressure",
                        &region,
                        Transform { scale: 0.01, offset: 0.0 },
                    )
                    .unwrap();
                    assert_eq!(v0, 0, "nothing retained yet");
                    // Release the publishers.
                    ctx.comm.send(0, 44, ()).unwrap();
                    // Receives one update per commit.
                    for step in 1..=3u64 {
                        let u = Subscriber::next_update(ic).unwrap();
                        assert_eq!(u.version, step);
                        assert_eq!(u.region, region);
                        for (k, &v) in u.values.iter().enumerate() {
                            let idx = 2 + k;
                            let raw = step as f64 * 100.0 + idx as f64;
                            assert!((v - raw * 0.01).abs() < 1e-12);
                        }
                    }
                    ctx.comm.recv::<()>(0, 43).unwrap();
                }
                _ => {
                    // Late joiner: waits until publishing finished, then
                    // subscribes and immediately receives the retained
                    // version 3.
                    ctx.comm.recv::<()>(0, 43).unwrap();
                    let region = Region::new([0], [8]);
                    let v = Subscriber::subscribe(ic, "pressure", &region, Transform::identity())
                        .unwrap();
                    assert_eq!(v, 3);
                    let u = Subscriber::next_update(ic).unwrap();
                    assert_eq!(u.version, 3);
                    assert_eq!(u.values[7], 307.0);
                    // Departure: unsubscribe, then tell the world we're done.
                    Subscriber::unsubscribe(ic, "pressure").unwrap();
                    // Shut the broker down (admin role).
                    shutdown_broker(ic).unwrap();
                }
            }
        });
    }

    #[test]
    fn publisher_departure_keeps_topic_alive() {
        Universe::run(&[2, 1], |_, ctx| {
            if ctx.program == 1 {
                run_broker(ctx.intercomm(0)).unwrap();
                return;
            }
            let ic = ctx.intercomm(1);
            let dad = Dad::block(Extents::new([4]), &[1]).unwrap();
            if ctx.comm.rank() == 0 {
                // A short-lived publisher: one commit, then it "departs".
                let p = Publisher::new("t", dad.clone(), 0, 1);
                let local = LocalArray::from_fn(&dad, 0, |idx| idx[0] as f64 + 1.0);
                p.publish(ic, &local).unwrap();
                ctx.comm.send(1, 0, ()).unwrap();
            } else {
                ctx.comm.recv::<()>(0, 0).unwrap();
                // Subscriber arrives after the publisher is long gone; the
                // retained message still serves it.
                let region = Region::new([0], [4]);
                let v = Subscriber::subscribe(ic, "t", &region, Transform::identity()).unwrap();
                assert_eq!(v, 1);
                let u = Subscriber::next_update(ic).unwrap();
                assert_eq!(u.values, vec![1.0, 2.0, 3.0, 4.0]);
                shutdown_broker(ic).unwrap();
            }
        });
    }

    #[test]
    fn resubscription_replaces_region() {
        Universe::run(&[1, 1], |_, ctx| {
            if ctx.program == 1 {
                let stats = run_broker(ctx.intercomm(0)).unwrap();
                // Two subscriptions from the same rank → one active.
                assert_eq!(stats.subscriptions, 2);
                return;
            }
            let ic = ctx.intercomm(1);
            let dad = Dad::block(Extents::new([6]), &[1]).unwrap();
            let p = Publisher::new("x", dad.clone(), 0, 1);
            Subscriber::subscribe(ic, "x", &Region::new([0], [2]), Transform::identity()).unwrap();
            // Replace with a different region before any publish.
            Subscriber::subscribe(ic, "x", &Region::new([4], [6]), Transform::identity()).unwrap();
            let local = LocalArray::from_fn(&dad, 0, |idx| idx[0] as f64);
            p.publish(ic, &local).unwrap();
            let u = Subscriber::next_update(ic).unwrap();
            assert_eq!(u.region, Region::new([4], [6]));
            assert_eq!(u.values, vec![4.0, 5.0]);
            // Exactly one update (the old region did not also fire).
            assert!(Subscriber::try_update(ic).unwrap().is_none());
            shutdown_broker(ic).unwrap();
        });
    }
}
