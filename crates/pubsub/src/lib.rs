//! # mxn-pubsub — XChangemxn-style publish/subscribe coupling
//!
//! The related-work system of the paper's §5: "XChangemxn is a middleware
//! infrastructure for coupling components in distributed applications.
//! XChangemxn uses the publish/subscribe paradigm to link interacting
//! components, and deal[s] specifically with **dynamic behaviors**, such
//! as dynamic arrivals and departures of components and the
//! **transformation of data 'in-flight'** to match end point
//! requirements."
//!
//! Architecture: a broker rank mediates named *topics*. Publisher cohorts
//! push their per-rank patches of a field; the broker retains the
//! assembled latest version. Subscribers register the sub-regions they
//! want plus an in-flight affine transformation; every committed publish
//! fans transformed region data out to the *current* subscriber set —
//! which may change at any time, with no publisher awareness. A late
//! subscriber immediately receives the retained version, so components
//! can arrive and depart freely.

pub mod broker;
pub mod client;

pub use broker::{run_broker, BrokerStats};
pub use client::{shutdown_broker, Publisher, Subscriber, Transform, Update};

use mxn_runtime::MsgSize;

pub(crate) const PUB_TAG: i32 = 0x5842; // "XB"
pub(crate) const SUB_TAG: i32 = 0x5843;
pub(crate) const UPD_TAG: i32 = 0x5844;

/// Wire messages understood by the broker.
pub(crate) enum ToBroker {
    /// One publisher rank's patch of a topic's field.
    Publish {
        topic: String,
        /// Global extents of the topic's field (all chunks must agree).
        extents: Vec<usize>,
        /// Row-major region `[lo, hi)` this chunk covers.
        lo: Vec<usize>,
        hi: Vec<usize>,
        values: Vec<f64>,
        /// The last chunk of a collective publish carries `commit = true`
        /// and triggers fan-out.
        commit: bool,
    },
    /// Register interest in a region of a topic, with a transformation.
    Subscribe { topic: String, lo: Vec<usize>, hi: Vec<usize>, scale: f64, offset: f64 },
    /// Remove this rank's subscription to a topic.
    Unsubscribe { topic: String },
    /// Stop the broker (administrative).
    Shutdown,
}

impl MsgSize for ToBroker {
    fn msg_size(&self) -> usize {
        match self {
            ToBroker::Publish { topic, extents, lo, hi, values, .. } => {
                topic.len() + (extents.len() + lo.len() + hi.len()) * 8 + values.len() * 8 + 1
            }
            ToBroker::Subscribe { topic, lo, hi, .. } => {
                topic.len() + (lo.len() + hi.len()) * 8 + 16
            }
            ToBroker::Unsubscribe { topic } => topic.len(),
            ToBroker::Shutdown => 1,
        }
    }
}

/// Broker → subscriber: one transformed region update.
pub(crate) struct UpdateMsg {
    pub topic: String,
    pub version: u64,
    pub lo: Vec<usize>,
    pub hi: Vec<usize>,
    pub values: Vec<f64>,
}

impl MsgSize for UpdateMsg {
    fn msg_size(&self) -> usize {
        self.topic.len() + 8 + (self.lo.len() + self.hi.len()) * 8 + self.values.len() * 8
    }
}
