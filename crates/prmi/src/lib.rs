//! # mxn-prmi — parallel remote method invocation semantics
//!
//! The PRMI model of the paper's §2.4 and §4.2 (SciRun2), over the
//! distributed-framework RMI substrate of `mxn-framework`:
//!
//! * [`independent`] — one-to-one invocations with serial semantics
//!   (Damevski's non-collective mode).
//! * [`collective`] — all-to-all invocations for any M×N pairing, with
//!   *ghost invocations* (M < N) and *ghost return values* (M > N), simple
//!   arguments with optional cross-caller consistency checks, and one-way
//!   methods.
//! * [`parallel_args`] — parallel (distributed-array) arguments and return
//!   values, redistributed by communication schedule as part of the call;
//!   the callee declares its expected layouts *before* calls arrive,
//!   resolving §2.4's callee-side layout problem.
//! * [`subset`] — subset process participation, invocation-order
//!   guarantees, and the Figure 5 synchronization problem: eager delivery
//!   reproduces the deadlock (detected by timeout); barrier-delayed
//!   delivery (the DCA rule) prevents it.

pub mod collective;
pub mod error;
pub mod independent;
pub mod parallel_args;
pub mod subset;

pub use collective::{
    collective_serve, collective_serve_batched, collective_serve_recovering, providers_of,
    respondents_of, CollBatch, CollBatchResult, CollReq, CollResp, CollectiveEndpoint,
    CollectiveStats,
};
pub use error::{PrmiError, Result};
pub use independent::{serve_independent, IndependentPort};
pub use parallel_args::{parallel_serve, ParallelEndpoint, ParallelPortSpec, ParallelService};
pub use subset::{
    subset_call, subset_call_timeout, subset_serve, subset_shutdown, DeliveryPolicy,
    SubsetServeOutcome, SubsetShare,
};
