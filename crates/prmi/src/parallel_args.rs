//! Parallel (distributed-array) arguments and return values.
//!
//! "A parallel argument represents a data array or structure that is
//! decomposed among a set of parallel component processes. Such parallel
//! argument values must be gathered and transferred, and possibly
//! redistributed according to the corresponding M×N layout" (paper §2.4).
//!
//! A call with a parallel argument is a collective call (see
//! [`crate::collective`]) whose envelope is followed by a schedule-driven
//! redistribution of the array on a per-call tag. The callee-side layout
//! problem ("the application does not have the opportunity to set the
//! layout prior to the call") is solved the first of the two ways the paper
//! describes: the provider specifies the expected layout **before** the
//! call, via [`ParallelPortSpec`] registered with the serve loop.

use mxn_dad::{Dad, LocalArray};
use mxn_framework::{AnyPayload, MethodNotFound};
use mxn_runtime::{InterComm, MsgSize};
use mxn_schedule::RegionSchedule;

use crate::collective::{
    providers_of, respondents_of, CollReq, CollResp, COLL_REQ_TAG, COLL_RESP_TAG, METHOD_SHUTDOWN,
};
use crate::error::{PrmiError, Result};

const ARRAY_TAG_BASE: i32 = 0x5000;

fn array_tag(call_seq: u64) -> i32 {
    ARRAY_TAG_BASE + (call_seq % 0x4000) as i32
}

/// The callee's declared layouts for one parallel method: the input array
/// layout it expects and (optionally) the output array layout it returns.
pub struct ParallelPortSpec {
    /// Layout the provider component wants input data delivered in.
    pub input: Dad,
    /// Layout of the provider's parallel return value, if the method
    /// returns one.
    pub output: Option<Dad>,
}

/// A service method over parallel data: receives its local portion of the
/// redistributed input and produces its local portion of the output.
pub trait ParallelService: Send + Sync {
    /// The layouts this provider expects, per method id. `None` means the
    /// method id is not implemented: the serve loop NACKs the callers with
    /// a typed [`MethodNotFound`] (without touching the array plane) and
    /// never calls [`ParallelService::execute`] for it.
    fn spec(&self, method: u32) -> Option<ParallelPortSpec>;

    /// Executes the method on this rank's portion. `input` is this rank's
    /// patch set of the redistributed argument. Returns `(simple_result,
    /// parallel_result)`; the latter must match `spec(method).output`.
    fn execute(
        &self,
        method: u32,
        simple_arg: AnyPayload,
        input: LocalArray<f64>,
    ) -> (AnyPayload, Option<LocalArray<f64>>);
}

/// Caller-side endpoint for collective calls carrying a parallel argument.
pub struct ParallelEndpoint {
    call_seq: u64,
}

impl Default for ParallelEndpoint {
    fn default() -> Self {
        Self::new()
    }
}

impl ParallelEndpoint {
    /// Creates an endpoint; all caller ranks must make identical call
    /// sequences.
    pub fn new() -> Self {
        ParallelEndpoint { call_seq: 0 }
    }

    /// Collective call with a parallel input argument; returns the simple
    /// result. `caller_dad` describes the callers' decomposition of the
    /// array, `callee_dad` the layout the provider declared for this
    /// method (both sides must agree on it out of band or via the port
    /// specification).
    #[allow(clippy::too_many_arguments)]
    pub fn call_with_array<A, R>(
        &mut self,
        ic: &InterComm,
        method: u32,
        simple_arg: A,
        caller_dad: &Dad,
        callee_dad: &Dad,
        local: &LocalArray<f64>,
    ) -> Result<R>
    where
        A: Send + Sync + MsgSize + 'static + Clone,
        R: 'static,
    {
        let seq = self.begin_call(ic, method, simple_arg)?;
        // Redistribute the parallel argument (all caller ranks take part,
        // independent of the invocation-envelope mapping).
        let sched = RegionSchedule::for_sender(caller_dad, callee_dad, ic.local_rank());
        sched.execute_send(ic, local, array_tag(seq)).map_err(PrmiError::Runtime)?;
        // Await the simple return value.
        let responder = ic.local_rank() % ic.remote_size();
        let resp: CollResp = ic.recv(responder, COLL_RESP_TAG).map_err(PrmiError::Runtime)?;
        if resp.result.is::<MethodNotFound>() {
            return Err(PrmiError::MethodNotFound { method });
        }
        resp.result.downcast::<R>().map_err(PrmiError::from)
    }

    /// Collective call with parallel input **and** parallel output: the
    /// provider's parallel return value is redistributed back into
    /// `result_dad`/`result_local` (pre-allocated by the caller).
    #[allow(clippy::too_many_arguments)]
    pub fn call_with_array_ret<A, R>(
        &mut self,
        ic: &InterComm,
        method: u32,
        simple_arg: A,
        caller_dad: &Dad,
        callee_dad: &Dad,
        local: &LocalArray<f64>,
        callee_out_dad: &Dad,
        result_dad: &Dad,
        result_local: &mut LocalArray<f64>,
    ) -> Result<R>
    where
        A: Send + Sync + MsgSize + 'static + Clone,
        R: 'static,
    {
        let seq = self.begin_call(ic, method, simple_arg)?;
        let sched = RegionSchedule::for_sender(caller_dad, callee_dad, ic.local_rank());
        sched.execute_send(ic, local, array_tag(seq)).map_err(PrmiError::Runtime)?;
        // Await the simple return *first*: a provider that NACKs an unknown
        // method sends no parallel return, so blocking on the array plane
        // before seeing the response would hang forever. Messages buffer
        // eagerly in the mailbox, so taking the response before draining
        // the (earlier-sent) array patches loses nothing.
        let responder = ic.local_rank() % ic.remote_size();
        let resp: CollResp = ic.recv(responder, COLL_RESP_TAG).map_err(PrmiError::Runtime)?;
        if resp.result.is::<MethodNotFound>() {
            return Err(PrmiError::MethodNotFound { method });
        }
        // Receive the redistributed parallel return.
        let rsched = RegionSchedule::for_receiver(callee_out_dad, result_dad, ic.local_rank());
        rsched.execute_recv(ic, result_local, array_tag(seq) + 1).map_err(PrmiError::Runtime)?;
        resp.result.downcast::<R>().map_err(PrmiError::from)
    }

    fn begin_call<A>(&mut self, ic: &InterComm, method: u32, simple_arg: A) -> Result<u64>
    where
        A: Send + Sync + MsgSize + 'static + Clone,
    {
        assert_ne!(method, METHOD_SHUTDOWN);
        let (m, n) = (ic.local_size(), ic.remote_size());
        let k = ic.local_rank();
        let seq = self.call_seq;
        self.call_seq += 1;
        // One shared multicast envelope covers every ghost invocation.
        ic.multicast(
            &providers_of(k, m, n),
            COLL_REQ_TAG,
            CollReq {
                method,
                call_seq: seq,
                epoch: 0,
                num_callers: m,
                oneway: false,
                arg: AnyPayload::replicable(simple_arg),
            },
        )
        .map_err(PrmiError::Runtime)?;
        Ok(seq)
    }

    /// Collective shutdown of a parallel-service loop.
    pub fn shutdown(&mut self, ic: &InterComm) -> Result<()> {
        let (m, n) = (ic.local_size(), ic.remote_size());
        let k = ic.local_rank();
        ic.multicast(
            &providers_of(k, m, n),
            COLL_REQ_TAG,
            CollReq {
                method: METHOD_SHUTDOWN,
                call_seq: self.call_seq,
                epoch: 0,
                num_callers: m,
                oneway: true,
                arg: AnyPayload::replicable(()),
            },
        )
        .map_err(PrmiError::Runtime)?;
        Ok(())
    }
}

/// Provider-side serve loop for parallel-argument methods. The provider
/// declares layouts *before* calls arrive (via [`ParallelService::spec`]),
/// resolving the callee-side layout problem of §2.4. `caller_dad` is the
/// callers' input decomposition (agreed in the port contract).
pub fn parallel_serve(
    ic: &InterComm,
    caller_dad: &Dad,
    caller_result_dad: Option<&Dad>,
    service: &dyn ParallelService,
) -> Result<u64> {
    let (n, j) = (ic.local_size(), ic.local_rank());
    let owner = j % ic.remote_size();
    let mut calls = 0u64;
    loop {
        let req: CollReq = ic.recv(owner, COLL_REQ_TAG).map_err(PrmiError::Runtime)?;
        if req.method == METHOD_SHUTDOWN {
            return Ok(calls);
        }
        let m = req.num_callers;
        let Some(spec) = service.spec(req.method) else {
            // Unknown method: NACK every respondent with a typed payload
            // and keep serving. The callers' already-sent array patches
            // stay unmatched in the mailbox — they are never dispatched,
            // and per-call tags keep them from colliding with later calls.
            let respondents = respondents_of(j, m, n);
            for &k in &respondents {
                ic.send(
                    k,
                    COLL_RESP_TAG,
                    CollResp {
                        call_seq: req.call_seq,
                        result: AnyPayload::replicable(MethodNotFound { method: req.method }),
                    },
                )
                .map_err(PrmiError::Runtime)?;
            }
            continue;
        };
        // Receive this rank's portion of the redistributed input.
        let mut input = LocalArray::allocate(&spec.input, j);
        let rsched = RegionSchedule::for_receiver(caller_dad, &spec.input, j);
        rsched.execute_recv(ic, &mut input, array_tag(req.call_seq)).map_err(PrmiError::Runtime)?;
        let (simple, parallel) = service.execute(req.method, req.arg, input);
        calls += 1;
        // Send back the parallel return, if declared.
        if let (Some(out_dad), Some(out_local), Some(res_dad)) =
            (spec.output.as_ref(), parallel.as_ref(), caller_result_dad)
        {
            let ssched = RegionSchedule::for_sender(out_dad, res_dad, j);
            ssched
                .execute_send(ic, out_local, array_tag(req.call_seq) + 1)
                .map_err(PrmiError::Runtime)?;
        }
        // Simple return with ghost replication.
        let respondents = respondents_of(j, m, n);
        match respondents.len() {
            0 => {}
            1 => {
                ic.send(
                    respondents[0],
                    COLL_RESP_TAG,
                    CollResp { call_seq: req.call_seq, result: simple },
                )
                .map_err(PrmiError::Runtime)?;
            }
            _ => {
                let rep = simple.take_replicator().ok_or_else(|| PrmiError::Protocol {
                    detail: "ghost returns need AnyPayload::replicable".into(),
                })?;
                for &k in &respondents {
                    ic.send(k, COLL_RESP_TAG, CollResp { call_seq: req.call_seq, result: rep() })
                        .map_err(PrmiError::Runtime)?;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mxn_dad::Extents;
    use mxn_runtime::Universe;

    /// A parallel "norm" service: method 0 computes the global sum of the
    /// input array (via its own local comm) and returns it; method 1 also
    /// returns the array scaled by the simple argument.
    struct NormService {
        input_dad: Dad,
        output_dad: Dad,
        partial_sums: std::sync::Arc<parking_lot::Mutex<Vec<f64>>>,
    }

    impl ParallelService for NormService {
        fn spec(&self, method: u32) -> Option<ParallelPortSpec> {
            (method <= 1).then(|| ParallelPortSpec {
                input: self.input_dad.clone(),
                output: (method == 1).then(|| self.output_dad.clone()),
            })
        }

        fn execute(
            &self,
            method: u32,
            simple_arg: AnyPayload,
            input: LocalArray<f64>,
        ) -> (AnyPayload, Option<LocalArray<f64>>) {
            let scale: f64 = simple_arg.downcast().unwrap();
            let local_sum: f64 = input.iter().map(|(_, &v)| v).sum();
            self.partial_sums.lock().push(local_sum);
            match method {
                0 => (AnyPayload::replicable(local_sum), None),
                1 => {
                    let mut out = input;
                    for i in 0..out.num_patches() {
                        let (_, buf) = out.patch_mut(i);
                        for v in buf {
                            *v *= scale;
                        }
                    }
                    (AnyPayload::replicable(local_sum), Some(out))
                }
                _ => unreachable!("parallel_serve gates unknown methods via spec()"),
            }
        }
    }

    #[test]
    fn parallel_argument_is_redistributed_into_declared_layout() {
        // 3 callers hold row blocks; 2 providers declared column blocks.
        Universe::run(&[3, 2], |_, ctx| {
            let e = Extents::new([6, 6]);
            let caller_dad = Dad::block(e.clone(), &[3, 1]).unwrap();
            let callee_dad = Dad::block(e, &[1, 2]).unwrap();
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let mut ep = ParallelEndpoint::new();
                let local = LocalArray::from_fn(&caller_dad, ctx.comm.rank(), |idx| {
                    (idx[0] * 6 + idx[1]) as f64
                });
                // Provider's reply is its LOCAL partial sum; with ghost
                // returns, caller k hears from provider k % 2.
                let r: f64 =
                    ep.call_with_array(ic, 0, 1.0f64, &caller_dad, &callee_dad, &local).unwrap();
                // Column block sums of 0..35 grid: left cols {0,1,2} sum,
                // right cols {3,4,5} sum.
                let left: f64 =
                    (0..6).flat_map(|i| (0..3).map(move |j| i * 6 + j)).sum::<usize>() as f64;
                let right: f64 =
                    (0..6).flat_map(|i| (3..6).map(move |j| i * 6 + j)).sum::<usize>() as f64;
                let expect = if ctx.comm.rank() % 2 == 0 { left } else { right };
                assert_eq!(r, expect);
                ep.shutdown(ic).unwrap();
            } else {
                let svc = NormService {
                    input_dad: callee_dad.clone(),
                    output_dad: callee_dad.clone(),
                    partial_sums: Default::default(),
                };
                let calls = parallel_serve(ctx.intercomm(0), &caller_dad, None, &svc).unwrap();
                assert_eq!(calls, 1);
            }
        });
    }

    #[test]
    fn parallel_return_value_comes_back_redistributed() {
        Universe::run(&[2, 2], |_, ctx| {
            let e = Extents::new([4, 4]);
            let caller_dad = Dad::block(e.clone(), &[2, 1]).unwrap();
            let callee_dad = Dad::block(e, &[1, 2]).unwrap();
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let mut ep = ParallelEndpoint::new();
                let local = LocalArray::from_fn(&caller_dad, ctx.comm.rank(), |idx| {
                    (idx[0] * 4 + idx[1]) as f64
                });
                let mut result: LocalArray<f64> =
                    LocalArray::allocate(&caller_dad, ctx.comm.rank());
                let _sum: f64 = ep
                    .call_with_array_ret(
                        ic,
                        1,
                        10.0f64,
                        &caller_dad,
                        &callee_dad,
                        &local,
                        &callee_dad,
                        &caller_dad,
                        &mut result,
                    )
                    .unwrap();
                // The provider scaled by 10 and the result came back in the
                // caller's row-block layout.
                for (idx, &v) in result.iter() {
                    assert_eq!(v, (idx[0] * 4 + idx[1]) as f64 * 10.0, "at {idx:?}");
                }
                ep.shutdown(ic).unwrap();
            } else {
                let svc = NormService {
                    input_dad: callee_dad.clone(),
                    output_dad: callee_dad.clone(),
                    partial_sums: Default::default(),
                };
                parallel_serve(ctx.intercomm(0), &caller_dad, Some(&caller_dad), &svc).unwrap();
            }
        });
    }

    #[test]
    fn unknown_parallel_method_nacks_without_touching_array_plane() {
        Universe::run(&[2, 2], |_, ctx| {
            let e = Extents::new([4, 4]);
            let caller_dad = Dad::block(e.clone(), &[2, 1]).unwrap();
            let callee_dad = Dad::block(e, &[1, 2]).unwrap();
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let mut ep = ParallelEndpoint::new();
                let local = LocalArray::from_fn(&caller_dad, ctx.comm.rank(), |idx| {
                    (idx[0] * 4 + idx[1]) as f64
                });
                // Unknown method with a declared parallel return: the call
                // must fail with a typed error, not hang on the array plane.
                let mut result: LocalArray<f64> =
                    LocalArray::allocate(&caller_dad, ctx.comm.rank());
                let err = ep
                    .call_with_array_ret::<f64, f64>(
                        ic,
                        77,
                        1.0,
                        &caller_dad,
                        &callee_dad,
                        &local,
                        &callee_dad,
                        &caller_dad,
                        &mut result,
                    )
                    .unwrap_err();
                assert!(matches!(err, PrmiError::MethodNotFound { method: 77 }), "{err}");
                // Input-only variant NACKs too, and the service survives.
                let err = ep
                    .call_with_array::<f64, f64>(ic, 8, 1.0, &caller_dad, &callee_dad, &local)
                    .unwrap_err();
                assert!(matches!(err, PrmiError::MethodNotFound { method: 8 }), "{err}");
                let sum: f64 =
                    ep.call_with_array(ic, 0, 1.0f64, &caller_dad, &callee_dad, &local).unwrap();
                assert!(sum.is_finite());
                ep.shutdown(ic).unwrap();
            } else {
                let svc = NormService {
                    input_dad: callee_dad.clone(),
                    output_dad: callee_dad.clone(),
                    partial_sums: Default::default(),
                };
                let calls =
                    parallel_serve(ctx.intercomm(0), &caller_dad, Some(&caller_dad), &svc).unwrap();
                assert_eq!(calls, 1, "NACKed requests are not dispatched");
            }
        });
    }

    #[test]
    fn repeated_parallel_calls_stay_in_sequence() {
        Universe::run(&[2, 1], |_, ctx| {
            let e = Extents::new([4]);
            let caller_dad = Dad::block(e.clone(), &[2]).unwrap();
            let callee_dad = Dad::block(e, &[1]).unwrap();
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let mut ep = ParallelEndpoint::new();
                for step in 0..5 {
                    let local = LocalArray::from_fn(&caller_dad, ctx.comm.rank(), |idx| {
                        (idx[0] + step) as f64
                    });
                    let sum: f64 = ep
                        .call_with_array(ic, 0, 1.0f64, &caller_dad, &callee_dad, &local)
                        .unwrap();
                    let expect: f64 = (0..4).map(|i| (i + step) as f64).sum();
                    assert_eq!(sum, expect, "step {step}");
                }
                ep.shutdown(ic).unwrap();
            } else {
                let svc = NormService {
                    input_dad: callee_dad.clone(),
                    output_dad: callee_dad.clone(),
                    partial_sums: Default::default(),
                };
                let calls = parallel_serve(ctx.intercomm(0), &caller_dad, None, &svc).unwrap();
                assert_eq!(calls, 5);
            }
        });
    }
}
