//! Collective (all-to-all) parallel remote method invocation.
//!
//! SciRun2's PRMI model (paper §4.2): "the methods of a parallel component
//! can be specified to be independent (one-to-one) or collective
//! (all-to-all) … Collective calls are capable of supporting differing
//! numbers of processes on the uses and provides side of the call by
//! creating ghost invocations and/or return values. The user of a
//! collective method must guarantee that all participating caller processes
//! make the invocation. The system guarantees that all callee processes
//! receive the call, and that all callers will receive a return value."
//!
//! ## The M↔N mapping
//!
//! With M callers and N providers:
//! * provider `j` executes the request sent by caller `j % M` — when
//!   `M < N`, callers replicate their request to several providers
//!   (*ghost invocations*);
//! * caller `k` receives its return value from provider `k % N` — when
//!   `M > N`, providers send their result to several callers (*ghost
//!   return values*).
//!
//! Every provider executes exactly once per collective call, and every
//! caller gets exactly one return value, for any M and N.

use std::time::{Duration, Instant};

use mxn_framework::{
    AnyPayload, BatchService, CallPolicy, Dispatch, MethodNotFound, RemoteService,
};
use mxn_runtime::{Comm, InterComm, MsgSize, RuntimeError};

use crate::error::{PrmiError, Result};

/// Tag carrying collective requests.
pub const COLL_REQ_TAG: i32 = 0x434d; // "CM"
/// Tag carrying collective responses.
pub const COLL_RESP_TAG: i32 = 0x4352; // "CR"
/// Reserved method id: collective shutdown.
pub const METHOD_SHUTDOWN: u32 = u32::MAX;

/// How often a recovering serve loop re-checks participant liveness while
/// blocked waiting for its owner caller's request.
const COLL_LIVENESS_POLL: Duration = Duration::from_millis(25);

/// A collective invocation envelope.
pub struct CollReq {
    /// Method selector.
    pub method: u32,
    /// Per-endpoint collective sequence number (callers stay in lock-step).
    pub call_seq: u64,
    /// Recovery epoch the call was issued under. Every heal (revoke +
    /// shrink to survivors) advances the epoch on both sides in lock-step;
    /// a recovering serve loop fences on it, discarding stragglers from an
    /// aborted pre-heal attempt instead of dispatching them.
    pub epoch: u64,
    /// Number of caller ranks (lets the provider compute ghost returns).
    pub num_callers: usize,
    /// One-way calls produce no responses.
    pub oneway: bool,
    /// The simple argument (must be equal across callers; see
    /// [`CollectiveEndpoint::call_checked`]).
    pub arg: AnyPayload,
}

impl MsgSize for CollReq {
    fn msg_size(&self) -> usize {
        4 + 8 + 8 + 8 + 1 + self.arg.msg_size()
    }
}

impl Clone for CollReq {
    /// Ghost-invocation fan-out clones a request when a shared multicast
    /// envelope must be unwrapped while other receivers still hold it.
    /// Collective requests always carry replicable args (see
    /// [`CollectiveEndpoint`]), so this cannot fail in practice.
    fn clone(&self) -> Self {
        CollReq {
            method: self.method,
            call_seq: self.call_seq,
            epoch: self.epoch,
            num_callers: self.num_callers,
            oneway: self.oneway,
            arg: self.arg.replicate().expect("collective request args are replicable"),
        }
    }
}

/// A collective response envelope.
pub struct CollResp {
    /// Correlates with [`CollReq::call_seq`].
    pub call_seq: u64,
    /// The (replicated) return value.
    pub result: AnyPayload,
}

impl MsgSize for CollResp {
    fn msg_size(&self) -> usize {
        8 + self.result.msg_size()
    }
}

impl Clone for CollResp {
    /// See [`CollReq::clone`]; ghost returns are multicast and must carry a
    /// replicable result (enforced by [`collective_serve`]).
    fn clone(&self) -> Self {
        CollResp {
            call_seq: self.call_seq,
            result: self.result.replicate().expect("ghost return results are replicable"),
        }
    }
}

/// A per-method request batch travelling as **one** [`CollReq`]: the
/// serving plane's shard executors coalesce admitted client calls into
/// these, so a full batch costs one collective invocation — one envelope,
/// one serve-loop wakeup, one reply — instead of one per client call.
///
/// Items are `(request id, marshalled argument)` pairs in admission order.
/// The id is opaque to PRMI (the plane packs a connection/sequence pair
/// into it) and comes back verbatim on the matching
/// [`CollBatchResult`] item, which is how replies are demultiplexed.
pub struct CollBatch {
    /// `(plane-assigned request id, argument)`, in admission order.
    pub items: Vec<(u64, AnyPayload)>,
}

impl MsgSize for CollBatch {
    fn msg_size(&self) -> usize {
        8 + self.items.iter().map(|(_, a)| 8 + a.msg_size()).sum::<usize>()
    }
}

impl Clone for CollBatch {
    /// Ghost-invocation fan-out (N providers > M callers) replicates the
    /// whole batch; requires every item built with
    /// [`AnyPayload::replicable`], like any collective argument.
    fn clone(&self) -> Self {
        CollBatch {
            items: self
                .items
                .iter()
                .map(|(id, a)| (*id, a.replicate().expect("batched args are replicable")))
                .collect(),
        }
    }
}

/// Position-aligned results for one [`CollBatch`]: item `i` answers batch
/// item `i` and carries the same request id. Per-item failures travel as
/// typed payloads ([`MethodNotFound`], `Overloaded`) rather than failing
/// the whole batch.
pub struct CollBatchResult {
    /// `(request id, marshalled result-or-NACK)`, batch order.
    pub items: Vec<(u64, AnyPayload)>,
}

impl MsgSize for CollBatchResult {
    fn msg_size(&self) -> usize {
        8 + self.items.iter().map(|(_, a)| 8 + a.msg_size()).sum::<usize>()
    }
}

impl Clone for CollBatchResult {
    /// Ghost-return fan-out (M callers > N providers) replicates the batch
    /// results; requires the service to build them replicable.
    fn clone(&self) -> Self {
        CollBatchResult {
            items: self
                .items
                .iter()
                .map(|(id, a)| {
                    (*id, a.replicate().expect("ghost-returned batch results are replicable"))
                })
                .collect(),
        }
    }
}

/// Providers that caller `k` must send the request to.
pub fn providers_of(k: usize, m: usize, n: usize) -> Vec<usize> {
    (0..n).filter(|j| j % m == k).collect()
}

/// Callers that provider `j` must send the result to.
pub fn respondents_of(j: usize, m: usize, n: usize) -> Vec<usize> {
    (0..m).filter(|k| k % n == j).collect()
}

/// Caller-side endpoint for collective calls on one remote parallel port.
///
/// The endpoint tracks the connection's *recovery epoch*: after a failed
/// commit vote, [`CollectiveEndpoint::call_recovering`] revokes the
/// intercommunicator, shrinks it to the survivors, and retries the same
/// call sequence on the healed connection. The healed intercommunicator is
/// held inside the endpoint, so later plain calls (and the shutdown)
/// transparently route over it.
pub struct CollectiveEndpoint {
    call_seq: u64,
    epoch: u64,
    healed: Option<InterComm>,
}

impl Default for CollectiveEndpoint {
    fn default() -> Self {
        Self::new()
    }
}

impl CollectiveEndpoint {
    /// Creates an endpoint; every caller rank must create one and make the
    /// same sequence of calls on it.
    pub fn new() -> Self {
        CollectiveEndpoint { call_seq: 0, epoch: 0, healed: None }
    }

    /// The intercommunicator calls currently travel over: `ic` until the
    /// first heal, the latest survivor intercommunicator afterwards.
    pub fn current<'a>(&'a self, ic: &'a InterComm) -> &'a InterComm {
        self.healed.as_ref().unwrap_or(ic)
    }

    /// The recovery epoch (number of heals performed on this endpoint).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    fn send_requests<A: Send + Sync + MsgSize + 'static + Clone>(
        &mut self,
        ic: &InterComm,
        method: u32,
        arg: A,
        oneway: bool,
    ) -> Result<u64> {
        let seq = self.call_seq;
        self.call_seq += 1;
        let epoch = self.epoch;
        let cur = self.current(ic);
        Self::multicast_request(cur, method, seq, epoch, oneway, arg)?;
        Ok(seq)
    }

    fn multicast_request<A: Send + Sync + MsgSize + 'static + Clone>(
        ic: &InterComm,
        method: u32,
        seq: u64,
        epoch: u64,
        oneway: bool,
        arg: A,
    ) -> Result<()> {
        let (m, n) = (ic.local_size(), ic.remote_size());
        let k = ic.local_rank();
        // Ghost invocations (N > M) fan one request out to several
        // providers: a single shared multicast envelope, so the argument is
        // marshalled once however many providers this caller owns.
        let providers = providers_of(k, m, n);
        ic.multicast(
            &providers,
            COLL_REQ_TAG,
            CollReq {
                method,
                call_seq: seq,
                epoch,
                num_callers: m,
                oneway,
                arg: AnyPayload::replicable(arg),
            },
        )?;
        Ok(())
    }

    /// Collective call: every caller rank invokes this with (by convention)
    /// the same `arg`; every rank receives the same return value.
    pub fn call<A, R>(&mut self, ic: &InterComm, method: u32, arg: A) -> Result<R>
    where
        A: Send + Sync + MsgSize + 'static + Clone,
        R: 'static,
    {
        assert_ne!(method, METHOD_SHUTDOWN, "use CollectiveEndpoint::shutdown");
        let _span = mxn_trace::span(
            mxn_trace::EventId::PrmiCall,
            [method as u64, self.call_seq, ic.remote_size() as u64, 0],
        );
        let seq = self.send_requests(ic, method, arg, false)?;
        let cur = self.current(ic);
        let responder = cur.local_rank() % cur.remote_size();
        let resp: CollResp = cur.recv(responder, COLL_RESP_TAG)?;
        if resp.call_seq != seq {
            return Err(PrmiError::Protocol {
                detail: format!("response seq {} for call {}", resp.call_seq, seq),
            });
        }
        if resp.result.is::<MethodNotFound>() {
            return Err(PrmiError::MethodNotFound { method });
        }
        resp.result.downcast::<R>().map_err(PrmiError::from)
    }

    /// Like [`CollectiveEndpoint::call`], but first verifies the CCA
    /// convention that "a simple argument must have the same actual value
    /// in all the processes" (paper §2.4) by comparing across `local`.
    pub fn call_checked<A, R>(
        &mut self,
        local: &Comm,
        ic: &InterComm,
        method: u32,
        arg: A,
    ) -> Result<R>
    where
        A: Send + Sync + MsgSize + 'static + Clone + PartialEq,
        R: 'static,
    {
        let all = local.allgather(arg.clone())?;
        if all.iter().any(|a| *a != arg) {
            return Err(PrmiError::SimpleArgMismatch { method });
        }
        self.call(ic, method, arg)
    }

    /// Collective call with self-healing failover, paired with
    /// [`collective_serve_recovering`] on the provider side.
    ///
    /// Each attempt ends in a collective commit vote over the
    /// intercommunicator: a caller votes yes only if it holds its return
    /// value and observed no participant death. The vote's outcome is the
    /// same agreed value on every survivor, so either *all* callers accept
    /// their results (and the sequence number advances) or *all* roll the
    /// attempt back, heal the connection — revoke, shrink to the survivor
    /// set, bump the epoch — and retry the *same* sequence number after a
    /// [`CallPolicy`] backoff pause. Providers deduplicate by sequence
    /// number, so a retried call is never executed twice: a provider that
    /// already dispatched it replays the cached result.
    ///
    /// Requires `policy.recover`; without it this degrades to a plain
    /// [`CollectiveEndpoint::call`]. Results must be built with
    /// [`AnyPayload::replicable`] so the provider can cache replays.
    pub fn call_recovering<A, R>(
        &mut self,
        ic: &InterComm,
        method: u32,
        arg: A,
        policy: CallPolicy,
    ) -> Result<R>
    where
        A: Send + Sync + MsgSize + 'static + Clone,
        R: 'static,
    {
        assert_ne!(method, METHOD_SHUTDOWN, "use CollectiveEndpoint::shutdown");
        if !policy.recover {
            return self.call(ic, method, arg);
        }
        let seq = self.call_seq;
        let mut backoff = policy.backoff;
        for attempt in 0..=policy.max_retries {
            let _span = mxn_trace::span(
                mxn_trace::EventId::PrmiCall,
                [method as u64, seq, self.epoch, u64::from(attempt)],
            );
            let next = {
                let cur = self.current(ic);
                let mut got: Option<AnyPayload> = None;
                // A send failure (the provider died mid-multicast) is not
                // fatal: it becomes this caller's 'no' vote below.
                let sent =
                    Self::multicast_request(cur, method, seq, self.epoch, false, arg.clone())
                        .is_ok();
                if sent {
                    let responder = cur.local_rank() % cur.remote_size();
                    let deadline = Instant::now() + policy.deadline;
                    loop {
                        let remaining = deadline.saturating_duration_since(Instant::now());
                        match cur.recv_timeout::<CollResp>(responder, COLL_RESP_TAG, remaining) {
                            Ok(resp) if resp.call_seq == seq => {
                                got = Some(resp.result);
                                break;
                            }
                            // A duplicate replay for an earlier sequence:
                            // keep draining until the deadline.
                            Ok(_) => continue,
                            Err(RuntimeError::Timeout { .. } | RuntimeError::PeerDead { .. }) => {
                                break
                            }
                            Err(RuntimeError::Corrupt { .. }) => continue,
                            Err(e) => return Err(e.into()),
                        }
                    }
                }
                let ok = got.is_some() && cur.any_dead().is_none();
                if cur.agree_all(ok)? {
                    self.call_seq = seq + 1;
                    let result =
                        got.expect("a unanimous commit vote implies every caller holds its result");
                    // A committed NACK: every caller got the same typed
                    // MethodNotFound, the sequence advanced, no heal needed.
                    if result.is::<MethodNotFound>() {
                        return Err(PrmiError::MethodNotFound { method });
                    }
                    return result.downcast::<R>().map_err(PrmiError::from);
                }
                heal_intercomm(cur, self.epoch)?
            };
            self.healed = Some(next);
            self.epoch += 1;
            if attempt < policy.max_retries {
                std::thread::sleep(policy.retry_pause(backoff, attempt));
                backoff = backoff.saturating_mul(2);
            }
        }
        Err(PrmiError::RecoveryExhausted { method, attempts: policy.max_retries + 1 })
    }

    /// Collective **batch** call: ships `items` — `(request id, argument)`
    /// pairs, every argument built with [`AnyPayload::replicable`] — as one
    /// [`CollReq`] carrying a [`CollBatch`], and returns the per-item
    /// results in batch order, each tagged with the id the caller assigned.
    /// Pair with [`collective_serve_batched`] on the provider side.
    ///
    /// This is the serving plane's amortization lever: a shard that has
    /// drained `k` same-method client requests pays one collective
    /// invocation (one envelope each way, one serve-loop wakeup) instead
    /// of `k`. Per-item failures come back as typed payloads
    /// ([`MethodNotFound`]) inside the result items; the call itself only
    /// errors on transport or protocol failures.
    pub fn call_batch(
        &mut self,
        ic: &InterComm,
        method: u32,
        items: Vec<(u64, AnyPayload)>,
    ) -> Result<Vec<(u64, AnyPayload)>> {
        assert_ne!(method, METHOD_SHUTDOWN, "use CollectiveEndpoint::shutdown");
        let batch_len = items.len() as u64;
        let _span = mxn_trace::span(
            mxn_trace::EventId::PrmiCall,
            [method as u64, self.call_seq, ic.remote_size() as u64, batch_len],
        );
        let seq = self.call_seq;
        self.call_seq += 1;
        let epoch = self.epoch;
        let cur = self.current(ic);
        let (m, n) = (cur.local_size(), cur.remote_size());
        let k = cur.local_rank();
        cur.multicast(
            &providers_of(k, m, n),
            COLL_REQ_TAG,
            CollReq {
                method,
                call_seq: seq,
                epoch,
                num_callers: m,
                oneway: false,
                arg: AnyPayload::replicable(CollBatch { items }),
            },
        )?;
        let responder = cur.local_rank() % cur.remote_size();
        let resp: CollResp = cur.recv(responder, COLL_RESP_TAG)?;
        if resp.call_seq != seq {
            return Err(PrmiError::Protocol {
                detail: format!("response seq {} for batch call {}", resp.call_seq, seq),
            });
        }
        if resp.result.is::<MethodNotFound>() {
            return Err(PrmiError::MethodNotFound { method });
        }
        let result: CollBatchResult = resp.result.downcast().map_err(PrmiError::from)?;
        Ok(result.items)
    }

    /// One-way collective call: returns immediately, no response (§2.4).
    pub fn call_oneway<A>(&mut self, ic: &InterComm, method: u32, arg: A) -> Result<()>
    where
        A: Send + Sync + MsgSize + 'static + Clone,
    {
        assert_ne!(method, METHOD_SHUTDOWN, "use CollectiveEndpoint::shutdown");
        let _span = mxn_trace::span(
            mxn_trace::EventId::PrmiCall,
            [method as u64, self.call_seq, ic.remote_size() as u64, 1],
        );
        self.send_requests(ic, method, arg, true)?;
        Ok(())
    }

    /// Collective shutdown: each provider stops after the request from its
    /// owner caller.
    pub fn shutdown(&mut self, ic: &InterComm) -> Result<()> {
        self.send_requests(ic, METHOD_SHUTDOWN, (), true)?;
        Ok(())
    }

    /// Number of collective calls made so far.
    pub fn calls(&self) -> u64 {
        self.call_seq
    }
}

/// Statistics from a provider rank's serve loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CollectiveStats {
    /// Collective invocations executed by this provider rank.
    pub calls: u64,
    /// Of which one-way.
    pub oneway_calls: u64,
    /// Ghost return values sent (beyond the one-per-call minimum).
    pub ghost_returns: u64,
    /// Requests naming an unimplemented method id, answered with a typed
    /// [`MethodNotFound`] NACK instead of crashing the provider.
    pub method_not_found: u64,
}

/// Provider-side serve loop for one rank of the parallel component:
/// executes each collective call once and routes (ghost) return values.
/// Runs until the shutdown call.
pub fn collective_serve(ic: &InterComm, service: &dyn RemoteService) -> Result<CollectiveStats> {
    let (n, j) = (ic.local_size(), ic.local_rank());
    let mut stats = CollectiveStats::default();
    loop {
        // Provider j's requests always come from its owner caller.
        let m_probe: CollReq = ic.recv(ic_owner(ic), COLL_REQ_TAG)?;
        if m_probe.method == METHOD_SHUTDOWN {
            return Ok(stats);
        }
        let m = m_probe.num_callers;
        debug_assert_eq!(ic_owner(ic), j % m, "owner mapping is stable");
        let (result, found) = match service.dispatch(m_probe.method, m_probe.arg) {
            Dispatch::Reply(p) => (p, true),
            Dispatch::MethodNotFound => {
                stats.method_not_found += 1;
                // Replicable so the NACK fans out as ghost returns too.
                (AnyPayload::replicable(MethodNotFound { method: m_probe.method }), false)
            }
        };
        mxn_trace::emit_instant(
            mxn_trace::EventId::PrmiServe,
            [m_probe.method as u64, m_probe.call_seq, m as u64, u64::from(m_probe.oneway)],
        );
        if m_probe.oneway {
            if found {
                stats.calls += 1;
                stats.oneway_calls += 1;
            }
            continue;
        }
        if found {
            stats.calls += 1;
        }
        let respondents = respondents_of(j, m, n);
        stats.ghost_returns += respondents.len().saturating_sub(1) as u64;
        // Payload values cannot be cloned generically; respondents receive
        // bitwise-identical marshalled results via repeated dispatch of a
        // replication-aware send below.
        send_replicated(ic, &respondents, m_probe.call_seq, result)?;
    }
}

/// The caller rank that owns this provider rank's invocations. Requests
/// carry `num_callers`, but the owner is also just `local_rank % M`; since
/// M is fixed per intercomm we read it from the intercomm itself.
fn ic_owner(ic: &InterComm) -> usize {
    ic.local_rank() % ic.remote_size()
}

/// Batch-aware provider-side serve loop, paired with
/// [`CollectiveEndpoint::call_batch`].
///
/// Like [`collective_serve`], but a request whose argument is a
/// [`CollBatch`] is dispatched **once** through
/// [`BatchService::dispatch_batch`] — the whole per-method batch in one
/// call — and answered with a single [`CollResp`] carrying a
/// position-aligned [`CollBatchResult`]. Per-item unknown methods become
/// typed [`MethodNotFound`] payloads *inside* the batch result, so one bad
/// request never poisons its batch-mates. Plain (non-batch) requests are
/// served exactly as in [`collective_serve`], so a provider can field
/// traffic from both the serving plane and direct collective callers.
pub fn collective_serve_batched(
    ic: &InterComm,
    service: &dyn BatchService,
) -> Result<CollectiveStats> {
    let (n, j) = (ic.local_size(), ic.local_rank());
    let mut stats = CollectiveStats::default();
    loop {
        let req: CollReq = ic.recv(ic_owner(ic), COLL_REQ_TAG)?;
        if req.method == METHOD_SHUTDOWN {
            return Ok(stats);
        }
        let m = req.num_callers;
        if req.arg.is::<CollBatch>() {
            let batch: CollBatch = req.arg.downcast().map_err(|e| PrmiError::Protocol {
                detail: format!("batch downcast failed: {e}"),
            })?;
            let (ids, args): (Vec<u64>, Vec<AnyPayload>) = batch.items.into_iter().unzip();
            mxn_trace::emit_instant(
                mxn_trace::EventId::PrmiServe,
                [req.method as u64, req.call_seq, m as u64, ids.len() as u64],
            );
            let outs = service.dispatch_batch(req.method, args);
            assert_eq!(
                outs.len(),
                ids.len(),
                "BatchService must return one outcome per batch item"
            );
            let items: Vec<(u64, AnyPayload)> = ids
                .into_iter()
                .zip(outs)
                .map(|(id, d)| match d {
                    Dispatch::Reply(p) => {
                        stats.calls += 1;
                        (id, p)
                    }
                    Dispatch::MethodNotFound => {
                        stats.method_not_found += 1;
                        (id, AnyPayload::replicable(MethodNotFound { method: req.method }))
                    }
                })
                .collect();
            if req.oneway {
                continue;
            }
            let respondents = respondents_of(j, m, n);
            stats.ghost_returns += respondents.len().saturating_sub(1) as u64;
            // Only the ghost-return fan-out needs a replicable wrapper (and
            // pays its one up-front deep copy); the common single-respondent
            // plane topology sends the results without copying anything.
            let result = if respondents.len() > 1 {
                AnyPayload::replicable(CollBatchResult { items })
            } else {
                AnyPayload::new(CollBatchResult { items })
            };
            send_replicated(ic, &respondents, req.call_seq, result)?;
            continue;
        }
        // Plain request: identical to collective_serve's body.
        let (result, found) = match service.dispatch(req.method, req.arg) {
            Dispatch::Reply(p) => (p, true),
            Dispatch::MethodNotFound => {
                stats.method_not_found += 1;
                (AnyPayload::replicable(MethodNotFound { method: req.method }), false)
            }
        };
        mxn_trace::emit_instant(
            mxn_trace::EventId::PrmiServe,
            [req.method as u64, req.call_seq, m as u64, u64::from(req.oneway)],
        );
        if found {
            stats.calls += 1;
            if req.oneway {
                stats.oneway_calls += 1;
            }
        }
        if req.oneway {
            continue;
        }
        let respondents = respondents_of(j, m, n);
        stats.ghost_returns += respondents.len().saturating_sub(1) as u64;
        send_replicated(ic, &respondents, req.call_seq, result)?;
    }
}

/// Revokes `ic` and shrinks it to the survivor set. Both sides of a
/// recovering collective call run this in lock-step after a failed commit
/// vote, so their epochs (and hence the request fence) stay aligned.
fn heal_intercomm(ic: &InterComm, epoch: u64) -> Result<InterComm> {
    ic.revoke();
    let (healed, report) = ic.shrink_with_report()?;
    mxn_trace::emit_instant(
        mxn_trace::EventId::Heal,
        [
            epoch + 1,
            report.local_survivors.len() as u64,
            report.remote_survivors.len() as u64,
            1, // PRMI control plane (the M×N data plane stamps 0 here)
        ],
    );
    Ok(healed)
}

/// Self-healing provider-side serve loop, paired with
/// [`CollectiveEndpoint::call_recovering`].
///
/// Like [`collective_serve`], but every two-way call ends in a collective
/// commit vote. On an aborted attempt (a participant died, or a delivery
/// failed) the loop heals the intercommunicator — revoke, shrink to the
/// survivors, bump the epoch — and keeps serving on the healed connection.
/// The last dispatched result is cached by sequence number, so when the
/// callers retry the aborted sequence the provider *replays* the cached
/// result instead of executing the method again (exactly-once execution),
/// which is why every result must be built with [`AnyPayload::replicable`].
/// Requests still carrying a stale epoch are fenced off and dropped
/// without dispatch.
///
/// One-way calls stay fire-and-forget: they are dispatched without a vote,
/// exactly as in the plain loop.
pub fn collective_serve_recovering(
    ic: &InterComm,
    service: &dyn RemoteService,
) -> Result<CollectiveStats> {
    let mut healed: Option<InterComm> = None;
    let mut epoch = 0u64;
    let mut cached: Option<(u64, std::sync::Arc<dyn Fn() -> AnyPayload + Send + Sync>)> = None;
    let mut stats = CollectiveStats::default();
    'serve: loop {
        let next = {
            let cur = healed.as_ref().unwrap_or(ic);
            let (n, j) = (cur.local_size(), cur.local_rank());
            let m = cur.remote_size();
            // Wait for the owner caller's request, polling liveness so a
            // death anywhere lets this rank join the abort vote even when
            // its own request never arrives (e.g. its owner is the one
            // that died).
            let req: Option<CollReq> = loop {
                match cur.recv_timeout::<CollReq>(j % m, COLL_REQ_TAG, COLL_LIVENESS_POLL) {
                    Ok(r) if r.method == METHOD_SHUTDOWN => return Ok(stats),
                    // Epoch fence: a straggler from an aborted pre-heal
                    // attempt must not be dispatched.
                    Ok(r) if r.epoch != epoch => continue,
                    Ok(r) => break Some(r),
                    Err(RuntimeError::Timeout { .. }) => {
                        if cur.any_dead().is_some() {
                            break None;
                        }
                    }
                    Err(RuntimeError::PeerDead { .. } | RuntimeError::Corrupt { .. }) => {
                        break None
                    }
                    Err(e) => return Err(e.into()),
                }
            };
            let ok = match req {
                None => false,
                Some(r) => {
                    let replay = matches!(&cached, Some((seq, _)) if *seq == r.call_seq);
                    let replicator = if replay {
                        cached.as_ref().expect("matched above").1.clone()
                    } else {
                        let (result, found) = match service.dispatch(r.method, r.arg) {
                            Dispatch::Reply(p) => (p, true),
                            Dispatch::MethodNotFound => {
                                stats.method_not_found += 1;
                                (AnyPayload::replicable(MethodNotFound { method: r.method }), false)
                            }
                        };
                        mxn_trace::emit_instant(
                            mxn_trace::EventId::PrmiServe,
                            [r.method as u64, r.call_seq, m as u64, u64::from(r.oneway)],
                        );
                        if r.oneway {
                            if found {
                                stats.calls += 1;
                                stats.oneway_calls += 1;
                            }
                            continue 'serve;
                        }
                        if found {
                            stats.calls += 1;
                        }
                        let rep = result.take_replicator().ok_or_else(|| PrmiError::Protocol {
                            detail: "recovering collective results must be replayable; wrap \
                                     them with AnyPayload::replicable"
                                .into(),
                        })?;
                        cached = Some((r.call_seq, rep.clone()));
                        rep
                    };
                    let respondents = respondents_of(j, m, n);
                    stats.ghost_returns += respondents.len().saturating_sub(1) as u64;
                    let sent = send_replicated(cur, &respondents, r.call_seq, replicator()).is_ok();
                    sent && cur.any_dead().is_none()
                }
            };
            if cur.agree_all(ok)? {
                continue 'serve;
            }
            heal_intercomm(cur, epoch)?
        };
        healed = Some(next);
        epoch += 1;
    }
}

/// Sends `result` to every respondent. A single respondent receives the
/// value directly; ghost returns (fewer providers than callers) go out as
/// one shared multicast envelope — the result is marshalled once, and each
/// caller unwraps it copy-on-write. `AnyPayload` is not clonable in
/// general, so the fan-out path requires results wrapped with
/// [`AnyPayload::replicable`].
fn send_replicated(
    ic: &InterComm,
    respondents: &[usize],
    call_seq: u64,
    result: AnyPayload,
) -> Result<()> {
    match respondents.len() {
        0 => Ok(()),
        1 => {
            ic.send(respondents[0], COLL_RESP_TAG, CollResp { call_seq, result })?;
            Ok(())
        }
        _ => {
            if result.take_replicator().is_none() {
                return Err(PrmiError::Protocol {
                    detail: "ghost returns need a replicable result; wrap it with \
                             AnyPayload::replicable"
                        .into(),
                });
            }
            ic.multicast(respondents, COLL_RESP_TAG, CollResp { call_seq, result })?;
            Ok(())
        }
    }
}

impl From<RuntimeError> for PrmiError {
    fn from(e: RuntimeError) -> Self {
        PrmiError::Runtime(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mxn_runtime::Universe;

    /// Service: method 0 = sum += arg, return new sum (replicable);
    /// method 1 (one-way) = multiply state.
    struct Accum(parking_lot::Mutex<f64>);
    impl RemoteService for Accum {
        fn dispatch(&self, method: u32, arg: AnyPayload) -> Dispatch {
            match method {
                0 => {
                    let v: f64 = arg.downcast().unwrap();
                    let mut s = self.0.lock();
                    *s += v;
                    AnyPayload::replicable(*s).into()
                }
                1 => {
                    let v: f64 = arg.downcast().unwrap();
                    *self.0.lock() *= v;
                    AnyPayload::new(()).into()
                }
                _ => Dispatch::MethodNotFound,
            }
        }
    }

    fn run_collective(m: usize, n: usize) {
        Universe::run(&[m, n], move |_, ctx| {
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let mut ep = CollectiveEndpoint::new();
                // Every caller gets a reply; each provider executed once.
                let r: f64 = ep.call(ic, 0, 2.5f64).unwrap();
                assert_eq!(r, 2.5);
                let r2: f64 = ep.call(ic, 0, 1.5f64).unwrap();
                assert_eq!(r2, 4.0);
                assert_eq!(ep.calls(), 2);
                ep.shutdown(ic).unwrap();
            } else {
                let svc = Accum(parking_lot::Mutex::new(0.0));
                let stats = collective_serve(ctx.intercomm(0), &svc).unwrap();
                assert_eq!(stats.calls, 2, "each provider executes each call once");
                assert_eq!(*svc.0.lock(), 4.0);
            }
        });
    }

    #[test]
    fn m_equals_n() {
        run_collective(2, 2);
    }

    #[test]
    fn more_callers_than_providers_ghost_returns() {
        run_collective(5, 2);
    }

    #[test]
    fn more_providers_than_callers_ghost_invocations() {
        run_collective(2, 5);
    }

    #[test]
    fn serial_caller_parallel_provider() {
        run_collective(1, 4);
    }

    #[test]
    fn parallel_caller_serial_provider() {
        run_collective(4, 1);
    }

    #[test]
    fn mapping_covers_all_and_only_once() {
        for m in 1..7 {
            for n in 1..7 {
                // Every provider is owned by exactly one caller.
                let mut owned = vec![0usize; n];
                for k in 0..m {
                    for j in providers_of(k, m, n) {
                        owned[j] += 1;
                        assert_eq!(j % m, k);
                    }
                }
                assert!(owned.iter().all(|&c| c == 1), "m={m} n={n}: {owned:?}");
                // Every caller gets exactly one return.
                let mut returned = vec![0usize; m];
                for j in 0..n {
                    for k in respondents_of(j, m, n) {
                        returned[k] += 1;
                        assert_eq!(k % n, j);
                    }
                }
                assert!(returned.iter().all(|&c| c == 1), "m={m} n={n}: {returned:?}");
            }
        }
    }

    #[test]
    fn oneway_collective_updates_state_without_reply() {
        Universe::run(&[3, 2], |_, ctx| {
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let mut ep = CollectiveEndpoint::new();
                let r: f64 = ep.call(ic, 0, 10.0f64).unwrap();
                assert_eq!(r, 10.0);
                ep.call_oneway(ic, 1, 3.0f64).unwrap();
                // FIFO per provider: the next two-way call observes the
                // one-way's effect.
                let r2: f64 = ep.call(ic, 0, 0.0f64).unwrap();
                assert_eq!(r2, 30.0);
                ep.shutdown(ic).unwrap();
            } else {
                let svc = Accum(parking_lot::Mutex::new(0.0));
                let stats = collective_serve(ctx.intercomm(0), &svc).unwrap();
                assert_eq!(stats.oneway_calls, 1);
            }
        });
    }

    #[test]
    fn checked_call_catches_divergent_simple_args() {
        Universe::run(&[3, 1], |_, ctx| {
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let mut ep = CollectiveEndpoint::new();
                // Each rank passes a different value: the check must fail on
                // every rank, before anything is sent.
                let bad = ctx.comm.rank() as f64;
                let r: Result<f64> = ep.call_checked(&ctx.comm, ic, 0, bad);
                assert!(matches!(r, Err(PrmiError::SimpleArgMismatch { method: 0 })));
                // A consistent value passes.
                let ok: f64 = ep.call_checked(&ctx.comm, ic, 0, 7.0f64).unwrap();
                assert_eq!(ok, 7.0);
                ep.shutdown(ic).unwrap();
            } else {
                let svc = Accum(parking_lot::Mutex::new(0.0));
                let stats = collective_serve(ctx.intercomm(0), &svc).unwrap();
                assert_eq!(stats.calls, 1, "the failed check never reached the provider");
            }
        });
    }

    #[test]
    fn recovering_call_over_healthy_universe() {
        Universe::run(&[2, 3], |_, ctx| {
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let mut ep = CollectiveEndpoint::new();
                let policy = CallPolicy::default().recovering();
                let r: f64 = ep.call_recovering(ic, 0, 2.0f64, policy).unwrap();
                assert_eq!(r, 2.0);
                let r2: f64 = ep.call_recovering(ic, 0, 3.0f64, policy).unwrap();
                assert_eq!(r2, 5.0);
                assert_eq!(ep.epoch(), 0, "no failure, no heal");
                assert_eq!(ep.calls(), 2);
                ep.shutdown(ic).unwrap();
            } else {
                let svc = Accum(parking_lot::Mutex::new(0.0));
                let stats = collective_serve_recovering(ctx.intercomm(0), &svc).unwrap();
                assert_eq!(stats.calls, 2);
                assert_eq!(*svc.0.lock(), 5.0);
            }
        });
    }

    #[test]
    fn recovering_call_heals_after_caller_death() {
        // Three callers, two providers. Caller 2 dies between calls; the
        // second collective call aborts (all survivors roll back on the
        // commit vote), the connection heals to a 2×2 coupling, and the
        // retried sequence completes — with each provider executing each
        // method exactly once thanks to the sequence-number dedup.
        Universe::run(&[3, 2], |p, ctx| {
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let mut ep = CollectiveEndpoint::new();
                let policy = CallPolicy {
                    deadline: Duration::from_millis(100),
                    max_retries: 4,
                    backoff: Duration::from_millis(2),
                    jitter: Some(7),
                    recover: true,
                };
                let r: f64 = ep.call_recovering(ic, 0, 2.5f64, policy).unwrap();
                assert_eq!(r, 2.5);
                if ctx.comm.rank() == 2 {
                    p.kill_rank(p.rank());
                    return;
                }
                while !p.is_dead(2) {
                    std::thread::yield_now();
                }
                let r2: f64 = ep.call_recovering(ic, 0, 1.5f64, policy).unwrap();
                assert_eq!(r2, 4.0);
                assert!(ep.epoch() >= 1, "the failure forced at least one heal");
                assert_eq!(ep.calls(), 2);
                assert_eq!(ep.current(ic).local_size(), 2, "healed to the survivor set");
                ep.shutdown(ic).unwrap();
            } else {
                let svc = Accum(parking_lot::Mutex::new(0.0));
                let stats = collective_serve_recovering(ctx.intercomm(0), &svc).unwrap();
                assert_eq!(stats.calls, 2, "aborted attempts replay the cached result");
                assert_eq!(*svc.0.lock(), 4.0, "each call executed exactly once per provider");
            }
        });
    }

    #[test]
    fn unknown_method_nacks_across_ghost_fanout() {
        // 4 callers, 1 provider: the NACK itself must fan out as ghost
        // returns, and the provider keeps serving afterwards.
        Universe::run(&[4, 1], |_, ctx| {
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let mut ep = CollectiveEndpoint::new();
                let e = ep.call::<f64, f64>(ic, 42, 1.0).unwrap_err();
                assert!(matches!(e, PrmiError::MethodNotFound { method: 42 }), "{e}");
                let r: f64 = ep.call(ic, 0, 2.0f64).unwrap();
                assert_eq!(r, 2.0);
                ep.shutdown(ic).unwrap();
            } else {
                let svc = Accum(parking_lot::Mutex::new(0.0));
                let stats = collective_serve(ctx.intercomm(0), &svc).unwrap();
                assert_eq!(stats.method_not_found, 1);
                assert_eq!(stats.calls, 1);
            }
        });
    }

    #[test]
    fn unknown_method_commits_under_recovery_without_healing() {
        // The NACK is a *successful* protocol round: the commit vote passes,
        // the sequence advances, and no heal is triggered.
        Universe::run(&[2, 2], |_, ctx| {
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let mut ep = CollectiveEndpoint::new();
                let policy = CallPolicy::default().recovering();
                let e = ep.call_recovering::<f64, f64>(ic, 9, 1.0, policy).unwrap_err();
                assert!(matches!(e, PrmiError::MethodNotFound { method: 9 }), "{e}");
                assert_eq!(ep.epoch(), 0, "a NACK is not a failure: no heal");
                let r: f64 = ep.call_recovering(ic, 0, 3.0f64, policy).unwrap();
                assert_eq!(r, 3.0);
                ep.shutdown(ic).unwrap();
            } else {
                let svc = Accum(parking_lot::Mutex::new(0.0));
                let stats = collective_serve_recovering(ctx.intercomm(0), &svc).unwrap();
                assert_eq!(stats.method_not_found, 1);
                assert_eq!(stats.calls, 1);
            }
        });
    }

    impl BatchService for Accum {}

    #[test]
    fn batched_call_roundtrips_and_demuxes_by_id() {
        Universe::run(&[1, 2], |_, ctx| {
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let mut ep = CollectiveEndpoint::new();
                // Ids are arbitrary and non-contiguous: replies must carry
                // them back verbatim, in batch order.
                let items = vec![
                    (700u64, AnyPayload::replicable(1.0f64)),
                    (13u64, AnyPayload::replicable(2.0f64)),
                    (9_999u64, AnyPayload::replicable(0.5f64)),
                ];
                let results = ep.call_batch(ic, 0, items).unwrap();
                let got: Vec<(u64, f64)> =
                    results.into_iter().map(|(id, p)| (id, p.downcast().unwrap())).collect();
                // Running sums, dispatched in admission order.
                assert_eq!(got, vec![(700, 1.0), (13, 3.0), (9_999, 3.5)]);
                assert_eq!(ep.calls(), 1, "a whole batch is one collective call");
                ep.shutdown(ic).unwrap();
            } else {
                let svc = Accum(parking_lot::Mutex::new(0.0));
                let stats = collective_serve_batched(ctx.intercomm(0), &svc).unwrap();
                assert_eq!(stats.calls, 3, "every batch item dispatched");
                assert_eq!(*svc.0.lock(), 3.5);
            }
        });
    }

    #[test]
    fn batched_unknown_method_nacks_per_item() {
        Universe::run(&[1, 1], |_, ctx| {
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let mut ep = CollectiveEndpoint::new();
                let items = vec![
                    (1u64, AnyPayload::replicable(2.0f64)),
                    (2u64, AnyPayload::replicable(3.0f64)),
                ];
                // Unknown method: each item carries a typed NACK, and the
                // provider keeps serving.
                let results = ep.call_batch(ic, 42, items).unwrap();
                assert!(results.iter().all(|(_, p)| p.is::<MethodNotFound>()));
                let ok =
                    ep.call_batch(ic, 0, vec![(5u64, AnyPayload::replicable(4.0f64))]).unwrap();
                assert!(!ok[0].1.is::<MethodNotFound>());
                ep.shutdown(ic).unwrap();
            } else {
                let svc = Accum(parking_lot::Mutex::new(0.0));
                let stats = collective_serve_batched(ctx.intercomm(0), &svc).unwrap();
                assert_eq!(stats.method_not_found, 2);
                assert_eq!(stats.calls, 1);
            }
        });
    }

    #[test]
    fn batched_serve_still_fields_plain_collective_calls() {
        Universe::run(&[2, 2], |_, ctx| {
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let mut ep = CollectiveEndpoint::new();
                let r: f64 = ep.call(ic, 0, 2.5f64).unwrap();
                assert_eq!(r, 2.5);
                ep.shutdown(ic).unwrap();
            } else {
                let svc = Accum(parking_lot::Mutex::new(0.0));
                let stats = collective_serve_batched(ctx.intercomm(0), &svc).unwrap();
                assert_eq!(stats.calls, 1);
            }
        });
    }

    #[test]
    fn ghost_return_counting() {
        Universe::run(&[4, 1], |_, ctx| {
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let mut ep = CollectiveEndpoint::new();
                let _: f64 = ep.call(ic, 0, 1.0f64).unwrap();
                ep.shutdown(ic).unwrap();
            } else {
                let svc = Accum(parking_lot::Mutex::new(0.0));
                let stats = collective_serve(ctx.intercomm(0), &svc).unwrap();
                // One provider, four callers: three ghost returns.
                assert_eq!(stats.ghost_returns, 3);
            }
        });
    }
}
