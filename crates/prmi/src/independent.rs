//! Independent (one-to-one) invocations.
//!
//! "Independent invocations are provided for normal serial function call
//! semantics" (paper §4.2) — and Damevski's model pairs each caller process
//! with one callee process. The serial RMI machinery lives in
//! `mxn-framework`; this module re-exports it under its PRMI name and adds
//! the paired-serve loop for providers that answer only independent calls.

pub use mxn_framework::{serve as independent_serve, RemotePort as IndependentPort};

use mxn_framework::{RemoteService, ServeStats};
use mxn_runtime::InterComm;

use crate::error::{PrmiError, Result};

/// Provider-side loop for a rank that services *independent* calls: same
/// as the framework serve loop, returned through PRMI error types.
pub fn serve_independent(ic: &InterComm, service: &dyn RemoteService) -> Result<ServeStats> {
    mxn_framework::serve(ic, service).map_err(PrmiError::Framework)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mxn_framework::{shutdown_all, AnyPayload, Dispatch};
    use mxn_runtime::Universe;

    struct Echo;
    impl RemoteService for Echo {
        fn dispatch(&self, _method: u32, arg: AnyPayload) -> Dispatch {
            let v: u64 = arg.downcast().unwrap();
            AnyPayload::new(v + 1).into()
        }
    }

    #[test]
    fn one_to_one_pairing_acts_like_serial_calls() {
        Universe::run(&[4, 4], |_, ctx| {
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let port = IndependentPort::one_to_one(ic);
                // Each caller rank talks to its paired provider rank only.
                assert_eq!(port.provider(), ctx.comm.rank());
                let r: u64 = port.call(ic, 0, ctx.comm.rank() as u64).unwrap();
                assert_eq!(r, ctx.comm.rank() as u64 + 1);
                shutdown_all(ic).unwrap();
            } else {
                let stats = serve_independent(ctx.intercomm(0), &Echo).unwrap();
                assert_eq!(stats.calls, 1, "exactly one paired caller");
            }
        });
    }
}
