//! Subset participation and the Figure 5 synchronization problem.
//!
//! When only a subset of a parallel component's processes participates in a
//! collective call, and consecutive calls are made by *intersecting* sets
//! in different orders, delivering a call "as soon as one process reaches
//! the calling point" deadlocks: the provider blocks waiting for the
//! remaining shares of the first call while the other processes are blocked
//! inside a different call it cannot begin to service (paper Figure 5).
//!
//! "The solution is to delay PRMI delivery until all processes are ready"
//! — a barrier over the participant set before any share is sent
//! ([`DeliveryPolicy::barrier_before_delivery`], the DCA approach of §4.3).
//! Both behaviours are implemented so experiment F5 can demonstrate the
//! deadlock (detected by timeout) and measure the barrier's cost.

use std::time::Duration;

use mxn_framework::{AnyPayload, Dispatch, MethodNotFound, RemoteService};
use mxn_runtime::{Comm, InterComm, MsgSize, RuntimeError, Src};

use crate::error::{PrmiError, Result};

const SUBSET_REQ_BASE: i32 = 0x6000;
const SUBSET_RESP_BASE: i32 = 0x6800;
/// Reserved method id ending a subset serve loop.
pub const METHOD_SHUTDOWN: u32 = 0x7ff;
const MAX_METHOD: u32 = 0x800;

fn req_tag(method: u32) -> i32 {
    assert!(method < MAX_METHOD, "subset method id out of range");
    SUBSET_REQ_BASE + method as i32
}

fn resp_tag(method: u32) -> i32 {
    SUBSET_RESP_BASE + method as i32
}

/// How a caller-side collective delivery is synchronized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveryPolicy {
    /// Barrier over the participant set before sending shares. `true` is
    /// the safe (DCA) behaviour; `false` reproduces the Figure 5 deadlock.
    pub barrier_before_delivery: bool,
}

impl DeliveryPolicy {
    /// The safe policy (delivery delayed until all participants arrive).
    pub fn safe() -> Self {
        DeliveryPolicy { barrier_before_delivery: true }
    }

    /// The unsafe policy (deliver on first arrival).
    pub fn eager() -> Self {
        DeliveryPolicy { barrier_before_delivery: false }
    }
}

/// One participant's share of a subset collective call.
pub struct SubsetShare {
    /// Program-local rank of this caller.
    pub caller: usize,
    /// Program-local ranks of every participant (identical in all shares).
    pub participants: Vec<usize>,
    /// One-way calls produce no responses (paper §2.4).
    pub oneway: bool,
    /// The (simple) argument; the provider uses the first share's copy.
    pub arg: AnyPayload,
}

impl MsgSize for SubsetShare {
    fn msg_size(&self) -> usize {
        8 + self.participants.len() * 8 + 1 + self.arg.msg_size()
    }
}

/// Caller side of a subset collective call. Every rank whose program-local
/// rank appears in `participant_ranks` must call this with the same
/// arguments; `participants` is a communicator over exactly those ranks.
pub fn subset_call<A, R>(
    participants: &Comm,
    ic: &InterComm,
    participant_ranks: &[usize],
    provider: usize,
    method: u32,
    arg: A,
    policy: DeliveryPolicy,
) -> Result<R>
where
    A: Send + Sync + MsgSize + 'static,
    R: 'static,
{
    subset_call_inner(participants, ic, participant_ranks, provider, method, arg, policy, None)
}

/// Like [`subset_call`] but bounds the wait for the provider's response —
/// the caller-side escape hatch that turns the Figure 5 deadlock into a
/// detectable [`PrmiError::DeliveryDeadlock`].
#[allow(clippy::too_many_arguments)]
pub fn subset_call_timeout<A, R>(
    participants: &Comm,
    ic: &InterComm,
    participant_ranks: &[usize],
    provider: usize,
    method: u32,
    arg: A,
    policy: DeliveryPolicy,
    timeout: Duration,
) -> Result<R>
where
    A: Send + Sync + MsgSize + 'static,
    R: 'static,
{
    subset_call_inner(
        participants,
        ic,
        participant_ranks,
        provider,
        method,
        arg,
        policy,
        Some(timeout),
    )
}

#[allow(clippy::too_many_arguments)]
fn subset_call_inner<A, R>(
    participants: &Comm,
    ic: &InterComm,
    participant_ranks: &[usize],
    provider: usize,
    method: u32,
    arg: A,
    policy: DeliveryPolicy,
    timeout: Option<Duration>,
) -> Result<R>
where
    A: Send + Sync + MsgSize + 'static,
    R: 'static,
{
    assert_ne!(method, METHOD_SHUTDOWN, "use subset_shutdown");
    let _span = mxn_trace::span(
        mxn_trace::EventId::PrmiCall,
        [method as u64, provider as u64, participant_ranks.len() as u64, 0],
    );
    if policy.barrier_before_delivery {
        participants.barrier().map_err(PrmiError::Runtime)?;
        mxn_trace::emit_instant(
            mxn_trace::EventId::DcaBarrier,
            [participants.size() as u64, method as u64, 0, 0],
        );
    }
    ic.send(
        provider,
        req_tag(method),
        SubsetShare {
            caller: ic.local_rank(),
            participants: participant_ranks.to_vec(),
            oneway: false,
            arg: AnyPayload::new(arg),
        },
    )
    .map_err(PrmiError::Runtime)?;
    let resp: AnyPayload = match timeout {
        None => ic.recv(provider, resp_tag(method)).map_err(PrmiError::Runtime)?,
        Some(t) => match ic.recv_timeout(provider, resp_tag(method), t) {
            Ok(r) => r,
            Err(RuntimeError::Timeout { .. }) => {
                return Err(PrmiError::DeliveryDeadlock {
                    waiting_for: format!("response to method {method} from provider {provider}"),
                })
            }
            Err(e) => return Err(PrmiError::Runtime(e)),
        },
    };
    if resp.is::<MethodNotFound>() {
        return Err(PrmiError::MethodNotFound { method });
    }
    resp.downcast::<R>().map_err(PrmiError::from)
}

/// Ends a provider's subset serve loop (send from a single caller rank).
pub fn subset_shutdown(ic: &InterComm, provider: usize) -> Result<()> {
    ic.send(
        provider,
        req_tag(METHOD_SHUTDOWN),
        SubsetShare {
            caller: ic.local_rank(),
            participants: vec![],
            oneway: true,
            arg: AnyPayload::new(()),
        },
    )
    .map_err(PrmiError::Runtime)?;
    Ok(())
}

/// Outcome of a subset serve loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubsetServeOutcome {
    /// Clean shutdown after servicing `calls` collective invocations.
    Completed {
        /// Invocations serviced.
        calls: u64,
    },
    /// The Figure 5 deadlock: while collecting the shares of one call, a
    /// participant's share never arrived within the timeout.
    Deadlocked {
        /// Invocations serviced before the deadlock.
        calls: u64,
        /// The participant whose share never arrived.
        missing_rank: usize,
        /// The method being collected.
        method: u32,
    },
}

/// Serial provider rank's serve loop for subset collective calls.
///
/// Delivery is on *first arrival*: the provider starts servicing whichever
/// call's share reaches it first, then blocks for the remaining
/// participants' shares — exactly the semantics that make Figure 5
/// deadlock when callers use [`DeliveryPolicy::eager`]. `share_timeout`
/// bounds that blocking so the deadlock is detected rather than hung.
pub fn subset_serve(
    ic: &InterComm,
    service: &dyn RemoteService,
    share_timeout: Duration,
) -> Result<SubsetServeOutcome> {
    let mut calls = 0u64;
    loop {
        // Wait for the first share of the next call, any method, any caller.
        let (first, info) = recv_any_share(ic)?;
        let method = (info.tag - SUBSET_REQ_BASE) as u32;
        if method == METHOD_SHUTDOWN {
            return Ok(SubsetServeOutcome::Completed { calls });
        }
        // Collect the remaining participants' shares of this same call.
        for &p in &first.participants {
            if p == first.caller {
                continue;
            }
            match ic.recv_timeout::<SubsetShare>(p, req_tag(method), share_timeout) {
                Ok(_) => {}
                Err(RuntimeError::Timeout { .. }) => {
                    return Ok(SubsetServeOutcome::Deadlocked { calls, missing_rank: p, method });
                }
                Err(e) => return Err(PrmiError::Runtime(e)),
            }
        }
        // All shares in: execute once, respond to every participant
        // (one-way calls skip the response phase).
        let oneway = first.oneway;
        let (result, found) = match service.dispatch(method, first.arg) {
            Dispatch::Reply(p) => (p, true),
            Dispatch::MethodNotFound => (AnyPayload::replicable(MethodNotFound { method }), false),
        };
        mxn_trace::emit_instant(
            mxn_trace::EventId::PrmiServe,
            [
                method as u64,
                first.caller as u64,
                first.participants.len() as u64,
                u64::from(oneway),
            ],
        );
        if found {
            calls += 1;
        }
        if oneway {
            continue;
        }
        match first.participants.len() {
            1 => {
                ic.send(first.caller, resp_tag(method), result).map_err(PrmiError::Runtime)?;
            }
            _ => {
                let rep = result.take_replicator().ok_or_else(|| PrmiError::Protocol {
                    detail: "subset results need AnyPayload::replicable".into(),
                })?;
                for &p in &first.participants {
                    ic.send(p, resp_tag(method), rep()).map_err(PrmiError::Runtime)?;
                }
            }
        }
    }
}

fn recv_any_share(ic: &InterComm) -> Result<(SubsetShare, mxn_runtime::MessageInfo)> {
    // Shares use a contiguous tag band; Tag::Any plus a band check keeps
    // matching simple while preserving per-method selectivity later.
    let (share, info) = ic
        .recv_with_info::<SubsetShare>(Src::Any, mxn_runtime::Tag::Any)
        .map_err(PrmiError::Runtime)?;
    debug_assert!(
        info.tag >= SUBSET_REQ_BASE && info.tag < SUBSET_REQ_BASE + MAX_METHOD as i32,
        "share tag within the subset request band"
    );
    Ok((share, info))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mxn_runtime::Universe;

    /// Echo service doubling an f64.
    struct Doubler;
    impl RemoteService for Doubler {
        fn dispatch(&self, method: u32, arg: AnyPayload) -> Dispatch {
            let v: f64 = arg.downcast().unwrap();
            AnyPayload::replicable(v * 2.0 + method as f64).into()
        }
    }

    #[test]
    fn full_set_call_works_with_either_policy() {
        for policy in [DeliveryPolicy::safe(), DeliveryPolicy::eager()] {
            Universe::run(&[3, 1], move |_, ctx| {
                if ctx.program == 0 {
                    let ic = ctx.intercomm(1);
                    let all = [0, 1, 2];
                    let r: f64 = subset_call(&ctx.comm, ic, &all, 0, 1, 10.0f64, policy).unwrap();
                    assert_eq!(r, 21.0);
                    if ctx.comm.rank() == 0 {
                        subset_shutdown(ic, 0).unwrap();
                    }
                } else {
                    let out =
                        subset_serve(ctx.intercomm(0), &Doubler, Duration::from_secs(5)).unwrap();
                    assert_eq!(out, SubsetServeOutcome::Completed { calls: 1 });
                }
            });
        }
    }

    /// The Figure 5 scenario. Caller ranks: 0 calls method A with
    /// participants {0,1,2}; ranks 1,2 first call method B with
    /// participants {1,2}, then join method A.
    fn figure5(policy: DeliveryPolicy) -> SubsetServeOutcome {
        let outcomes = Universe::run(&[3, 1], move |_, ctx| {
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let rank = ctx.comm.rank();
                let all = ctx.comm.subgroup(&[0, 1, 2]).unwrap().unwrap();
                let pair = ctx.comm.subgroup(&[1, 2]).unwrap();
                let t = Duration::from_secs(2);
                if rank == 0 {
                    // Reaches call A first (t1 in the figure).
                    let r: Result<f64> =
                        subset_call_timeout(&all, ic, &[0, 1, 2], 0, 0, 1.0f64, policy, t);
                    if policy.barrier_before_delivery {
                        assert_eq!(r.unwrap(), 2.0);
                        subset_shutdown(ic, 0).unwrap();
                    } else {
                        assert!(matches!(r, Err(PrmiError::DeliveryDeadlock { .. })));
                    }
                } else {
                    // Delay so rank 0's share arrives first (deterministic).
                    std::thread::sleep(Duration::from_millis(50));
                    let pair = pair.unwrap();
                    let rb: Result<f64> =
                        subset_call_timeout(&pair, ic, &[1, 2], 0, 1, 5.0f64, policy, t);
                    if policy.barrier_before_delivery {
                        assert_eq!(rb.unwrap(), 11.0);
                        let _ra: f64 =
                            subset_call_timeout(&all, ic, &[0, 1, 2], 0, 0, 1.0f64, policy, t)
                                .unwrap();
                    } else {
                        // Call B's response never comes: the server is stuck
                        // collecting call A's shares (the figure's deadlock).
                        assert!(matches!(rb, Err(PrmiError::DeliveryDeadlock { .. })));
                    }
                }
                None
            } else {
                Some(subset_serve(ctx.intercomm(0), &Doubler, Duration::from_millis(300)).unwrap())
            }
        });
        outcomes.into_iter().flatten().next().unwrap()
    }

    #[test]
    fn figure5_eager_policy_deadlocks() {
        let out = figure5(DeliveryPolicy::eager());
        match out {
            SubsetServeOutcome::Deadlocked { calls, method, .. } => {
                assert_eq!(calls, 0, "first call never completes");
                assert_eq!(method, 0, "stuck collecting call A's shares");
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn figure5_barrier_policy_completes() {
        let out = figure5(DeliveryPolicy::safe());
        assert_eq!(out, SubsetServeOutcome::Completed { calls: 2 });
    }
}
