//! PRMI error types.

use std::fmt;

use mxn_framework::FrameworkError;
use mxn_runtime::RuntimeError;

/// Errors raised by parallel remote method invocation.
#[derive(Debug)]
pub enum PrmiError {
    /// A simple argument differed across caller processes (violating the
    /// CCA convention of §2.4, detected by a checked call).
    SimpleArgMismatch {
        /// The offending method id.
        method: u32,
    },
    /// Protocol-level inconsistency (sequence mismatch, unreplicable ghost
    /// return, malformed participation).
    Protocol {
        /// What went wrong.
        detail: String,
    },
    /// A collective delivery deadlocked (detected by timeout) — the
    /// Figure 5 failure mode.
    DeliveryDeadlock {
        /// What the blocked side was waiting for.
        waiting_for: String,
    },
    /// Every provider answered with a typed NACK: the service does not
    /// implement the requested method id. Authoritative — neither retrying
    /// nor healing can help.
    MethodNotFound {
        /// The unknown method id.
        method: u32,
    },
    /// A recovering collective call ran out of retry attempts without ever
    /// winning a commit vote (the connection kept failing faster than it
    /// could be healed).
    RecoveryExhausted {
        /// The method being invoked.
        method: u32,
        /// Attempts made (initial call plus retries).
        attempts: u32,
    },
    /// Marshalling/unmarshalling type error.
    Framework(FrameworkError),
    /// Underlying messaging failure.
    Runtime(RuntimeError),
}

impl fmt::Display for PrmiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrmiError::SimpleArgMismatch { method } => {
                write!(f, "simple argument differs across callers of method {method}")
            }
            PrmiError::Protocol { detail } => write!(f, "PRMI protocol error: {detail}"),
            PrmiError::DeliveryDeadlock { waiting_for } => {
                write!(f, "collective delivery deadlocked waiting for {waiting_for}")
            }
            PrmiError::MethodNotFound { method } => {
                write!(f, "parallel service does not implement method {method}")
            }
            PrmiError::RecoveryExhausted { method, attempts } => write!(
                f,
                "collective call of method {method} failed after {attempts} attempts with healing"
            ),
            PrmiError::Framework(e) => write!(f, "framework error: {e}"),
            PrmiError::Runtime(e) => write!(f, "runtime error: {e}"),
        }
    }
}

impl std::error::Error for PrmiError {}

impl From<FrameworkError> for PrmiError {
    fn from(e: FrameworkError) -> Self {
        PrmiError::Framework(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, PrmiError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(PrmiError::SimpleArgMismatch { method: 3 }.to_string().contains('3'));
        let d = PrmiError::DeliveryDeadlock { waiting_for: "share from rank 2".into() };
        assert!(d.to_string().contains("rank 2"));
    }
}
