//! General grids: physical grid description with masking.
//!
//! "A data object for describing physical grids capable of supporting
//! grids of arbitrary dimension and unstructured grids, and … capable of
//! supporting masking of grid elements (e.g., land/ocean mask)"
//! (paper §4.5 — MCT's `GeneralGrid`).
//!
//! A grid is a list of points (structure-free, hence "unstructured-
//! capable"): per-point coordinates in any number of dimensions, a cell
//! weight (area/volume) for integrals, and named integer masks.

use std::collections::HashMap;

/// A (local portion of a) physical grid.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneralGrid {
    npoints: usize,
    /// `coords[d][p]` = coordinate `d` of point `p`.
    coords: Vec<Vec<f64>>,
    /// Cell weight (area/volume) per point.
    weights: Vec<f64>,
    /// Named integer masks (nonzero = active).
    masks: HashMap<String, Vec<i64>>,
}

impl GeneralGrid {
    /// Creates a grid from per-dimension coordinate lists and cell weights.
    ///
    /// # Panics
    /// If lengths disagree.
    pub fn new(coords: Vec<Vec<f64>>, weights: Vec<f64>) -> Self {
        let npoints = weights.len();
        for (d, c) in coords.iter().enumerate() {
            assert_eq!(c.len(), npoints, "coordinate axis {d} length mismatch");
        }
        GeneralGrid { npoints, coords, weights, masks: HashMap::new() }
    }

    /// A 1-D uniform grid on `[lo, hi]` with equal cell weights — handy
    /// for tests and examples.
    pub fn uniform_1d(npoints: usize, lo: f64, hi: f64) -> Self {
        assert!(npoints > 0);
        let h = (hi - lo) / npoints as f64;
        let xs = (0..npoints).map(|i| lo + (i as f64 + 0.5) * h).collect();
        GeneralGrid::new(vec![xs], vec![h; npoints])
    }

    /// Number of local points.
    pub fn npoints(&self) -> usize {
        self.npoints
    }

    /// Number of coordinate dimensions.
    pub fn ndim(&self) -> usize {
        self.coords.len()
    }

    /// Coordinate axis `d`.
    pub fn coord(&self, d: usize) -> &[f64] {
        &self.coords[d]
    }

    /// Cell weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Adds (or replaces) a named mask; nonzero entries are active.
    pub fn set_mask(&mut self, name: &str, mask: Vec<i64>) {
        assert_eq!(mask.len(), self.npoints, "mask length mismatch");
        self.masks.insert(name.to_string(), mask);
    }

    /// A named mask, if present.
    pub fn mask(&self, name: &str) -> Option<&[i64]> {
        self.masks.get(name).map(Vec::as_slice)
    }

    /// The effective weight of point `p` under an optional mask: zero for
    /// masked-out points.
    pub fn masked_weight(&self, p: usize, mask: Option<&str>) -> f64 {
        match mask.and_then(|m| self.masks.get(m)) {
            Some(m) if m[p] == 0 => 0.0,
            _ => self.weights[p],
        }
    }

    /// Number of active points under a mask (all, if no such mask).
    pub fn active_points(&self, mask: Option<&str>) -> usize {
        match mask.and_then(|m| self.masks.get(m)) {
            Some(m) => m.iter().filter(|&&v| v != 0).count(),
            None => self.npoints,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_grid_geometry() {
        let g = GeneralGrid::uniform_1d(4, 0.0, 2.0);
        assert_eq!(g.npoints(), 4);
        assert_eq!(g.ndim(), 1);
        assert_eq!(g.coord(0), &[0.25, 0.75, 1.25, 1.75]);
        assert_eq!(g.weights(), &[0.5; 4]);
        assert_eq!(g.weights().iter().sum::<f64>(), 2.0, "weights cover the domain");
    }

    #[test]
    fn unstructured_2d_grid() {
        let g =
            GeneralGrid::new(vec![vec![0.0, 1.0, 0.5], vec![0.0, 0.0, 1.0]], vec![0.3, 0.3, 0.4]);
        assert_eq!(g.ndim(), 2);
        assert_eq!(g.npoints(), 3);
        assert_eq!(g.coord(1)[2], 1.0);
    }

    #[test]
    fn land_ocean_mask() {
        let mut g = GeneralGrid::uniform_1d(4, 0.0, 4.0);
        g.set_mask("ocean", vec![1, 0, 1, 0]);
        assert_eq!(g.active_points(Some("ocean")), 2);
        assert_eq!(g.active_points(None), 4);
        assert_eq!(g.masked_weight(0, Some("ocean")), 1.0);
        assert_eq!(g.masked_weight(1, Some("ocean")), 0.0);
        assert_eq!(g.masked_weight(1, None), 1.0);
        // Unknown mask name behaves as unmasked.
        assert_eq!(g.masked_weight(1, Some("ice")), 1.0);
        assert!(g.mask("ocean").is_some());
        assert!(g.mask("ice").is_none());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mask_length_checked() {
        let mut g = GeneralGrid::uniform_1d(4, 0.0, 1.0);
        g.set_mask("m", vec![1, 2]);
    }
}
