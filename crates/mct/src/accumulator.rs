//! Time-averaging and accumulation registers.
//!
//! "Registers for time averaging and accumulation of field data for use in
//! coupling concurrently executing components that do not share a common
//! time-step, or are coupled at a frequency of multiple time-steps"
//! (paper §4.5 — MCT's `Accumulator`).

use std::collections::HashMap;

use crate::attrvect::AttrVect;

/// What happens to a field when the register is read out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccumAction {
    /// Running sum is returned as-is (accumulated fluxes).
    Sum,
    /// Running sum is divided by the number of accumulated steps
    /// (time-averaged states).
    Average,
}

/// A per-rank accumulation register over one field set.
#[derive(Debug, Clone, PartialEq)]
pub struct Accumulator {
    running: AttrVect,
    actions: HashMap<String, AccumAction>,
    steps: u64,
}

impl Accumulator {
    /// Creates a zeroed register for the given real fields with one action
    /// per field.
    pub fn new(fields: &[(&str, AccumAction)], length: usize) -> Self {
        let names: Vec<&str> = fields.iter().map(|(n, _)| *n).collect();
        let actions = fields.iter().map(|(n, a)| (n.to_string(), *a)).collect::<HashMap<_, _>>();
        Accumulator { running: AttrVect::new(&names, &[], length), actions, steps: 0 }
    }

    /// Number of accumulated steps since the last reset.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Accumulates one time-step of data (fields not in the register are
    /// ignored; registered fields must be present in `av`).
    pub fn accumulate(&mut self, av: &AttrVect) {
        assert_eq!(av.lsize(), self.running.lsize(), "length mismatch");
        let names: Vec<String> = self.running.real_names().to_vec();
        for name in names {
            let src = av.real(&name);
            let dst = self.running.real_mut(&name);
            for (d, s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        }
        self.steps += 1;
    }

    /// Reads the register out (applying each field's action) and resets it.
    ///
    /// # Panics
    /// If nothing was accumulated.
    pub fn retrieve(&mut self) -> AttrVect {
        assert!(self.steps > 0, "retrieve on an empty accumulator");
        let mut out = self.running.clone();
        let names: Vec<String> = out.real_names().to_vec();
        for name in names {
            if self.actions[&name] == AccumAction::Average {
                let inv = 1.0 / self.steps as f64;
                for v in out.real_mut(&name) {
                    *v *= inv;
                }
            }
        }
        self.reset();
        out
    }

    /// Zeroes the register.
    pub fn reset(&mut self) {
        self.running.zero();
        self.steps = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_av(step: f64) -> AttrVect {
        let mut av = AttrVect::new(&["state", "flux"], &[], 3);
        av.real_mut("state").copy_from_slice(&[step, step * 2.0, step * 3.0]);
        av.real_mut("flux").copy_from_slice(&[1.0, 1.0, 1.0]);
        av
    }

    #[test]
    fn average_and_sum_actions() {
        let mut acc =
            Accumulator::new(&[("state", AccumAction::Average), ("flux", AccumAction::Sum)], 3);
        for step in 1..=4 {
            acc.accumulate(&step_av(step as f64));
        }
        assert_eq!(acc.steps(), 4);
        let out = acc.retrieve();
        // Average of 1..4 = 2.5 per unit.
        assert_eq!(out.real("state"), &[2.5, 5.0, 7.5]);
        // Sum of four unit fluxes.
        assert_eq!(out.real("flux"), &[4.0, 4.0, 4.0]);
        // Register reset after retrieve.
        assert_eq!(acc.steps(), 0);
    }

    #[test]
    fn reuse_after_retrieve() {
        let mut acc = Accumulator::new(&[("state", AccumAction::Average)], 3);
        acc.accumulate(&step_av(10.0));
        acc.retrieve();
        acc.accumulate(&step_av(4.0));
        let out = acc.retrieve();
        assert_eq!(out.real("state"), &[4.0, 8.0, 12.0]);
    }

    #[test]
    fn extra_fields_in_input_are_ignored() {
        let mut acc = Accumulator::new(&[("flux", AccumAction::Sum)], 3);
        acc.accumulate(&step_av(1.0)); // has both state and flux
        let out = acc.retrieve();
        assert_eq!(out.real("flux"), &[1.0, 1.0, 1.0]);
        assert_eq!(out.num_real(), 1);
    }

    #[test]
    #[should_panic(expected = "empty accumulator")]
    fn retrieve_without_accumulate_panics() {
        Accumulator::new(&[("f", AccumAction::Sum)], 1).retrieve();
    }
}
