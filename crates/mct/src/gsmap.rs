//! The global segment map: MCT's domain decomposition descriptor.
//!
//! A [`GlobalSegMap`] describes how a numbered grid (points `0..gsize`) is
//! decomposed across the ranks of one component: a list of contiguous
//! segments, each owned by a rank. A rank's local storage is the
//! concatenation of its segments in segment order — [`local_index`] maps a
//! global point number to its position in that storage.
//!
//! [`local_index`]: GlobalSegMap::local_index

use mxn_linearize::SegmentList;

/// One contiguous run of global point numbers owned by a rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// First global point number.
    pub start: usize,
    /// Number of points.
    pub length: usize,
    /// Owning rank.
    pub rank: usize,
}

/// A component's decomposition of a numbered grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalSegMap {
    gsize: usize,
    nranks: usize,
    segments: Vec<Segment>,
}

impl GlobalSegMap {
    /// Creates and validates a segment map: segments must be disjoint and
    /// together cover `0..gsize` exactly.
    pub fn new(gsize: usize, nranks: usize, segments: Vec<Segment>) -> Result<Self, String> {
        let mut sorted = segments.clone();
        sorted.sort_by_key(|s| s.start);
        let mut covered = 0;
        for s in &sorted {
            if s.rank >= nranks {
                return Err(format!(
                    "segment at {} owned by out-of-range rank {}",
                    s.start, s.rank
                ));
            }
            if s.start != covered {
                return Err(format!(
                    "gap or overlap at point {covered} (next segment at {})",
                    s.start
                ));
            }
            covered += s.length;
        }
        if covered != gsize {
            return Err(format!("segments cover {covered} of {gsize} points"));
        }
        Ok(GlobalSegMap { gsize, nranks, segments })
    }

    /// Uniform block decomposition (the common case).
    pub fn block(gsize: usize, nranks: usize) -> Self {
        let chunk = gsize.div_ceil(nranks);
        let mut segments = Vec::new();
        let mut start = 0;
        for r in 0..nranks {
            let len = chunk.min(gsize.saturating_sub(start));
            if len > 0 {
                segments.push(Segment { start, length: len, rank: r });
            }
            start += len;
        }
        GlobalSegMap::new(gsize, nranks, segments).expect("block decomposition is valid")
    }

    /// Round-robin decomposition in runs of `chunk` points — produces the
    /// many-segment maps that stress routers.
    pub fn cyclic(gsize: usize, nranks: usize, chunk: usize) -> Self {
        assert!(chunk > 0);
        let mut segments = Vec::new();
        let mut start = 0;
        let mut r = 0;
        while start < gsize {
            let len = chunk.min(gsize - start);
            segments.push(Segment { start, length: len, rank: r % nranks });
            start += len;
            r += 1;
        }
        GlobalSegMap::new(gsize, nranks, segments).expect("cyclic decomposition is valid")
    }

    /// Total grid points.
    pub fn gsize(&self) -> usize {
        self.gsize
    }

    /// Ranks in the component.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// All segments (unsorted, as given).
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// The segments owned by `rank`, in ascending start order.
    pub fn rank_segments(&self, rank: usize) -> Vec<Segment> {
        let mut v: Vec<Segment> =
            self.segments.iter().copied().filter(|s| s.rank == rank).collect();
        v.sort_by_key(|s| s.start);
        v
    }

    /// Number of points stored by `rank` ("lsize").
    pub fn lsize(&self, rank: usize) -> usize {
        self.segments.iter().filter(|s| s.rank == rank).map(|s| s.length).sum()
    }

    /// Owner of global point `p`.
    pub fn owner(&self, p: usize) -> usize {
        self.segments
            .iter()
            .find(|s| s.start <= p && p < s.start + s.length)
            .map(|s| s.rank)
            .expect("validated cover owns every point")
    }

    /// `rank`'s footprint as a [`SegmentList`] over the global numbering.
    pub fn as_segment_list(&self, rank: usize) -> SegmentList {
        SegmentList::from_runs(
            self.rank_segments(rank).iter().map(|s| (s.start, s.length)).collect(),
        )
    }

    /// Maps a global point to its position in `rank`'s local storage
    /// (segments concatenated in ascending start order), if owned.
    pub fn local_index(&self, rank: usize, p: usize) -> Option<usize> {
        let mut offset = 0;
        for s in self.rank_segments(rank) {
            if p >= s.start && p < s.start + s.length {
                return Some(offset + (p - s.start));
            }
            offset += s.length;
        }
        None
    }

    /// Inverse of [`GlobalSegMap::local_index`].
    pub fn global_index(&self, rank: usize, local: usize) -> Option<usize> {
        let mut offset = 0;
        for s in self.rank_segments(rank) {
            if local < offset + s.length {
                return Some(s.start + (local - offset));
            }
            offset += s.length;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_decomposition() {
        let m = GlobalSegMap::block(10, 3);
        assert_eq!(m.lsize(0), 4);
        assert_eq!(m.lsize(1), 4);
        assert_eq!(m.lsize(2), 2);
        assert_eq!(m.owner(0), 0);
        assert_eq!(m.owner(9), 2);
    }

    #[test]
    fn cyclic_decomposition_many_segments() {
        let m = GlobalSegMap::cyclic(12, 2, 2);
        assert_eq!(m.rank_segments(0).len(), 3);
        assert_eq!(m.lsize(0), 6);
        assert_eq!(m.owner(2), 1);
        assert_eq!(m.owner(4), 0);
    }

    #[test]
    fn validation_catches_gaps_overlaps_and_bad_ranks() {
        let gap = GlobalSegMap::new(
            4,
            1,
            vec![
                Segment { start: 0, length: 1, rank: 0 },
                Segment { start: 2, length: 2, rank: 0 },
            ],
        );
        assert!(gap.is_err());
        let overlap = GlobalSegMap::new(
            4,
            1,
            vec![
                Segment { start: 0, length: 3, rank: 0 },
                Segment { start: 2, length: 2, rank: 0 },
            ],
        );
        assert!(overlap.is_err());
        let bad_rank = GlobalSegMap::new(2, 1, vec![Segment { start: 0, length: 2, rank: 1 }]);
        assert!(bad_rank.is_err());
        let short = GlobalSegMap::new(5, 1, vec![Segment { start: 0, length: 2, rank: 0 }]);
        assert!(short.is_err());
    }

    #[test]
    fn local_global_roundtrip() {
        let m = GlobalSegMap::cyclic(12, 3, 2);
        for r in 0..3 {
            for l in 0..m.lsize(r) {
                let g = m.global_index(r, l).unwrap();
                assert_eq!(m.local_index(r, g), Some(l));
                assert_eq!(m.owner(g), r);
            }
        }
        assert_eq!(m.local_index(0, 2), None, "point 2 not owned by rank 0");
    }

    #[test]
    fn segment_list_matches_lsize() {
        let m = GlobalSegMap::cyclic(20, 4, 3);
        for r in 0..4 {
            assert_eq!(m.as_segment_list(r).total_len(), m.lsize(r));
        }
    }
}
