//! The model registry.
//!
//! "A lightweight model registry that defines the MPI processes on which a
//! module resides, and a process ID look-up table that obviates the need
//! for inter-communicators between concurrently executing modules"
//! (paper §4.5, MCT's `MCTWorld`).

use std::collections::HashMap;

use mxn_runtime::{Comm, Result, RuntimeError};

/// The coupled system's component layout: which world ranks each component
/// (model) occupies. Replicated on every rank after [`ModelRegistry::init`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelRegistry {
    /// component id → world ranks, in component-rank order.
    components: HashMap<u32, Vec<usize>>,
    /// This process's component id.
    my_component: u32,
}

impl ModelRegistry {
    /// Collectively builds the registry over the *world* communicator:
    /// every rank declares its component id; the table is assembled by an
    /// allgather, so afterwards any rank can address any other component's
    /// processes directly by world rank — no inter-communicator needed.
    pub fn init(world: &Comm, my_component: u32) -> Result<Self> {
        let ids: Vec<u32> = world.allgather(my_component)?;
        let mut components: HashMap<u32, Vec<usize>> = HashMap::new();
        for (world_rank, id) in ids.iter().enumerate() {
            components.entry(*id).or_default().push(world.group()[world_rank]);
        }
        Ok(ModelRegistry { components, my_component })
    }

    /// This process's component id.
    pub fn my_component(&self) -> u32 {
        self.my_component
    }

    /// The component ids present, sorted.
    pub fn component_ids(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.components.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Number of processes a component occupies.
    pub fn component_size(&self, id: u32) -> Result<usize> {
        self.components.get(&id).map(Vec::len).ok_or_else(|| RuntimeError::CollectiveMismatch {
            detail: format!("unknown component id {id}"),
        })
    }

    /// The process ID look-up: world rank of `component`'s rank `r`.
    pub fn world_rank(&self, component: u32, r: usize) -> Result<usize> {
        let ranks = self.components.get(&component).ok_or_else(|| {
            RuntimeError::CollectiveMismatch { detail: format!("unknown component id {component}") }
        })?;
        ranks.get(r).copied().ok_or(RuntimeError::InvalidRank { rank: r, size: ranks.len() })
    }

    /// All world ranks of a component.
    pub fn component_ranks(&self, id: u32) -> Option<&[usize]> {
        self.components.get(&id).map(Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mxn_runtime::World;

    #[test]
    fn registry_from_interleaved_components() {
        World::run(6, |p| {
            let world = p.world();
            // Even ranks are the "atmosphere" (id 1), odd the "ocean" (2).
            let my = if p.rank() % 2 == 0 { 1 } else { 2 };
            let reg = ModelRegistry::init(world, my).unwrap();
            assert_eq!(reg.my_component(), my);
            assert_eq!(reg.component_ids(), vec![1, 2]);
            assert_eq!(reg.component_size(1).unwrap(), 3);
            assert_eq!(reg.component_size(2).unwrap(), 3);
            // Process ID lookup: ocean rank 2 lives at world rank 5.
            assert_eq!(reg.world_rank(2, 2).unwrap(), 5);
            assert_eq!(reg.world_rank(1, 0).unwrap(), 0);
            assert!(reg.world_rank(1, 3).is_err());
            assert!(reg.world_rank(9, 0).is_err());
        });
    }

    #[test]
    fn direct_messaging_without_intercomm() {
        // The point of the registry: components message each other on the
        // world communicator using looked-up ranks.
        World::run(4, |p| {
            let world = p.world();
            let my = if p.rank() < 2 { 10 } else { 20 };
            let reg = ModelRegistry::init(world, my).unwrap();
            if my == 10 {
                // Component 10 rank r sends to component 20 rank r.
                let me =
                    reg.component_ranks(10).unwrap().iter().position(|&w| w == p.rank()).unwrap();
                let dst = reg.world_rank(20, me).unwrap();
                world.send(dst, 1, me as u64).unwrap();
            } else {
                let me =
                    reg.component_ranks(20).unwrap().iter().position(|&w| w == p.rank()).unwrap();
                let src = reg.world_rank(10, me).unwrap();
                let v: u64 = world.recv(src, 1).unwrap();
                assert_eq!(v as usize, me);
            }
        });
    }
}
