//! # mxn-mct — the Model Coupling Toolkit
//!
//! The MCT of the paper's §4.5: M×N capabilities implemented "at a higher
//! level than the other CCA projects", as the services a climate-style
//! coupled model needs. Every bullet of the paper's feature list has a
//! module here:
//!
//! * [`registry`] — the lightweight model registry and process-ID lookup
//!   that obviates inter-communicators.
//! * [`attrvect`] — the multi-field attribute vector, the "common
//!   currency" of data exchange (field-major, cache-friendly).
//! * [`gsmap`] — global segment maps (domain decomposition descriptors).
//! * [`router`] — communication schedulers for intermodule transfer
//!   ([`Router`]) and intra-module redistribution ([`Rearranger`]).
//! * [`sparsemat`] — distributed sparse matrices; interpolation as
//!   parallel sparse matrix–vector multiply over all fields at once.
//! * [`grid`] — general grids of arbitrary dimension with masking.
//! * [`integrals`] — spatial integrals and averages, including *paired*
//!   integrals for flux conservation across inter-grid interpolation.
//! * [`accumulator`] — time-averaging registers for components that do not
//!   share a time-step.
//! * [`merge`] — blending of state/flux data from multiple sources.

pub mod accumulator;
pub mod attrvect;
pub mod grid;
pub mod gsmap;
pub mod integrals;
pub mod merge;
pub mod registry;
pub mod remap;
pub mod router;
pub mod sparsemat;

pub use accumulator::{AccumAction, Accumulator};
pub use attrvect::AttrVect;
pub use grid::GeneralGrid;
pub use gsmap::{GlobalSegMap, Segment};
pub use integrals::{global_average, global_integral, paired_integral, PairedIntegral};
pub use merge::{merge, MergeSource};
pub use registry::ModelRegistry;
pub use remap::{conservative_remap_1d, CellGrid1d};
pub use router::{Rearranger, Router, RouterPair};
pub use sparsemat::{SparseElem, SparseMatrix, SparseMatrixPlus};
