//! Conservative remapping weight generation.
//!
//! MCT ships interpolation as sparse matrix–vector multiplication
//! (paper §4.5); the *weights* come from the grids. This module generates
//! first-order conservative remap weights for 1-D cell grids — the
//! overlap-area method used between climate model grids — so coupled
//! models need not hand-author matrices:
//!
//! `A[d][s] = |dst_cell_d ∩ src_cell_s| / |dst_cell_d|`
//!
//! Row sums are exactly 1 wherever the destination cell is fully covered
//! by the source grid, which (with cell-width weights) makes the paired
//! flux integrals of [`crate::integrals`] agree.

use mxn_runtime::RuntimeError;

use crate::sparsemat::{SparseElem, SparseMatrix};

/// A 1-D cell grid described by its `n + 1` ascending edge coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct CellGrid1d {
    edges: Vec<f64>,
}

impl CellGrid1d {
    /// Creates a grid from ascending edges (≥ 2 of them).
    pub fn new(edges: Vec<f64>) -> Result<Self, RuntimeError> {
        if edges.len() < 2 {
            return Err(RuntimeError::CollectiveMismatch {
                detail: "a cell grid needs at least two edges".into(),
            });
        }
        if edges.windows(2).any(|w| w[0] >= w[1]) {
            return Err(RuntimeError::CollectiveMismatch {
                detail: "grid edges must be strictly ascending".into(),
            });
        }
        Ok(CellGrid1d { edges })
    }

    /// A uniform grid of `n` cells spanning `[lo, hi]`.
    pub fn uniform(n: usize, lo: f64, hi: f64) -> Self {
        assert!(n > 0 && hi > lo);
        let h = (hi - lo) / n as f64;
        CellGrid1d { edges: (0..=n).map(|i| lo + i as f64 * h).collect() }
    }

    /// Number of cells.
    pub fn ncells(&self) -> usize {
        self.edges.len() - 1
    }

    /// Width of cell `i` (its integral weight).
    pub fn width(&self, i: usize) -> f64 {
        self.edges[i + 1] - self.edges[i]
    }

    /// Cell widths as a weights vector (for [`crate::grid::GeneralGrid`]).
    pub fn widths(&self) -> Vec<f64> {
        (0..self.ncells()).map(|i| self.width(i)).collect()
    }

    /// The edge coordinates.
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }
}

/// Generates first-order conservative remap weights from `src` to `dst`.
/// Destination cells (or parts of them) outside the source span receive
/// no contribution — their row sums fall short of 1, which callers can
/// detect with [`SparseMatrix::local_row_sums`].
pub fn conservative_remap_1d(src: &CellGrid1d, dst: &CellGrid1d) -> SparseMatrix {
    let mut elems = Vec::new();
    let mut s = 0usize;
    for d in 0..dst.ncells() {
        let (dlo, dhi) = (dst.edges[d], dst.edges[d + 1]);
        let dw = dhi - dlo;
        // Advance the source cursor to the first cell that may overlap.
        while s < src.ncells() && src.edges[s + 1] <= dlo {
            s += 1;
        }
        let mut k = s;
        while k < src.ncells() && src.edges[k] < dhi {
            let lo = src.edges[k].max(dlo);
            let hi = src.edges[k + 1].min(dhi);
            if hi > lo {
                elems.push(SparseElem { row: d, col: k, weight: (hi - lo) / dw });
            }
            k += 1;
        }
    }
    SparseMatrix::new(dst.ncells(), src.ncells(), elems).expect("generated indices are in range")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_construction_and_validation() {
        let g = CellGrid1d::uniform(4, 0.0, 2.0);
        assert_eq!(g.ncells(), 4);
        assert_eq!(g.width(0), 0.5);
        assert_eq!(g.widths(), vec![0.5; 4]);
        assert!(CellGrid1d::new(vec![0.0]).is_err());
        assert!(CellGrid1d::new(vec![0.0, 0.0]).is_err());
        assert!(CellGrid1d::new(vec![0.0, 1.0, 0.5]).is_err());
        assert!(CellGrid1d::new(vec![0.0, 0.3, 1.7]).is_ok());
    }

    #[test]
    fn aligned_2to1_coarsening_reproduces_the_hand_matrix() {
        let fine = CellGrid1d::uniform(8, 0.0, 8.0);
        let coarse = CellGrid1d::uniform(4, 0.0, 8.0);
        let a = conservative_remap_1d(&fine, &coarse);
        assert_eq!(a.lsize(), 8, "two sources per destination");
        for e in a.elems() {
            assert!((e.weight - 0.5).abs() < 1e-12);
            assert!(e.col / 2 == e.row);
        }
        for (_, s) in a.local_row_sums() {
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn misaligned_grids_conserve_exactly() {
        // Irregular source, shifted irregular destination inside its span.
        let src = CellGrid1d::new(vec![0.0, 0.7, 1.1, 2.0, 3.5, 4.0]).unwrap();
        let dst = CellGrid1d::new(vec![0.2, 0.9, 2.6, 3.9]).unwrap();
        let a = conservative_remap_1d(&src, &dst);
        // Row sums are 1 (dst fully inside src span).
        for (_, s) in a.local_row_sums() {
            assert!((s - 1.0).abs() < 1e-12, "row sum {s}");
        }
        // Conservation: ∫dst f = ∫src f restricted to dst span, for f = 1
        // trivially; check with a piecewise-constant f = cell index + 1.
        let x: Vec<f64> = (0..src.ncells()).map(|i| i as f64 + 1.0).collect();
        let mut y = vec![0.0; dst.ncells()];
        for e in a.elems() {
            y[e.row] += e.weight * x[e.col];
        }
        // ∫dst y = Σ y_d · w_d must equal ∫ over the dst span of the
        // piecewise-constant source function.
        let int_dst: f64 = (0..dst.ncells()).map(|d| y[d] * dst.width(d)).sum();
        let mut int_src = 0.0;
        for (s, &xs) in x.iter().enumerate() {
            let lo = src.edges()[s].max(dst.edges()[0]);
            let hi = src.edges()[s + 1].min(*dst.edges().last().unwrap());
            if hi > lo {
                int_src += xs * (hi - lo);
            }
        }
        assert!((int_dst - int_src).abs() < 1e-12, "{int_dst} vs {int_src}");
    }

    #[test]
    fn destination_outside_source_has_short_rows() {
        let src = CellGrid1d::uniform(2, 0.0, 1.0);
        let dst = CellGrid1d::new(vec![-1.0, 0.0, 0.5, 2.0]).unwrap();
        let a = conservative_remap_1d(&src, &dst);
        let sums = a.local_row_sums();
        assert!(!sums.contains_key(&0), "cell before the source span gets nothing");
        assert!((sums[&1] - 1.0).abs() < 1e-12);
        // Cell 2 spans [0.5, 2.0] but the source only covers [0.5, 1.0]:
        // row sum = 0.5 / 1.5.
        assert!((sums[&2] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn refinement_distributes_each_source_cell() {
        let src = CellGrid1d::uniform(2, 0.0, 2.0);
        let dst = CellGrid1d::uniform(8, 0.0, 2.0);
        let a = conservative_remap_1d(&src, &dst);
        // Each fine cell lies in exactly one coarse cell: weight 1.
        assert_eq!(a.lsize(), 8);
        for e in a.elems() {
            assert!((e.weight - 1.0).abs() < 1e-12);
        }
    }
}
