//! Merging state and flux data from multiple sources.
//!
//! "A facility for merging of state and flux data from multiple sources
//! for use by a particular model (e.g., blending of land, ocean, and sea
//! ice data for use by an atmosphere model)." (paper §4.5)
//!
//! Each source contributes per-point *fractions* (e.g. the land/ocean/ice
//! area fractions of an atmosphere cell); the merge is the fraction-
//! weighted blend, normalized by the total fraction at each point.

use crate::attrvect::AttrVect;

/// One merge input: a field set plus its per-point fraction.
pub struct MergeSource<'a> {
    /// The source component's data on the destination grid.
    pub av: &'a AttrVect,
    /// Per-point fraction of the destination cell this source covers.
    pub fraction: &'a [f64],
}

/// Merges `sources` into a fresh attribute vector holding `fields`.
/// At each point, `out = Σ fᵢ·srcᵢ / Σ fᵢ`; points with zero total
/// fraction are left at 0.
///
/// # Panics
/// On length or missing-field mismatches.
pub fn merge(fields: &[&str], length: usize, sources: &[MergeSource<'_>]) -> AttrVect {
    let mut out = AttrVect::new(fields, &[], length);
    let mut total = vec![0.0f64; length];
    for s in sources {
        assert_eq!(s.av.lsize(), length, "source length mismatch");
        assert_eq!(s.fraction.len(), length, "fraction length mismatch");
        for (t, f) in total.iter_mut().zip(s.fraction) {
            assert!(*f >= 0.0, "fractions must be non-negative");
            *t += f;
        }
    }
    for &field in fields {
        // Field-major accumulation.
        for s in sources {
            let src = s.av.real(field);
            let dst = out.real_mut(field);
            for p in 0..length {
                dst[p] += s.fraction[p] * src[p];
            }
        }
        let dst = out.real_mut(field);
        for p in 0..length {
            if total[p] > 0.0 {
                dst[p] /= total[p];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constant_av(fields: &[&str], length: usize, value: f64) -> AttrVect {
        let mut av = AttrVect::new(fields, &[], length);
        for f in fields {
            av.real_mut(f).fill(value);
        }
        av
    }

    #[test]
    fn blend_of_land_ocean_ice() {
        let land = constant_av(&["t"], 4, 300.0);
        let ocean = constant_av(&["t"], 4, 280.0);
        let ice = constant_av(&["t"], 4, 260.0);
        let f_land = [1.0, 0.0, 0.5, 0.2];
        let f_ocean = [0.0, 1.0, 0.5, 0.3];
        let f_ice = [0.0, 0.0, 0.0, 0.5];
        let out = merge(
            &["t"],
            4,
            &[
                MergeSource { av: &land, fraction: &f_land },
                MergeSource { av: &ocean, fraction: &f_ocean },
                MergeSource { av: &ice, fraction: &f_ice },
            ],
        );
        assert_eq!(out.real("t")[0], 300.0, "pure land");
        assert_eq!(out.real("t")[1], 280.0, "pure ocean");
        assert_eq!(out.real("t")[2], 290.0, "half/half");
        let blended = 0.2 * 300.0 + 0.3 * 280.0 + 0.5 * 260.0;
        assert!((out.real("t")[3] - blended).abs() < 1e-12);
    }

    #[test]
    fn fractions_are_normalized() {
        // Fractions that do not sum to 1 still produce a weighted mean.
        let a = constant_av(&["q"], 2, 10.0);
        let b = constant_av(&["q"], 2, 20.0);
        let out = merge(
            &["q"],
            2,
            &[
                MergeSource { av: &a, fraction: &[2.0, 1.0] },
                MergeSource { av: &b, fraction: &[2.0, 3.0] },
            ],
        );
        assert_eq!(out.real("q")[0], 15.0);
        assert_eq!(out.real("q")[1], 17.5);
    }

    #[test]
    fn zero_total_fraction_leaves_zero() {
        let a = constant_av(&["q"], 2, 10.0);
        let out = merge(&["q"], 2, &[MergeSource { av: &a, fraction: &[0.0, 1.0] }]);
        assert_eq!(out.real("q"), &[0.0, 10.0]);
    }

    #[test]
    fn multi_field_merge() {
        let mut a = AttrVect::new(&["t", "u"], &[], 1);
        a.real_mut("t")[0] = 1.0;
        a.real_mut("u")[0] = 100.0;
        let mut b = AttrVect::new(&["t", "u"], &[], 1);
        b.real_mut("t")[0] = 3.0;
        b.real_mut("u")[0] = 200.0;
        let out = merge(
            &["t", "u"],
            1,
            &[MergeSource { av: &a, fraction: &[0.5] }, MergeSource { av: &b, fraction: &[0.5] }],
        );
        assert_eq!(out.real("t")[0], 2.0);
        assert_eq!(out.real("u")[0], 150.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_fraction_rejected() {
        let a = constant_av(&["q"], 1, 1.0);
        merge(&["q"], 1, &[MergeSource { av: &a, fraction: &[-0.1] }]);
    }
}
