//! Routers and rearrangers: MCT's communication schedulers.
//!
//! "Domain decomposition descriptors, communications schedulers for
//! intermodule parallel data transfer and intra-module parallel data
//! redistribution, and the facilities to implement intermodule
//! handshaking" (paper §4.5).
//!
//! A [`Router`] is built from this side's [`GlobalSegMap`] and the peer
//! component's map: for each peer rank it records the shared global points
//! and their positions in this rank's local storage. Transfers then move
//! packed multi-field [`AttrVect`] buffers directly over the **world**
//! communicator, addressing peers through the [`ModelRegistry`] — MCT's
//! "no inter-communicators needed" design.

use mxn_runtime::{Comm, Result, RuntimeError};

use crate::attrvect::AttrVect;
use crate::gsmap::GlobalSegMap;
use crate::registry::ModelRegistry;

/// One peer rank's share of a router: where to send/receive and which
/// local points participate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterPair {
    /// Peer rank within its component.
    pub peer_comp_rank: usize,
    /// Peer's world rank (from the registry).
    pub world_rank: usize,
    /// Positions in *this* rank's local storage, ascending global order.
    pub local_points: Vec<usize>,
}

/// An intermodule transfer schedule for one rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Router {
    pairs: Vec<RouterPair>,
    my_lsize: usize,
}

impl Router {
    /// Builds the router for `my_comp_rank` of the component decomposed by
    /// `my_map`, coupling to `peer_component` decomposed by `peer_map`.
    /// Both maps must number the same grid.
    pub fn new(
        my_map: &GlobalSegMap,
        my_comp_rank: usize,
        peer_map: &GlobalSegMap,
        registry: &ModelRegistry,
        peer_component: u32,
    ) -> Result<Router> {
        if my_map.gsize() != peer_map.gsize() {
            return Err(RuntimeError::CollectiveMismatch {
                detail: format!("grid size mismatch: {} vs {}", my_map.gsize(), peer_map.gsize()),
            });
        }
        let mine = my_map.as_segment_list(my_comp_rank);
        let mut pairs = Vec::new();
        for peer in 0..peer_map.nranks() {
            let theirs = peer_map.as_segment_list(peer);
            let shared = mine.intersect(&theirs);
            if shared.is_empty() {
                continue;
            }
            let local_points: Vec<usize> = shared
                .positions()
                .map(|g| {
                    my_map
                        .local_index(my_comp_rank, g)
                        .expect("intersection points are locally owned")
                })
                .collect();
            pairs.push(RouterPair {
                peer_comp_rank: peer,
                world_rank: registry.world_rank(peer_component, peer)?,
                local_points,
            });
        }
        Ok(Router { pairs, my_lsize: my_map.lsize(my_comp_rank) })
    }

    /// The per-peer plans.
    pub fn pairs(&self) -> &[RouterPair] {
        &self.pairs
    }

    /// Total points this rank exchanges.
    pub fn total_points(&self) -> usize {
        self.pairs.iter().map(|p| p.local_points.len()).sum()
    }

    /// Sends `av`'s real fields to the peer component (MCT `MCT_Send`).
    pub fn send(&self, world: &Comm, av: &AttrVect, tag: i32) -> Result<()> {
        assert_eq!(av.lsize(), self.my_lsize, "attribute vector does not match the map");
        for pair in &self.pairs {
            let buf = av.pack_points(&pair.local_points);
            world.send(pair.world_rank, tag, buf)?;
        }
        Ok(())
    }

    /// Receives into `av`'s real fields from the peer component
    /// (MCT `MCT_Recv`). Field lists must match the sender's.
    pub fn recv(&self, world: &Comm, av: &mut AttrVect, tag: i32) -> Result<()> {
        assert_eq!(av.lsize(), self.my_lsize, "attribute vector does not match the map");
        for pair in &self.pairs {
            let buf: Vec<f64> = world.recv(pair.world_rank, tag)?;
            av.unpack_points(&pair.local_points, &buf);
        }
        Ok(())
    }
}

/// An intra-component redistribution between two decompositions of the
/// same grid (MCT's `Rearranger`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rearranger {
    /// Per destination rank: my local (source-map) points to send.
    send: Vec<(usize, Vec<usize>)>,
    /// Per source rank: my local (destination-map) points to fill.
    recv: Vec<(usize, Vec<usize>)>,
    src_lsize: usize,
    dst_lsize: usize,
}

impl Rearranger {
    /// Builds the rearranger for `my_rank` moving data laid out by `src`
    /// to the layout of `dst` (same grid, same communicator).
    pub fn new(src: &GlobalSegMap, dst: &GlobalSegMap, my_rank: usize) -> Result<Rearranger> {
        if src.gsize() != dst.gsize() {
            return Err(RuntimeError::CollectiveMismatch {
                detail: "rearranger grids differ".into(),
            });
        }
        let my_src = src.as_segment_list(my_rank);
        let my_dst = dst.as_segment_list(my_rank);
        let mut send = Vec::new();
        for peer in 0..dst.nranks() {
            let shared = my_src.intersect(&dst.as_segment_list(peer));
            if !shared.is_empty() {
                let pts = shared
                    .positions()
                    .map(|g| src.local_index(my_rank, g).expect("owned"))
                    .collect();
                send.push((peer, pts));
            }
        }
        let mut recv = Vec::new();
        for peer in 0..src.nranks() {
            let shared = my_dst.intersect(&src.as_segment_list(peer));
            if !shared.is_empty() {
                let pts = shared
                    .positions()
                    .map(|g| dst.local_index(my_rank, g).expect("owned"))
                    .collect();
                recv.push((peer, pts));
            }
        }
        Ok(Rearranger { send, recv, src_lsize: src.lsize(my_rank), dst_lsize: dst.lsize(my_rank) })
    }

    /// Executes the redistribution collectively over `comm`.
    pub fn rearrange(
        &self,
        comm: &Comm,
        src_av: &AttrVect,
        dst_av: &mut AttrVect,
        tag: i32,
    ) -> Result<()> {
        assert_eq!(src_av.lsize(), self.src_lsize, "source av does not match source map");
        assert_eq!(dst_av.lsize(), self.dst_lsize, "dest av does not match dest map");
        for (peer, pts) in &self.send {
            comm.send(*peer, tag, src_av.pack_points(pts))?;
        }
        for (peer, pts) in &self.recv {
            let buf: Vec<f64> = comm.recv(*peer, tag)?;
            dst_av.unpack_points(pts, &buf);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mxn_runtime::World;

    /// Two components over one world: ranks 0..2 = atmosphere (block map),
    /// ranks 2..5 = ocean (cyclic map). Couple a 12-point field.
    #[test]
    fn intermodule_send_recv_via_registry() {
        World::run(5, |p| {
            let world = p.world();
            let my_comp = if p.rank() < 2 { 1 } else { 2 };
            let reg = ModelRegistry::init(world, my_comp).unwrap();
            let atm_map = GlobalSegMap::block(12, 2);
            let ocn_map = GlobalSegMap::cyclic(12, 3, 2);
            if my_comp == 1 {
                let me = p.rank();
                let router = Router::new(&atm_map, me, &ocn_map, &reg, 2).unwrap();
                let mut av = AttrVect::new(&["t", "q"], &[], atm_map.lsize(me));
                for l in 0..av.lsize() {
                    let g = atm_map.global_index(me, l).unwrap() as f64;
                    av.real_mut("t")[l] = g;
                    av.real_mut("q")[l] = g * 10.0;
                }
                router.send(world, &av, 3).unwrap();
            } else {
                let me = p.rank() - 2;
                let router = Router::new(&ocn_map, me, &atm_map, &reg, 1).unwrap();
                let mut av = AttrVect::new(&["t", "q"], &[], ocn_map.lsize(me));
                router.recv(world, &mut av, 3).unwrap();
                for l in 0..av.lsize() {
                    let g = ocn_map.global_index(me, l).unwrap() as f64;
                    assert_eq!(av.real("t")[l], g);
                    assert_eq!(av.real("q")[l], g * 10.0);
                }
            }
        });
    }

    #[test]
    fn router_grid_mismatch_rejected() {
        World::run(2, |p| {
            let world = p.world();
            let reg = ModelRegistry::init(world, p.rank() as u32).unwrap();
            let a = GlobalSegMap::block(10, 1);
            let b = GlobalSegMap::block(12, 1);
            assert!(Router::new(&a, 0, &b, &reg, 1).is_err());
        });
    }

    #[test]
    fn rearranger_block_to_cyclic_roundtrip() {
        World::run(3, |p| {
            let comm = p.world();
            let me = comm.rank();
            let src = GlobalSegMap::block(15, 3);
            let dst = GlobalSegMap::cyclic(15, 3, 2);
            let re = Rearranger::new(&src, &dst, me).unwrap();
            let mut sav = AttrVect::new(&["x"], &[], src.lsize(me));
            for l in 0..sav.lsize() {
                sav.real_mut("x")[l] = src.global_index(me, l).unwrap() as f64;
            }
            let mut dav = AttrVect::new(&["x"], &[], dst.lsize(me));
            re.rearrange(comm, &sav, &mut dav, 7).unwrap();
            for l in 0..dav.lsize() {
                assert_eq!(dav.real("x")[l], dst.global_index(me, l).unwrap() as f64);
            }
            // And back again.
            let back = Rearranger::new(&dst, &src, me).unwrap();
            let mut sav2 = AttrVect::new(&["x"], &[], src.lsize(me));
            back.rearrange(comm, &dav, &mut sav2, 8).unwrap();
            assert_eq!(sav, sav2);
        });
    }

    #[test]
    fn router_counts_match_overlap() {
        World::run(2, |p| {
            let world = p.world();
            let reg = ModelRegistry::init(world, if p.rank() == 0 { 1 } else { 2 }).unwrap();
            let a = GlobalSegMap::block(8, 1);
            let b = GlobalSegMap::block(8, 1);
            if p.rank() == 0 {
                let r = Router::new(&a, 0, &b, &reg, 2).unwrap();
                assert_eq!(r.pairs().len(), 1);
                assert_eq!(r.total_points(), 8);
            }
        });
    }
}
