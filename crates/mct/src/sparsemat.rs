//! Distributed sparse matrices and parallel interpolation.
//!
//! "A class encapsulating distributed sparse matrix elements and
//! communication schedulers used in performing interpolation as parallel
//! sparse matrix-vector multiplication in a multi-field, cache-friendly
//! fashion" (paper §4.5 — MCT's `SparseMatrix` / `SparseMatrixPlus`).
//!
//! The matrix maps a source grid (columns, decomposed by the source
//! [`GlobalSegMap`]) to a destination grid (rows, decomposed by the
//! destination map). Each rank holds the matrix rows for its destination
//! points; [`SparseMatrixPlus::build`] precomputes the communication
//! schedule that gathers the needed source-vector entries, and
//! [`SparseMatrixPlus::apply`] runs gather + local matvec for *every* real
//! field of an [`AttrVect`] (field-major inner loops).

use std::collections::HashMap;

use mxn_runtime::{Comm, Result, RuntimeError};

use crate::attrvect::AttrVect;
use crate::gsmap::GlobalSegMap;

/// One matrix element: `y[row] += weight * x[col]` (global numbering).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparseElem {
    /// Destination (row) global point.
    pub row: usize,
    /// Source (column) global point.
    pub col: usize,
    /// Interpolation weight.
    pub weight: f64,
}

/// A rank's portion of a distributed sparse matrix: the elements whose
/// rows this rank owns under the destination map.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    nrows: usize,
    ncols: usize,
    elems: Vec<SparseElem>,
}

impl SparseMatrix {
    /// Creates a local matrix portion; elements must reference valid
    /// global rows/cols.
    pub fn new(nrows: usize, ncols: usize, elems: Vec<SparseElem>) -> Result<Self> {
        for e in &elems {
            if e.row >= nrows || e.col >= ncols {
                return Err(RuntimeError::CollectiveMismatch {
                    detail: format!(
                        "element ({}, {}) outside {}×{} matrix",
                        e.row, e.col, nrows, ncols
                    ),
                });
            }
        }
        Ok(SparseMatrix { nrows, ncols, elems })
    }

    /// Global row count (destination grid size).
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Global column count (source grid size).
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Local elements.
    pub fn elems(&self) -> &[SparseElem] {
        &self.elems
    }

    /// Number of local nonzeros.
    pub fn lsize(&self) -> usize {
        self.elems.len()
    }

    /// Row sums of the local portion (for conservation checks: a
    /// conservative remap has unit row sums).
    pub fn local_row_sums(&self) -> HashMap<usize, f64> {
        let mut sums = HashMap::new();
        for e in &self.elems {
            *sums.entry(e.row).or_insert(0.0) += e.weight;
        }
        sums
    }
}

/// A sparse matrix plus its precomputed gather schedule — MCT's
/// `SparseMatrixPlus`.
pub struct SparseMatrixPlus {
    /// Elements rewritten to (dst local row, gathered-x slot, weight).
    local_elems: Vec<(usize, usize, f64)>,
    /// Per peer rank: the x local indices they will send us, in order.
    recv_plan: Vec<(usize, usize)>, // (peer, count)
    /// Per peer rank: our x local indices to send them.
    send_plan: Vec<(usize, Vec<usize>)>,
    /// Total gathered slots.
    gather_len: usize,
    dst_lsize: usize,
    src_lsize: usize,
}

impl SparseMatrixPlus {
    /// Collectively builds the schedule over `comm`. `local` must contain
    /// exactly the elements whose rows `dst_map` assigns to this rank.
    pub fn build(
        comm: &Comm,
        local: &SparseMatrix,
        src_map: &GlobalSegMap,
        dst_map: &GlobalSegMap,
    ) -> Result<SparseMatrixPlus> {
        let me = comm.rank();
        if local.nrows() != dst_map.gsize() || local.ncols() != src_map.gsize() {
            return Err(RuntimeError::CollectiveMismatch {
                detail: "matrix shape does not match the maps".into(),
            });
        }
        // Which global columns do we need, who owns them?
        let mut needed_by_owner: Vec<Vec<usize>> = vec![Vec::new(); comm.size()];
        let mut slot_of: HashMap<usize, usize> = HashMap::new();
        let mut order: Vec<(usize, usize)> = Vec::new(); // (owner, global col)
        for e in local.elems() {
            if e.row >= dst_map.gsize() || dst_map.owner(e.row) != me {
                return Err(RuntimeError::CollectiveMismatch {
                    detail: format!("row {} not owned by rank {me}", e.row),
                });
            }
            if let std::collections::hash_map::Entry::Vacant(slot) = slot_of.entry(e.col) {
                let owner = src_map.owner(e.col);
                needed_by_owner[owner].push(e.col);
                order.push((owner, e.col));
                slot.insert(usize::MAX); // placeholder
            }
        }
        // Gathered buffer layout: peer-major, request order within peer.
        let mut gather_len = 0;
        for cols in &needed_by_owner {
            for &col in cols {
                slot_of.insert(col, gather_len);
                gather_len += 1;
            }
        }
        let recv_plan: Vec<(usize, usize)> = needed_by_owner
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .map(|(p, v)| (p, v.len()))
            .collect();

        // Tell each owner which columns we need (alltoallv of requests).
        let requests = comm.alltoallv(needed_by_owner.clone())?;
        let send_plan: Vec<(usize, Vec<usize>)> = requests
            .into_iter()
            .enumerate()
            .filter(|(_, cols)| !cols.is_empty())
            .map(|(peer, cols)| {
                let locals = cols
                    .into_iter()
                    .map(|c| {
                        src_map.local_index(me, c).ok_or(RuntimeError::CollectiveMismatch {
                            detail: format!("rank {me} asked for unowned column {c}"),
                        })
                    })
                    .collect::<Result<Vec<usize>>>()?;
                Ok((peer, locals))
            })
            .collect::<Result<Vec<_>>>()?;

        let local_elems = local
            .elems()
            .iter()
            .map(|e| {
                (
                    dst_map.local_index(me, e.row).expect("row ownership checked"),
                    slot_of[&e.col],
                    e.weight,
                )
            })
            .collect();

        Ok(SparseMatrixPlus {
            local_elems,
            recv_plan,
            send_plan,
            gather_len,
            dst_lsize: dst_map.lsize(me),
            src_lsize: src_map.lsize(me),
        })
    }

    /// Elements this rank applies.
    pub fn nnz(&self) -> usize {
        self.local_elems.len()
    }

    /// Interpolates every real field of `x` into `y`
    /// (`y = A·x`, collectively over `comm`). Field lists must match.
    pub fn apply(&self, comm: &Comm, x: &AttrVect, y: &mut AttrVect, tag: i32) -> Result<()> {
        assert_eq!(x.lsize(), self.src_lsize, "x does not match the source map");
        assert_eq!(y.lsize(), self.dst_lsize, "y does not match the destination map");
        assert_eq!(x.num_real(), y.num_real(), "field count mismatch");
        let nfields = x.num_real();

        // Exchange the needed x entries, all fields packed field-major.
        for (peer, locals) in &self.send_plan {
            comm.send(*peer, tag, x.pack_points(locals))?;
        }
        let mut gathered: Vec<Vec<f64>> = vec![vec![0.0; self.gather_len]; nfields];
        let mut offset = 0;
        for &(peer, count) in &self.recv_plan {
            let buf: Vec<f64> = comm.recv(peer, tag)?;
            debug_assert_eq!(buf.len(), count * nfields);
            for f in 0..nfields {
                gathered[f][offset..offset + count]
                    .copy_from_slice(&buf[f * count..(f + 1) * count]);
            }
            offset += count;
        }

        // Multi-field, cache-friendly matvec: fields outer, elements inner.
        for (f, xg) in gathered.iter().enumerate().take(nfields) {
            let yf = y.real_at_mut(f);
            yf.fill(0.0);
            for &(row, slot, w) in &self.local_elems {
                yf[row] += w * xg[slot];
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mxn_runtime::World;

    /// Conservative 2:1 coarsening on an 8-point grid: dst cell i averages
    /// src cells 2i, 2i+1.
    fn coarsen_elems(dst_map: &GlobalSegMap, me: usize) -> Vec<SparseElem> {
        let mut elems = Vec::new();
        for s in dst_map.rank_segments(me) {
            for r in s.start..s.start + s.length {
                elems.push(SparseElem { row: r, col: 2 * r, weight: 0.5 });
                elems.push(SparseElem { row: r, col: 2 * r + 1, weight: 0.5 });
            }
        }
        elems
    }

    #[test]
    fn parallel_interpolation_matches_serial() {
        World::run(2, |p| {
            let comm = p.world();
            let me = comm.rank();
            let src_map = GlobalSegMap::block(8, 2);
            let dst_map = GlobalSegMap::cyclic(4, 2, 1);
            let a = SparseMatrix::new(4, 8, coarsen_elems(&dst_map, me)).unwrap();
            let plus = SparseMatrixPlus::build(comm, &a, &src_map, &dst_map).unwrap();

            let mut x = AttrVect::new(&["u", "v"], &[], src_map.lsize(me));
            for l in 0..x.lsize() {
                let g = src_map.global_index(me, l).unwrap() as f64;
                x.real_mut("u")[l] = g;
                x.real_mut("v")[l] = g * g;
            }
            let mut y = AttrVect::new(&["u", "v"], &[], dst_map.lsize(me));
            plus.apply(comm, &x, &mut y, 11).unwrap();

            for l in 0..y.lsize() {
                let r = dst_map.global_index(me, l).unwrap() as f64;
                // u: average of 2r and 2r+1 = 2r + 0.5.
                assert_eq!(y.real("u")[l], 2.0 * r + 0.5);
                // v: ((2r)² + (2r+1)²)/2.
                let expect = ((2.0 * r) * (2.0 * r) + (2.0 * r + 1.0) * (2.0 * r + 1.0)) / 2.0;
                assert_eq!(y.real("v")[l], expect);
            }
        });
    }

    #[test]
    fn row_sums_of_conservative_remap_are_one() {
        let dst_map = GlobalSegMap::block(4, 1);
        let a = SparseMatrix::new(4, 8, coarsen_elems(&dst_map, 0)).unwrap();
        for (_, s) in a.local_row_sums() {
            assert!((s - 1.0).abs() < 1e-12);
        }
        assert_eq!(a.lsize(), 8);
    }

    #[test]
    fn shape_validation() {
        assert!(SparseMatrix::new(2, 2, vec![SparseElem { row: 2, col: 0, weight: 1.0 }]).is_err());
        World::run(1, |p| {
            let comm = p.world();
            let a = SparseMatrix::new(4, 8, vec![]).unwrap();
            let bad_src = GlobalSegMap::block(9, 1);
            let dst = GlobalSegMap::block(4, 1);
            assert!(SparseMatrixPlus::build(comm, &a, &bad_src, &dst).is_err());
        });
    }

    #[test]
    fn misplaced_row_rejected() {
        World::run(2, |p| {
            let comm = p.world();
            let src_map = GlobalSegMap::block(8, 2);
            let dst_map = GlobalSegMap::block(4, 2);
            // Each rank claims a row the *other* rank owns, so both fail
            // the ownership check (before any collective communication).
            let wrong_row = if comm.rank() == 0 { 2 } else { 0 };
            let a =
                SparseMatrix::new(4, 8, vec![SparseElem { row: wrong_row, col: 0, weight: 1.0 }])
                    .unwrap();
            let r = SparseMatrixPlus::build(comm, &a, &src_map, &dst_map);
            assert!(r.is_err());
        });
    }

    #[test]
    fn empty_local_matrix_is_fine() {
        World::run(2, |p| {
            let comm = p.world();
            let src_map = GlobalSegMap::block(4, 2);
            // All rows live on rank 0.
            let dst_map = GlobalSegMap::new(
                2,
                2,
                vec![crate::gsmap::Segment { start: 0, length: 2, rank: 0 }],
            )
            .unwrap();
            let elems = if comm.rank() == 0 {
                vec![
                    SparseElem { row: 0, col: 0, weight: 1.0 },
                    SparseElem { row: 1, col: 3, weight: 2.0 },
                ]
            } else {
                vec![]
            };
            let a = SparseMatrix::new(2, 4, elems).unwrap();
            let plus = SparseMatrixPlus::build(comm, &a, &src_map, &dst_map).unwrap();
            let mut x = AttrVect::new(&["f"], &[], src_map.lsize(comm.rank()));
            for l in 0..x.lsize() {
                x.real_mut("f")[l] = src_map.global_index(comm.rank(), l).unwrap() as f64 + 1.0;
            }
            let mut y = AttrVect::new(&["f"], &[], dst_map.lsize(comm.rank()));
            plus.apply(comm, &x, &mut y, 2).unwrap();
            if comm.rank() == 0 {
                assert_eq!(y.real("f"), &[1.0, 8.0]);
            } else {
                assert_eq!(y.lsize(), 0);
            }
        });
    }
}
