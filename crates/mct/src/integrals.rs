//! Spatial integrals and averages.
//!
//! "Spatial integral and averaging facilities that include **paired**
//! integrals and averages for use in conservation of global flux integrals
//! in inter-grid interpolation" (paper §4.5).
//!
//! All integrals are global: the local weighted sums are combined with an
//! `allreduce` over the component's communicator.

use mxn_runtime::{Comm, Result};

use crate::attrvect::AttrVect;
use crate::grid::GeneralGrid;

/// Global integral of one field: `Σ_p field[p] · weight[p]` over every
/// rank, with optional masking.
pub fn global_integral(
    comm: &Comm,
    av: &AttrVect,
    field: &str,
    grid: &GeneralGrid,
    mask: Option<&str>,
) -> Result<f64> {
    assert_eq!(av.lsize(), grid.npoints(), "attribute vector does not match the grid");
    let f = av.real(field);
    let local: f64 = (0..av.lsize()).map(|p| f[p] * grid.masked_weight(p, mask)).sum();
    comm.allreduce(local, |a, b| *a += b)
}

/// Global weighted average of one field (integral / total active weight).
pub fn global_average(
    comm: &Comm,
    av: &AttrVect,
    field: &str,
    grid: &GeneralGrid,
    mask: Option<&str>,
) -> Result<f64> {
    let f = av.real(field);
    let (num, den) = (0..av.lsize()).fold((0.0, 0.0), |(n, d), p| {
        let w = grid.masked_weight(p, mask);
        (n + f[p] * w, d + w)
    });
    let pair = comm.allreduce((num, den), |a, b| {
        a.0 += b.0;
        a.1 += b.1;
    })?;
    Ok(pair.0 / pair.1)
}

/// A pair of flux integrals computed together — the source-side and
/// destination-side values whose agreement certifies conservative
/// interpolation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairedIntegral {
    /// Integral on the source grid.
    pub source: f64,
    /// Integral on the destination grid.
    pub dest: f64,
}

impl PairedIntegral {
    /// Relative conservation error `|dest − source| / |source|`.
    pub fn relative_error(&self) -> f64 {
        if self.source == 0.0 {
            self.dest.abs()
        } else {
            (self.dest - self.source).abs() / self.source.abs()
        }
    }
}

/// Computes the paired integral of a flux before and after interpolation.
/// Both components call this collectively over the shared communicator.
#[allow(clippy::too_many_arguments)]
pub fn paired_integral(
    comm: &Comm,
    src_av: &AttrVect,
    src_field: &str,
    src_grid: &GeneralGrid,
    dst_av: &AttrVect,
    dst_field: &str,
    dst_grid: &GeneralGrid,
    mask: Option<&str>,
) -> Result<PairedIntegral> {
    let source = global_integral(comm, src_av, src_field, src_grid, mask)?;
    let dest = global_integral(comm, dst_av, dst_field, dst_grid, mask)?;
    Ok(PairedIntegral { source, dest })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gsmap::GlobalSegMap;
    use crate::sparsemat::{SparseElem, SparseMatrix, SparseMatrixPlus};
    use mxn_runtime::World;

    #[test]
    fn integral_sums_across_ranks() {
        World::run(3, |p| {
            let comm = p.world();
            let map = GlobalSegMap::block(9, 3);
            let n = map.lsize(comm.rank());
            let grid = GeneralGrid::uniform_1d(n, 0.0, n as f64); // unit weights
            let mut av = AttrVect::new(&["q"], &[], n);
            for l in 0..n {
                av.real_mut("q")[l] = map.global_index(comm.rank(), l).unwrap() as f64;
            }
            let total = global_integral(comm, &av, "q", &grid, None).unwrap();
            assert_eq!(total, (0..9).sum::<usize>() as f64);
        });
    }

    #[test]
    fn masked_average() {
        World::run(2, |p| {
            let comm = p.world();
            let mut grid = GeneralGrid::uniform_1d(2, 0.0, 2.0);
            // First point active, second masked out, on both ranks.
            grid.set_mask("ocean", vec![1, 0]);
            let mut av = AttrVect::new(&["t"], &[], 2);
            av.real_mut("t")[0] = (comm.rank() + 1) as f64; // 1 and 2
            av.real_mut("t")[1] = 999.0; // must be ignored
            let avg = global_average(comm, &av, "t", &grid, Some("ocean")).unwrap();
            assert_eq!(avg, 1.5);
        });
    }

    #[test]
    fn conservative_interpolation_conserves_the_paired_integral() {
        // 8-cell source grid (h = 1) → 4-cell destination grid (h = 2),
        // destination cell = mean of its two source cells: exactly
        // conservative, so the paired integrals must agree.
        World::run(2, |p| {
            let comm = p.world();
            let me = comm.rank();
            let src_map = GlobalSegMap::block(8, 2);
            let dst_map = GlobalSegMap::block(4, 2);
            let mut elems = Vec::new();
            for s in dst_map.rank_segments(me) {
                for r in s.start..s.start + s.length {
                    elems.push(SparseElem { row: r, col: 2 * r, weight: 0.5 });
                    elems.push(SparseElem { row: r, col: 2 * r + 1, weight: 0.5 });
                }
            }
            let a = SparseMatrix::new(4, 8, elems).unwrap();
            let plus = SparseMatrixPlus::build(comm, &a, &src_map, &dst_map).unwrap();

            let src_n = src_map.lsize(me);
            let dst_n = dst_map.lsize(me);
            let src_grid = GeneralGrid::new(vec![vec![0.0; src_n]], vec![1.0; src_n]);
            let dst_grid = GeneralGrid::new(vec![vec![0.0; dst_n]], vec![2.0; dst_n]);

            let mut x = AttrVect::new(&["flux"], &[], src_n);
            for l in 0..src_n {
                let g = src_map.global_index(me, l).unwrap() as f64;
                x.real_mut("flux")[l] = (g * 0.7).sin() + 2.0;
            }
            let mut y = AttrVect::new(&["flux"], &[], dst_n);
            plus.apply(comm, &x, &mut y, 4).unwrap();

            let pair =
                paired_integral(comm, &x, "flux", &src_grid, &y, "flux", &dst_grid, None).unwrap();
            assert!(
                pair.relative_error() < 1e-12,
                "conservation violated: {pair:?} (err {})",
                pair.relative_error()
            );
        });
    }

    #[test]
    fn relative_error_handles_zero_source() {
        let p = PairedIntegral { source: 0.0, dest: 0.25 };
        assert_eq!(p.relative_error(), 0.25);
    }
}
