//! The attribute vector: MCT's "multi-field data storage object that is
//! the common currency modules use in data exchange" (paper §4.5).
//!
//! An [`AttrVect`] stores named real and integer attributes for `n` grid
//! points, **field-major** (one contiguous buffer per field), which is what
//! makes multi-field operations like interpolation "cache-friendly": the
//! inner loops stream over one field at a time.

use std::collections::HashMap;

/// Multi-field point data: `k` named real fields and `m` named integer
/// fields over `n` points.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrVect {
    length: usize,
    real_names: Vec<String>,
    real_index: HashMap<String, usize>,
    reals: Vec<Vec<f64>>,
    int_names: Vec<String>,
    int_index: HashMap<String, usize>,
    ints: Vec<Vec<i64>>,
}

impl AttrVect {
    /// Creates a zero-initialized attribute vector with the given real and
    /// integer field names ("rList"/"iList" in MCT).
    ///
    /// # Panics
    /// On duplicate field names within a list.
    pub fn new(real_fields: &[&str], int_fields: &[&str], length: usize) -> Self {
        let mut real_index = HashMap::new();
        for (i, f) in real_fields.iter().enumerate() {
            assert!(real_index.insert(f.to_string(), i).is_none(), "duplicate real field {f}");
        }
        let mut int_index = HashMap::new();
        for (i, f) in int_fields.iter().enumerate() {
            assert!(int_index.insert(f.to_string(), i).is_none(), "duplicate int field {f}");
        }
        AttrVect {
            length,
            real_names: real_fields.iter().map(|s| s.to_string()).collect(),
            real_index,
            reals: vec![vec![0.0; length]; real_fields.len()],
            int_names: int_fields.iter().map(|s| s.to_string()).collect(),
            int_index,
            ints: vec![vec![0; length]; int_fields.len()],
        }
    }

    /// Number of points ("lsize").
    pub fn lsize(&self) -> usize {
        self.length
    }

    /// Number of real fields.
    pub fn num_real(&self) -> usize {
        self.reals.len()
    }

    /// Number of integer fields.
    pub fn num_int(&self) -> usize {
        self.ints.len()
    }

    /// Real field names in storage order.
    pub fn real_names(&self) -> &[String] {
        &self.real_names
    }

    /// Integer field names in storage order.
    pub fn int_names(&self) -> &[String] {
        &self.int_names
    }

    /// Position of a real field.
    pub fn real_field_index(&self, name: &str) -> Option<usize> {
        self.real_index.get(name).copied()
    }

    /// Borrow a real field's buffer.
    ///
    /// # Panics
    /// On unknown field name.
    pub fn real(&self, name: &str) -> &[f64] {
        let i = self.real_index[name];
        &self.reals[i]
    }

    /// Mutably borrow a real field's buffer.
    pub fn real_mut(&mut self, name: &str) -> &mut [f64] {
        let i = self.real_index[name];
        &mut self.reals[i]
    }

    /// Borrow a real field by storage index (hot loops).
    pub fn real_at(&self, index: usize) -> &[f64] {
        &self.reals[index]
    }

    /// Mutably borrow a real field by storage index.
    pub fn real_at_mut(&mut self, index: usize) -> &mut [f64] {
        &mut self.reals[index]
    }

    /// Borrow an integer field's buffer.
    pub fn int(&self, name: &str) -> &[i64] {
        let i = self.int_index[name];
        &self.ints[i]
    }

    /// Mutably borrow an integer field's buffer.
    pub fn int_mut(&mut self, name: &str) -> &mut [i64] {
        let i = self.int_index[name];
        &mut self.ints[i]
    }

    /// Zeroes every field.
    pub fn zero(&mut self) {
        for f in &mut self.reals {
            f.fill(0.0);
        }
        for f in &mut self.ints {
            f.fill(0);
        }
    }

    /// Scales every real field by `s`.
    pub fn scale(&mut self, s: f64) {
        for f in &mut self.reals {
            for v in f {
                *v *= s;
            }
        }
    }

    /// Adds `other`'s real fields into this one (matching field sets and
    /// lengths required).
    pub fn add_assign(&mut self, other: &AttrVect) {
        assert_eq!(self.length, other.length, "length mismatch");
        assert_eq!(self.real_names, other.real_names, "field mismatch");
        for (dst, src) in self.reals.iter_mut().zip(&other.reals) {
            for (d, s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        }
    }

    /// Copies the shared real fields of `other` into `self` ("aVect copy").
    pub fn copy_shared_from(&mut self, other: &AttrVect) {
        assert_eq!(self.length, other.length, "length mismatch");
        for (i, name) in self.real_names.iter().enumerate() {
            if let Some(j) = other.real_index.get(name) {
                self.reals[i].copy_from_slice(&other.reals[*j]);
            }
        }
    }

    /// Exports one real field as a fresh vector ("exportRAttr").
    pub fn export_real(&self, name: &str) -> Vec<f64> {
        self.real(name).to_vec()
    }

    /// Imports a buffer into one real field ("importRAttr").
    pub fn import_real(&mut self, name: &str, data: &[f64]) {
        assert_eq!(data.len(), self.length, "import length mismatch");
        self.real_mut(name).copy_from_slice(data);
    }

    /// Gathers the given point indices of every real field into a packed,
    /// field-major buffer (the Router's pack kernel).
    pub fn pack_points(&self, points: &[usize]) -> Vec<f64> {
        let mut out = Vec::with_capacity(points.len() * self.reals.len());
        for field in &self.reals {
            out.extend(points.iter().map(|&p| field[p]));
        }
        out
    }

    /// Scatters a packed field-major buffer into the given point indices.
    pub fn unpack_points(&mut self, points: &[usize], data: &[f64]) {
        assert_eq!(data.len(), points.len() * self.reals.len(), "unpack size mismatch");
        for (fi, field) in self.reals.iter_mut().enumerate() {
            let chunk = &data[fi * points.len()..(fi + 1) * points.len()];
            for (&p, &v) in points.iter().zip(chunk) {
                field[p] = v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn av() -> AttrVect {
        AttrVect::new(&["temp", "salt"], &["mask"], 4)
    }

    #[test]
    fn construction_and_shape() {
        let a = av();
        assert_eq!(a.lsize(), 4);
        assert_eq!(a.num_real(), 2);
        assert_eq!(a.num_int(), 1);
        assert_eq!(a.real_names(), &["temp".to_string(), "salt".to_string()]);
        assert!(a.real("temp").iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_fields_rejected() {
        AttrVect::new(&["t", "t"], &[], 1);
    }

    #[test]
    fn field_access_and_mutation() {
        let mut a = av();
        a.real_mut("temp").copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        a.int_mut("mask").copy_from_slice(&[1, 0, 1, 0]);
        assert_eq!(a.real("temp")[2], 3.0);
        assert_eq!(a.int("mask")[1], 0);
        assert_eq!(a.real_field_index("salt"), Some(1));
        assert_eq!(a.real_field_index("nope"), None);
    }

    #[test]
    fn zero_scale_add() {
        let mut a = av();
        a.real_mut("temp").copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
        a.scale(2.0);
        assert_eq!(a.real("temp"), &[2.0, 4.0, 6.0, 8.0]);
        let mut b = av();
        b.real_mut("temp").copy_from_slice(&[1.0; 4]);
        b.add_assign(&a);
        assert_eq!(b.real("temp"), &[3.0, 5.0, 7.0, 9.0]);
        b.zero();
        assert!(b.real("temp").iter().all(|&v| v == 0.0));
    }

    #[test]
    fn copy_shared_fields_only() {
        let mut a = av();
        let mut other = AttrVect::new(&["salt", "wind"], &[], 4);
        other.real_mut("salt").copy_from_slice(&[9.0; 4]);
        other.real_mut("wind").copy_from_slice(&[5.0; 4]);
        a.copy_shared_from(&other);
        assert_eq!(a.real("salt"), &[9.0; 4]);
        assert!(a.real("temp").iter().all(|&v| v == 0.0), "unshared untouched");
    }

    #[test]
    fn export_import_roundtrip() {
        let mut a = av();
        a.import_real("temp", &[7.0, 8.0, 9.0, 10.0]);
        assert_eq!(a.export_real("temp"), vec![7.0, 8.0, 9.0, 10.0]);
    }

    #[test]
    fn pack_unpack_field_major() {
        let mut a = av();
        a.import_real("temp", &[1.0, 2.0, 3.0, 4.0]);
        a.import_real("salt", &[10.0, 20.0, 30.0, 40.0]);
        let packed = a.pack_points(&[3, 1]);
        // Field-major: temp points then salt points.
        assert_eq!(packed, vec![4.0, 2.0, 40.0, 20.0]);
        let mut b = av();
        b.unpack_points(&[3, 1], &packed);
        assert_eq!(b.real("temp"), &[0.0, 2.0, 0.0, 4.0]);
        assert_eq!(b.real("salt"), &[0.0, 20.0, 0.0, 40.0]);
    }
}
