//! Figure 4 reproduction: every row of the project feature matrix is
//! verified by a live probe of the corresponding implementation.

use mxn::feature_matrix::{build, render, ParallelDataKind};

#[test]
fn all_rows_verify_and_match_the_paper() {
    let rows = build();
    assert_eq!(rows.len(), 5, "the five projects of Figure 4");

    // Every probe must succeed.
    for r in &rows {
        assert!(r.verified, "probe failed for {}", r.project);
    }

    // The PRMI column of Figure 4: DCA yes, InterComm no, MCT no,
    // MxN Component no, SciRun2 yes.
    let by_name = |n: &str| rows.iter().find(|r| r.project.contains(n)).unwrap();
    assert!(by_name("DCA").prmi);
    assert!(!by_name("InterComm").prmi);
    assert!(!by_name("MCT").prmi);
    assert!(!by_name("MxN Component").prmi);
    assert!(by_name("SciRun2").prmi);

    // The parallel-data column.
    assert_eq!(by_name("DCA").parallel_data, ParallelDataKind::MpiArrays);
    assert_eq!(by_name("InterComm").parallel_data, ParallelDataKind::DenseArrays);
    assert_eq!(by_name("MCT").parallel_data, ParallelDataKind::ArraysAndGrids);
    assert_eq!(by_name("MxN Component").parallel_data, ParallelDataKind::Sidl);
    assert_eq!(by_name("SciRun2").parallel_data, ParallelDataKind::Sidl);

    // Rendering includes every project and the verification state.
    let table = render(&rows);
    for r in &rows {
        assert!(table.contains(r.project));
    }
    assert!(!table.contains("FAILED"));
}
