//! Property-based tests on the higher-level systems: MCT maps and
//! routers, InterComm matching rules, halo plans, PRMI mappings, particle
//! decompositions and pipelines.

use proptest::prelude::*;

use mxn::dad::{Dad, Extents, Region};
use mxn::intercomm::{MatchDecision, MatchRule};
use mxn::mct::{GlobalSegMap, Segment};
use mxn::prmi::{providers_of, respondents_of};
use mxn::schedule::HaloSchedule;

/// Strategy: a random valid segment map of `gsize` points over `nranks`.
fn gsmap(gsize: usize, nranks: usize) -> impl Strategy<Value = GlobalSegMap> {
    // Random cut points + random owners.
    proptest::collection::vec(0..gsize, 0..6).prop_flat_map(move |mut cuts| {
        cuts.push(0);
        cuts.push(gsize);
        cuts.sort_unstable();
        cuts.dedup();
        let nseg = cuts.len() - 1;
        proptest::collection::vec(0..nranks, nseg).prop_map(move |owners| {
            let segments: Vec<Segment> = cuts
                .windows(2)
                .zip(&owners)
                .map(|(w, &rank)| Segment { start: w[0], length: w[1] - w[0], rank })
                .collect();
            GlobalSegMap::new(gsize, nranks, segments).expect("construction is valid")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Segment maps: ownership, local indexing and segment lists agree.
    #[test]
    fn gsmap_invariants(map in gsmap(64, 4)) {
        let mut seen = vec![0usize; 64];
        for r in 0..4 {
            let sl = map.as_segment_list(r);
            prop_assert_eq!(sl.total_len(), map.lsize(r));
            for l in 0..map.lsize(r) {
                let g = map.global_index(r, l).expect("local index maps back");
                prop_assert_eq!(map.local_index(r, g), Some(l));
                prop_assert_eq!(map.owner(g), r);
                prop_assert!(sl.contains(g));
                seen[g] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "each point stored exactly once");
    }

    /// InterComm rules: decisions are *final* — once a rule decides at
    /// frontier f, any additional versions beyond f never change it.
    #[test]
    fn match_decisions_are_final(
        versions in proptest::collection::btree_set(0..40u32, 0..10),
        later in proptest::collection::btree_set(41..80u32, 0..5),
        request in 0..60u32,
        rule_pick in 0..5usize,
        tol in 1..10u32,
    ) {
        let rule = match rule_pick {
            0 => MatchRule::Exact,
            1 => MatchRule::LowerBound,
            2 => MatchRule::UpperBound,
            3 => MatchRule::Nearest { tol: tol as f64 },
            _ => MatchRule::RegularInterval { start: 0.0, every: 4.0 },
        };
        let vs: Vec<f64> = versions.iter().map(|&v| v as f64).collect();
        let frontier = vs.last().copied().unwrap_or(0.0);
        let request = request as f64;
        let decision = rule.decide(&vs, frontier, request);
        if decision != MatchDecision::Pending {
            // Append strictly-later versions; decision must not change.
            let mut extended = vs.clone();
            extended.extend(later.iter().map(|&v| v as f64));
            let f2 = extended.last().copied().unwrap_or(frontier).max(frontier);
            prop_assert_eq!(
                rule.decide(&extended, f2, request),
                decision,
                "decision changed after later exports (rule {:?})",
                rule
            );
        }
        // And at infinite frontier every rule decides.
        prop_assert_ne!(rule.decide(&vs, f64::INFINITY, request), MatchDecision::Pending);
    }

    /// Matched versions always satisfy their rule's contract.
    #[test]
    fn matched_versions_satisfy_the_rule(
        versions in proptest::collection::btree_set(0..40u32, 1..12),
        request in 0..50u32,
    ) {
        let vs: Vec<f64> = versions.iter().map(|&v| v as f64).collect();
        let request = request as f64;
        for rule in [
            MatchRule::Exact,
            MatchRule::LowerBound,
            MatchRule::UpperBound,
            MatchRule::Nearest { tol: 3.0 },
        ] {
            if let MatchDecision::Matched { version } = rule.decide(&vs, f64::INFINITY, request) {
                prop_assert!(vs.contains(&version));
                match rule {
                    MatchRule::Exact => prop_assert_eq!(version, request),
                    MatchRule::LowerBound => {
                        prop_assert!(version <= request);
                        prop_assert!(vs.iter().all(|&v| v > request || v <= version));
                    }
                    MatchRule::UpperBound => {
                        prop_assert!(version >= request);
                        prop_assert!(vs.iter().all(|&v| v < request || v >= version));
                    }
                    MatchRule::Nearest { tol } => {
                        let d = (version - request).abs();
                        prop_assert!(d <= tol);
                        prop_assert!(vs.iter().all(|&v| (v - request).abs() >= d));
                    }
                    _ => {}
                }
            }
        }
    }

    /// PRMI M↔N mappings: for any (m, n), every provider executes exactly
    /// once and every caller receives exactly one return.
    #[test]
    fn prmi_mapping_is_a_double_cover(m in 1..20usize, n in 1..20usize) {
        let mut provider_hits = vec![0usize; n];
        for k in 0..m {
            for j in providers_of(k, m, n) {
                provider_hits[j] += 1;
            }
        }
        prop_assert!(provider_hits.iter().all(|&c| c == 1));
        let mut caller_hits = vec![0usize; m];
        for j in 0..n {
            for k in respondents_of(j, m, n) {
                caller_hits[k] += 1;
            }
        }
        prop_assert!(caller_hits.iter().all(|&c| c == 1));
    }

    /// Halo plans: the receive regions tile exactly the fringe
    /// (expanded minus owned), and sends mirror the neighbours' receives.
    #[test]
    fn halo_plan_tiles_the_fringe(
        rows in 4..20usize,
        cols in 4..20usize,
        gr in 1..4usize,
        gc in 1..4usize,
        width in 1..3usize,
    ) {
        let dad = Dad::block(Extents::new([rows, cols]), &[gr, gc]).unwrap();
        let p = gr * gc;
        // Skip degenerate decompositions where some rank owns nothing.
        for r in 0..p {
            if dad.patches(r).len() != 1 {
                return Ok(());
            }
        }
        let plans: Vec<HaloSchedule> =
            (0..p).map(|r| HaloSchedule::build(&dad, r, width)).collect();
        for (r, plan) in plans.iter().enumerate() {
            // Fringe cells = expanded \ owned; each must be covered once
            // by recv regions, and owned by the region's peer.
            let mut covered = std::collections::HashMap::new();
            for idx in plan.expanded().iter() {
                if !plan.owned().contains(&idx) {
                    covered.insert(idx.clone(), 0usize);
                }
            }
            prop_assert_eq!(covered.len(), plan.halo_cells());
            let mut halo_sum = 0;
            for peer in 0..p {
                if peer == r { continue; }
                // This peer's send-to-r regions must equal r's recv-from-peer.
                let my_plan = &plans[r];
                let _ = my_plan;
                for idx in dad.patches(peer)[0].iter() {
                    if plan.expanded().contains(&idx) {
                        halo_sum += 1;
                        if let Some(c) = covered.get_mut(&idx) {
                            *c += 1;
                        } else {
                            prop_assert!(false, "halo cell {idx:?} not in fringe");
                        }
                    }
                }
            }
            prop_assert_eq!(halo_sum, plan.halo_cells());
            prop_assert!(covered.values().all(|&c| c == 1), "fringe covered exactly once");
        }
        // Send/recv mirror property across ranks: what r sends to s is
        // exactly what s expects to receive from r.
        for r in 0..p {
            for s in 0..p {
                if r == s { continue; }
                let r_sends_to_s: Vec<&Region> = plans[r]
                    .sends()
                    .iter()
                    .filter(|(peer, _)| *peer == s)
                    .map(|(_, reg)| reg)
                    .collect();
                let s_recvs_from_r: Vec<&Region> = plans[s]
                    .recvs()
                    .iter()
                    .filter(|(peer, _)| *peer == r)
                    .map(|(_, reg)| reg)
                    .collect();
                prop_assert_eq!(r_sends_to_s, s_recvs_from_r);
            }
        }
    }

    /// Particle decomposition: every position in the domain has exactly
    /// one owner and cell mapping stays in bounds.
    #[test]
    fn particle_ownership_is_total(
        gx in 1..4usize,
        gy in 1..4usize,
        px in 0.0..1.0f64,
        py in 0.0..1.0f64,
    ) {
        use mxn::core::ParticleField;
        let cells = Dad::block(Extents::new([8, 8]), &[gx, gy]).unwrap();
        let f = ParticleField::new([1.0, 1.0], cells.clone(), 0);
        let owner = f.owner_of([px, py]);
        prop_assert!(owner < cells.nranks());
        let c = f.cell_of([px, py]);
        prop_assert!(c[0] < 8 && c[1] < 8);
    }

    /// Pipeline optimization is semantics-preserving for random affine
    /// chains (pure filter part, no communication needed).
    #[test]
    fn pipeline_fusion_preserves_semantics(
        coeffs in proptest::collection::vec((-3.0..3.0f64, -5.0..5.0f64), 1..6),
        x in -100.0..100.0f64,
    ) {
        use mxn::pipeline::fuse_affine;
        let mut stepwise = x;
        for &(a, b) in &coeffs {
            stepwise = a * stepwise + b;
        }
        let fused = fuse_affine(&coeffs);
        let mut v = [x];
        use mxn::pipeline::Filter as _;
        fused.apply(&mut v);
        prop_assert!((v[0] - stepwise).abs() <= 1e-9 * stepwise.abs().max(1.0));
    }
}

/// Region sanity used by the halo property (kept here to document the
/// contract the property relies on).
#[test]
fn region_contains_is_half_open() {
    let r = Region::new([0, 0], [2, 2]);
    assert!(r.contains(&[1, 1]));
    assert!(!r.contains(&[2, 0]));
}
