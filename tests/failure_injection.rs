//! Failure injection: the error paths a production coupling middleware
//! must turn into diagnoses rather than hangs or silent corruption.

use mxn::core::{ConnectionKind, Direction, FieldRegistry, MxnConnection, MxnError};
use mxn::dad::{AccessMode, Dad, Extents};
use mxn::framework::{serve, AnyPayload, RemotePort, RemoteService};
use mxn::runtime::{RuntimeError, Src, Tag, Universe, World};

/// RMI marshalling type confusion is caught, not UB: the callee asked for
/// the wrong payload type.
#[test]
fn rmi_type_confusion_is_detected() {
    struct WrongTypes;
    impl RemoteService for WrongTypes {
        fn dispatch(&self, _m: u32, arg: AnyPayload) -> AnyPayload {
            // Service expects a String but the caller sent f64.
            match arg.downcast::<String>() {
                Ok(_) => AnyPayload::new(0u8),
                Err(e) => AnyPayload::new(format!("caught: {e}")),
            }
        }
    }
    Universe::run(&[1, 1], |_, ctx| {
        if ctx.program == 0 {
            let ic = ctx.intercomm(1);
            let port = RemotePort::to_rank(0);
            let reply: String = port.call(ic, 0, 3.75f64).unwrap();
            assert!(reply.contains("caught"), "type confusion surfaced as an error");
            port.shutdown(ic).unwrap();
        } else {
            serve(ctx.intercomm(0), &WrongTypes).unwrap();
        }
    });
}

/// A typed receive that matches a wrong-typed message reports the sender
/// and tag instead of panicking.
#[test]
fn runtime_type_mismatch_reports_source() {
    World::run(2, |p| {
        let c = p.world();
        if c.rank() == 0 {
            c.send(1, 9, vec![1.0f64, 2.0]).unwrap();
        } else {
            let e = c.recv::<Vec<i32>>(0, 9).unwrap_err();
            match e {
                RuntimeError::TypeMismatch { src, tag, expected } => {
                    assert_eq!((src, tag), (0, 9));
                    assert!(expected.contains("i32"));
                }
                other => panic!("unexpected error {other}"),
            }
        }
    });
}

/// Connecting to a field the peer never registered fails cleanly on BOTH
/// sides: the acceptor's validation error is NACKed back, so the
/// initiator gets a handshake error instead of hanging forever.
#[test]
fn connection_to_missing_field_fails_cleanly() {
    Universe::run(&[1, 1], |_, ctx| {
        let dad = Dad::block(Extents::new([4]), &[1]).unwrap();
        if ctx.program == 0 {
            let ic = ctx.intercomm(1);
            let mut reg = FieldRegistry::new(0);
            reg.register_allocated("f", dad, AccessMode::Read).unwrap();
            let e = MxnConnection::initiate(
                ic,
                &reg,
                0,
                "f",
                "nope",
                Direction::Export,
                ConnectionKind::OneShot,
            )
            .unwrap_err();
            match e {
                MxnError::Handshake { detail } => {
                    assert!(detail.contains("nope"), "rejection names the field: {detail}")
                }
                other => panic!("unexpected {other}"),
            }
        } else {
            let ic = ctx.intercomm(0);
            let reg = FieldRegistry::new(0); // nothing registered
            let e = MxnConnection::accept(ic, &reg, 0).unwrap_err();
            assert!(matches!(e, MxnError::FieldNotFound { .. }));
        }
    });
}

/// Wrong access mode on the accepting side: AccessDenied locally, a
/// handshake rejection remotely.
#[test]
fn acceptor_access_mode_rejection_propagates() {
    Universe::run(&[1, 1], |_, ctx| {
        let dad = Dad::block(Extents::new([4]), &[1]).unwrap();
        if ctx.program == 0 {
            let ic = ctx.intercomm(1);
            let mut reg = FieldRegistry::new(0);
            reg.register_allocated("src_field", dad, AccessMode::Read).unwrap();
            let e = MxnConnection::initiate(
                ic,
                &reg,
                0,
                "src_field",
                "read_only_sink",
                Direction::Export,
                ConnectionKind::OneShot,
            )
            .unwrap_err();
            assert!(
                matches!(e, MxnError::Handshake { ref detail } if detail.contains("write")),
                "initiator learns why: {e}"
            );
        } else {
            let ic = ctx.intercomm(0);
            let mut reg = FieldRegistry::new(0);
            reg.register_allocated("read_only_sink", dad, AccessMode::Read).unwrap();
            let e = MxnConnection::accept(ic, &reg, 0).unwrap_err();
            assert!(matches!(e, MxnError::AccessDenied { needed: "write", .. }));
        }
    });
}

/// DCA redistribution specs are validated: counts exceeding the buffer and
/// wrong peer counts are rejected before any message is sent.
#[test]
fn dca_spec_validation() {
    use mxn::dca::{alltoallv_within, AlltoallvSpec};
    World::run(2, |p| {
        let comm = p.world();
        let data = vec![1.0, 2.0];
        // Chunk runs past the end of the buffer.
        let bad = AlltoallvSpec::new(vec![2, 2], vec![0, 1]).unwrap();
        let e = alltoallv_within(comm, &data, &bad).unwrap_err();
        assert!(matches!(e, RuntimeError::CollectiveMismatch { .. }));
        // Wrong number of peers.
        let wrong_peers = AlltoallvSpec::contiguous(&[1]);
        let e = alltoallv_within(comm, &data, &wrong_peers).unwrap_err();
        assert!(matches!(e, RuntimeError::CollectiveMismatch { .. }));
        // A valid spec still works afterwards (no poisoned state).
        let ok = AlltoallvSpec::contiguous(&[1, 1]);
        let got = alltoallv_within(comm, &data, &ok).unwrap();
        assert_eq!(got.len(), 2);
    });
}

/// A panicking rank aborts the world: blocked peers get `Aborted` instead
/// of hanging, and the panic is re-thrown to the caller.
#[test]
fn rank_panic_unblocks_the_world() {
    let result = std::panic::catch_unwind(|| {
        Universe::run(&[2, 1], |_, ctx| {
            if ctx.program == 0 && ctx.comm.rank() == 1 {
                panic!("injected failure");
            }
            // Everyone else blocks on traffic that will never come.
            let e = ctx.comm.recv::<u8>(Src::Any, Tag::Any).unwrap_err();
            assert_eq!(e, RuntimeError::Aborted);
        });
    });
    assert!(result.is_err(), "the injected panic must propagate");
}

/// Registering storage of the wrong shape is rejected with exact numbers.
#[test]
fn storage_shape_mismatch_diagnosed() {
    let dad4 = Dad::block(Extents::new([4, 4]), &[2, 1]).unwrap();
    let dad6 = Dad::block(Extents::new([6, 6]), &[2, 1]).unwrap();
    let mut reg = FieldRegistry::new(0);
    let storage = reg.register_allocated("a", dad6, AccessMode::Read).unwrap();
    let e = reg.register("b", dad4, AccessMode::Read, storage).unwrap_err();
    match e {
        MxnError::StorageMismatch { expected, actual, .. } => {
            assert_eq!((expected, actual), (8, 18));
        }
        other => panic!("unexpected {other}"),
    }
}
