//! Failure injection: the error paths a production coupling middleware
//! must turn into diagnoses rather than hangs or silent corruption.

use mxn::core::{ConnectionKind, Direction, FieldRegistry, MxnConnection, MxnError};
use mxn::dad::{AccessMode, Dad, Extents};
use mxn::framework::{serve, AnyPayload, Dispatch, RemotePort, RemoteService};
use mxn::runtime::{RuntimeError, Src, Tag, Universe, World};

/// RMI marshalling type confusion is caught, not UB: the callee asked for
/// the wrong payload type.
#[test]
fn rmi_type_confusion_is_detected() {
    struct WrongTypes;
    impl RemoteService for WrongTypes {
        fn dispatch(&self, _m: u32, arg: AnyPayload) -> Dispatch {
            // Service expects a String but the caller sent f64.
            match arg.downcast::<String>() {
                Ok(_) => AnyPayload::new(0u8),
                Err(e) => AnyPayload::new(format!("caught: {e}")),
            }
            .into()
        }
    }
    Universe::run(&[1, 1], |_, ctx| {
        if ctx.program == 0 {
            let ic = ctx.intercomm(1);
            let port = RemotePort::to_rank(0);
            let reply: String = port.call(ic, 0, 3.75f64).unwrap();
            assert!(reply.contains("caught"), "type confusion surfaced as an error");
            port.shutdown(ic).unwrap();
        } else {
            serve(ctx.intercomm(0), &WrongTypes).unwrap();
        }
    });
}

/// A typed receive that matches a wrong-typed message reports the sender
/// and tag instead of panicking.
#[test]
fn runtime_type_mismatch_reports_source() {
    World::run(2, |p| {
        let c = p.world();
        if c.rank() == 0 {
            c.send(1, 9, vec![1.0f64, 2.0]).unwrap();
        } else {
            let e = c.recv::<Vec<i32>>(0, 9).unwrap_err();
            match e {
                RuntimeError::TypeMismatch { src, tag, expected } => {
                    assert_eq!((src, tag), (0, 9));
                    assert!(expected.contains("i32"));
                }
                other => panic!("unexpected error {other}"),
            }
        }
    });
}

/// Connecting to a field the peer never registered fails cleanly on BOTH
/// sides: the acceptor's validation error is NACKed back, so the
/// initiator gets a handshake error instead of hanging forever.
#[test]
fn connection_to_missing_field_fails_cleanly() {
    Universe::run(&[1, 1], |_, ctx| {
        let dad = Dad::block(Extents::new([4]), &[1]).unwrap();
        if ctx.program == 0 {
            let ic = ctx.intercomm(1);
            let mut reg = FieldRegistry::new(0);
            reg.register_allocated("f", dad, AccessMode::Read).unwrap();
            let e = MxnConnection::initiate(
                ic,
                &reg,
                0,
                "f",
                "nope",
                Direction::Export,
                ConnectionKind::OneShot,
            )
            .unwrap_err();
            match e {
                MxnError::Handshake { detail } => {
                    assert!(detail.contains("nope"), "rejection names the field: {detail}")
                }
                other => panic!("unexpected {other}"),
            }
        } else {
            let ic = ctx.intercomm(0);
            let reg = FieldRegistry::new(0); // nothing registered
            let e = MxnConnection::accept(ic, &reg, 0).unwrap_err();
            assert!(matches!(e, MxnError::FieldNotFound { .. }));
        }
    });
}

/// Wrong access mode on the accepting side: AccessDenied locally, a
/// handshake rejection remotely.
#[test]
fn acceptor_access_mode_rejection_propagates() {
    Universe::run(&[1, 1], |_, ctx| {
        let dad = Dad::block(Extents::new([4]), &[1]).unwrap();
        if ctx.program == 0 {
            let ic = ctx.intercomm(1);
            let mut reg = FieldRegistry::new(0);
            reg.register_allocated("src_field", dad, AccessMode::Read).unwrap();
            let e = MxnConnection::initiate(
                ic,
                &reg,
                0,
                "src_field",
                "read_only_sink",
                Direction::Export,
                ConnectionKind::OneShot,
            )
            .unwrap_err();
            assert!(
                matches!(e, MxnError::Handshake { ref detail } if detail.contains("write")),
                "initiator learns why: {e}"
            );
        } else {
            let ic = ctx.intercomm(0);
            let mut reg = FieldRegistry::new(0);
            reg.register_allocated("read_only_sink", dad, AccessMode::Read).unwrap();
            let e = MxnConnection::accept(ic, &reg, 0).unwrap_err();
            assert!(matches!(e, MxnError::AccessDenied { needed: "write", .. }));
        }
    });
}

/// DCA redistribution specs are validated: counts exceeding the buffer and
/// wrong peer counts are rejected before any message is sent.
#[test]
fn dca_spec_validation() {
    use mxn::dca::{alltoallv_within, AlltoallvSpec};
    World::run(2, |p| {
        let comm = p.world();
        let data = vec![1.0, 2.0];
        // Chunk runs past the end of the buffer.
        let bad = AlltoallvSpec::new(vec![2, 2], vec![0, 1]).unwrap();
        let e = alltoallv_within(comm, &data, &bad).unwrap_err();
        assert!(matches!(e, RuntimeError::CollectiveMismatch { .. }));
        // Wrong number of peers.
        let wrong_peers = AlltoallvSpec::contiguous(&[1]);
        let e = alltoallv_within(comm, &data, &wrong_peers).unwrap_err();
        assert!(matches!(e, RuntimeError::CollectiveMismatch { .. }));
        // A valid spec still works afterwards (no poisoned state).
        let ok = AlltoallvSpec::contiguous(&[1, 1]);
        let got = alltoallv_within(comm, &data, &ok).unwrap();
        assert_eq!(got.len(), 2);
    });
}

/// A panicking rank aborts the world: blocked peers get `Aborted` instead
/// of hanging, and the panic is re-thrown to the caller.
#[test]
fn rank_panic_unblocks_the_world() {
    let result = std::panic::catch_unwind(|| {
        Universe::run(&[2, 1], |_, ctx| {
            if ctx.program == 0 && ctx.comm.rank() == 1 {
                panic!("injected failure");
            }
            // Everyone else blocks on traffic that will never come.
            let e = ctx.comm.recv::<u8>(Src::Any, Tag::Any).unwrap_err();
            assert_eq!(e, RuntimeError::Aborted);
        });
    });
    assert!(result.is_err(), "the injected panic must propagate");
}

/// Registering storage of the wrong shape is rejected with exact numbers.
#[test]
fn storage_shape_mismatch_diagnosed() {
    let dad4 = Dad::block(Extents::new([4, 4]), &[2, 1]).unwrap();
    let dad6 = Dad::block(Extents::new([6, 6]), &[2, 1]).unwrap();
    let mut reg = FieldRegistry::new(0);
    let storage = reg.register_allocated("a", dad6, AccessMode::Read).unwrap();
    let e = reg.register("b", dad4, AccessMode::Read, storage).unwrap_err();
    match e {
        MxnError::StorageMismatch { expected, actual, .. } => {
            assert_eq!((expected, actual), (8, 18));
        }
        other => panic!("unexpected {other}"),
    }
}

// ---------------------------------------------------------------------------
// Fault-plane failure injection: drops, deaths and retries.
// ---------------------------------------------------------------------------

use mxn::framework::{CallPolicy, FrameworkError, ServeStats};
use mxn::runtime::{ChannelPolicy, FaultConfig, FaultKind};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// A handshake message eaten by a lossy channel surfaces as a `Timeout`
/// carrying the elapsed wait and the (src, tag) being waited on — never a
/// hang — and the drop is recorded in the fault trace.
#[test]
fn dropped_handshake_times_out_with_context() {
    let cfg = FaultConfig::reliable(0xBEEF).with_channel(0, 1, ChannelPolicy::lossy(1.0));
    let (_, trace) = World::run_with_faults(2, cfg, |p| {
        let c = p.world();
        if c.rank() == 0 {
            // The "handshake": swallowed whole by the 0→1 policy.
            c.send(1, 11, 42u32).unwrap();
        } else {
            let e = c.recv_timeout::<u32>(0, 11, Duration::from_millis(40)).unwrap_err();
            match e {
                RuntimeError::Timeout { elapsed, src, tag, .. } => {
                    assert!(elapsed >= Duration::from_millis(40));
                    assert_eq!(src, Src::Rank(0));
                    assert_eq!(tag, Tag::Value(11));
                }
                other => panic!("expected Timeout, got {other}"),
            }
        }
    });
    assert!(
        trace.events().iter().any(|e| e.kind == FaultKind::Dropped && e.src == 0 && e.dst == 1),
        "the dropped handshake is in the trace: {:?}",
        trace.events()
    );
}

/// When the handshake initiator *dies* (scheduled death), the blocked
/// receiver gets `PeerDead` instead of waiting out a timeout.
#[test]
fn initiator_death_unblocks_receiver_with_peer_dead() {
    let cfg =
        FaultConfig::reliable(3).with_channel(0, 1, ChannelPolicy::lossy(1.0)).with_death(0, 1);
    let (results, trace) = World::run_with_faults(2, cfg, |p| {
        let c = p.world();
        if c.rank() == 0 {
            c.send(1, 5, 1u8).unwrap(); // op 0: sent, dropped
            c.send(1, 5, 2u8).unwrap_err() // op 1: own death fires
        } else {
            // Blocking receive, no timeout: only the liveness registry can
            // save us from hanging here.
            c.recv::<u8>(0, 5).unwrap_err()
        }
    });
    assert_eq!(results[0], RuntimeError::PeerDead { rank: 0 });
    assert_eq!(results[1], RuntimeError::PeerDead { rank: 0 });
    assert!(trace.events().iter().any(|e| matches!(e.kind, FaultKind::Death(_))));
}

/// A retried PRMI call executes **exactly once** server-side: the service
/// is slow enough that the client's per-attempt deadline fires and it
/// retransmits; the idempotency token makes the server re-send the cached
/// response instead of dispatching again.
#[test]
fn retried_prmi_call_executes_exactly_once() {
    struct SlowCounter(AtomicUsize);
    impl RemoteService for SlowCounter {
        fn dispatch(&self, _m: u32, arg: AnyPayload) -> Dispatch {
            // Slower than the client's per-attempt deadline, so at least
            // one retransmission is in flight before we answer.
            std::thread::sleep(Duration::from_millis(120));
            let x: u64 = arg.downcast().unwrap();
            let n = self.0.fetch_add(1, Ordering::SeqCst) + 1;
            AnyPayload::replicable(x + n as u64).into()
        }
    }
    Universe::run(&[1, 1], |_, ctx| {
        if ctx.program == 0 {
            let ic = ctx.intercomm(1);
            let port = RemotePort::to_rank(0);
            let policy = CallPolicy {
                deadline: Duration::from_millis(40),
                max_retries: 8,
                backoff: Duration::from_millis(2),
                ..CallPolicy::default()
            };
            let got: u64 = port.call_with_policy(ic, 0, 100u64, policy).unwrap();
            assert_eq!(got, 101, "executed once: result reflects a single increment");
            port.shutdown(ic).unwrap();
        } else {
            let svc = SlowCounter(AtomicUsize::new(0));
            let stats: ServeStats = serve(ctx.intercomm(0), &svc).unwrap();
            assert_eq!(svc.0.load(Ordering::SeqCst), 1, "dispatched exactly once");
            assert_eq!(stats.calls, 1);
            assert!(stats.duplicate_requests >= 1, "at least one retransmission deduped");
        }
    });
}

/// Kills a source rank mid-redistribution: every surviving rank of the
/// coupling — both sides — returns `PeerFailed` for the transfer instead
/// of hanging or silently accepting partial data.
#[test]
fn rank_death_mid_redistribution_fails_all_survivors() {
    let results = Universe::run(&[2, 2], |p, ctx| {
        let rank = ctx.comm.rank();
        let src = Dad::block(Extents::new([6, 6]), &[2, 1]).unwrap();
        let dst = Dad::block(Extents::new([6, 6]), &[1, 2]).unwrap();
        let mut reg = FieldRegistry::new(rank);
        let conn = if ctx.program == 0 {
            reg.register_allocated("f", src, AccessMode::Read).unwrap();
            MxnConnection::initiate(
                ctx.intercomm(1),
                &reg,
                0,
                "f",
                "f",
                Direction::Export,
                ConnectionKind::OneShot,
            )
        } else {
            reg.register_allocated("f", dst, AccessMode::Write).unwrap();
            MxnConnection::accept(ctx.intercomm(0), &reg, 0)
        };
        let mut conn = conn.unwrap();
        // Everyone is alive through establishment…
        p.world().barrier().unwrap();
        // …then world rank 1 (source rank 1) drops dead without sending.
        // It kills itself only after its own barrier completed, so the
        // pre-death barrier notifications it already sent still drain on
        // the ranks that are one dissemination round behind.
        if p.rank() == 1 {
            p.kill_rank(1);
            return None;
        }
        if p.rank() == 0 {
            // A pure sender would otherwise race past the consistency
            // check before the death lands.
            while !p.is_dead(1) {
                std::thread::yield_now();
            }
        }
        let ic = if ctx.program == 0 { ctx.intercomm(1) } else { ctx.intercomm(0) };
        Some(conn.data_ready(ic, &reg).unwrap_err())
    });
    for (rank, r) in results.iter().enumerate() {
        match r {
            None => assert_eq!(rank, 1, "only the dead rank skips the transfer"),
            // The `tag` differs by how the failure surfaced (a specific
            // receive vs the post-transfer liveness sweep); the dead
            // participant is named consistently either way.
            Some(MxnError::PeerFailed { rank: dead, .. }) => {
                assert_eq!(*dead, 1, "rank {rank} reports the dead participant consistently")
            }
            Some(other) => panic!("rank {rank}: expected PeerFailed, got {other}"),
        }
    }
}

/// A free-running producer that dies leaves its queued transfers intact:
/// the polling consumer drains the whole backlog (newest data wins), then
/// sees only quiet — and the death stays observable for an orderly
/// shutdown. Never a hang, never a torn snapshot.
#[test]
fn poll_latest_drains_backlog_of_dead_producer() {
    use mxn::core::TransferOutcome;
    Universe::run(&[1, 1], |p, ctx| {
        let dad = Dad::block(Extents::new([6]), &[1]).unwrap();
        if ctx.program == 0 {
            let ic = ctx.intercomm(1);
            let mut reg = FieldRegistry::new(0);
            let data = reg.register_allocated("s", dad, AccessMode::Read).unwrap();
            let mut conn = MxnConnection::initiate(
                ic,
                &reg,
                0,
                "s",
                "s",
                Direction::Export,
                ConnectionKind::Persistent { period: 1 },
            )
            .unwrap();
            for round in 1..=3u64 {
                {
                    let mut d = data.write();
                    for i in 0..6usize {
                        *d.get_mut(&[i]).unwrap() = (round * 100 + i as u64) as f64;
                    }
                }
                assert!(matches!(
                    conn.data_ready(ic, &reg).unwrap(),
                    TransferOutcome::Transferred { .. }
                ));
            }
            p.kill_rank(p.rank());
        } else {
            let ic = ctx.intercomm(0);
            let mut reg = FieldRegistry::new(0);
            let data = reg.register_allocated("s", dad, AccessMode::Write).unwrap();
            let mut conn = MxnConnection::accept(ic, &reg, 0).unwrap();
            // Let the producer finish every round and die before polling.
            while !p.is_dead(0) {
                std::thread::yield_now();
            }
            let drained = conn.poll_latest(ic, &reg).unwrap();
            assert_eq!(drained, 3, "messages sent before the death still drain");
            {
                let d = data.read();
                for i in 0..6usize {
                    assert_eq!(*d.get(&[i]).unwrap(), (300 + i) as f64, "newest round wins");
                }
            }
            assert_eq!(conn.poll_latest(ic, &reg).unwrap(), 0, "quiet after the backlog");
            assert!(ic.any_dead().is_some(), "the death is observable for shutdown");
        }
    });
}

/// A lossy channel that silences one producer withholds the *whole* round
/// from the polling consumer: `poll_latest` only consumes complete rounds,
/// so the half-arrived snapshot is never unpacked (no tearing), and the
/// drops are attributable in the fault trace.
#[test]
fn poll_latest_withholds_torn_rounds_on_lossy_channel() {
    use mxn::core::TransferOutcome;
    // World layout: ranks 0,1 = producers, rank 2 = consumer. Every
    // coupling message from producer 1 to the consumer is eaten.
    let cfg = FaultConfig::reliable(0xD1CE).with_channel(1, 2, ChannelPolicy::lossy(1.0));
    let (_, trace) = Universe::run_with_faults(&[2, 1], cfg, |_, ctx| {
        let src = Dad::block(Extents::new([6]), &[2]).unwrap();
        let dst = Dad::block(Extents::new([6]), &[1]).unwrap();
        if ctx.program == 0 {
            let ic = ctx.intercomm(1);
            let mut reg = FieldRegistry::new(ctx.comm.rank());
            reg.register_allocated("s", src, AccessMode::Read).unwrap();
            let mut conn = MxnConnection::initiate(
                ic,
                &reg,
                0,
                "s",
                "s",
                Direction::Export,
                ConnectionKind::Persistent { period: 1 },
            )
            .unwrap();
            assert!(matches!(
                conn.data_ready(ic, &reg).unwrap(),
                TransferOutcome::Transferred { .. }
            ));
            // Producers confirm completion so the consumer polls only
            // after the surviving half of the round has been delivered.
            ctx.comm.barrier().unwrap();
            if ctx.comm.rank() == 0 {
                ic.send(0, 777, 1u8).unwrap();
            }
        } else {
            let ic = ctx.intercomm(0);
            let mut reg = FieldRegistry::new(0);
            let data = reg.register_allocated("s", dst, AccessMode::Write).unwrap();
            let mut conn = MxnConnection::accept(ic, &reg, 0).unwrap();
            let _: u8 = ic.recv(0, 777).unwrap();
            assert_eq!(
                conn.poll_latest(ic, &reg).unwrap(),
                0,
                "an incomplete round is withheld, not partially unpacked"
            );
            let d = data.read();
            for i in 0..6usize {
                assert_eq!(*d.get(&[i]).unwrap(), 0.0, "no tearing: field untouched");
            }
        }
    });
    assert!(
        trace.events().iter().any(|e| e.kind == FaultKind::Dropped && e.src == 1 && e.dst == 2),
        "the swallowed half-round is attributable: {:?}",
        trace.events()
    );
}

/// Persistent-period coupling across a death: non-due steps stay quiet,
/// the next *due* step reports `PeerFailed` naming the dead rank on every
/// survivor, and the committed-transfer count never moves.
#[test]
fn persistent_period_transfer_fails_due_step_after_death() {
    let results = Universe::run(&[2, 2], |p, ctx| {
        let rank = ctx.comm.rank();
        let src = Dad::block(Extents::new([6, 6]), &[2, 1]).unwrap();
        let dst = Dad::block(Extents::new([6, 6]), &[1, 2]).unwrap();
        let mut reg = FieldRegistry::new(rank);
        let conn = if ctx.program == 0 {
            reg.register_allocated("f", src, AccessMode::Read).unwrap();
            MxnConnection::initiate(
                ctx.intercomm(1),
                &reg,
                0,
                "f",
                "f",
                Direction::Export,
                ConnectionKind::Persistent { period: 2 },
            )
        } else {
            reg.register_allocated("f", dst, AccessMode::Write).unwrap();
            MxnConnection::accept(ctx.intercomm(0), &reg, 0)
        };
        let mut conn = conn.unwrap();
        let ic = if ctx.program == 0 { ctx.intercomm(1) } else { ctx.intercomm(0) };
        // Step 1 (due): a clean transfer while everyone is alive.
        conn.data_ready(ic, &reg).unwrap();
        p.world().barrier().unwrap();
        // Source rank 1 (world rank 1) dies between periods.
        if p.rank() == 1 {
            p.kill_rank(1);
            return None;
        }
        while !p.is_dead(1) {
            std::thread::yield_now();
        }
        // Step 2 is off-period: no traffic, no failure check, no progress.
        use mxn::core::TransferOutcome;
        assert_eq!(conn.data_ready(ic, &reg).unwrap(), TransferOutcome::Skipped);
        // Step 3 is due again: every survivor gets the same diagnosis.
        let e = conn.data_ready(ic, &reg).unwrap_err();
        assert_eq!(conn.stats().1, 1, "the committed count never moves on failure");
        Some(e)
    });
    for (rank, r) in results.iter().enumerate() {
        match r {
            None => assert_eq!(rank, 1),
            Some(MxnError::PeerFailed { rank: dead, .. }) => {
                assert_eq!(*dead, 1, "rank {rank} names the dead participant")
            }
            Some(other) => panic!("rank {rank}: expected PeerFailed, got {other}"),
        }
    }
}

/// An RMI call to a provider that died fails fast with `PeerDead` — the
/// retry policy does not burn its attempt budget on a corpse.
#[test]
fn prmi_call_to_dead_provider_fails_fast() {
    let start = std::time::Instant::now();
    Universe::run(&[1, 1], |p, ctx| {
        if ctx.program == 0 {
            let ic = ctx.intercomm(1);
            let port = RemotePort::to_rank(0);
            let policy = CallPolicy {
                deadline: Duration::from_secs(5),
                max_retries: 10,
                backoff: Duration::from_millis(1),
                ..CallPolicy::default()
            };
            let e = port.call_with_policy::<u64, u64>(ic, 0, 1, policy).unwrap_err();
            assert!(
                matches!(e, FrameworkError::Runtime(RuntimeError::PeerDead { .. })),
                "expected PeerDead, got {e}"
            );
        } else {
            // The provider dies instead of serving.
            p.kill_rank(p.rank());
        }
    });
    assert!(start.elapsed() < Duration::from_secs(5), "failed fast, not via timeouts");
}
