//! Property-based tests on the core data structures and invariants.
//!
//! These check the algebraic laws the whole middleware stack rests on:
//! distributions partition index spaces, linearizations are bijections,
//! schedules move every element exactly once, and the mirror property
//! between sender and receiver schedules holds for arbitrary layouts.

use proptest::prelude::*;

use mxn::dad::{AxisDist, Dad, Extents, LocalArray, Region, Template};
use mxn::linearize::{ArrayOrder, SegmentList};
use mxn::schedule::{LinearSchedule, RegionSchedule};

/// Strategy: an arbitrary axis distribution valid for `extent`.
fn axis_dist(extent: usize) -> impl Strategy<Value = AxisDist> {
    let nprocs = 1..=4usize;
    prop_oneof![
        Just(AxisDist::Collapsed),
        nprocs.clone().prop_map(|n| AxisDist::Block { nprocs: n }),
        nprocs.clone().prop_map(|n| AxisDist::Cyclic { nprocs: n }),
        (1..=3usize, nprocs.clone())
            .prop_map(|(b, n)| AxisDist::BlockCyclic { block: b, nprocs: n }),
        // Gen-block: random split of the extent into n parts.
        (1..=4usize).prop_flat_map(move |n| proptest::collection::vec(0..=extent, n - 1)).prop_map(
            move |mut cuts| {
                cuts.push(0);
                cuts.push(extent);
                cuts.sort_unstable();
                let sizes: Vec<usize> = cuts.windows(2).map(|w| w[1] - w[0]).collect();
                AxisDist::GenBlock { sizes }
            }
        ),
        // Implicit: arbitrary owners.
        (1..=3usize).prop_flat_map(move |n| {
            proptest::collection::vec(0..n, extent)
                .prop_map(move |owners| AxisDist::Implicit { owners, nprocs: n })
        }),
    ]
}

/// Strategy: a random 2-D template.
fn template_2d() -> impl Strategy<Value = Template> {
    (1..=9usize, 1..=9usize).prop_flat_map(|(r, c)| {
        (axis_dist(r), axis_dist(c)).prop_map(move |(a0, a1)| {
            Template::new(Extents::new([r, c]), vec![a0, a1]).expect("strategy yields valid axes")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every template partitions its index space: each element has exactly
    /// one owner, and that owner's patches contain it.
    #[test]
    fn template_partitions_index_space(t in template_2d()) {
        let mut counts = vec![0usize; t.nranks()];
        for idx in t.extents().iter() {
            counts[t.owner(&idx)] += 1;
        }
        let mut patch_total = 0;
        for (r, &count) in counts.iter().enumerate() {
            prop_assert_eq!(t.local_size(r), count);
            for p in t.patches(r) {
                for idx in p.iter() {
                    prop_assert_eq!(t.owner(&idx), r);
                    patch_total += 1;
                }
            }
        }
        prop_assert_eq!(patch_total, t.extents().total());
    }

    /// Linearization orders are bijections and region segments cover
    /// exactly the region.
    #[test]
    fn array_orders_are_bijective(
        r in 1..7usize,
        c in 1..7usize,
        d in 1..4usize,
        order in prop_oneof![Just(ArrayOrder::RowMajor), Just(ArrayOrder::ColMajor)],
    ) {
        let e = Extents::new([r, c, d]);
        let mut seen = vec![false; e.total()];
        for idx in e.iter() {
            let p = order.linear(&e, &idx);
            prop_assert!(!seen[p]);
            seen[p] = true;
            prop_assert_eq!(order.index(&e, p), idx);
        }
        prop_assert!(seen.iter().all(|&b| b));
    }

    /// Region segments of a random sub-box cover exactly its elements.
    #[test]
    fn region_segments_cover_region(
        r in 1..8usize, c in 1..8usize,
        lo0 in 0..8usize, lo1 in 0..8usize,
        len0 in 0..8usize, len1 in 0..8usize,
    ) {
        let e = Extents::new([r, c]);
        let lo = [lo0.min(r - 1), lo1.min(c - 1)];
        let hi = [(lo[0] + len0 + 1).min(r), (lo[1] + len1 + 1).min(c)];
        let region = Region::new(lo.to_vec(), hi.to_vec());
        for order in [ArrayOrder::RowMajor, ArrayOrder::ColMajor] {
            let segs = order.region_segments(&e, &region);
            prop_assert_eq!(segs.total_len(), region.len());
            for idx in region.iter() {
                prop_assert!(segs.contains(order.linear(&e, &idx)));
            }
        }
    }

    /// Segment-list intersection is exactly set intersection.
    #[test]
    fn segment_intersection_is_set_intersection(
        a in proptest::collection::vec((0..50usize, 1..6usize), 0..8),
        b in proptest::collection::vec((0..50usize, 1..6usize), 0..8),
    ) {
        fn normalize(v: Vec<(usize, usize)>) -> SegmentList {
            // Drop overlapping runs to satisfy the disjointness contract.
            let mut taken: Vec<(usize, usize)> = Vec::new();
            'outer: for (s, l) in v {
                for &(ts, tl) in &taken {
                    if s < ts + tl && ts < s + l {
                        continue 'outer;
                    }
                }
                taken.push((s, l));
            }
            SegmentList::from_runs(taken)
        }
        let sa = normalize(a);
        let sb = normalize(b);
        let i = sa.intersect(&sb);
        for p in 0..60 {
            prop_assert_eq!(i.contains(p), sa.contains(p) && sb.contains(p), "position {}", p);
        }
        let reversed = sb.intersect(&sa);
        prop_assert_eq!(i.runs(), reversed.runs());
    }

    /// For arbitrary source/destination templates of the same array:
    /// sender schedules collectively move every element exactly once, and
    /// receiver schedules mirror them pair-for-pair.
    #[test]
    fn schedules_are_complete_and_mirrored(src_t in template_2d(), dst_a in axis_dist(64)) {
        let extents = src_t.extents().clone();
        let src = Dad::regular(src_t);
        // Destination: distribute rows by dst_a (clipped to the row count),
        // columns collapsed — guaranteed-conforming second layout.
        let rows = extents.dim(0);
        let dst_axis = match &dst_a {
            AxisDist::GenBlock { .. } | AxisDist::Implicit { .. } => AxisDist::Block { nprocs: 2 },
            other => other.clone(),
        };
        let dst = Dad::regular(
            Template::new(extents.clone(), vec![dst_axis, AxisDist::Collapsed])
                .unwrap_or_else(|_| Template::block(extents.clone(), &[1, 1]).unwrap()),
        );
        let _ = rows;

        // Completeness: union over all sender pairs = every element once.
        let mut delivered = vec![0usize; extents.total()];
        for s in 0..src.nranks() {
            let sched = RegionSchedule::for_sender(&src, &dst, s);
            for pair in sched.pairs() {
                for region in &pair.regions {
                    for idx in region.iter() {
                        prop_assert_eq!(src.owner(&idx), s);
                        prop_assert_eq!(dst.owner(&idx), pair.peer);
                        delivered[extents.linear(&idx)] += 1;
                    }
                }
            }
        }
        prop_assert!(delivered.iter().all(|&c| c == 1), "every element exactly once");

        // Mirror property.
        for r in 0..dst.nranks() {
            let rs = RegionSchedule::for_receiver(&src, &dst, r);
            for pair in rs.pairs() {
                let ss = RegionSchedule::for_sender(&src, &dst, pair.peer);
                let mirror = ss.pairs().iter().find(|p| p.peer == r).expect("mirrored pair");
                prop_assert_eq!(&pair.regions, &mirror.regions);
            }
        }

        // Linear schedules agree with region schedules on totals.
        for s in 0..src.nranks() {
            let lin = LinearSchedule::for_sender(&src, &dst, ArrayOrder::RowMajor, s);
            let reg = RegionSchedule::for_sender(&src, &dst, s);
            prop_assert_eq!(lin.total_elements(), reg.total_elements());
        }
    }

    /// Pack/unpack round-trips restore local storage for any region inside
    /// an owned patch.
    #[test]
    fn pack_unpack_roundtrip(
        rows in 2..8usize,
        cols in 2..8usize,
        grid0 in 1..3usize,
        grid1 in 1..3usize,
    ) {
        let dad = Dad::block(Extents::new([rows, cols]), &[grid0, grid1]).unwrap();
        for rank in 0..dad.nranks() {
            let local = LocalArray::from_fn(&dad, rank, |idx| (idx[0] * cols + idx[1]) as i64);
            for patch in dad.patches(rank) {
                let data = local.pack_region(&patch);
                prop_assert_eq!(data.len(), patch.len());
                let mut copy: LocalArray<i64> = LocalArray::allocate(&dad, rank);
                copy.unpack_region(&patch, &data);
                for idx in patch.iter() {
                    prop_assert_eq!(copy.get(&idx), local.get(&idx));
                }
            }
        }
    }

    /// The 2N-vs-N² converter registries agree on every conversion.
    #[test]
    fn converter_strategies_agree(
        n in 2..6usize,
        len in 0..40usize,
        src in 0..6usize,
        dst in 0..6usize,
    ) {
        use mxn::dad::{ConvertStrategy, ConverterRegistry, SyntheticPackage};
        let (src, dst) = (src % n, dst % n);
        let canonical: Vec<f64> = (0..len).map(|i| i as f64).collect();
        let native = SyntheticPackage { id: src }.from_canonical(&canonical);
        let mut hub = ConverterRegistry::new(n, ConvertStrategy::Hub);
        let mut direct = ConverterRegistry::new(n, ConvertStrategy::Direct);
        prop_assert_eq!(hub.convert(src, dst, &native), direct.convert(src, dst, &native));
    }
}

/// Non-proptest regression: a deterministic heavy case of the schedule
/// completeness law, exercising the paper's Figure 1 shape in 3-D.
#[test]
fn figure1_3d_schedules_complete() {
    let e = Extents::new([6, 6, 6]);
    let src = Dad::block(e.clone(), &[2, 2, 2]).unwrap(); // M = 8
    let dst = Dad::block(e.clone(), &[3, 3, 3]).unwrap(); // N = 27
    let mut delivered = vec![false; 216];
    for s in 0..8 {
        let sched = RegionSchedule::for_sender(&src, &dst, s);
        for pair in sched.pairs() {
            for region in &pair.regions {
                for idx in region.iter() {
                    let k = e.linear(&idx);
                    assert!(!delivered[k]);
                    delivered[k] = true;
                }
            }
        }
    }
    assert!(delivered.iter().all(|&b| b));
    // Each of the 27 receivers hears from at least one and at most 8 senders.
    for r in 0..27 {
        let sched = RegionSchedule::for_receiver(&src, &dst, r);
        assert!((1..=8).contains(&sched.num_messages()));
        assert_eq!(sched.total_elements(), 8);
    }
}

// ---------------------------------------------------------------------------
// Fault-plane determinism: same seed ⇒ identical trace and identical
// surviving-rank results.
// ---------------------------------------------------------------------------

mod fault_determinism {
    use proptest::prelude::*;
    use std::time::Duration;

    use mxn::runtime::{ChannelPolicy, FaultConfig, RuntimeError, World};

    /// Stable, timing-free rendering of one op's outcome (Timeout's elapsed
    /// duration would otherwise differ between runs).
    fn label<T: std::fmt::Debug>(r: Result<T, RuntimeError>) -> String {
        match r {
            Ok(v) => format!("ok:{v:?}"),
            Err(RuntimeError::Timeout { src, tag, .. }) => format!("timeout:{src:?}:{tag:?}"),
            Err(RuntimeError::PeerDead { rank }) => format!("dead:{rank}"),
            Err(RuntimeError::Corrupt { src, tag }) => format!("corrupt:{src}:{tag}"),
            Err(e) => format!("other:{e}"),
        }
    }

    /// All-pairs exchange on 4 ranks under `cfg`: every rank sends to every
    /// other rank, then collects each receive's outcome. Returns the
    /// per-rank outcome log plus the canonical fault-trace digest.
    fn exchange(cfg: FaultConfig) -> (Vec<Vec<String>>, u64) {
        const N: usize = 4;
        let (results, trace) = World::run_with_faults(N, cfg, |p| {
            let c = p.world();
            let me = c.rank();
            let mut log = Vec::new();
            for dst in (0..N).filter(|&d| d != me) {
                log.push(format!("send->{dst}:{}", label(c.send(dst, 7, (me * 10 + dst) as u64))));
            }
            for src in (0..N).filter(|&s| s != me) {
                log.push(format!(
                    "recv<-{src}:{}",
                    label(c.recv_timeout::<u64>(src, 7, Duration::from_millis(150)))
                ));
            }
            log
        });
        (results, trace.digest())
    }

    fn lossy_cfg(seed: u64) -> FaultConfig {
        FaultConfig::reliable(seed).with_default_policy(ChannelPolicy {
            drop: 0.25,
            duplicate: 0.15,
            corrupt: 0.15,
            // Delays far below the receive deadline, so whether a delayed
            // message beats the timeout never depends on scheduling.
            delay: Duration::from_micros(200),
            jitter: Duration::from_micros(300),
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// Lossy channels: both the injected-fault trace and every rank's
        /// observed outcomes replay identically for the same seed.
        #[test]
        fn lossy_runs_replay_identically(seed in 0u64..1_000_000) {
            let (r1, d1) = exchange(lossy_cfg(seed));
            let (r2, d2) = exchange(lossy_cfg(seed));
            prop_assert_eq!(d1, d2, "fault traces diverged for seed {}", seed);
            prop_assert_eq!(r1, r2);
        }

        /// Scheduled rank death: survivors observe the same mixture of
        /// delivered messages and `PeerDead` failures on every replay.
        #[test]
        fn death_runs_replay_identically(seed in 0u64..1_000_000, at_op in 0u64..5) {
            let cfg = || FaultConfig::reliable(seed).with_death(3, at_op);
            let (r1, d1) = exchange(cfg());
            let (r2, d2) = exchange(cfg());
            prop_assert_eq!(d1, d2);
            prop_assert_eq!(r1, r2);
        }
    }
}
