//! Process-level robustness tests for the UDS transport: real `kill -9`,
//! real sockets, real bit damage — the run must end in a committed
//! shrink or a clean retry, never a hang and never a panic.
//!
//! Workers are re-execs of this test binary: `spawn_worker` launches
//! `current_exe()` with the `MXN_WIRE_*` environment set and the
//! `worker_entry` test filter; `wire_role()` turns that invocation into a
//! worker loop instead of a driver. Without the environment,
//! `worker_entry` is an empty pass.

use std::time::{Duration, Instant};

use mxn::wire::{spawn_worker, wire_role, CodecRegistry, WireConfig, WireFaults, WireNode};
use mxn_runtime::RuntimeError;

const APP: u32 = 7;
const ASSIGN_TAG: i32 = 500;
const OP_DONE: u64 = 0;
const OP_PING: u64 = 1;
const OP_RECOVER: u64 = 2;

fn config(dir: &std::path::Path, rank: usize, size: usize, seed: u64) -> WireConfig {
    let mut cfg = WireConfig::new(dir, rank, size);
    cfg.seed = if seed == 0 { 1 } else { seed };
    // Seed 0 = reliable wire; anything else arms seeded frame corruption
    // on every link (both directions, since workers get the same seed).
    if seed != 0 {
        cfg.faults = WireFaults { seed, corrupt: 0.25, ..WireFaults::none() };
    }
    cfg
}

fn test_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mxn-wiretest-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Worker body: echo server over the assignment protocol.
/// `[OP_PING, x, token]` → reply `x * 3 + 1` on tag `token`;
/// `[OP_RECOVER, epoch]` → join survivor agreement; `[OP_DONE]` → exit.
fn worker_loop(rank: usize, size: usize, dir: std::path::PathBuf, seed: u64) {
    let node = WireNode::start(config(&dir, rank, size, seed), CodecRegistry::with_defaults())
        .expect("worker: start");
    node.connect().expect("worker: connect");
    loop {
        let msg: Vec<u64> = match node.recv(0, APP, ASSIGN_TAG) {
            Ok(m) => m,
            // A damaged assignment frame surfaces here as Corrupt; the
            // driver retries with a fresh token, so just keep serving.
            Err(RuntimeError::Corrupt { .. }) => continue,
            Err(RuntimeError::PeerDead { .. }) => std::process::exit(1),
            Err(e) => panic!("worker {rank}: {e}"),
        };
        match msg[0] {
            OP_DONE => break,
            OP_PING => {
                let (x, token) = (msg[1], msg[2] as i32);
                node.send(0, APP, token, x * 3 + 1).expect("worker: reply");
            }
            OP_RECOVER => {
                let survivors = node
                    .agree_survivors(msg[1] as u32, Duration::from_secs(5))
                    .expect("worker: agree");
                assert!(survivors.contains(&0) && survivors.contains(&rank));
            }
            other => panic!("worker {rank}: unknown opcode {other}"),
        }
    }
    node.shutdown();
}

/// Re-exec entry point: becomes a worker when the wire environment is set.
#[test]
fn worker_entry() {
    if let Some(role) = wire_role() {
        worker_loop(role.rank, role.size, role.dir, role.seed);
        std::process::exit(0);
    }
}

fn ping(node: &WireNode, w: usize, x: u64, token: i32, timeout: Duration) -> Option<u64> {
    node.send(w, APP, ASSIGN_TAG, vec![OP_PING, x, token as u64]).ok()?;
    node.recv_timeout::<u64>(w, APP, token, timeout).ok()
}

/// `kill -9` of a real worker process mid-coupling: heartbeats stop, the
/// dialer's reconnect budget (rank 2 → rank 1) and the passive window
/// (rank 0 toward 1) both exhaust, the peer is declared dead within the
/// deadline, the survivors commit agreement, and the run completes.
#[test]
fn kill9_worker_is_declared_dead_and_survivors_heal() {
    let dir = test_dir("kill9");
    let node = WireNode::start(config(&dir, 0, 3, 0), CodecRegistry::with_defaults())
        .expect("driver: start");
    let mut workers: Vec<_> = (1..3)
        .map(|r| spawn_worker(r, 3, &dir, 0, &["worker_entry", "--exact"]).expect("spawn"))
        .collect();
    node.connect().expect("driver: connect");

    // Healthy round trip with both workers.
    for w in 1..3 {
        assert_eq!(ping(&node, w, 7, 100 + w as i32, Duration::from_secs(5)), Some(22));
    }

    // Pull the plug on worker 1: SIGKILL, no goodbye, no flush.
    workers[0].kill();
    let t0 = Instant::now();
    assert!(
        node.await_death(1, Duration::from_secs(15)),
        "rank 1 was never declared dead after kill -9"
    );
    let detection = t0.elapsed();
    // Bounded failure detection: the passive reconnect window plus slack,
    // nowhere near the 15s give-up above.
    assert!(
        detection < Duration::from_secs(10),
        "death verdict took {detection:?}, expected well under 10s"
    );

    // Survivor agreement commits the shrink on every live rank.
    node.send(2, APP, ASSIGN_TAG, vec![OP_RECOVER, 1, 0]).expect("send recover");
    let survivors = node.agree_survivors(1, Duration::from_secs(5)).expect("agree");
    assert_eq!(survivors, vec![0, 2]);

    // The dead rank fails fast now — no hang, the in-proc error surface.
    assert!(matches!(
        node.send(1, APP, ASSIGN_TAG, vec![OP_PING, 1, 1]),
        Err(RuntimeError::PeerDead { rank: 1 })
    ));

    // And the survivor still works.
    assert_eq!(ping(&node, 2, 9, 300, Duration::from_secs(5)), Some(28));

    node.send(2, APP, ASSIGN_TAG, vec![OP_DONE]).expect("send done");
    assert!(workers[1].wait_success(Duration::from_secs(10)), "survivor exited unclean");
    node.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Seeded frame corruption on every link between two real processes: the
/// CRCs turn bit damage into `RuntimeError::Corrupt` (never a panic,
/// never a wrong value), and retrying with fresh tokens — fresh fault
/// draws — completes the exchange.
#[test]
fn corrupt_wire_degrades_to_retries_not_panics() {
    let dir = test_dir("corrupt");
    let seed = 7;
    let node = WireNode::start(config(&dir, 0, 2, seed), CodecRegistry::with_defaults())
        .expect("driver: start");
    let mut worker = spawn_worker(1, 2, &dir, seed, &["worker_entry", "--exact"]).expect("spawn");
    node.connect().expect("driver: connect");

    let mut successes = 0;
    let mut retries = 0;
    for i in 0..10u64 {
        let want = i * 3 + 1;
        let mut got = None;
        for attempt in 0..40 {
            let token = 1000 + (i * 64 + attempt) as i32;
            if let Some(v) = ping(&node, 1, i, token, Duration::from_millis(500)) {
                got = Some(v);
                break;
            }
            retries += 1;
        }
        match got {
            Some(v) => {
                assert_eq!(v, want, "a damaged frame decoded to a WRONG value");
                successes += 1;
            }
            None => panic!("ping {i} never succeeded in 40 attempts"),
        }
    }
    assert_eq!(successes, 10);
    let stats = node.stats();
    println!(
        "corrupt-wire run: {} retries, driver saw {} corrupt frames",
        retries, stats.corrupt_frames
    );
    // With corrupt=0.25 on both directions and deterministic draws, some
    // damage must have been observed somewhere — otherwise the fault
    // plane was never armed.
    assert!(
        retries > 0 || stats.corrupt_frames > 0,
        "corruption faults were configured but never fired"
    );

    // Disarm before the goodbye so a corrupted DONE can't strand the
    // worker in its serve loop.
    node.set_faults_armed(false);
    node.send(1, APP, ASSIGN_TAG, vec![OP_DONE]).expect("send done");
    assert!(worker.wait_success(Duration::from_secs(10)), "worker exited unclean");
    node.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
