//! Process-level robustness tests for the UDS transport: real `kill -9`,
//! real sockets, real bit damage — the run must end in a committed
//! shrink or a clean retry, never a hang and never a panic.
//!
//! Workers are re-execs of this test binary: `spawn_worker` launches
//! `current_exe()` with the `MXN_WIRE_*` environment set and the
//! `worker_entry` test filter; `wire_role()` turns that invocation into a
//! worker loop instead of a driver. Without the environment,
//! `worker_entry` is an empty pass.

use std::time::{Duration, Instant};

use mxn::wire::{
    spawn_spare, spawn_worker, spawn_worker_max, wire_role, CodecRegistry, WireConfig, WireFaults,
    WireNode, WireRole,
};
use mxn_runtime::RuntimeError;

const APP: u32 = 7;
const ASSIGN_TAG: i32 = 500;
const OP_DONE: u64 = 0;
const OP_PING: u64 = 1;
const OP_RECOVER: u64 = 2;
const OP_CHUNK: u64 = 3;
const OP_SUM: u64 = 4;
const OP_JOIN: u64 = 5;
/// Tag the admitted spare uses to report the state it was replayed.
const STATE_ECHO_TAG: i32 = 777;
/// Sentinel seed marking a spare that dies abruptly right after its
/// `JoinReq` — the deterministic kill-mid-join fault.
const SPARE_ABORT_SEED: u64 = 7777;

fn config(dir: &std::path::Path, rank: usize, size: usize, seed: u64, max: usize) -> WireConfig {
    let mut cfg = WireConfig::new(dir, rank, size);
    cfg.max_size = max;
    cfg.seed = if seed == 0 { 1 } else { seed };
    // Seed 0 = reliable wire; anything else arms seeded frame corruption
    // on every link (both directions, since workers get the same seed).
    // The abort-spare sentinel stays reliable: it tests the join rollback,
    // not the fault plane.
    if seed != 0 && seed != SPARE_ABORT_SEED {
        cfg.faults = WireFaults { seed, corrupt: 0.25, ..WireFaults::none() };
    }
    cfg
}

fn test_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mxn-wiretest-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Worker body: echo server over the assignment protocol.
/// `[OP_PING, x, token]` → reply `x * 3 + 1` on tag `token`;
/// `[OP_RECOVER, epoch]` → join survivor agreement;
/// `[OP_CHUNK, round_id, val, ack_tag]` → accumulate `val` once per
/// `round_id` (re-planned rounds dedup here), ack on `ack_tag`;
/// `[OP_SUM, reply_tag]` → report the accumulated sum;
/// `[OP_JOIN]` → vote on a spare-process admission; `[OP_DONE]` → exit.
fn worker_loop(role: &WireRole) {
    let WireRole { rank, size, max_size, dir, seed, .. } = role;
    let (rank, size) = (*rank, *size);
    let node = WireNode::start(
        config(dir, rank, size, *seed, *max_size),
        CodecRegistry::with_defaults(),
    )
    .expect("worker: start");
    node.connect().expect("worker: connect");
    serve(&node, rank);
    node.shutdown();
}

/// The shared serve loop (workers and admitted spares alike).
fn serve(node: &WireNode, rank: usize) {
    let mut seen = std::collections::HashSet::new();
    let mut sum = 0u64;
    loop {
        let msg: Vec<u64> = match node.recv(0, APP, ASSIGN_TAG) {
            Ok(m) => m,
            // A damaged assignment frame surfaces here as Corrupt; the
            // driver retries with a fresh token, so just keep serving.
            Err(RuntimeError::Corrupt { .. }) => continue,
            Err(RuntimeError::PeerDead { .. }) => std::process::exit(1),
            Err(e) => panic!("worker {rank}: {e}"),
        };
        match msg[0] {
            OP_DONE => break,
            OP_PING => {
                let (x, token) = (msg[1], msg[2] as i32);
                node.send(0, APP, token, x * 3 + 1).expect("worker: reply");
            }
            OP_RECOVER => {
                let survivors = node
                    .agree_survivors(msg[1] as u32, Duration::from_secs(5))
                    .expect("worker: agree");
                assert!(survivors.contains(&0) && survivors.contains(&rank));
            }
            OP_CHUNK => {
                let (round_id, val, ack_tag) = (msg[1], msg[2], msg[3] as i32);
                if seen.insert(round_id) {
                    sum += val;
                }
                node.send(0, APP, ack_tag, round_id).expect("worker: ack");
            }
            OP_SUM => {
                node.send(0, APP, msg[1] as i32, sum).expect("worker: sum");
            }
            OP_JOIN => {
                // Vote on the pending admission; an aborted attempt is a
                // normal outcome, keep serving either way.
                let _ = node.join_vote(0, Duration::from_secs(3));
            }
            other => panic!("worker {rank}: unknown opcode {other}"),
        }
    }
}

/// Spare body: a late-launched process that dials the existing mesh and
/// asks to join. In abort mode (the `SPARE_ABORT_SEED` sentinel) it dies
/// abruptly right after its `JoinReq` — kill -9 mid-handshake, exercising
/// the rollback. Otherwise it joins, echoes the replayed state blob to the
/// driver, and serves like any worker.
fn spare_loop(role: &WireRole) {
    let node = WireNode::start(
        config(&role.dir, role.rank, role.size, 0, role.max_size),
        CodecRegistry::with_defaults(),
    )
    .expect("spare: start");
    node.connect().expect("spare: connect");
    if role.seed == SPARE_ABORT_SEED {
        // Announce, then die without a goodbye: every incumbent sees raw
        // EOF and the sponsor's vote round must fail and roll back.
        node.send(0, mxn::wire::WIRE_CTRL_CONTEXT, mxn::wire::JOIN_REQ_TAG, role.rank as u64)
            .expect("spare: join req");
        std::process::abort();
    }
    let state = node.join_mesh(0, Duration::from_secs(10)).expect("spare: join");
    let step = u64::from_le_bytes(state[..8].try_into().expect("state blob"));
    node.send(0, APP, STATE_ECHO_TAG, step).expect("spare: state echo");
    serve(&node, role.rank);
    node.shutdown();
}

/// Re-exec entry point: becomes a worker (or a joining spare) when the
/// wire environment is set.
#[test]
fn worker_entry() {
    if let Some(role) = wire_role() {
        if role.spare {
            spare_loop(&role);
        } else {
            worker_loop(&role);
        }
        std::process::exit(0);
    }
}

fn ping(node: &WireNode, w: usize, x: u64, token: i32, timeout: Duration) -> Option<u64> {
    node.send(w, APP, ASSIGN_TAG, vec![OP_PING, x, token as u64]).ok()?;
    node.recv_timeout::<u64>(w, APP, token, timeout).ok()
}

/// `kill -9` of a real worker process mid-coupling: heartbeats stop, the
/// dialer's reconnect budget (rank 2 → rank 1) and the passive window
/// (rank 0 toward 1) both exhaust, the peer is declared dead within the
/// deadline, the survivors commit agreement, and the run completes.
#[test]
fn kill9_worker_is_declared_dead_and_survivors_heal() {
    let dir = test_dir("kill9");
    let node = WireNode::start(config(&dir, 0, 3, 0, 3), CodecRegistry::with_defaults())
        .expect("driver: start");
    let mut workers: Vec<_> = (1..3)
        .map(|r| spawn_worker(r, 3, &dir, 0, &["worker_entry", "--exact"]).expect("spawn"))
        .collect();
    node.connect().expect("driver: connect");

    // Healthy round trip with both workers.
    for w in 1..3 {
        assert_eq!(ping(&node, w, 7, 100 + w as i32, Duration::from_secs(5)), Some(22));
    }

    // Pull the plug on worker 1: SIGKILL, no goodbye, no flush.
    workers[0].kill();
    let t0 = Instant::now();
    assert!(
        node.await_death(1, Duration::from_secs(15)),
        "rank 1 was never declared dead after kill -9"
    );
    let detection = t0.elapsed();
    // Bounded failure detection: the passive reconnect window plus slack,
    // nowhere near the 15s give-up above.
    assert!(
        detection < Duration::from_secs(10),
        "death verdict took {detection:?}, expected well under 10s"
    );

    // Survivor agreement commits the shrink on every live rank.
    node.send(2, APP, ASSIGN_TAG, vec![OP_RECOVER, 1, 0]).expect("send recover");
    let survivors = node.agree_survivors(1, Duration::from_secs(5)).expect("agree");
    assert_eq!(survivors, vec![0, 2]);

    // The dead rank fails fast now — no hang, the in-proc error surface.
    assert!(matches!(
        node.send(1, APP, ASSIGN_TAG, vec![OP_PING, 1, 1]),
        Err(RuntimeError::PeerDead { rank: 1 })
    ));

    // And the survivor still works.
    assert_eq!(ping(&node, 2, 9, 300, Duration::from_secs(5)), Some(28));

    node.send(2, APP, ASSIGN_TAG, vec![OP_DONE]).expect("send done");
    assert!(workers[1].wait_success(Duration::from_secs(10)), "survivor exited unclean");
    node.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Seeded frame corruption on every link between two real processes: the
/// CRCs turn bit damage into `RuntimeError::Corrupt` (never a panic,
/// never a wrong value), and retrying with fresh tokens — fresh fault
/// draws — completes the exchange.
#[test]
fn corrupt_wire_degrades_to_retries_not_panics() {
    let dir = test_dir("corrupt");
    let seed = 7;
    let node = WireNode::start(config(&dir, 0, 2, seed, 2), CodecRegistry::with_defaults())
        .expect("driver: start");
    let mut worker = spawn_worker(1, 2, &dir, seed, &["worker_entry", "--exact"]).expect("spawn");
    node.connect().expect("driver: connect");

    let mut successes = 0;
    let mut retries = 0;
    for i in 0..10u64 {
        let want = i * 3 + 1;
        let mut got = None;
        for attempt in 0..40 {
            let token = 1000 + (i * 64 + attempt) as i32;
            if let Some(v) = ping(&node, 1, i, token, Duration::from_millis(500)) {
                got = Some(v);
                break;
            }
            retries += 1;
        }
        match got {
            Some(v) => {
                assert_eq!(v, want, "a damaged frame decoded to a WRONG value");
                successes += 1;
            }
            None => panic!("ping {i} never succeeded in 40 attempts"),
        }
    }
    assert_eq!(successes, 10);
    let stats = node.stats();
    println!(
        "corrupt-wire run: {} retries, driver saw {} corrupt frames",
        retries, stats.corrupt_frames
    );
    // With corrupt=0.25 on both directions and deterministic draws, some
    // damage must have been observed somewhere — otherwise the fault
    // plane was never armed.
    assert!(
        retries > 0 || stats.corrupt_frames > 0,
        "corruption faults were configured but never fired"
    );

    // Disarm before the goodbye so a corrupted DONE can't strand the
    // worker in its serve loop.
    node.set_faults_armed(false);
    node.send(1, APP, ASSIGN_TAG, vec![OP_DONE]).expect("send done");
    assert!(worker.wait_success(Duration::from_secs(10)), "worker exited unclean");
    node.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// SIGSTOP then SIGCONT before the grace period expires: the frozen
/// worker's sockets stay open (its listener backlog even keeps accepting),
/// so only the progress-fence watermark convicts it. Quarantine must
/// poison liveness immediately — and must be *reversible*: once the
/// process thaws and its watermark moves, the peer is readmitted and the
/// data dropped during quarantine is replayed, not lost.
#[test]
fn sigstop_zombie_resumed_before_verdict_is_readmitted() {
    let dir = test_dir("sigstop-readmit");
    let node = WireNode::start(config(&dir, 0, 3, 0, 3), CodecRegistry::with_defaults())
        .expect("driver: start");
    let mut workers: Vec<_> = (1..3)
        .map(|r| spawn_worker(r, 3, &dir, 0, &["worker_entry", "--exact"]).expect("spawn"))
        .collect();
    node.connect().expect("driver: connect");
    for w in 1..3 {
        assert_eq!(ping(&node, w, 7, 100 + w as i32, Duration::from_secs(5)), Some(22));
    }

    // Freeze worker 1 FIRST, then ship it work: the ping sits undelivered
    // in its socket buffer, so the driver's fence watermark stalls with
    // outstanding data — the zombie signature heartbeats cannot see.
    assert!(workers[0].sigstop(), "SIGSTOP failed");
    node.send(1, APP, ASSIGN_TAG, vec![OP_PING, 4, 900]).expect("send into zombie");

    assert!(node.await_quarantine(1, Duration::from_secs(15)), "zombie never quarantined");
    // Quarantine poisons liveness right away: blocked ops fail fast.
    assert!(node.await_death(1, Duration::from_millis(100)));
    assert!(matches!(
        node.send(1, APP, ASSIGN_TAG, vec![OP_PING, 1, 1]),
        Err(RuntimeError::PeerDead { rank: 1 })
    ));

    // Thaw well inside the grace period: the watermark moves again and the
    // peer must be readmitted, never evicted.
    assert!(workers[0].sigcont(), "SIGCONT failed");
    assert!(node.await_readmit(1, Duration::from_secs(15)), "resumed zombie never readmitted");

    // The ping swallowed by the freeze is replayed and answered.
    let reply =
        node.recv_timeout::<u64>(1, APP, 900, Duration::from_secs(15)).expect("replayed reply");
    assert_eq!(reply, 13);

    let stats = node.stats();
    assert!(stats.zombies_quarantined >= 1, "quarantine never counted");
    assert!(stats.zombies_readmitted >= 1, "readmission never counted");
    assert_eq!(stats.zombies_evicted, 0, "a resumed zombie must not be evicted");

    // Full-mesh sanity after readmission, then a clean goodbye.
    for w in 1..3 {
        assert_eq!(ping(&node, w, 9, 910 + w as i32, Duration::from_secs(5)), Some(28));
    }
    for w in 1..3 {
        node.send(w, APP, ASSIGN_TAG, vec![OP_DONE]).expect("send done");
    }
    for w in &mut workers {
        assert!(w.wait_success(Duration::from_secs(10)), "worker exited unclean");
    }
    node.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// SIGSTOP with no SIGCONT: the quarantine grace expires, the zombie is
/// evicted within a bounded window, and the survivors commit the shrink
/// through the same agreement plane as a `kill -9` death.
#[test]
fn sigstop_past_verdict_is_evicted_and_survivors_agree() {
    let dir = test_dir("sigstop-evict");
    let node = WireNode::start(config(&dir, 0, 3, 0, 3), CodecRegistry::with_defaults())
        .expect("driver: start");
    let mut workers: Vec<_> = (1..3)
        .map(|r| spawn_worker(r, 3, &dir, 0, &["worker_entry", "--exact"]).expect("spawn"))
        .collect();
    node.connect().expect("driver: connect");
    for w in 1..3 {
        assert_eq!(ping(&node, w, 7, 100 + w as i32, Duration::from_secs(5)), Some(22));
    }

    assert!(workers[0].sigstop(), "SIGSTOP failed");
    node.send(1, APP, ASSIGN_TAG, vec![OP_PING, 2, 800]).expect("send into zombie");

    // Conviction is bounded: fence stall → quarantine → grace expiry →
    // eviction, all well under ten seconds on default tuning.
    let t0 = Instant::now();
    assert!(node.await_death(1, Duration::from_secs(10)), "zombie never convicted");
    let deadline = Instant::now() + Duration::from_secs(10);
    while !node.is_evicted(1) {
        assert!(Instant::now() < deadline, "frozen zombie was never evicted within 10s");
        std::thread::sleep(Duration::from_millis(10));
    }
    println!("zombie eviction latency: {:?}", t0.elapsed());

    // The survivor set the agreement commits matches the kill -9 oracle.
    node.send(2, APP, ASSIGN_TAG, vec![OP_RECOVER, 2]).expect("send recover");
    let survivors = node.agree_survivors(2, Duration::from_secs(5)).expect("agree");
    assert_eq!(survivors, vec![0, 2]);

    // Eviction is final: the slot fails fast, the survivor still serves.
    assert!(matches!(
        node.send(1, APP, ASSIGN_TAG, vec![OP_PING, 1, 1]),
        Err(RuntimeError::PeerDead { rank: 1 })
    ));
    assert_eq!(ping(&node, 2, 9, 820, Duration::from_secs(5)), Some(28));
    let stats = node.stats();
    assert!(stats.zombies_quarantined >= 1, "quarantine never counted");
    assert!(stats.zombies_evicted >= 1, "eviction never counted");

    node.send(2, APP, ASSIGN_TAG, vec![OP_DONE]).expect("send done");
    assert!(workers[1].wait_success(Duration::from_secs(10)), "survivor exited unclean");
    // SIGKILL lands even on a stopped process; reap it explicitly.
    workers[0].kill();
    node.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// SIGSTOP in the middle of a chunked route: chunks already acknowledged
/// by the frozen worker are unreachable along with its partial sum, so the
/// driver re-plans *every* chunk it had routed there onto the survivor —
/// and the per-round dedup at the receiver keeps the total exact even when
/// a chunk the survivor already holds is sent twice.
#[test]
fn sigstop_mid_chunked_route_replans_onto_survivors() {
    let dir = test_dir("sigstop-chunk");
    let node = WireNode::start(config(&dir, 0, 3, 0, 3), CodecRegistry::with_defaults())
        .expect("driver: start");
    let mut workers: Vec<_> = (1..3)
        .map(|r| spawn_worker(r, 3, &dir, 0, &["worker_entry", "--exact"]).expect("spawn"))
        .collect();
    node.connect().expect("driver: connect");

    // Eight chunks, round-robin even → worker 1, odd → worker 2.
    let val = |id: u64| (id + 1) * 100;
    let oracle: u64 = (0..8u64).map(val).sum();
    let mut frozen = false;
    let mut replan: Vec<u64> = Vec::new();
    for id in 0..8u64 {
        let w = if id % 2 == 0 { 1 } else { 2 };
        let ack = 2000 + id as i32;
        if node.send(w, APP, ASSIGN_TAG, vec![OP_CHUNK, id, val(id), ack as u64]).is_err() {
            // Past quarantine the dead slot fails fast — replan the chunk.
            assert_eq!(w, 1, "survivor refused a chunk");
            replan.push(id);
            continue;
        }
        match node.recv_timeout::<u64>(w, APP, ack, Duration::from_millis(700)) {
            Ok(r) => {
                assert_eq!(r, id);
                if w == 1 && !frozen {
                    // First chunk landed on worker 1 — freeze it mid-route.
                    // Its accumulated partial is unreachable now, so this
                    // chunk must be replanned too.
                    assert!(workers[0].sigstop(), "SIGSTOP failed");
                    frozen = true;
                    replan.push(id);
                }
            }
            Err(_) => {
                assert_eq!(w, 1, "survivor dropped an ack");
                replan.push(id);
            }
        }
    }
    assert_eq!(replan, vec![0, 2, 4, 6], "every worker-1 chunk needs a replan");
    assert!(node.await_death(1, Duration::from_secs(15)), "zombie never convicted");

    // Re-plan onto the survivor, plus a duplicate of a chunk it already
    // holds: the round-id dedup must keep the sum exact.
    replan.push(1);
    for (i, &id) in replan.iter().enumerate() {
        let ack = 3000 + i as i32;
        node.send(2, APP, ASSIGN_TAG, vec![OP_CHUNK, id, val(id), ack as u64])
            .expect("replan send");
        let r = node.recv_timeout::<u64>(2, APP, ack, Duration::from_secs(5)).expect("replan ack");
        assert_eq!(r, id);
    }

    node.send(2, APP, ASSIGN_TAG, vec![OP_RECOVER, 3]).expect("send recover");
    assert_eq!(node.agree_survivors(3, Duration::from_secs(5)).expect("agree"), vec![0, 2]);
    node.send(2, APP, ASSIGN_TAG, vec![OP_SUM, 4000]).expect("send sum req");
    let sum = node.recv_timeout::<u64>(2, APP, 4000, Duration::from_secs(5)).expect("sum");
    assert_eq!(sum, oracle, "replanned route lost or double-counted a chunk");

    node.send(2, APP, ASSIGN_TAG, vec![OP_DONE]).expect("send done");
    assert!(workers[1].wait_success(Duration::from_secs(10)), "survivor exited unclean");
    workers[0].kill();
    node.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Spare-process join across real OS processes, both halves: a spare that
/// dies abruptly right after its `JoinReq` (kill -9 mid-handshake) forces
/// a unanimous-no and a full rollback leaving the old mesh usable; a
/// healthy spare then joins, receives the replayed state blob, and serves
/// like any incumbent.
#[test]
fn spare_join_aborts_on_mid_handshake_death_then_commits() {
    let dir = test_dir("spare-join");
    let node = WireNode::start(config(&dir, 0, 3, 0, 4), CodecRegistry::with_defaults())
        .expect("driver: start");
    let mut workers: Vec<_> = (1..3)
        .map(|r| spawn_worker_max(r, 3, 4, &dir, 0, &["worker_entry", "--exact"]).expect("spawn"))
        .collect();
    node.connect().expect("driver: connect");
    for w in 1..3 {
        assert_eq!(ping(&node, w, 7, 100 + w as i32, Duration::from_secs(5)), Some(22));
    }

    // Attempt 0: the spare announces itself and dies without a goodbye.
    // Every incumbent sees raw EOF, votes no, and the admission window
    // rolls back to the old membership.
    let abort_spare = spawn_spare(3, 4, 4, &dir, SPARE_ABORT_SEED, &["worker_entry", "--exact"])
        .expect("spawn abort spare");
    for w in 1..3 {
        node.send(w, APP, ASSIGN_TAG, vec![OP_JOIN]).expect("send join");
    }
    let err = node
        .expand_mesh(0, b"", Duration::from_secs(10))
        .expect_err("mid-join death must abort the admission");
    assert!(matches!(
        err,
        RuntimeError::ReconfigAborted { context: mxn::wire::WIRE_CTRL_CONTEXT, attempt: 0 }
    ));
    assert_eq!(node.size(), 3, "aborted join must roll the membership back");
    assert_eq!(node.stats().joins_aborted, 1);
    drop(abort_spare);
    // The old mesh is untouched: both incumbents still serve.
    for w in 1..3 {
        assert_eq!(ping(&node, w, 5, 600 + w as i32, Duration::from_secs(5)), Some(16));
    }

    // Attempt 1: a healthy spare joins. The blob handed back is the state
    // replay — here the resume step, echoed to the driver as proof.
    let mut spare =
        spawn_spare(3, 4, 4, &dir, 0, &["worker_entry", "--exact"]).expect("spawn spare");
    for w in 1..3 {
        node.send(w, APP, ASSIGN_TAG, vec![OP_JOIN]).expect("send join");
    }
    let new_size = node
        .expand_mesh(1, &42u64.to_le_bytes(), Duration::from_secs(10))
        .expect("healthy join must commit");
    assert_eq!(new_size, 4);
    assert_eq!(node.size(), 4);
    let step = node
        .recv_timeout::<u64>(3, APP, STATE_ECHO_TAG, Duration::from_secs(10))
        .expect("state echo");
    assert_eq!(step, 42, "state replay reached the newcomer damaged");
    // The admitted rank serves like any incumbent.
    assert_eq!(ping(&node, 3, 6, 650, Duration::from_secs(5)), Some(19));
    let stats = node.stats();
    assert_eq!(stats.joins_committed, 1);
    assert_eq!(stats.joins_aborted, 1);

    for w in 1..4 {
        node.send(w, APP, ASSIGN_TAG, vec![OP_DONE]).expect("send done");
    }
    for w in &mut workers {
        assert!(w.wait_success(Duration::from_secs(10)), "worker exited unclean");
    }
    assert!(spare.wait_success(Duration::from_secs(10)), "spare exited unclean");
    node.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
