//! End-to-end coupling tests spanning the whole stack: runtime universes,
//! the CCA framework, the M×N component, and its connection protocols.

use std::sync::Arc;

use mxn::core::{mxn_port, ConnectionKind, MxnPort, TransferOutcome, MXN_PORT_TYPE};
use mxn::dad::{AccessMode, Dad, Extents, LocalArray};
use mxn::framework::{Component, Framework, Result as FwResult, Services};
use mxn::runtime::Universe;

/// The paper's Figure 1: an M = 8 process simulation couples a 3-D field
/// to an N = 27 process simulation with a different block decomposition.
#[test]
fn figure1_m8_to_n27_transfer() {
    let extents = Extents::new([6, 6, 6]);
    let src = Dad::block(extents.clone(), &[2, 2, 2]).unwrap();
    let dst = Dad::block(extents.clone(), &[3, 3, 3]).unwrap();
    let value = |idx: &[usize]| (idx[0] * 36 + idx[1] * 6 + idx[2]) as f64;

    Universe::run(&[8, 27], |_, ctx| {
        let rank = ctx.comm.rank();
        if ctx.program == 0 {
            let ic = ctx.intercomm(1);
            let mut mxn = mxn::core::MxnComponent::new(rank);
            let data = Arc::new(parking_lot_rwlock(LocalArray::from_fn(&src, rank, value)));
            mxn.register_field("vorticity", src.clone(), AccessMode::Read, data).unwrap();
            let mut conn =
                mxn.export_field(ic, "vorticity", "vorticity_in", ConnectionKind::OneShot).unwrap();
            let out = conn.data_ready(ic, mxn.registry()).unwrap();
            assert_eq!(out, TransferOutcome::Transferred { elements: 27 });
        } else {
            let ic = ctx.intercomm(0);
            let mut mxn = mxn::core::MxnComponent::new(rank);
            let data =
                mxn.register_allocated("vorticity_in", dst.clone(), AccessMode::Write).unwrap();
            let mut conn = mxn.accept_connection(ic).unwrap();
            // Every receiving rank gets its 2×2×2 sub-block.
            let out = conn.data_ready(ic, mxn.registry()).unwrap();
            assert_eq!(out, TransferOutcome::Transferred { elements: 8 });
            for (idx, &v) in data.read().iter() {
                assert_eq!(v, value(&idx), "at {idx:?}");
            }
        }
    });
}

fn parking_lot_rwlock<T>(v: T) -> parking_lot::RwLock<T> {
    parking_lot::RwLock::new(v)
}

/// A persistent CUMULVS-style coupling: the source steps a field forward
/// and calls `data_ready` every step; transfers fire on the period.
#[test]
fn persistent_coupled_time_loop() {
    let extents = Extents::new([8, 8]);
    let src = Dad::block(extents.clone(), &[2, 1]).unwrap();
    let dst = Dad::block(extents.clone(), &[1, 2]).unwrap();
    const STEPS: u64 = 9;
    const PERIOD: u32 = 3;

    Universe::run(&[2, 2], |_, ctx| {
        let rank = ctx.comm.rank();
        if ctx.program == 0 {
            let ic = ctx.intercomm(1);
            let mut mxn = mxn::core::MxnComponent::new(rank);
            let data = mxn.register_allocated("field", src.clone(), AccessMode::ReadWrite).unwrap();
            let mut conn = mxn
                .export_field(ic, "field", "field", ConnectionKind::Persistent { period: PERIOD })
                .unwrap();
            for step in 0..STEPS {
                {
                    // "Simulation": the field is everywhere equal to the step.
                    let mut d = data.write();
                    for i in 0..d.num_patches() {
                        let (_, buf) = d.patch_mut(i);
                        buf.fill(step as f64);
                    }
                }
                conn.data_ready(ic, mxn.registry()).unwrap();
            }
            assert_eq!(conn.stats(), (STEPS, STEPS.div_ceil(PERIOD as u64)));
        } else {
            let ic = ctx.intercomm(0);
            let mut mxn = mxn::core::MxnComponent::new(rank);
            let data = mxn.register_allocated("field", dst.clone(), AccessMode::Write).unwrap();
            let mut conn = mxn.accept_connection(ic).unwrap();
            let mut seen = Vec::new();
            for _ in 0..STEPS {
                if let TransferOutcome::Transferred { .. } =
                    conn.data_ready(ic, mxn.registry()).unwrap()
                {
                    seen.push(*data.read().iter().next().unwrap().1);
                }
            }
            // Source steps 0, 3, 6 were transferred.
            assert_eq!(seen, vec![0.0, 3.0, 6.0]);
        }
    });
}

/// The full CCA picture: each side assembles a direct-connected framework,
/// registers the M×N component as a provides port, and the application
/// component drives the coupling through its uses port (Figure 3).
#[test]
fn framework_assembled_coupling() {
    struct MxnProvider {
        rank: usize,
    }
    impl Component for MxnProvider {
        fn set_services(&mut self, s: &Services) -> FwResult<()> {
            s.add_provides_port("mxn", MXN_PORT_TYPE, mxn_port(self.rank))
        }
    }

    struct App {
        services: Option<Services>,
    }
    impl Component for App {
        fn set_services(&mut self, s: &Services) -> FwResult<()> {
            s.register_uses_port("coupler", MXN_PORT_TYPE)?;
            self.services = Some(s.clone());
            Ok(())
        }
    }

    let extents = Extents::new([4, 4]);
    let src = Dad::block(extents.clone(), &[2, 1]).unwrap();
    let dst = Dad::block(extents.clone(), &[2, 1]).unwrap();

    Universe::run(&[2, 2], |_, ctx| {
        // SPMD assembly: the same component graph on every rank (a cohort).
        let fw = Framework::new();
        fw.add_component("mxn", &mut MxnProvider { rank: ctx.comm.rank() }).unwrap();
        let mut app = App { services: None };
        fw.add_component("app", &mut app).unwrap();
        fw.connect("app", "coupler", "mxn", "mxn").unwrap();

        let port: MxnPort = app.services.unwrap().get_port("coupler").unwrap();
        if ctx.program == 0 {
            let ic = ctx.intercomm(1);
            let data = {
                let mut guard = port.write();
                guard.register_allocated("u", src.clone(), AccessMode::Read).unwrap()
            };
            {
                let mut d = data.write();
                for i in 0..d.num_patches() {
                    let (_, buf) = d.patch_mut(i);
                    buf.fill(42.0);
                }
            }
            let mut conn =
                port.write().export_field(ic, "u", "u", ConnectionKind::OneShot).unwrap();
            conn.data_ready(ic, port.read().registry()).unwrap();
        } else {
            let ic = ctx.intercomm(0);
            let data = {
                let mut guard = port.write();
                guard.register_allocated("u", dst.clone(), AccessMode::Write).unwrap()
            };
            let mut conn = port.write().accept_connection(ic).unwrap();
            conn.data_ready(ic, port.read().registry()).unwrap();
            assert!(data.read().iter().all(|(_, &v)| v == 42.0));
        }
    });
}

/// Bidirectional coupling (fluid ↔ structure): both sides export one field
/// and import another over the same intercommunicator, simultaneously.
#[test]
fn bidirectional_exchange() {
    let extents = Extents::new([6, 4]);
    let a_dad = Dad::block(extents.clone(), &[3, 1]).unwrap();
    let b_dad = Dad::block(extents.clone(), &[1, 2]).unwrap();

    Universe::run(&[3, 2], |_, ctx| {
        let rank = ctx.comm.rank();
        let mut mxn = mxn::core::MxnComponent::new(rank);
        if ctx.program == 0 {
            let ic = ctx.intercomm(1);
            let pressure = Arc::new(parking_lot_rwlock(LocalArray::from_fn(&a_dad, rank, |idx| {
                (idx[0] * 4 + idx[1]) as f64
            })));
            mxn.register_field("pressure", a_dad.clone(), AccessMode::Read, pressure).unwrap();
            let disp =
                mxn.register_allocated("displacement", a_dad.clone(), AccessMode::Write).unwrap();
            let mut out =
                mxn.export_field(ic, "pressure", "pressure", ConnectionKind::OneShot).unwrap();
            let mut inc = mxn.accept_connection(ic).unwrap();
            out.data_ready(ic, mxn.registry()).unwrap();
            inc.data_ready(ic, mxn.registry()).unwrap();
            for (idx, &v) in disp.read().iter() {
                assert_eq!(v, -((idx[0] * 4 + idx[1]) as f64));
            }
        } else {
            let ic = ctx.intercomm(0);
            let disp = Arc::new(parking_lot_rwlock(LocalArray::from_fn(&b_dad, rank, |idx| {
                -((idx[0] * 4 + idx[1]) as f64)
            })));
            mxn.register_field("displacement", b_dad.clone(), AccessMode::Read, disp).unwrap();
            let pressure =
                mxn.register_allocated("pressure", b_dad.clone(), AccessMode::Write).unwrap();
            let mut inc = mxn.accept_connection(ic).unwrap();
            let mut out = mxn
                .export_field(ic, "displacement", "displacement", ConnectionKind::OneShot)
                .unwrap();
            inc.data_ready(ic, mxn.registry()).unwrap();
            out.data_ready(ic, mxn.registry()).unwrap();
            for (idx, &v) in pressure.read().iter() {
                assert_eq!(v, (idx[0] * 4 + idx[1]) as f64);
            }
        }
    });
}
