//! End-to-end self-healing: survivors of a rank death shrink the coupling,
//! rebuild their schedules over the survivor decomposition, and complete
//! the remaining epochs with data identical to a no-fault oracle — and no
//! transfer is ever half-committed along the way.

use mxn::core::redistribute_elastic;
use mxn::core::{
    ConnectionKind, Direction, FieldData, FieldRegistry, MxnConnection, MxnError, TransferOutcome,
};
use mxn::dad::{AccessMode, Dad, Extents, LocalArray};
use mxn::framework::{
    serve, AnyPayload, CallPolicy, Dispatch, RemotePort, RemoteService, ServeStats,
};
use mxn::prmi::{collective_serve_recovering, CollectiveEndpoint};
use mxn::runtime::{ChannelPolicy, FaultConfig, InterComm, Universe, World};

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Step-coded cell value: the global index plus a per-epoch offset, so a
/// transferred field identifies both *what* arrived and *when* it was
/// produced.
fn coded(idx: &[usize], step: f64) -> f64 {
    (idx[0] * 6 + idx[1]) as f64 + step * 100.0
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Rewrites every element this rank owns (under its *current* descriptor)
/// with step-coded values — the per-epoch producer refresh.
fn refill(reg: &FieldRegistry, data: &FieldData, step: f64) {
    let _ = reg;
    let mut d = data.write();
    for r in 0..6 {
        for c in 0..6 {
            if let Some(v) = d.get_mut(&[r, c]) {
                *v = coded(&[r, c], step);
            }
        }
    }
}

/// The acceptance scenario: a 3-exporter / 2-importer transactional
/// coupling loses an importer between epochs 2 and 3. Epoch 3's first
/// attempt aborts collectively (rollback everywhere, committed data
/// untouched), the survivors heal — revoke, shrink, re-decompose, rebind,
/// rebuild schedules — and epochs 3 and 4 then complete on the healed
/// coupling. The surviving importer's final field equals a no-fault
/// oracle restricted to the survivor decomposition.
#[test]
fn survivors_heal_and_complete_remaining_epochs() {
    const DEAD_WORLD_RANK: usize = 4; // importer local rank 1
    let results = Universe::run(&[3, 2], |p, ctx| {
        let rank = ctx.comm.rank();
        let src = Dad::block(Extents::new([6, 6]), &[3, 1]).unwrap();
        let dst = Dad::block(Extents::new([6, 6]), &[1, 2]).unwrap();
        let exporting = ctx.program == 0;
        let mut reg = FieldRegistry::new(rank);
        let data = if exporting {
            reg.register_allocated("f", src, AccessMode::Read).unwrap()
        } else {
            reg.register_allocated("f", dst, AccessMode::Write).unwrap()
        };
        let mut conn = if exporting {
            MxnConnection::initiate(
                ctx.intercomm(1),
                &reg,
                0,
                "f",
                "f",
                Direction::Export,
                ConnectionKind::Persistent { period: 1 },
            )
            .unwrap()
        } else {
            MxnConnection::accept(ctx.intercomm(0), &reg, 0).unwrap()
        };
        conn.set_transactional(true);
        let ic = if exporting { ctx.intercomm(1) } else { ctx.intercomm(0) };
        // Epochs 1 and 2 commit cleanly.
        for step in 1..=2u64 {
            if exporting {
                refill(&reg, &data, step as f64);
            }
            assert!(matches!(
                conn.data_ready(ic, &reg).unwrap(),
                TransferOutcome::Transferred { .. }
            ));
        }
        p.world().barrier().unwrap();
        if p.rank() == DEAD_WORLD_RANK {
            p.kill_rank(DEAD_WORLD_RANK);
            return None;
        }
        while !p.is_dead(DEAD_WORLD_RANK) {
            std::thread::yield_now();
        }
        // Epoch 3's first attempt aborts *collectively*: the commit vote
        // fails on every survivor, nobody unpacks partial data.
        if exporting {
            refill(&reg, &data, 3.0);
        }
        let e = conn.data_ready(ic, &reg).unwrap_err();
        assert!(
            matches!(e, MxnError::PeerFailed { .. } | MxnError::TransferAborted { .. }),
            "unexpected abort error: {e}"
        );
        assert_eq!(conn.stats().1, 2, "no transfer is ever half-committed");
        if !exporting {
            // The surviving importer still holds epoch 2, bit-for-bit.
            let d = data.read();
            for (idx, v) in d.iter() {
                assert_eq!(*v, coded(&idx, 2.0), "rolled-back attempt left {idx:?} dirty");
            }
        }
        // Survivors shrink the membership, re-derive both descriptors and
        // rebuild the transfer schedule.
        let (healed, report) = conn.heal(ic, &mut reg).unwrap();
        assert_eq!(conn.epoch(), 1);
        if exporting {
            assert_eq!(report.local_survivors, vec![0, 1, 2]);
            assert_eq!(report.remote_survivors, vec![0]);
        } else {
            assert_eq!(report.local_survivors, vec![0]);
            assert_eq!(report.remote_survivors, vec![0, 1, 2]);
        }
        // Epoch 3 retries (same sequence number), epoch 4 follows.
        for step in 3..=4u64 {
            if exporting {
                refill(&reg, &data, step as f64);
            }
            assert!(matches!(
                conn.data_ready(&healed, &reg).unwrap(),
                TransferOutcome::Transferred { .. }
            ));
        }
        assert_eq!(conn.stats().1, 4, "all four epochs committed exactly once");
        if exporting {
            None
        } else {
            // Compare against the no-fault oracle restricted to the
            // survivor decomposition: what a fault-free run over the
            // survivor set would have delivered at epoch 4.
            let survivor_dad = reg.get("f").unwrap().dad().clone();
            let oracle = LocalArray::from_fn(&survivor_dad, 0, |idx| coded(idx, 4.0));
            let d = data.read();
            let mut elems = 0usize;
            for (idx, v) in d.iter() {
                assert_eq!(*v, *oracle.get(&idx).unwrap(), "mismatch vs oracle at {idx:?}");
                elems += 1;
            }
            assert_eq!(elems, 36, "the survivor owns the whole array after the shrink");
            Some(elems)
        }
    });
    assert_eq!(results.iter().filter(|r| r.is_some()).count(), 1);
}

/// CI fault-matrix entry point: `MXN_FAULT_SEED` selects the fault
/// plane's RNG stream, `MXN_FAULT_KIND` ∈ {drop, corrupt, death} selects
/// the failure class. Every combination must end in a correct result —
/// never a hang, never a double execution.
#[test]
fn seeded_fault_matrix() {
    let seed = env_u64("MXN_FAULT_SEED", 1);
    match std::env::var("MXN_FAULT_KIND").as_deref() {
        Ok("drop") => drop_matrix(seed),
        Ok("corrupt") => corrupt_matrix(seed),
        _ => death_matrix(seed),
    }
}

/// Service used by the drop/corrupt matrix arms: counts dispatches so the
/// exactly-once guarantee is checkable.
struct Doubler(AtomicUsize);
impl RemoteService for Doubler {
    fn dispatch(&self, _m: u32, arg: AnyPayload) -> Dispatch {
        let x: u64 = arg.downcast().unwrap();
        self.0.fetch_add(1, Ordering::SeqCst);
        AnyPayload::replicable(x * 2).into()
    }
}

/// Half the requests vanish: the retry policy (with the backoff jitter
/// seeded from the fault plane) retransmits until the provider answers;
/// the idempotency token keeps execution exactly-once.
fn drop_matrix(seed: u64) {
    let cfg = FaultConfig::reliable(seed).with_channel(0, 1, ChannelPolicy::lossy(0.5));
    Universe::run_with_faults(&[1, 1], cfg, |p, ctx| {
        if ctx.program == 0 {
            let ic = ctx.intercomm(1);
            let port = RemotePort::to_rank(0);
            let policy = CallPolicy {
                deadline: Duration::from_millis(30),
                max_retries: 20,
                backoff: Duration::from_millis(1),
                ..CallPolicy::default()
            }
            .seeded(p.fault_seed());
            let got: u64 = port.call_with_policy(ic, 0, 21u64, policy).unwrap();
            assert_eq!(got, 42);
            // The shutdown must not be eaten by the lossy channel.
            p.set_faults_armed(false);
            port.shutdown(ic).unwrap();
        } else {
            let svc = Doubler(AtomicUsize::new(0));
            let stats: ServeStats = serve(ctx.intercomm(0), &svc).unwrap();
            assert_eq!(svc.0.load(Ordering::SeqCst), 1, "exactly-once despite drops");
            assert_eq!(stats.calls, 1);
        }
    });
}

/// Both directions corrupt messages: corrupt requests are NACKed back,
/// corrupt responses are re-fetched from the provider's cache; execution
/// stays exactly-once.
fn corrupt_matrix(seed: u64) {
    let corrupting = ChannelPolicy { corrupt: 0.4, ..ChannelPolicy::reliable() };
    let cfg =
        FaultConfig::reliable(seed).with_channel(0, 1, corrupting).with_channel(1, 0, corrupting);
    Universe::run_with_faults(&[1, 1], cfg, |p, ctx| {
        if ctx.program == 0 {
            let ic = ctx.intercomm(1);
            let port = RemotePort::to_rank(0);
            let policy = CallPolicy {
                deadline: Duration::from_millis(30),
                max_retries: 20,
                backoff: Duration::from_millis(1),
                ..CallPolicy::default()
            }
            .seeded(p.fault_seed());
            let got: u64 = port.call_with_policy(ic, 0, 21u64, policy).unwrap();
            assert_eq!(got, 42);
            p.set_faults_armed(false);
            port.shutdown(ic).unwrap();
        } else {
            let svc = Doubler(AtomicUsize::new(0));
            let _ = serve(ctx.intercomm(0), &svc).unwrap();
            assert_eq!(svc.0.load(Ordering::SeqCst), 1, "exactly-once despite corruption");
        }
    });
}

/// A caller dies between collective calls: the next call's commit vote
/// fails on every survivor, both sides heal in lock-step (the retry
/// backoff jittered from the fault seed), and the retried sequence
/// completes with each provider executing it exactly once.
fn death_matrix(seed: u64) {
    struct Bump;
    impl RemoteService for Bump {
        fn dispatch(&self, _m: u32, arg: AnyPayload) -> Dispatch {
            let x: f64 = arg.downcast().unwrap();
            AnyPayload::replicable(x + 1.0).into()
        }
    }
    let cfg = FaultConfig::reliable(seed);
    Universe::run_with_faults(&[3, 2], cfg, |p, ctx| {
        if ctx.program == 0 {
            let ic = ctx.intercomm(1);
            let mut ep = CollectiveEndpoint::new();
            let policy = CallPolicy {
                deadline: Duration::from_millis(100),
                max_retries: 4,
                backoff: Duration::from_millis(2),
                jitter: p.fault_seed(),
                recover: true,
            };
            let r: f64 = ep.call_recovering(ic, 0, 1.0f64, policy).unwrap();
            assert_eq!(r, 2.0);
            if ctx.comm.rank() == 2 {
                p.kill_rank(p.rank());
                return;
            }
            while !p.is_dead(2) {
                std::thread::yield_now();
            }
            let r2: f64 = ep.call_recovering(ic, 0, 5.0f64, policy).unwrap();
            assert_eq!(r2, 6.0);
            assert!(ep.epoch() >= 1, "the death forced at least one heal");
            ep.shutdown(ic).unwrap();
        } else {
            let stats = collective_serve_recovering(ctx.intercomm(0), &Bump).unwrap();
            assert_eq!(stats.calls, 2, "exactly-once per provider across the heal");
        }
    });
}

/// Asserts every locally held element carries the given step's coding.
fn check_step(data: &FieldData, step: f64) {
    let d = data.read();
    for (idx, &v) in d.iter() {
        assert_eq!(v, coded(&idx, step), "mismatch at {idx:?} (step {step})");
    }
}

/// CI fault-matrix entry point for the *elastic* plane: the same
/// `MXN_FAULT_KIND` × `MXN_FAULT_SEED` grid as [`seeded_fault_matrix`],
/// aimed at the grow handshake. `death` kills the invited newcomer
/// mid-join and demands a clean rollback plus a successful retry with a
/// healthy spare; `drop` and `corrupt` arm faulty channels between the
/// sponsor and the newcomer and demand the handshake (which runs
/// fault-disarmed by design) still commits and delivers oracle-exact data.
#[test]
fn seeded_elastic_fault_matrix() {
    let seed = env_u64("MXN_FAULT_SEED", 1);
    match std::env::var("MXN_FAULT_KIND").as_deref() {
        Ok("drop") => elastic_grow_despite(ChannelPolicy::lossy(0.5), seed),
        Ok("corrupt") => {
            elastic_grow_despite(ChannelPolicy { corrupt: 0.4, ..ChannelPolicy::reliable() }, seed)
        }
        _ => elastic_death_matrix(seed),
    }
}

/// Membership-level grow with faulty sponsor↔newcomer channels armed
/// around the handshake: the reconfiguration's internal disarm keeps the
/// offer/vote traffic deliverable, the grow commits at epoch 1, and the
/// RMA rebind hands the newcomer an oracle-exact shard.
fn elastic_grow_despite(policy: ChannelPolicy, seed: u64) {
    let cfg = FaultConfig::reliable(seed)
        .with_channel(0, 2, policy)
        .with_channel(2, 0, policy)
        .with_channel(1, 2, policy)
        .with_channel(2, 1, policy);
    World::run_with_faults(3, cfg, |p| {
        let world = p.world();
        // World collectives (the split below) must not cross armed faulty
        // channels; arming is scoped to the handshake.
        p.set_faults_armed(false);
        let old = Dad::block(Extents::new([6, 6]), &[1, 1]).unwrap();
        let new = old.expand(2).unwrap();
        let color = if p.rank() < 2 { 0 } else { -1 };
        let pair = world.split(color, 0).unwrap();
        if p.rank() == 2 {
            let (_ic, report) =
                InterComm::await_join_with_report(world, Duration::from_secs(10)).unwrap();
            assert_eq!(report.new_local_group, vec![0, 2]);
            assert_eq!(report.epoch, 1);
            let got = redistribute_elastic(world, 31, &old, &new, &[0], &[0, 2], None, Some(1))
                .unwrap()
                .unwrap();
            let want = LocalArray::from_fn(&new, 1, |idx| (idx[0] * 6 + idx[1]) as f64);
            assert_eq!(got, want, "the newcomer's shard matches the oracle");
            return;
        }
        let side = p.rank();
        let (_prog, ic) = InterComm::create(&pair.unwrap(), side).unwrap();
        p.set_faults_armed(true);
        let (add_local, add_remote): (&[usize], &[usize]) =
            if side == 0 { (&[2], &[]) } else { (&[], &[2]) };
        let (_grown, report) = ic.expand(add_local, add_remote).unwrap();
        assert_eq!(report.epoch, 1, "the grow commits despite the armed fault plane");
        p.set_faults_armed(false);
        if p.rank() == 0 {
            let mine = LocalArray::from_fn(&old, 0, |idx| (idx[0] * 6 + idx[1]) as f64);
            let got = redistribute_elastic(
                world,
                31,
                &old,
                &new,
                &[0],
                &[0, 2],
                Some((0, &mine)),
                Some(0),
            )
            .unwrap()
            .unwrap();
            let want = LocalArray::from_fn(&new, 0, |idx| (idx[0] * 6 + idx[1]) as f64);
            assert_eq!(got, want, "the sponsor keeps an oracle-exact shard");
        }
    });
}

/// The invited newcomer dies mid-join: the handshake aborts on every
/// incumbent, the rollback leaves the old coupling committing cleanly,
/// and a retry naming a healthy spare grows the connection — the spare
/// landing with the last committed step and following the next one.
fn elastic_death_matrix(seed: u64) {
    const DOOMED: usize = 4;
    const SPARE: usize = 5;
    let cfg = FaultConfig::reliable(seed);
    World::run_with_faults(6, cfg, |p| {
        let world = p.world();
        // The split is a world collective: the doomed spare takes part
        // (color −1) before dying, so nobody deadlocks waiting on it.
        let color = if p.rank() < 4 { 0 } else { -1 };
        let pair = world.split(color, 0).unwrap();
        if p.rank() == DOOMED {
            p.kill_rank(DOOMED);
            return;
        }
        // Every participant observes the death before any vote runs.
        while !p.is_dead(DOOMED) {
            std::thread::yield_now();
        }
        if p.rank() == SPARE {
            let (mut conn, ic, reg) = MxnConnection::join(world, Duration::from_secs(10)).unwrap();
            assert_eq!(conn.epoch(), 1, "the healthy spare lands in the retried epoch");
            assert_eq!(conn.direction(), Direction::Import);
            let data = reg.get("f").unwrap().data().clone();
            // The join rebind delivered the last *committed* step — the
            // one published by the rolled-back coupling after the abort.
            check_step(&data, 2.0);
            conn.data_ready(&ic, &reg).unwrap();
            check_step(&data, 3.0);
            return;
        }
        let side = usize::from(p.rank() >= 2);
        let (_prog, ic) = InterComm::create(&pair.unwrap(), side).unwrap();
        let rank = ic.local_rank();
        let mut reg = FieldRegistry::new(rank);
        let src = Dad::block(Extents::new([6, 6]), &[2, 1]).unwrap();
        let dst = Dad::block(Extents::new([6, 6]), &[1, 2]).unwrap();
        let (data, mut conn) = if side == 0 {
            let data = reg.register_allocated("f", src, AccessMode::Read).unwrap();
            let conn = MxnConnection::initiate(
                &ic,
                &reg,
                0,
                "f",
                "f",
                Direction::Export,
                ConnectionKind::Persistent { period: 1 },
            )
            .unwrap();
            (data, conn)
        } else {
            let data = reg.register_allocated("f", dst, AccessMode::Write).unwrap();
            (data, MxnConnection::accept(&ic, &reg, 0).unwrap())
        };
        // One epoch at the original size.
        if side == 0 {
            refill(&reg, &data, 1.0);
        }
        conn.data_ready(&ic, &reg).unwrap();
        if side == 1 {
            check_step(&data, 1.0);
        }
        // The grow names the doomed spare: the handshake must abort, and
        // the abort must not bump the epoch.
        let before = conn.epoch();
        let (al, ar): (&[usize], &[usize]) =
            if side == 0 { (&[], &[DOOMED]) } else { (&[DOOMED], &[]) };
        let err = conn.expand(&ic, world, &mut reg, al, ar).unwrap_err();
        assert!(
            matches!(&err, MxnError::Runtime(re) if re.is_reconfig_aborted()),
            "expected a reconfig abort, got: {err}"
        );
        assert_eq!(conn.epoch(), before, "an aborted grow must not bump the epoch");
        // Rollback assert: the old coupling still commits a full step.
        if side == 0 {
            refill(&reg, &data, 2.0);
        }
        conn.data_ready(&ic, &reg).unwrap();
        if side == 1 {
            check_step(&data, 2.0);
        }
        // Retry with the healthy spare: the grow commits this time.
        let (al, ar): (&[usize], &[usize]) =
            if side == 0 { (&[], &[SPARE]) } else { (&[SPARE], &[]) };
        let (grown, report) = conn.expand(&ic, world, &mut reg, al, ar).unwrap();
        assert_eq!(conn.epoch(), 1);
        // The spare joined the import side (side 1).
        assert_eq!(report.new_local_group.len(), if side == 1 { 3 } else { 2 });
        if side == 0 {
            refill(&reg, &data, 3.0);
        }
        conn.data_ready(&grown, &reg).unwrap();
        if side == 1 {
            check_step(&data, 3.0);
        }
        assert_eq!(conn.stats(), (3, 3), "three committed transfers, zero half-commits");
    });
}
