//! Golden-trace regression tests: fixed scenarios whose merged trace
//! digest must never drift.
//!
//! Each scenario runs **twice in-process** — the two digests must match
//! (the determinism axiom: identical seeds ⇒ identical digests) — and the
//! digest must equal the committed golden in
//! `tests/golden/trace_digests.txt`. After an *intentional* change to the
//! trace format or to the traced code paths, regenerate the goldens with
//!
//! ```text
//! MXN_BLESS_TRACES=1 cargo test --test golden_traces
//! ```
//!
//! and commit the new file. A digest mismatch without an intentional
//! change means the runtime's logical behavior changed — a real
//! regression, not a flaky test: wall time, raced clone attribution,
//! wildcard match order and timeout-poll counts are all excluded from the
//! canonical serialization.

use std::time::Duration;

use mxn::core::redistribute_elastic;
use mxn::dad::{AxisDist, Dad, Extents, LocalArray, Template};
use mxn::dca::{alltoallv_within, AlltoallvSpec};
use mxn::framework::{AnyPayload, Dispatch, RemoteService};
use mxn::prmi::{collective_serve, CollectiveEndpoint};
use mxn::runtime::{ChannelPolicy, FaultConfig, InterComm, RunTrace, Universe, World};
use mxn::schedule::{recv_redistributed, send_redistributed};

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/trace_digests.txt");

/// 8×8 block-rows on 2 ranks → cyclic-columns on 3 ranks.
fn redistribute_block_to_cyclic() -> RunTrace {
    let (_, trace) = Universe::run_traced(&[2, 3], |_, ctx| {
        let e = Extents::new([8, 8]);
        let src = Dad::block(e.clone(), &[2, 1]).unwrap();
        let dst = Dad::regular(
            Template::new(e, vec![AxisDist::Collapsed, AxisDist::Cyclic { nprocs: 3 }]).unwrap(),
        );
        if ctx.program == 0 {
            let mine = LocalArray::from_fn(&src, ctx.comm.rank(), |i| (i[0] * 8 + i[1]) as f64);
            send_redistributed(ctx.intercomm(1), &src, &dst, &mine, 7).unwrap();
        } else {
            let mine: LocalArray<f64> =
                recv_redistributed(ctx.intercomm(0), &src, &dst, 7).unwrap();
            for (idx, &v) in mine.iter() {
                assert_eq!(v, (idx[0] * 8 + idx[1]) as f64);
            }
        }
    });
    trace
}

/// The reverse direction: cyclic-columns on 3 ranks → block-rows on 2.
fn redistribute_cyclic_to_block() -> RunTrace {
    let (_, trace) = Universe::run_traced(&[3, 2], |_, ctx| {
        let e = Extents::new([8, 8]);
        let src = Dad::regular(
            Template::new(e.clone(), vec![AxisDist::Collapsed, AxisDist::Cyclic { nprocs: 3 }])
                .unwrap(),
        );
        let dst = Dad::block(e, &[2, 1]).unwrap();
        if ctx.program == 0 {
            let mine = LocalArray::from_fn(&src, ctx.comm.rank(), |i| (i[0] * 8 + i[1]) as f64);
            send_redistributed(ctx.intercomm(1), &src, &dst, &mine, 9).unwrap();
        } else {
            let mine: LocalArray<f64> =
                recv_redistributed(ctx.intercomm(0), &src, &dst, 9).unwrap();
            for (idx, &v) in mine.iter() {
                assert_eq!(v, (idx[0] * 8 + idx[1]) as f64);
            }
        }
    });
    trace
}

/// Intra-program alltoallv in the latency-bound regime: tiny chunks on 4
/// ranks take the Bruck path.
fn dca_alltoallv_small() -> RunTrace {
    let (_, trace) = World::run_traced(4, |p| {
        let c = p.world();
        let r = c.rank();
        let data: Vec<f64> = (0..8).map(|i| (r * 100 + i) as f64).collect();
        let spec = AlltoallvSpec::contiguous(&[2, 2, 2, 2]);
        let got = alltoallv_within(c, &data, &spec).unwrap();
        for (src, chunk) in got.iter().enumerate() {
            assert_eq!(chunk, &[(src * 100 + r * 2) as f64, (src * 100 + r * 2 + 1) as f64]);
        }
    });
    trace
}

/// The bandwidth-bound regime: 4800-byte chunks exceed the small-message
/// threshold, so the same call takes the pairwise path.
fn dca_alltoallv_large() -> RunTrace {
    let (_, trace) = World::run_traced(4, |p| {
        let c = p.world();
        let r = c.rank();
        const PER_PEER: usize = 600; // 4800 B/chunk > SMALL_COLLECTIVE_BYTES
        let data: Vec<f64> = (0..4 * PER_PEER).map(|i| (r * 10_000 + i) as f64).collect();
        let spec = AlltoallvSpec::contiguous(&[PER_PEER; 4]);
        let got = alltoallv_within(c, &data, &spec).unwrap();
        for (src, chunk) in got.iter().enumerate() {
            assert_eq!(chunk.len(), PER_PEER);
            assert_eq!(chunk[0], (src * 10_000 + r * PER_PEER) as f64);
        }
    });
    trace
}

/// A PRMI collective call: 2 callers drive 2 providers through three
/// ordered collective invocations.
fn prmi_collective_call() -> RunTrace {
    struct AddMethod;
    impl RemoteService for AddMethod {
        fn dispatch(&self, method: u32, arg: AnyPayload) -> Dispatch {
            let v: f64 = arg.downcast().unwrap();
            AnyPayload::replicable(v + method as f64).into()
        }
    }
    let (_, trace) = Universe::run_traced(&[2, 2], |_, ctx| {
        if ctx.program == 0 {
            let ic = ctx.intercomm(1);
            let mut ep = CollectiveEndpoint::new();
            for method in 0..3u32 {
                let r: f64 = ep.call(ic, method, 50.0f64).unwrap();
                assert_eq!(r, 50.0 + method as f64);
            }
            ep.shutdown(ic).unwrap();
        } else {
            collective_serve(ctx.intercomm(0), &AddMethod).unwrap();
        }
    });
    trace
}

/// A lossy run under the seeded fault plane: a dropped message, then the
/// sender's scheduled death unblocks the receiver. Every injection is a
/// send-side, seeded verdict, so the digest is stable.
fn lossy_faulted_run() -> RunTrace {
    let cfg = FaultConfig::reliable(0xD1CE)
        .with_channel(0, 1, ChannelPolicy::lossy(1.0))
        .with_death(0, 1);
    let (_, _, trace) = World::run_traced_with_faults(2, cfg, |p| {
        let c = p.world();
        if c.rank() == 0 {
            c.send(1, 5, 1u8).unwrap(); // op 0: sent, dropped by policy
            c.send(1, 5, 2u8).unwrap_err(); // op 1: own scheduled death
        } else {
            c.recv::<u8>(0, 5).unwrap_err(); // unblocked by PeerDead
        }
    });
    trace
}

/// Shared body for the elastic-grow scenarios: a 1×1 coupling on world
/// ranks {0, 1} admits the parked rank 2 onto side 0 via the rank-join
/// handshake, then spreads side 0's 6×6 field over the grown membership
/// through the one-sided RMA window. Records the `Expand` membership
/// event plus the full `RmaExpose`/`RmaPut`/`RmaGet`/`RmaFence` plane.
///
/// With `faulted`, the incumbents arm the (fully lossy sponsor→newcomer)
/// fault plane for exactly the handshake-plus-one-probe window: the join
/// handshake runs fault-disarmed internally, so the grow still commits,
/// and the armed probe send is deterministically dropped — both facts
/// pinned by the digest.
fn elastic_grow_body(p: &mxn::runtime::Process, faulted: bool) {
    let world = p.world();
    // World-level collectives (split, window drains) must not cross the
    // armed lossy channels; arming is scoped to the handshake below.
    p.set_faults_armed(false);
    let old = Dad::block(Extents::new([6, 6]), &[1, 1]).unwrap();
    let new = old.expand(2).unwrap();
    let color = if p.rank() < 2 { 0 } else { -1 };
    let pair = world.split(color, 0).unwrap();
    if p.rank() == 2 {
        let (_ic, report) =
            InterComm::await_join_with_report(world, Duration::from_secs(10)).unwrap();
        assert_eq!(report.new_local_group, vec![0, 2]);
        let got = redistribute_elastic(world, 9, &old, &new, &[0], &[0, 2], None, Some(1))
            .unwrap()
            .unwrap();
        for (idx, &v) in got.iter() {
            assert_eq!(v, (idx[0] * 6 + idx[1]) as f64);
        }
        return;
    }
    let side = p.rank();
    let (_prog, ic) = InterComm::create(&pair.unwrap(), side).unwrap();
    if faulted {
        p.set_faults_armed(true);
    }
    let (add_local, add_remote): (&[usize], &[usize]) =
        if side == 0 { (&[2], &[]) } else { (&[], &[2]) };
    let (_grown, report) = ic.expand(add_local, add_remote).unwrap();
    assert_eq!(report.epoch, 1);
    if faulted && p.rank() == 0 {
        // Still armed: this fire-and-forget probe hits the lossy(1.0)
        // sponsor→newcomer channel and is dropped — the event the digest
        // pins. The newcomer never posts a matching receive.
        world.send(2, 777, 1u8).unwrap();
    }
    p.set_faults_armed(false);
    if p.rank() == 0 {
        let mine = LocalArray::from_fn(&old, 0, |i| (i[0] * 6 + i[1]) as f64);
        let got =
            redistribute_elastic(world, 9, &old, &new, &[0], &[0, 2], Some((0, &mine)), Some(0))
                .unwrap()
                .unwrap();
        assert_eq!(got.len(), new.local_size(0));
    }
}

/// A clean elastic grow: membership handshake, commit, RMA spread.
fn elastic_grow_commit() -> RunTrace {
    let (_, trace) = World::run_traced(3, |p| elastic_grow_body(p, false));
    trace
}

/// The same grow under a seeded fault plane: the sponsor→newcomer channel
/// is fully lossy while armed, but the join handshake runs fault-disarmed
/// by design, so the grow still commits — and the digest pins that the
/// armed-fault path stays deterministic.
fn elastic_grow_under_seeded_faults() -> RunTrace {
    let cfg = FaultConfig::reliable(0xE1A5)
        .with_channel(0, 2, ChannelPolicy::lossy(1.0))
        .with_channel(1, 2, ChannelPolicy::lossy(1.0));
    let (_, _, trace) = World::run_traced_with_faults(3, cfg, |p| elastic_grow_body(p, true));
    trace
}

type Scenario = (&'static str, fn() -> RunTrace);

fn scenarios() -> Vec<Scenario> {
    vec![
        ("redistribute_block_to_cyclic", redistribute_block_to_cyclic),
        ("redistribute_cyclic_to_block", redistribute_cyclic_to_block),
        ("dca_alltoallv_small_bruck", dca_alltoallv_small),
        ("dca_alltoallv_large_pairwise", dca_alltoallv_large),
        ("prmi_collective_call", prmi_collective_call),
        ("lossy_faulted_run", lossy_faulted_run),
        ("elastic_grow_commit", elastic_grow_commit),
        ("elastic_grow_under_seeded_faults", elastic_grow_under_seeded_faults),
    ]
}

fn committed_goldens() -> Vec<(String, String)> {
    let text = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!("missing golden file {GOLDEN_PATH} ({e}); bless with MXN_BLESS_TRACES=1")
    });
    text.lines()
        .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
        .map(|l| {
            let (name, digest) = l.split_once(' ').expect("golden line: `<name> <digest>`");
            (name.to_string(), digest.trim().to_string())
        })
        .collect()
}

#[test]
fn golden_digests_are_stable_and_match() {
    let mut fresh = Vec::new();
    for (name, run) in scenarios() {
        let a = run();
        let b = run();
        assert_eq!(a.dropped, 0, "{name}: trace buffer overflowed");
        assert_eq!(
            a.digest_hex(),
            b.digest_hex(),
            "{name}: two in-process runs produced different digests — the \
             scenario (or an event it records) is not deterministic"
        );
        assert!(!a.events.is_empty(), "{name}: recorded nothing");
        fresh.push((name.to_string(), a.digest_hex()));
    }

    if std::env::var_os("MXN_BLESS_TRACES").is_some() {
        let mut out = String::from(
            "# Golden trace digests — one `<scenario> <digest>` per line.\n\
             # Regenerate with: MXN_BLESS_TRACES=1 cargo test --test golden_traces\n",
        );
        for (name, digest) in &fresh {
            out.push_str(&format!("{name} {digest}\n"));
        }
        std::fs::write(GOLDEN_PATH, out).expect("write blessed goldens");
        return;
    }

    let committed = committed_goldens();
    assert_eq!(
        committed.len(),
        fresh.len(),
        "scenario list differs from the golden file; bless with MXN_BLESS_TRACES=1"
    );
    for ((want_name, want), (got_name, got)) in committed.iter().zip(fresh.iter()) {
        assert_eq!(want_name, got_name, "scenario order differs from the golden file");
        assert_eq!(
            want, got,
            "{got_name}: digest drifted from the committed golden — if the \
             change is intentional, bless with MXN_BLESS_TRACES=1"
        );
    }
}
