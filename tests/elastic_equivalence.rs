//! The elastic grow/shrink equivalence test plane.
//!
//! Property: a chain of elastic reconfigurations — grow, shrink, grow
//! again, at randomized Δp — moves the field through the one-sided RMA
//! window so that after *every* stage each member's shard is
//! byte-identical to the fault-free oracle (`LocalArray::from_fn` on the
//! stage's decomposition). Exercised across the same five descriptor
//! families as `route_equivalence.rs` (block grids, block-cyclic × cyclic,
//! gen-block, implicit owners, explicit quadrants), with non-power-of-two
//! membership sizes, scattered (non-prefix) survivor sets, and leavers
//! rejoining on the second grow.

use mxn_core::redistribute_elastic;
use mxn_dad::{AxisDist, Dad, ExplicitDist, Extents, LocalArray, Region, Template};
use mxn_runtime::{Comm, World};
use proptest::prelude::*;

/// splitmix64, so descriptor construction is deterministic per drawn seed.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn pick(state: &mut u64, lo: usize, hi: usize) -> usize {
    lo + (next(state) % (hi - lo) as u64) as usize
}

/// The five descriptor families of `route_equivalence.rs`.
fn make_dad(rows: usize, cols: usize, family: u8, seed: u64) -> Dad {
    let mut s = seed;
    let e = Extents::new([rows, cols]);
    match family % 5 {
        0 => {
            let gr = pick(&mut s, 1, rows.min(5));
            let gc = pick(&mut s, 1, cols.min(4));
            Dad::block(e, &[gr, gc]).unwrap()
        }
        1 => Dad::regular(
            Template::new(
                e,
                vec![
                    AxisDist::BlockCyclic { block: pick(&mut s, 1, 4), nprocs: pick(&mut s, 1, 4) },
                    AxisDist::Cyclic { nprocs: pick(&mut s, 1, 4) },
                ],
            )
            .unwrap(),
        ),
        2 => {
            let nb = pick(&mut s, 1, 5);
            let mut sizes = vec![0usize; nb];
            for _ in 0..rows {
                sizes[pick(&mut s, 0, nb)] += 1;
            }
            Dad::regular(
                Template::new(e, vec![AxisDist::GenBlock { sizes }, AxisDist::Collapsed]).unwrap(),
            )
        }
        3 => {
            let nprocs = pick(&mut s, 1, 5);
            let owners = (0..rows).map(|_| pick(&mut s, 0, nprocs)).collect();
            Dad::regular(
                Template::new(
                    e,
                    vec![
                        AxisDist::Implicit { owners, nprocs },
                        AxisDist::Block { nprocs: pick(&mut s, 1, 3) },
                    ],
                )
                .unwrap(),
            )
        }
        _ => {
            let r = pick(&mut s, 1, rows);
            let c = pick(&mut s, 1, cols);
            let quads = [
                Region::new([0, 0], [r, c]),
                Region::new([0, c], [r, cols]),
                Region::new([r, 0], [rows, c]),
                Region::new([r, c], [rows, cols]),
            ];
            let nranks = pick(&mut s, 1, 5);
            let patches = quads.into_iter().map(|q| (q, pick(&mut s, 0, nranks))).collect();
            Dad::explicit(ExplicitDist::new(e, patches, nranks).unwrap())
        }
    }
}

fn value(idx: &[usize], cols: usize) -> f64 {
    (idx[0] * cols + idx[1]) as f64 + 1.0
}

/// One rank's view of an elastic chain: runs every stage transition it is
/// party to, carrying its shard from stage to stage and checking it
/// against the fault-free oracle after each hop.
///
/// `stages[k]` is `(dad, members)` — the decomposition and the sorted
/// world-rank membership of stage `k`.
fn run_chain(world: &Comm, cols: usize, stages: &[(Dad, Vec<usize>)]) {
    let me = world.rank();
    let (first_dad, first_members) = &stages[0];
    let mut cur: Option<(usize, LocalArray<f64>)> = first_members
        .iter()
        .position(|&r| r == me)
        .map(|pos| (pos, LocalArray::from_fn(first_dad, pos, |idx| value(idx, cols))));
    for k in 1..stages.len() {
        let (old_dad, old_members) = &stages[k - 1];
        let (new_dad, new_members) = &stages[k];
        let in_union = old_members.contains(&me) || new_members.contains(&me);
        if !in_union {
            continue;
        }
        let my_new = new_members.iter().position(|&r| r == me);
        let got = redistribute_elastic(
            world,
            k as u32,
            old_dad,
            new_dad,
            old_members,
            new_members,
            cur.as_ref().map(|(r, a)| (*r, a)),
            my_new,
        )
        .unwrap();
        cur = my_new.and_then(|r| got.map(|a| (r, a)));
        if let Some((rank, arr)) = &cur {
            let want = LocalArray::from_fn(new_dad, *rank, |idx| value(idx, cols));
            assert_eq!(arr, &want, "stage {k} oracle mismatch at member {me} (dad rank {rank})");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Grow → shrink → grow at randomized Δp: the field survives the whole
    /// chain bit-exact, across all five families, with scattered survivor
    /// sets and departed ranks rejoining on the second grow.
    #[test]
    fn grow_shrink_grow_matches_the_oracle(
        rows in 4..16usize,
        cols in 3..10usize,
        family in 0..5u8,
        grow1 in 1..3usize,
        seed in 0..u64::MAX,
    ) {
        let dad0 = make_dad(rows, cols, family, seed);
        let p0 = dad0.nranks();
        let p1 = p0 + grow1;
        let dad1 = dad0.expand(p1).unwrap();
        // Scattered survivor subset of stage 1: every member whose seed
        // bit is set, clamped to a proper non-empty subset.
        let mut s = seed ^ 0xdead_beef;
        let mut keep: Vec<usize> = (0..p1).filter(|_| next(&mut s) & 1 == 1).collect();
        if keep.is_empty() {
            keep.push(pick(&mut s, 0, p1));
        }
        if keep.len() == p1 {
            keep.pop();
        }
        let p2 = keep.len();
        let dad2 = dad1.shrink(&keep).unwrap();
        // Second grow: departed ranks rejoin (smallest absent world ranks
        // first), so newcomers here are often ranks that held data before.
        let grow2 = pick(&mut s, 1, (p1 - p2) + 1);
        let mut members3 = keep.clone();
        members3.extend((0..p1).filter(|r| !keep.contains(r)).take(grow2));
        members3.sort_unstable();
        let dad3 = dad2.expand(p2 + grow2).unwrap();

        let stages = vec![
            (dad0, (0..p0).collect::<Vec<_>>()),
            (dad1, (0..p1).collect::<Vec<_>>()),
            (dad2, keep),
            (dad3, members3),
        ];
        World::run(p1, move |p| run_chain(p.world(), cols, &stages));
    }
}

/// Non-power-of-two, strongly asymmetric membership sizes exercised
/// deterministically: 5 → 2 → 7 → 1 → 6, including a full disjoint
/// handoff (the lone stage-3 member was never in stage 2) and scattered
/// member sets.
#[test]
fn asymmetric_elastic_chain_survives_handoffs() {
    let cols = 5;
    let d0 = Dad::block(Extents::new([21, 5]), &[5, 1]).unwrap();
    let d1 = d0.shrink(&[1, 3]).unwrap();
    let d2 = d1.expand(7).unwrap();
    let d3 = d2.shrink(&[4]).unwrap();
    let d4 = d3.expand(6).unwrap();
    let stages = vec![
        (d0, vec![0, 1, 2, 3, 4]),
        (d1, vec![1, 3]),
        (d2, vec![0, 1, 2, 4, 5, 7, 8]),
        // World rank 3 was not a stage-2 member: a pure handoff.
        (d3, vec![3]),
        (d4, vec![0, 2, 3, 5, 6, 8]),
    ];
    World::run(9, move |p| run_chain(p.world(), cols, &stages));
}

/// A membership that only *shrinks* (no grow in the chain) still carries
/// every element: the leavers' shards land on survivors, step by step,
/// down to a single rank owning the whole array.
#[test]
fn shrink_only_chain_funnels_to_one_rank() {
    let cols = 6;
    let d0 = Dad::block(Extents::new([12, 6]), &[3, 2]).unwrap();
    let d1 = d0.shrink(&[0, 2, 5]).unwrap();
    let d2 = d1.shrink(&[1]).unwrap();
    let stages = vec![(d0, vec![0, 1, 2, 3, 4, 5]), (d1, vec![0, 3, 5]), (d2, vec![3])];
    World::run(6, move |p| {
        run_chain(p.world(), cols, &stages);
        if p.rank() == 3 {
            // The funnel terminus owns all 72 elements.
            let (d2, _) = &stages[2];
            assert_eq!(d2.local_size(0), 72);
        }
    });
}
