//! Cross-system equivalence: the same M×N redistribution executed through
//! every mechanism in the workspace must move exactly the same data.
//!
//! This is the integration-level statement of the paper's thesis: the M×N
//! component, linearization protocols, DCA's user-specified alltoallv and
//! MCT's routers are different *interfaces* over one underlying problem
//! (§2.3's communication schedule).

use mxn::dad::{Dad, Extents, LocalArray};
use mxn::dca::{gather_from_remote, scatter_to_remote, spec_from_dads};
use mxn::linearize::{request_and_fill, serve_requests, ArrayOrder};
use mxn::mct::{AttrVect, GlobalSegMap, ModelRegistry, Rearranger, Router};
use mxn::runtime::{Universe, World};
use mxn::schedule::{LinearSchedule, RegionSchedule};

const ROWS: usize = 12;
const COLS: usize = 8;

fn value(idx: &[usize]) -> f64 {
    (idx[0] * COLS + idx[1]) as f64 * 1.5 + 7.0
}

fn dads(m: usize, n: usize) -> (Dad, Dad) {
    let e = Extents::new([ROWS, COLS]);
    (Dad::block(e.clone(), &[m, 1]).unwrap(), Dad::block(e, &[1, n]).unwrap())
}

fn check(local: &LocalArray<f64>) {
    assert!(!local.is_empty());
    for (idx, &v) in local.iter() {
        assert_eq!(v, value(&idx), "at {idx:?}");
    }
}

#[test]
fn region_schedule_path() {
    Universe::run(&[3, 2], |_, ctx| {
        let (src, dst) = dads(3, 2);
        if ctx.program == 0 {
            let sched = RegionSchedule::for_sender(&src, &dst, ctx.comm.rank());
            let local = LocalArray::from_fn(&src, ctx.comm.rank(), value);
            sched.execute_send(ctx.intercomm(1), &local, 0).unwrap();
        } else {
            let sched = RegionSchedule::for_receiver(&src, &dst, ctx.comm.rank());
            let mut local = LocalArray::allocate(&dst, ctx.comm.rank());
            sched.execute_recv(ctx.intercomm(0), &mut local, 0).unwrap();
            check(&local);
        }
    });
}

#[test]
fn linear_schedule_path() {
    Universe::run(&[3, 2], |_, ctx| {
        let (src, dst) = dads(3, 2);
        let order = ArrayOrder::RowMajor;
        if ctx.program == 0 {
            let sched = LinearSchedule::for_sender(&src, &dst, order, ctx.comm.rank());
            let local = LocalArray::from_fn(&src, ctx.comm.rank(), value);
            sched.execute_send(ctx.intercomm(1), &src, &local, 0).unwrap();
        } else {
            let sched = LinearSchedule::for_receiver(&src, &dst, order, ctx.comm.rank());
            let mut local = LocalArray::allocate(&dst, ctx.comm.rank());
            sched.execute_recv(ctx.intercomm(0), &dst, &mut local, 0).unwrap();
            check(&local);
        }
    });
}

#[test]
fn receiver_request_protocol_path() {
    Universe::run(&[3, 2], |_, ctx| {
        let (src, dst) = dads(3, 2);
        let order = ArrayOrder::RowMajor;
        if ctx.program == 0 {
            let local = LocalArray::from_fn(&src, ctx.comm.rank(), value);
            serve_requests(ctx.intercomm(1), &src, order, &local).unwrap();
        } else {
            let mut local: LocalArray<f64> = LocalArray::allocate(&dst, ctx.comm.rank());
            request_and_fill(ctx.intercomm(0), &dst, order, &mut local).unwrap();
            check(&local);
        }
    });
}

#[test]
fn dca_alltoallv_path() {
    Universe::run(&[3, 2], |_, ctx| {
        let (src, dst) = dads(3, 2);
        if ctx.program == 0 {
            let rank = ctx.comm.rank();
            let local = LocalArray::from_fn(&src, rank, value);
            let (flat, spec) = spec_from_dads(&src, &dst, rank, &local);
            scatter_to_remote(ctx.intercomm(1), &flat, &spec, 1).unwrap();
        } else {
            let rank = ctx.comm.rank();
            let sched = RegionSchedule::for_receiver(&src, &dst, rank);
            let chunks = gather_from_remote(ctx.intercomm(0), 1).unwrap();
            let mut local: LocalArray<f64> = LocalArray::allocate(&dst, rank);
            for pair in sched.pairs() {
                let mut cursor = 0;
                for region in &pair.regions {
                    local.unpack_region(region, &chunks[pair.peer][cursor..cursor + region.len()]);
                    cursor += region.len();
                }
            }
            check(&local);
        }
    });
}

/// MCT path: the same redistribution expressed as segment maps over the
/// row-major numbering, moved by a Router between two components.
#[test]
fn mct_router_path() {
    World::run(5, |p| {
        let world = p.world();
        let my_comp = if p.rank() < 3 { 1u32 } else { 2 };
        let reg = ModelRegistry::init(world, my_comp).unwrap();
        let (src, dst) = dads(3, 2);
        // Convert the DADs into segment maps over the linearization.
        let to_gsmap = |dad: &Dad, nranks: usize| {
            let mut segs = Vec::new();
            for r in 0..nranks {
                for (s, l) in ArrayOrder::RowMajor.rank_segments(dad, r).runs() {
                    segs.push(mxn::mct::Segment { start: *s, length: *l, rank: r });
                }
            }
            GlobalSegMap::new(ROWS * COLS, nranks, segs).unwrap()
        };
        let src_map = to_gsmap(&src, 3);
        let dst_map = to_gsmap(&dst, 2);
        if my_comp == 1 {
            let me = p.rank();
            let router = Router::new(&src_map, me, &dst_map, &reg, 2).unwrap();
            let mut av = AttrVect::new(&["f"], &[], src_map.lsize(me));
            for l in 0..av.lsize() {
                let g = src_map.global_index(me, l).unwrap();
                av.real_mut("f")[l] = value(&[g / COLS, g % COLS]);
            }
            router.send(world, &av, 2).unwrap();
        } else {
            let me = p.rank() - 3;
            let router = Router::new(&dst_map, me, &src_map, &reg, 1).unwrap();
            let mut av = AttrVect::new(&["f"], &[], dst_map.lsize(me));
            router.recv(world, &mut av, 2).unwrap();
            for l in 0..av.lsize() {
                let g = dst_map.global_index(me, l).unwrap();
                assert_eq!(av.real("f")[l], value(&[g / COLS, g % COLS]));
            }
        }
    });
}

/// Intra-program: schedule-based `redistribute_within` and the MCT
/// rearranger agree on a transpose-style move.
#[test]
fn rearranger_matches_schedule_redistribution() {
    World::run(4, |p| {
        let comm = p.world();
        let me = comm.rank();
        let (src, dst) = dads(4, 4);
        let src_local = LocalArray::from_fn(&src, me, value);
        let via_schedule =
            mxn::schedule::redistribute_within(comm, &src, &dst, &src_local, 3).unwrap();
        check(&via_schedule);

        // The same move through MCT's rearranger.
        let to_gsmap = |dad: &Dad| {
            let mut segs = Vec::new();
            for r in 0..4 {
                for (s, l) in ArrayOrder::RowMajor.rank_segments(dad, r).runs() {
                    segs.push(mxn::mct::Segment { start: *s, length: *l, rank: r });
                }
            }
            GlobalSegMap::new(ROWS * COLS, 4, segs).unwrap()
        };
        let (sm, dm) = (to_gsmap(&src), to_gsmap(&dst));
        let re = Rearranger::new(&sm, &dm, me).unwrap();
        let mut sav = AttrVect::new(&["f"], &[], sm.lsize(me));
        for l in 0..sav.lsize() {
            let g = sm.global_index(me, l).unwrap();
            sav.real_mut("f")[l] = value(&[g / COLS, g % COLS]);
        }
        let mut dav = AttrVect::new(&["f"], &[], dm.lsize(me));
        re.rearrange(comm, &sav, &mut dav, 4).unwrap();

        // Agreement, point by point.
        for l in 0..dav.lsize() {
            let g = dm.global_index(me, l).unwrap();
            let idx = [g / COLS, g % COLS];
            assert_eq!(dav.real("f")[l], *via_schedule.get(&idx).unwrap());
        }
    });
}
