//! PRMI semantics across the stack: invocation modes, M≠N pairings,
//! ordering guarantees, and the Figure 5 scenario driven through the DCA
//! stub layer.

use std::time::Duration;

use mxn::framework::{AnyPayload, Dispatch, RemoteService};
use mxn::prmi::{
    collective_serve, subset_serve, CollectiveEndpoint, DeliveryPolicy, SubsetServeOutcome,
};
use mxn::runtime::Universe;

/// A stateful counter service: every dispatch appends the method id.
struct Recorder(parking_lot::Mutex<Vec<u32>>);

impl RemoteService for Recorder {
    fn dispatch(&self, method: u32, arg: AnyPayload) -> Dispatch {
        self.0.lock().push(method);
        let v: f64 = arg.downcast().unwrap();
        AnyPayload::replicable(v + method as f64).into()
    }
}

/// Collective invocation ordering is preserved for every M×N pairing:
/// providers see the same call sequence the callers issued.
#[test]
fn collective_order_preserved_across_pairings() {
    for (m, n) in [(1, 3), (3, 1), (2, 2), (4, 3), (3, 5)] {
        Universe::run(&[m, n], move |_, ctx| {
            const CALLS: u32 = 6;
            if ctx.program == 0 {
                let ic = ctx.intercomm(1);
                let mut ep = CollectiveEndpoint::new();
                for method in 0..CALLS {
                    let r: f64 = ep.call(ic, method, 100.0f64).unwrap();
                    assert_eq!(r, 100.0 + method as f64, "m={m} n={n} call {method}");
                }
                ep.shutdown(ic).unwrap();
            } else {
                let svc = Recorder(parking_lot::Mutex::new(Vec::new()));
                let stats = collective_serve(ctx.intercomm(0), &svc).unwrap();
                assert_eq!(stats.calls as u32, CALLS);
                // Each provider executed the calls in issue order.
                assert_eq!(*svc.0.lock(), (0..CALLS).collect::<Vec<u32>>());
            }
        });
    }
}

/// Figure 5 driven through the DCA stub layer: the mixed-participation
/// scheme's automatic barrier turns the deadlocking interleaving into a
/// completed run, while a hand-built eager caller deadlocks.
#[test]
fn figure5_through_dca_stubs() {
    use mxn::dca::DcaPort;

    // Safe run: stubs barrier everything.
    Universe::run(&[3, 1], |_, ctx| {
        if ctx.program == 0 {
            let ic = ctx.intercomm(1);
            let port = DcaPort::new(0, 3);
            let rank = ctx.comm.rank();
            let all = ctx.comm.subgroup(&[0, 1, 2]).unwrap().unwrap();
            let pair = ctx.comm.subgroup(&[1, 2]).unwrap();
            if rank == 0 {
                let r: f64 = port.invoke(ic, &ctx.comm, &all, 0, 1.0f64).unwrap();
                assert_eq!(r, 1.0);
                port.shutdown(ic).unwrap();
            } else {
                std::thread::sleep(Duration::from_millis(20));
                let pair = pair.unwrap();
                let _: f64 = port.invoke(ic, &ctx.comm, &pair, 1, 1.0f64).unwrap();
                let _: f64 = port.invoke(ic, &ctx.comm, &all, 0, 1.0f64).unwrap();
            }
        } else {
            let svc = Recorder(parking_lot::Mutex::new(Vec::new()));
            let out = subset_serve(ctx.intercomm(0), &svc, Duration::from_secs(5)).unwrap();
            assert_eq!(out, SubsetServeOutcome::Completed { calls: 2 });
            // Delivery order respected the barrier: the pair's call (1)
            // was serviced before the full-set call (0).
            assert_eq!(*svc.0.lock(), vec![1, 0]);
        }
    });
}

/// The same interleaving with eager delivery deadlocks — and the server's
/// diagnostic names the rank whose share never arrived.
#[test]
fn figure5_eager_deadlock_diagnosed() {
    use mxn::prmi::{subset_call_timeout, PrmiError};

    Universe::run(&[3, 1], |_, ctx| {
        if ctx.program == 0 {
            let ic = ctx.intercomm(1);
            let rank = ctx.comm.rank();
            let all = ctx.comm.subgroup(&[0, 1, 2]).unwrap().unwrap();
            let pair = ctx.comm.subgroup(&[1, 2]).unwrap();
            let t = Duration::from_secs(2);
            let eager = DeliveryPolicy::eager();
            if rank == 0 {
                let r: Result<f64, _> =
                    subset_call_timeout(&all, ic, &[0, 1, 2], 0, 0, 1.0f64, eager, t);
                assert!(matches!(r, Err(PrmiError::DeliveryDeadlock { .. })));
            } else {
                std::thread::sleep(Duration::from_millis(50));
                let pair = pair.unwrap();
                let r: Result<f64, _> =
                    subset_call_timeout(&pair, ic, &[1, 2], 0, 1, 1.0f64, eager, t);
                assert!(matches!(r, Err(PrmiError::DeliveryDeadlock { .. })));
            }
        } else {
            let svc = Recorder(parking_lot::Mutex::new(Vec::new()));
            let out = subset_serve(ctx.intercomm(0), &svc, Duration::from_millis(300)).unwrap();
            match out {
                SubsetServeOutcome::Deadlocked { calls, missing_rank, method } => {
                    assert_eq!(calls, 0);
                    assert_eq!(method, 0, "stuck on the full-set call");
                    assert!(missing_rank == 1 || missing_rank == 2);
                }
                other => panic!("expected deadlock, got {other:?}"),
            }
        }
    });
}

/// One-way methods do not block the caller: total caller-side time for k
/// one-way calls is far below k service times.
#[test]
fn oneway_overlaps_service_time() {
    use std::time::Instant;

    struct Slow;
    impl RemoteService for Slow {
        fn dispatch(&self, _m: u32, arg: AnyPayload) -> Dispatch {
            std::thread::sleep(Duration::from_millis(20));
            arg.into()
        }
    }

    Universe::run(&[1, 1], |_, ctx| {
        if ctx.program == 0 {
            let ic = ctx.intercomm(1);
            let mut ep = CollectiveEndpoint::new();
            let start = Instant::now();
            for _ in 0..5 {
                ep.call_oneway(ic, 1, 0.0f64).unwrap();
            }
            let elapsed = start.elapsed();
            assert!(
                elapsed < Duration::from_millis(50),
                "one-way calls must not wait for the 5 × 20ms service time (took {elapsed:?})"
            );
            ep.shutdown(ic).unwrap();
        } else {
            let svc = Recorder(parking_lot::Mutex::new(Vec::new()));
            let _ = collective_serve(ctx.intercomm(0), &Slow).unwrap();
            drop(svc);
        }
    });
}
