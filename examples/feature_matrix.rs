//! Reproduces the paper's Figure 4 — the project feature matrix — by
//! probing each implementation in this workspace at runtime.
//!
//! ```text
//! cargo run --example feature_matrix
//! ```

use mxn::feature_matrix::{build, render};

fn main() {
    println!("Figure 4: M×N projects and features (each row verified by a live probe)\n");
    let rows = build();
    print!("{}", render(&rows));
    if rows.iter().all(|r| r.verified) {
        println!("\nall five project probes succeeded");
    } else {
        println!("\nSOME PROBES FAILED");
        std::process::exit(1);
    }
}
