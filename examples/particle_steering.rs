//! Particles + computational steering: the CUMULVS use case of §4.1.
//!
//! A 4-rank particle simulation free-runs while a 1-rank viewer steers its
//! drift velocity mid-flight and finally pulls the whole particle
//! population across an M×N transfer into its own (serial) decomposition
//! for "visualization".
//!
//! ```text
//! cargo run --example particle_steering
//! ```

use mxn::core::{steer, ParticleField, SteeringRegistry};
use mxn::dad::{Dad, Extents};
use mxn::runtime::Universe;

const STEPS: usize = 12;
const PARTICLES: usize = 2000;

fn main() {
    println!("4-rank particle simulation, steered and visualized by a 1-rank viewer\n");

    Universe::run(&[4, 1], |_, ctx| {
        let sim_cells = Dad::block(Extents::new([8, 8]), &[2, 2]).unwrap();
        let viz_cells = Dad::block(Extents::new([4, 4]), &[1, 1]).unwrap();
        if ctx.program == 0 {
            // --- The simulation component ---
            let ic = ctx.intercomm(1);
            let rank = ctx.comm.rank();
            let mut field = ParticleField::new([1.0, 1.0], sim_cells, rank);
            field.seed_global(PARTICLES);

            let mut steering = SteeringRegistry::new();
            steering.register("drift_x", 0.04);
            steering.register("drift_y", 0.01);

            for step in 0..STEPS {
                // Let the viewer act at the halfway point.
                if step == STEPS / 2 && rank == 0 {
                    ic.send(0, 1, ()).unwrap();
                }
                if step > STEPS / 2 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                for (name, value) in steering.poll(ic).unwrap() {
                    if rank == 0 {
                        println!("step {step:2}: steering update {name} = {value}");
                    }
                }
                field.advect(steering.get("drift_x"), steering.get("drift_y"));
                let report = field.migrate(&ctx.comm).unwrap();
                if rank == 0 && step % 4 == 0 {
                    println!(
                        "step {step:2}: rank 0 kept {} particles, sent {}, received {}",
                        report.kept, report.sent, report.received
                    );
                }
            }
            // Final M×N hand-off to the viewer's decomposition.
            field.send_mxn(ic, &viz_cells, 9).unwrap();
            let total: usize = ctx.comm.allreduce(field.len(), |a, b| *a += b).unwrap();
            if rank == 0 {
                println!("\nsimulation done: {total} particles handed to the viewer");
            }
        } else {
            // --- The viewer ---
            let ic = ctx.intercomm(0);
            ic.recv::<()>(0, 1).unwrap();
            println!("viewer: halving the x-drift mid-run");
            steer(ic, "drift_x", 0.02).unwrap();

            let mut viz = ParticleField::new([1.0, 1.0], viz_cells, 0);
            let received = viz.receive_mxn(ic, 9).unwrap();
            assert_eq!(received, PARTICLES, "every particle arrived");
            // A crude density "rendering": counts per quadrant.
            let mut quads = [0usize; 4];
            for p in viz.particles() {
                let qx = usize::from(p.pos[0] >= 0.5);
                let qy = usize::from(p.pos[1] >= 0.5);
                quads[qx * 2 + qy] += 1;
            }
            println!("viewer: received {received} particles; quadrant densities {quads:?}");
        }
    });

    println!("\ndone: steering took effect and the M×N hand-off delivered every particle");
}
