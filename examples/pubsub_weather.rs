//! XChangemxn-style dynamic coupling (paper §5).
//!
//! A weather model publishes a temperature field to a broker. Consumers
//! come and go while it runs: a plotting client subscribes from the start
//! (in Celsius), an archiver joins mid-run asking for Kelvin — the unit
//! conversion happens **in flight** at the broker, and the late joiner
//! immediately receives the retained latest field.
//!
//! ```text
//! cargo run --example pubsub_weather
//! ```

use mxn::dad::{Dad, Extents, LocalArray, Region};
use mxn::pubsub::{run_broker, shutdown_broker, Publisher, Subscriber, Transform};
use mxn::runtime::Universe;

const N: usize = 16;
const STEPS: u64 = 6;

fn main() {
    println!("weather model → broker → dynamic consumers (XChangemxn model)\n");

    Universe::run(&[3, 1], |_, ctx| {
        if ctx.program == 1 {
            let stats = run_broker(ctx.intercomm(0)).unwrap();
            println!(
                "\nbroker: {} commits, {} updates pushed, {} subscriptions, {} departures",
                stats.commits, stats.updates_sent, stats.subscriptions, stats.unsubscribes
            );
            return;
        }
        let ic = ctx.intercomm(1);
        let rank = ctx.comm.rank();
        let dad = Dad::block(Extents::new([N]), &[1]).unwrap();
        match rank {
            0 => {
                // The model: publishes once per step, no knowledge of who
                // is listening.
                let publisher = Publisher::new("temperature", dad.clone(), 0, 1);
                // Wait for the plotter to be subscribed (determinism).
                ctx.comm.recv::<()>(1, 1).unwrap();
                for step in 1..=STEPS {
                    let field = LocalArray::from_fn(&dad, 0, |idx| {
                        15.0 + (idx[0] as f64 * 0.4).sin() * 5.0 + step as f64 * 0.5
                    });
                    publisher.publish(ic, &field).unwrap();
                    // Let the archiver join after step 4.
                    if step == 4 {
                        ctx.comm.send(2, 2, ()).unwrap();
                        ctx.comm.recv::<()>(2, 3).unwrap();
                    }
                }
                ctx.comm.send(1, 4, ()).unwrap();
                ctx.comm.send(2, 4, ()).unwrap();
            }
            1 => {
                // The plotter: subscribed before step 1, Celsius as-is.
                let region = Region::new([0], [N]);
                Subscriber::subscribe(ic, "temperature", &region, Transform::identity()).unwrap();
                ctx.comm.send(0, 1, ()).unwrap();
                for step in 1..=STEPS {
                    let u = Subscriber::next_update(ic).unwrap();
                    assert_eq!(u.version, step);
                    let mean: f64 = u.values.iter().sum::<f64>() / N as f64;
                    println!("plotter:  step {step} mean temperature {mean:.2} °C");
                }
                ctx.comm.recv::<()>(0, 4).unwrap();
            }
            _ => {
                // The archiver: arrives mid-run, wants Kelvin.
                ctx.comm.recv::<()>(0, 2).unwrap();
                let region = Region::new([0], [N]);
                let v = Subscriber::subscribe(
                    ic,
                    "temperature",
                    &region,
                    Transform { scale: 1.0, offset: 273.15 },
                )
                .unwrap();
                println!("archiver: joined late; retained version is {v}");
                ctx.comm.send(0, 3, ()).unwrap();
                // Retained version + the remaining live commits.
                let mut received = 0;
                let mut last = 0.0;
                for _ in 0..(1 + STEPS - v) {
                    let u = Subscriber::next_update(ic).unwrap();
                    received += 1;
                    last = u.values[0];
                    assert!(u.values.iter().all(|&t| t > 273.0), "in Kelvin");
                }
                println!(
                    "archiver: received {received} updates in Kelvin (last T[0] = {last:.2} K)"
                );
                ctx.comm.recv::<()>(0, 4).unwrap();
                Subscriber::unsubscribe(ic, "temperature").unwrap();
                shutdown_broker(ic).unwrap();
            }
        }
    });

    println!("\ndone: consumers joined and departed without the model noticing");
}
