//! Autoscaled coupling: a policy-driven grow under load, a kill mid-grow
//! that rolls back cleanly, a committed retry, and a shrink back when the
//! load drains — all while periodic traffic keeps flowing, oracle-checked
//! every epoch.
//!
//! ```text
//! cargo run --release --example autoscale_coupling [trace.json]
//! ```
//!
//! Two exporters feed two importers a 12×12 field through a persistent
//! connection; three spare ranks park in [`MxnConnection::join`]. Every
//! incumbent runs an identical [`Autoscaler`] replica fed by *measured*
//! mailbox gauges, not invented numbers: during the loaded phase (the
//! first six epochs) each incumbent exchanges ballast bursts with its
//! counterpart and then samples its own mailbox occupancy via
//! `InterComm::sample_mailbox_gauge` — the peak-since-last-sample
//! watermark sees the backlog even though it fully drains before the
//! sample. Identical traffic on every incumbent keeps the policy replicas
//! in lockstep, so all replicas decide the same thing at the same epoch:
//!
//! * **epoch 2** — sustained pressure: `Grow {{ add: 2 }}`. The first two
//!   parked spares are invited, but one died right after startup, so the
//!   join handshake aborts on every participant. The rollback leaves the
//!   coupling exactly as it was ([`Autoscaler::record_aborted`] arms the
//!   policy cooldown), and the surviving invitee re-parks.
//! * **epoch 6** — pressure persists past the cooldown: the retry invites
//!   the two healthy spares and commits. The RMA rebind hands them the
//!   last committed step; epochs 7–10 run at the grown size.
//! * **epoch 10** — the queue has drained: `Shrink {{ remove: 2 }}`. The
//!   newcomers hand their shards back and retire; epochs 11–12 complete
//!   on the original membership.
//!
//! The run is traced; the merged Chrome trace (load in `chrome://tracing`
//! or Perfetto) is written so the Expand/Shrink spans can be inspected —
//! CI uploads it as the elastic-trace artifact.

use std::time::Duration;

use mxn::core::{
    Autoscaler, AutoscalerConfig, ConnectionKind, Direction, FieldData, FieldRegistry,
    MxnConnection, MxnError, ScaleDecision,
};
use mxn::dad::{AccessMode, Dad, Extents};
use mxn::runtime::{InterComm, World};
use mxn::trace::EventId;

const CAPACITY: usize = 7; // 4 incumbents + 3 spares
const DOOMED: usize = 4; // the spare that dies before the first invite
const EPOCHS: u64 = 12;
/// Epochs under ballast pressure; the queue reads idle afterwards.
const LOADED_EPOCHS: u64 = 6;
/// Ballast burst: each message alone crosses the high-water threshold, so
/// the measured peak convicts "overloaded" regardless of how eagerly the
/// receiving thread drains.
const BALLAST_MSGS: usize = 2;
const BALLAST_DOUBLES: usize = 12 * 1024; // 96 KiB per message
const BALLAST_TAG: i32 = 4242;

fn coded(idx: &[usize], step: f64) -> f64 {
    (idx[0] * 12 + idx[1]) as f64 + step * 1000.0
}

fn refill(data: &FieldData, step: f64) {
    let mut d = data.write();
    let idxs: Vec<Vec<usize>> = d.iter().map(|(i, _)| i).collect();
    for idx in idxs {
        *d.get_mut(&idx).unwrap() = coded(&idx, step);
    }
}

fn check(data: &FieldData, step: f64) {
    let d = data.read();
    for (idx, &v) in d.iter() {
        assert_eq!(v, coded(&idx, step), "oracle mismatch at {idx:?} (epoch {step})");
    }
}

fn main() {
    let out_path =
        std::env::args().nth(1).unwrap_or_else(|| "target/autoscale_coupling_trace.json".into());

    let (_, trace) = World::run_traced(CAPACITY, |p| {
        let world = p.world();
        // The split is a world collective: every rank takes part, spares
        // with color −1, before anyone dies or parks.
        let color = if p.rank() < 4 { 0 } else { -1 };
        let pair = world.split(color, 0).unwrap();
        if p.rank() == DOOMED {
            p.kill_rank(DOOMED);
            return;
        }
        if p.rank() > 3 {
            // Spare capacity. The first invitation may abort under this
            // rank (a co-invitee died mid-handshake): re-park and wait
            // for the retry.
            let (mut conn, ic, reg) = loop {
                match MxnConnection::join(world, Duration::from_secs(30)) {
                    Ok(joined) => break joined,
                    Err(MxnError::Runtime(re)) if re.is_reconfig_aborted() => continue,
                    Err(e) => panic!("spare {} could not join: {e}", p.rank()),
                }
            };
            assert_eq!(conn.direction(), Direction::Import);
            let data = reg.get("f").unwrap().data().clone();
            // The data-carrying rebind delivered the last committed epoch.
            check(&data, 6.0);
            for step in 7..=10u64 {
                conn.data_ready(&ic, &reg).unwrap();
                check(&data, step as f64);
            }
            let mut reg = reg;
            let (gone, _) = conn.contract(&ic, world, &mut reg, &[0, 1], &[0, 1]).unwrap();
            assert!(gone.is_none() && conn.is_closed(), "a leaver retires cleanly");
            return;
        }
        // Incumbents: the death must be visible before the first invite so
        // the abort is deterministic.
        while !p.is_dead(DOOMED) {
            std::thread::yield_now();
        }
        let side = usize::from(p.rank() >= 2);
        let (_prog, ic) = InterComm::create(&pair.unwrap(), side).unwrap();
        let rank = ic.local_rank();
        let mut reg = FieldRegistry::new(rank);
        let src = Dad::block(Extents::new([12, 12]), &[2, 1]).unwrap();
        let dst = Dad::block(Extents::new([12, 12]), &[1, 2]).unwrap();
        let (data, mut conn) = if side == 0 {
            let data = reg.register_allocated("f", src, AccessMode::Read).unwrap();
            let conn = MxnConnection::initiate(
                &ic,
                &reg,
                0,
                "f",
                "f",
                Direction::Export,
                ConnectionKind::Persistent { period: 1 },
            )
            .unwrap();
            (data, conn)
        } else {
            let data = reg.register_allocated("f", dst, AccessMode::Write).unwrap();
            (data, MxnConnection::accept(&ic, &reg, 0).unwrap())
        };
        // Every incumbent drives an identical policy replica over the
        // same measured traffic — no coordination needed.
        let cfg = AutoscalerConfig {
            high_queue_bytes: 64 * 1024,
            low_queue_bytes: 4 * 1024,
            step: 2,
            cooldown: 2,
            min_ranks: 4,
            max_ranks: 8,
            sustain: 2,
        };
        let mut scaler = Autoscaler::new(cfg, 4);
        let mut parked: Vec<usize> = vec![4, 5, 6];
        let mut cur = ic;
        for step in 1..=EPOCHS {
            if side == 0 {
                refill(&data, step as f64);
            }
            conn.data_ready(&cur, &reg).unwrap();
            if side == 1 {
                check(&data, step as f64);
            }
            // Measured load: under pressure, exchange ballast with the
            // counterpart rank across the coupling, then sample this
            // rank's own mailbox gauge. The burst is fully drained before
            // the sample — the peak watermark is what convicts.
            if step <= LOADED_EPOCHS {
                let ballast = vec![0.0f64; BALLAST_DOUBLES];
                for _ in 0..BALLAST_MSGS {
                    cur.send(rank, BALLAST_TAG, ballast.clone()).unwrap();
                }
                for _ in 0..BALLAST_MSGS {
                    let _: Vec<f64> = cur.recv(rank, BALLAST_TAG).unwrap();
                }
            }
            let gauge = cur.sample_mailbox_gauge();
            match scaler.observe_stats(&gauge) {
                ScaleDecision::Hold => {}
                ScaleDecision::Grow { add } => {
                    let invite: Vec<usize> = parked.iter().copied().take(add).collect();
                    let (al, ar): (&[usize], &[usize]) =
                        if side == 0 { (&[], &invite) } else { (&invite, &[]) };
                    match conn.expand(&cur, world, &mut reg, al, ar) {
                        Ok((grown, _)) => {
                            parked.retain(|r| !invite.contains(r));
                            scaler.record_scaled(scaler.current() + add);
                            cur = grown;
                            if p.rank() == 0 {
                                println!("epoch {step}: grew to {} ranks", scaler.current());
                            }
                        }
                        Err(e) => {
                            assert!(
                                matches!(&e, MxnError::Runtime(re) if re.is_reconfig_aborted()),
                                "unexpected grow failure: {e}"
                            );
                            parked.retain(|&r| !p.is_dead(r));
                            scaler.record_aborted();
                            if p.rank() == 0 {
                                println!("epoch {step}: grow aborted (invitee died), rolled back");
                            }
                        }
                    }
                }
                ScaleDecision::Shrink { remove: _ } => {
                    let (shrunk, _) =
                        conn.contract(&cur, world, &mut reg, &[0, 1], &[0, 1]).unwrap();
                    scaler.record_scaled(4);
                    cur = shrunk.expect("incumbents survive the contract");
                    if p.rank() == 0 {
                        println!("epoch {step}: load drained, shrank back to 4 ranks");
                    }
                }
            }
        }
        assert_eq!(scaler.current(), 4, "the cycle closes at the original size");
        assert_eq!(conn.stats(), (EPOCHS, EPOCHS), "every epoch committed exactly once");
    });

    // Both the grow and the graceful contract commit through the same
    // reconfigure handshake; each commit emits one Expand event per
    // participant (6 for the grow, 6 for the contract — the abort none).
    let commits = trace.events.iter().filter(|e| e.id == EventId::Expand).count();
    assert_eq!(commits, 12, "exactly two committed reconfigurations");
    println!("trace: {commits} reconfig-commit event(s), digest {}", trace.digest_hex());
    std::fs::write(&out_path, trace.chrome_json()).expect("write chrome trace json");
    println!("wrote {out_path}");
}
