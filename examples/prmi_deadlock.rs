//! The Figure 5 synchronization problem, live.
//!
//! Three caller processes invoke collective methods on a remote serial
//! component with *intersecting* participant subsets:
//!
//! * process 0 calls method A with participants {0, 1, 2};
//! * processes 1 and 2 first call method B with participants {1, 2}, then
//!   join method A.
//!
//! With delivery on first arrival (the naive policy) the provider starts
//! servicing A, blocks for shares from 1 and 2 — which are stuck inside B —
//! and the system deadlocks. Delaying delivery with a barrier over the
//! participants (the paper's fix, used by DCA) makes the same program
//! complete.
//!
//! ```text
//! cargo run --example prmi_deadlock
//! ```

use std::time::Duration;

use mxn::framework::{AnyPayload, Dispatch, RemoteService};
use mxn::prmi::{
    subset_call_timeout, subset_serve, subset_shutdown, DeliveryPolicy, PrmiError,
    SubsetServeOutcome,
};
use mxn::runtime::Universe;

struct Doubler;
impl RemoteService for Doubler {
    fn dispatch(&self, method: u32, arg: AnyPayload) -> Dispatch {
        let v: f64 = arg.downcast().unwrap();
        AnyPayload::replicable(v * 2.0 + method as f64).into()
    }
}

fn run(policy: DeliveryPolicy) -> SubsetServeOutcome {
    let outcome = Universe::run(&[3, 1], move |_, ctx| {
        if ctx.program == 0 {
            let ic = ctx.intercomm(1);
            let rank = ctx.comm.rank();
            let all = ctx.comm.subgroup(&[0, 1, 2]).unwrap().unwrap();
            let pair = ctx.comm.subgroup(&[1, 2]).unwrap();
            let timeout = Duration::from_secs(2);
            if rank == 0 {
                // t1 in the figure: first to reach call A.
                let r: Result<f64, PrmiError> =
                    subset_call_timeout(&all, ic, &[0, 1, 2], 0, 0, 10.0, policy, timeout);
                match r {
                    Ok(v) => {
                        println!("  caller 0: method A returned {v}");
                        subset_shutdown(ic, 0).unwrap();
                    }
                    Err(e) => println!("  caller 0: {e}"),
                }
            } else {
                std::thread::sleep(Duration::from_millis(50));
                let pair = pair.unwrap();
                let rb: Result<f64, PrmiError> =
                    subset_call_timeout(&pair, ic, &[1, 2], 0, 1, 20.0, policy, timeout);
                match rb {
                    Ok(v) => {
                        if rank == 1 {
                            println!("  caller {rank}: method B returned {v}");
                        }
                        let _: f64 =
                            subset_call_timeout(&all, ic, &[0, 1, 2], 0, 0, 10.0, policy, timeout)
                                .unwrap();
                    }
                    Err(e) => {
                        if rank == 1 {
                            println!("  caller {rank}: {e}");
                        }
                    }
                }
            }
            None
        } else {
            Some(subset_serve(ctx.intercomm(0), &Doubler, Duration::from_millis(500)).unwrap())
        }
    });
    outcome.into_iter().flatten().next().unwrap()
}

fn main() {
    println!("Figure 5: intersecting collective calls, two delivery policies\n");

    println!("deliver-on-first-arrival (no synchronization):");
    match run(DeliveryPolicy::eager()) {
        SubsetServeOutcome::Deadlocked { missing_rank, method, .. } => println!(
            "  provider: DEADLOCK — servicing method {method}, share from rank {missing_rank} \
             never arrived\n"
        ),
        other => println!("  provider: unexpected outcome {other:?}\n"),
    }

    println!("barrier-delayed delivery (the paper's fix):");
    match run(DeliveryPolicy::safe()) {
        SubsetServeOutcome::Completed { calls } => {
            println!("  provider: completed all {calls} collective calls — no deadlock")
        }
        other => println!("  provider: unexpected outcome {other:?}"),
    }
}
