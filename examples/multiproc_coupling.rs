//! M×N coupling across *real OS processes*, surviving `kill -9`.
//!
//! ```text
//! cargo run --release --example multiproc_coupling [trace.json]
//! ```
//!
//! The driver (rank 0, this process) forks two worker processes (ranks 1
//! and 2, re-execs of this binary) and couples with them over the
//! Unix-domain-socket transport: each epoch the driver partitions a
//! 36-element field among the live workers, the workers compute their
//! slices, and the driver assembles and checks the result.
//!
//! After epoch 1 the driver SIGKILLs worker 1 — no goodbye frame, no
//! flush; the wire just goes quiet. What follows is the whole robustness
//! story end to end:
//!
//! 1. Heartbeats stop; peers observe silence past the liveness deadline.
//! 2. Rank 2 (which dials rank 1) retries with seeded exponential backoff
//!    until its attempt budget exhausts; rank 0 (the passive side of that
//!    link) waits out the reconnect window. Both then declare rank 1 dead
//!    in their liveness registries — the same registry, with the same
//!    semantics, as an in-proc rank death.
//! 3. The driver announces recovery; the survivors agree on the survivor
//!    set, the field is re-partitioned onto it, and the interrupted epoch
//!    is retried and completed.
//!
//! The final fields are identical to a fault-free run — the same oracle
//! the in-proc heal tests pin — so the run ends in a committed shrink,
//! not a hang and not wrong answers.

use std::time::Duration;

use mxn::trace::TraceCollector;
use mxn::wire::{spawn_worker, wire_role, CodecRegistry, WireConfig, WireNode};
use mxn_runtime::RuntimeError;

const SIZE: usize = 3;
const FIELD: usize = 36;
const EPOCHS: u64 = 4;
const KILL_AFTER_EPOCH: u64 = 1;
const APP: u32 = 7;
const ASSIGN_TAG: i32 = 1000;
/// Reply tag for (epoch, attempt): retried epochs use fresh tags so a
/// stale pre-failure reply can never be mistaken for the retry's.
fn reply_tag(epoch: u64, attempt: u64) -> i32 {
    (epoch * 8 + attempt) as i32
}

const MSG_DONE: u64 = u64::MAX;
const MSG_RECOVER: u64 = u64::MAX - 1;

fn value(idx: usize, epoch: u64) -> f64 {
    (idx as u64 + epoch * 100) as f64
}

fn config(dir: &std::path::Path, rank: usize) -> WireConfig {
    let mut cfg = WireConfig::new(dir, rank, SIZE);
    cfg.seed = 42;
    cfg
}

/// Worker: serve assignments until told we are done. Each assignment is
/// `[epoch, lo, hi, attempt]`; the reply is the owned slice's values.
fn worker_main(rank: usize, dir: std::path::PathBuf) {
    let node =
        WireNode::start(config(&dir, rank), CodecRegistry::with_defaults()).expect("start node");
    node.connect().expect("connect mesh");
    loop {
        let msg: Vec<u64> = match node.recv(0, APP, ASSIGN_TAG) {
            Ok(m) => m,
            Err(RuntimeError::PeerDead { .. }) => std::process::exit(1), // driver gone
            Err(e) => panic!("worker {rank}: assignment recv failed: {e}"),
        };
        match msg[0] {
            MSG_DONE => break,
            MSG_RECOVER => {
                let epoch = msg[1] as u32;
                let survivors = node.agree_survivors(epoch, Duration::from_secs(5)).expect("agree");
                eprintln!("[worker {rank}] agreed survivors after failure: {survivors:?}");
            }
            epoch => {
                let (lo, hi, attempt) = (msg[1] as usize, msg[2] as usize, msg[3]);
                let slice: Vec<(usize, f64)> =
                    (lo..hi).map(|idx| (idx, value(idx, epoch))).collect();
                node.send(0, APP, reply_tag(epoch, attempt), slice).expect("send slice");
            }
        }
    }
    node.shutdown();
}

/// Even split of `0..FIELD` over `workers`, as `(rank, lo, hi)` triples.
fn partition(workers: &[usize]) -> Vec<(usize, usize, usize)> {
    let chunk = FIELD.div_ceil(workers.len());
    workers
        .iter()
        .enumerate()
        .map(|(i, &w)| (w, (i * chunk).min(FIELD), ((i + 1) * chunk).min(FIELD)))
        .collect()
}

fn driver_main(dir: std::path::PathBuf, trace_out: String) {
    let collector = TraceCollector::new(1);
    let handle = collector.handle(0);
    let _guard = handle.install();

    let node =
        WireNode::start_traced(config(&dir, 0), CodecRegistry::with_defaults(), Some(handle))
            .expect("start driver node");

    let mut workers: Vec<_> =
        (1..SIZE).map(|r| spawn_worker(r, SIZE, &dir, 42, &[]).expect("spawn worker")).collect();
    node.connect().expect("connect mesh");
    println!("mesh up: driver + {} workers over {}", workers.len(), dir.display());

    let mut live: Vec<usize> = (1..SIZE).collect();
    let mut epoch = 0u64;
    let mut attempt = 0u64;
    let mut healed = false;
    while epoch < EPOCHS {
        let parts = partition(&live);
        for &(w, lo, hi) in &parts {
            node.send(w, APP, ASSIGN_TAG, vec![epoch, lo as u64, hi as u64, attempt])
                .expect("send assignment");
        }
        let mut field = vec![f64::NAN; FIELD];
        let mut failed: Option<usize> = None;
        for &(w, _, _) in &parts {
            match node.recv_timeout::<Vec<(usize, f64)>>(
                w,
                APP,
                reply_tag(epoch, attempt),
                Duration::from_secs(2),
            ) {
                Ok(slice) => {
                    for (idx, v) in slice {
                        field[idx] = v;
                    }
                }
                Err(RuntimeError::Timeout { .. }) | Err(RuntimeError::PeerDead { .. }) => {
                    failed = Some(w);
                }
                Err(e) => panic!("driver: epoch {epoch} recv from {w}: {e}"),
            }
        }
        if let Some(dead) = failed {
            println!("epoch {epoch}: worker {dead} stopped answering; awaiting liveness verdict");
            assert!(
                node.await_death(dead, Duration::from_secs(15)),
                "reconnect never exhausted for rank {dead}"
            );
            live.retain(|&w| w != dead);
            for &w in &live {
                node.send(w, APP, ASSIGN_TAG, vec![MSG_RECOVER, epoch, 0, 0])
                    .expect("send recover marker");
            }
            let survivors = node
                .agree_survivors(epoch as u32, Duration::from_secs(5))
                .expect("agree survivors");
            println!("epoch {epoch}: survivors committed: {survivors:?}; retrying epoch");
            assert_eq!(survivors, {
                let mut s = vec![0];
                s.extend(&live);
                s
            });
            healed = true;
            attempt += 1;
            continue; // retry the interrupted epoch on the survivor set
        }
        for (idx, &v) in field.iter().enumerate() {
            assert_eq!(v, value(idx, epoch), "field[{idx}] wrong in epoch {epoch}");
        }
        println!("epoch {epoch}: field complete and correct across {} worker(s)", parts.len());
        if epoch == KILL_AFTER_EPOCH {
            let victim = &mut workers[0]; // worker rank 1
            println!("kill -9 worker rank {} (pid {})", victim.rank(), victim.pid());
            victim.kill();
        }
        epoch += 1;
        attempt = 0;
    }
    assert!(healed, "the kill never forced a heal");

    for &w in &live {
        node.send(w, APP, ASSIGN_TAG, vec![MSG_DONE, 0, 0, 0]).expect("send done");
    }
    for g in &mut workers {
        if live.contains(&g.rank()) {
            assert!(g.wait_success(Duration::from_secs(10)), "worker exited unclean");
        }
    }
    let stats = node.stats();
    println!(
        "wire stats: sent={} received={} corrupt={} dup={} redials={} hb_misses={}",
        stats.frames_sent,
        stats.frames_received,
        stats.corrupt_frames,
        stats.duplicates_dropped,
        stats.reconnect_dials,
        stats.heartbeat_misses
    );
    node.shutdown();

    let trace = collector.finish();
    if let Some(parent) = std::path::Path::new(&trace_out).parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    std::fs::write(&trace_out, trace.chrome_json()).expect("write chrome trace");
    println!(
        "all {EPOCHS} epochs match the fault-free oracle after a real kill -9; trace: {trace_out}"
    );
}

fn main() {
    if let Some(role) = wire_role() {
        worker_main(role.rank, role.dir);
        return;
    }
    let trace_out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/multiproc_coupling_trace.json".to_string());
    let dir = std::env::temp_dir().join(format!("mxn-multiproc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    driver_main(dir.clone(), trace_out);
    let _ = std::fs::remove_dir_all(&dir);
}
