//! Quickstart: the M×N problem of the paper's Figure 1.
//!
//! An 8-process simulation (2×2×2 process grid) and a 27-process
//! simulation (3×3×3) share one 3-D field. Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use mxn::dad::{Dad, Extents, LocalArray};
use mxn::runtime::Universe;
use mxn::schedule::{recv_redistributed, send_redistributed, RegionSchedule};

fn main() {
    let extents = Extents::new([6, 6, 6]);
    let src = Dad::block(extents.clone(), &[2, 2, 2]).unwrap(); // M = 8
    let dst = Dad::block(extents.clone(), &[3, 3, 3]).unwrap(); // N = 27
    println!("The M×N problem (Figure 1): M = {} processes → N = {}", src.nranks(), dst.nranks());
    println!("Global array: {:?} = {} elements\n", extents.dims(), extents.total());

    let value = |idx: &[usize]| (idx[0] * 36 + idx[1] * 6 + idx[2]) as f64;

    let (_, stats) = Universe::run_with_stats(&[8, 27], |_, ctx| {
        if ctx.program == 0 {
            // The "M side": owns the field in 3×3×3-element blocks.
            let rank = ctx.comm.rank();
            let mine = LocalArray::from_fn(&src, rank, value);
            // How many receivers does this sender talk to?
            let sched = RegionSchedule::for_sender(&src, &dst, rank);
            if rank == 0 {
                println!(
                    "sender 0 exports {} elements to {} of the 27 receivers",
                    sched.total_elements(),
                    sched.num_messages()
                );
            }
            send_redistributed(ctx.intercomm(1), &src, &dst, &mine, 0).unwrap();
        } else {
            // The "N side": receives its 2×2×2-element block.
            let mine: LocalArray<f64> =
                recv_redistributed(ctx.intercomm(0), &src, &dst, 0).unwrap();
            for (idx, &v) in mine.iter() {
                assert_eq!(v, value(&idx), "wrong value at {idx:?}");
            }
            if ctx.comm.rank() == 0 {
                println!("receiver 0 verified its {} elements", mine.len());
            }
        }
    });

    println!("\ntransfer complete and verified on all 27 receivers");
    println!(
        "traffic: {} point-to-point messages, {} bytes ({} collective msgs for setup)",
        stats.p2p_messages, stats.p2p_bytes, stats.collective_messages
    );
}
