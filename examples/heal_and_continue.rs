//! Heal-and-continue: an exporter dies mid-coupling, the survivors shrink
//! the connection and keep transferring — *lossy by design*.
//!
//! ```text
//! cargo run --release --example heal_and_continue [trace.json]
//! ```
//!
//! Three exporters block-decompose a 6×6 field by rows (two rows each) and
//! feed a single importer through a transactional persistent connection.
//! After epoch 1 commits, the middle exporter dies. Epoch 2's first attempt
//! aborts collectively — the importer's field still holds epoch 1 intact —
//! then both sides heal: revoke, shrink to the survivor set, re-decompose,
//! rebind surviving data, rebuild the transfer schedule. The retried epoch
//! completes over the healed coupling.
//!
//! The catch, and the point: rows 2–3 lived *only* on the dead exporter.
//! `FieldRegistry::rebind` carries over every element a survivor owned and
//! zero-fills the rest, so the healed transfer delivers zeros there. The
//! recovery model restores *progress*, not lost state — components that
//! need the data back must re-source it (checkpoint, recompute, re-read).
//!
//! The run is traced; the merged Chrome trace (load in `chrome://tracing`
//! or Perfetto) is written so the heal/rollback spans can be inspected —
//! CI uploads it as the recovery-trace artifact.

use std::fs;

use mxn::core::{ConnectionKind, Direction, FieldRegistry, MxnConnection, TransferOutcome};
use mxn::dad::{AccessMode, Dad, Extents};
use mxn::runtime::Universe;
use mxn::trace::EventId;

const DEAD_WORLD_RANK: usize = 1; // exporter of rows 2..4

fn main() {
    let out_path =
        std::env::args().nth(1).unwrap_or_else(|| "target/heal_and_continue_trace.json".into());

    let (results, trace) = Universe::run_traced(&[3, 1], |p, ctx| {
        let rank = ctx.comm.rank();
        let exporting = ctx.program == 0;
        let src = Dad::block(Extents::new([6, 6]), &[3, 1]).unwrap();
        let dst = Dad::block(Extents::new([6, 6]), &[1, 1]).unwrap();
        let mut reg = FieldRegistry::new(rank);
        let data = if exporting {
            reg.register_allocated("field", src, AccessMode::Read).unwrap()
        } else {
            reg.register_allocated("field", dst, AccessMode::Write).unwrap()
        };
        if exporting {
            // Nonzero everywhere, so lost regions are visible as zeros.
            let mut d = data.write();
            for r in 0..6 {
                for c in 0..6 {
                    if let Some(v) = d.get_mut(&[r, c]) {
                        *v = (r * 6 + c + 1) as f64;
                    }
                }
            }
        }
        let mut conn = if exporting {
            MxnConnection::initiate(
                ctx.intercomm(1),
                &reg,
                0,
                "field",
                "field",
                Direction::Export,
                ConnectionKind::Persistent { period: 1 },
            )
            .unwrap()
        } else {
            MxnConnection::accept(ctx.intercomm(0), &reg, 0).unwrap()
        };
        conn.set_transactional(true);
        let ic = if exporting { ctx.intercomm(1) } else { ctx.intercomm(0) };

        // Epoch 1 commits on the full membership.
        let outcome = conn.data_ready(ic, &reg).unwrap();
        assert!(matches!(outcome, TransferOutcome::Transferred { .. }));
        p.world().barrier().unwrap();

        // The middle exporter dies; a dead rank leaves the protocol.
        if p.rank() == DEAD_WORLD_RANK {
            p.kill_rank(DEAD_WORLD_RANK);
            return format!("rank {rank} (exporter): died after epoch 1");
        }
        while !p.is_dead(DEAD_WORLD_RANK) {
            std::thread::yield_now();
        }

        // Epoch 2, first attempt: the commit vote fails everywhere, the
        // transfer rolls back, committed data stays intact.
        let aborted = conn.data_ready(ic, &reg).unwrap_err();
        let committed_before = conn.stats().1;

        // Heal: shrink to survivors, re-decompose, rebind, re-plan.
        let (healed, report) = conn.heal(ic, &mut reg).unwrap();

        // Epoch 2, retried over the healed coupling.
        let outcome = conn.data_ready(&healed, &reg).unwrap();
        assert!(matches!(outcome, TransferOutcome::Transferred { .. }));

        if exporting {
            format!(
                "rank {rank} (exporter): abort `{aborted}` then healed to {} exporters, epoch {}",
                report.local_survivors.len(),
                conn.epoch(),
            )
        } else {
            // Rows owned only by the dead exporter arrive zeroed: the heal
            // restores progress, not lost state.
            let d = data.read();
            let mut lost = Vec::new();
            let mut kept = 0usize;
            for r in 0..6 {
                let row_sum: f64 = (0..6).map(|c| *d.get(&[r, c]).unwrap()).sum();
                if row_sum == 0.0 {
                    lost.push(r);
                } else {
                    kept += 1;
                }
            }
            format!(
                "rank {rank} (importer): {committed_before} epochs committed before the heal, \
                 {kept} rows re-delivered, rows {lost:?} lost with the dead exporter",
            )
        }
    });

    for line in &results {
        println!("{line}");
    }
    let agg = trace.aggregate();
    let heals = agg.count(EventId::Heal);
    let rollbacks = agg.count(EventId::Rollback);
    println!("trace: {heals} heal span(s), {rollbacks} rollback(s), digest {}", trace.digest_hex());

    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        fs::create_dir_all(dir).expect("create output directory");
    }
    fs::write(&out_path, trace.chrome_json()).expect("write chrome trace json");
    println!("wrote {out_path}");
}
