//! The DRI "corner turn" (paper §5, related work).
//!
//! The canonical signal-processing reorganization the DRI standard was
//! written for: a radar datacube processed first along rows (per-pulse
//! filtering, row-block partition) must be reorganized to a column-block
//! partition for the cross-pulse stage. DRI's low-level get/put model lets
//! each process interleave the reorganization with its own compute.
//!
//! ```text
//! cargo run --example dri_corner_turn
//! ```

use mxn::dad::LocalArray;
use mxn::dri::{DriPartition, DriReorg, ReorgPhase};
use mxn::runtime::World;

const ROWS: usize = 64;
const COLS: usize = 64;
const P: usize = 4;

fn main() {
    println!("DRI corner turn: {ROWS}×{COLS} datacube, {P} processes");
    println!("stage 1 (row blocks) → reorganize → stage 2 (column blocks)\n");

    World::run(P, |proc| {
        let comm = proc.world();
        let rank = comm.rank();
        use mxn::dri::{DriDist, LocalLayout};
        let rows_part = DriPartition::new(
            &[ROWS, COLS],
            &[DriDist::Block(P), DriDist::Whole],
            LocalLayout::RowMajor,
        )
        .unwrap();
        let cols_part = DriPartition::new(
            &[ROWS, COLS],
            &[DriDist::Whole, DriDist::Block(P)],
            LocalLayout::RowMajor,
        )
        .unwrap();

        // Stage 1: per-row "matched filter" (toy: value = row ⊕ col).
        let stage1 =
            LocalArray::from_fn(rows_part.dad(), rank, |idx| (idx[0] * COLS + idx[1]) as f64);

        // Corner turn, interleaved with "compute" between chunks.
        let mut reorg = DriReorg::new(rows_part, cols_part.clone(), rank, 1).unwrap();
        let mut recv: LocalArray<f64> = LocalArray::allocate(cols_part.dad(), rank);
        let mut chunks = 0;
        while !reorg.is_complete() {
            if let ReorgPhase::InProgress { .. } = reorg.put_phase() {
                reorg.put(comm, &stage1).unwrap();
                chunks += 1;
            }
            // … per-chunk compute would overlap here …
            if let ReorgPhase::InProgress { .. } = reorg.get_phase() {
                reorg.get(comm, &mut recv).unwrap();
            }
        }

        // Stage 2: verify every column element landed correctly.
        for (idx, &v) in recv.iter() {
            assert_eq!(v, (idx[0] * COLS + idx[1]) as f64, "at {idx:?}");
        }
        let sum: f64 = recv.iter().map(|(_, &v)| v).sum();
        let total: f64 = comm.allreduce(sum, |a, b| *a += b).unwrap();
        if rank == 0 {
            let n = (ROWS * COLS) as f64;
            assert_eq!(total, n * (n - 1.0) / 2.0);
            println!("rank 0: drove {chunks} put chunks; datacube checksum verified");
            println!("\ncorner turn complete: all {} elements in column-block layout", ROWS * COLS);
        }
    });
}
