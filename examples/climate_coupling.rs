//! Climate-style coupling with the Model Coupling Toolkit (paper §4.5).
//!
//! Three components share one world, MCT-style (no inter-communicators —
//! the model registry provides process-ID lookup):
//!
//! * an **atmosphere** on 3 ranks with a fine 1-D grid (96 cells),
//! * an **ocean** on 2 ranks with a coarse grid (48 cells),
//! * a serial **coupler** that owns the regridding matrix.
//!
//! Per coupling interval the atmosphere time-averages its flux with an
//! [`Accumulator`], routes it to the coupler, which interpolates it to the
//! ocean grid conservatively (checked with a paired integral) and routes
//! the result on to the ocean.
//!
//! ```text
//! cargo run --example climate_coupling
//! ```

use mxn::mct::{
    conservative_remap_1d, global_integral, AccumAction, Accumulator, AttrVect, CellGrid1d,
    GeneralGrid, GlobalSegMap, ModelRegistry, Router, SparseMatrixPlus,
};
use mxn::runtime::World;

const ATM_N: usize = 96;
const OCN_N: usize = 48;
const ATM_RANKS: usize = 3;
const OCN_RANKS: usize = 2;
const INTERVALS: usize = 3;
const STEPS_PER_INTERVAL: usize = 4;

const ATM: u32 = 1;
const OCN: u32 = 2;
const CPL: u32 = 3;

fn main() {
    println!("MCT coupled system: atmosphere({ATM_RANKS}) + ocean({OCN_RANKS}) + coupler(1)");
    println!("atm grid {ATM_N} cells → ocn grid {OCN_N} cells, conservative 2:1 remap\n");

    World::run(ATM_RANKS + OCN_RANKS + 1, |p| {
        let world = p.world();
        let my_comp = match p.rank() {
            r if r < ATM_RANKS => ATM,
            r if r < ATM_RANKS + OCN_RANKS => OCN,
            _ => CPL,
        };
        let registry = ModelRegistry::init(world, my_comp).unwrap();
        // Singleton self-communicator per rank (split is collective, so
        // every rank participates; each gets its own color).
        let selfcomm = world.split(p.rank() as i64, 0).unwrap().unwrap();

        // Decompositions. The coupler holds both grids entirely (1 rank).
        let atm_map = GlobalSegMap::block(ATM_N, ATM_RANKS);
        let ocn_map = GlobalSegMap::block(OCN_N, OCN_RANKS);
        let cpl_atm_map = GlobalSegMap::block(ATM_N, 1);
        let cpl_ocn_map = GlobalSegMap::block(OCN_N, 1);

        match my_comp {
            ATM => atmosphere(world, &registry, &atm_map, p.rank()),
            OCN => ocean(world, &registry, &ocn_map, p.rank() - ATM_RANKS),
            _ => coupler(world, &selfcomm, &registry, &cpl_atm_map, &cpl_ocn_map),
        }
    });

    println!("\ncoupled climate run complete: conservation held in every interval");
}

/// Atmosphere: steps its flux field, accumulates, sends averages.
fn atmosphere(world: &mxn::runtime::Comm, reg: &ModelRegistry, map: &GlobalSegMap, rank: usize) {
    let n = map.lsize(rank);
    let router = Router::new(map, rank, &GlobalSegMap::block(ATM_N, 1), reg, CPL).unwrap();
    let mut acc = Accumulator::new(&[("flux", AccumAction::Average)], n);

    for interval in 0..INTERVALS {
        for step in 0..STEPS_PER_INTERVAL {
            // "Physics": flux varies per cell and per step.
            let mut av = AttrVect::new(&["flux"], &[], n);
            for l in 0..n {
                let g = map.global_index(rank, l).unwrap() as f64;
                av.real_mut("flux")[l] =
                    (g * 0.13).sin() + (interval * STEPS_PER_INTERVAL + step) as f64 * 0.01;
            }
            acc.accumulate(&av);
        }
        let averaged = acc.retrieve();
        router.send(world, &averaged, interval as i32).unwrap();
    }
}

/// The coupler: receives atm flux, interpolates conservatively, forwards.
fn coupler(
    world: &mxn::runtime::Comm,
    selfcomm: &mxn::runtime::Comm,
    reg: &ModelRegistry,
    atm_map: &GlobalSegMap,
    ocn_map: &GlobalSegMap,
) {
    // Conservative remap weights generated from the two grids' geometry
    // (ocean cell = overlap-weighted mean of the atm cells it covers).
    let atm_cells = CellGrid1d::uniform(ATM_N, 0.0, 1.0);
    let ocn_cells = CellGrid1d::uniform(OCN_N, 0.0, 1.0);
    let a = conservative_remap_1d(&atm_cells, &ocn_cells);
    // The coupler is serial: the matvec runs over its self-communicator.
    let plus = SparseMatrixPlus::build(selfcomm, &a, atm_map, ocn_map).unwrap();

    let atm_grid = GeneralGrid::uniform_1d(ATM_N, 0.0, 1.0);
    let ocn_grid = GeneralGrid::uniform_1d(OCN_N, 0.0, 1.0);

    let from_atm =
        Router::new(atm_map, 0, &GlobalSegMap::block(ATM_N, ATM_RANKS), reg, ATM).unwrap();
    let to_ocn = Router::new(ocn_map, 0, &GlobalSegMap::block(OCN_N, OCN_RANKS), reg, OCN).unwrap();

    for interval in 0..INTERVALS {
        let mut atm_av = AttrVect::new(&["flux"], &[], ATM_N);
        from_atm.recv(world, &mut atm_av, interval as i32).unwrap();

        let mut ocn_av = AttrVect::new(&["flux"], &[], OCN_N);
        plus.apply(selfcomm, &atm_av, &mut ocn_av, 64 + interval as i32).unwrap();

        // Flux conservation check (paired integral on both grids).
        let src = global_integral(selfcomm, &atm_av, "flux", &atm_grid, None).unwrap();
        let dst = global_integral(selfcomm, &ocn_av, "flux", &ocn_grid, None).unwrap();
        let err = (dst - src).abs() / src.abs().max(1e-30);
        println!(
            "interval {interval}: ∫atm flux = {src:.6}, ∫ocn flux = {dst:.6}, rel err {err:.2e}"
        );
        assert!(err < 1e-12, "conservation violated");

        to_ocn.send(world, &ocn_av, 32 + interval as i32).unwrap();
    }
}

/// Ocean: receives the regridded flux each interval.
fn ocean(world: &mxn::runtime::Comm, reg: &ModelRegistry, map: &GlobalSegMap, rank: usize) {
    let n = map.lsize(rank);
    let router = Router::new(map, rank, &GlobalSegMap::block(OCN_N, 1), reg, CPL).unwrap();
    for interval in 0..INTERVALS {
        let mut av = AttrVect::new(&["flux"], &[], n);
        router.recv(world, &mut av, 32 + interval as i32).unwrap();
        let local_sum: f64 = av.real("flux").iter().sum();
        assert!(local_sum.is_finite());
        if rank == 0 {
            println!("  ocean got interval {interval}: local flux sum {local_sum:.4}");
        }
    }
}
