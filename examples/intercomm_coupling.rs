//! InterComm-style timestamp-coordinated coupling (paper §4.4).
//!
//! A producer simulation exports a field every 0.5 time units; a consumer
//! with a slower, irregular clock imports by timestamp under different
//! matching rules. The consumer never needs to know the producer's
//! schedule — the coordination rules decide which version each import
//! receives, and pending requests are answered as the producer's frontier
//! advances (hiding transfer cost behind the producer's stepping).
//!
//! ```text
//! cargo run --example intercomm_coupling
//! ```

use mxn::dad::{Dad, Extents, LocalArray};
use mxn::intercomm::{Exporter, ImportOutcome, Importer, MatchRule};
use mxn::runtime::Universe;

const N: usize = 32;

fn main() {
    let rules: Vec<(&str, MatchRule)> = vec![
        ("LowerBound", MatchRule::LowerBound),
        ("Nearest(0.3)", MatchRule::Nearest { tol: 0.3 }),
        ("RegularInterval(1.0)", MatchRule::RegularInterval { start: 0.0, every: 1.0 }),
    ];

    for (name, rule) in rules {
        println!("=== rule: {name} ===");
        run_coupling(rule);
        println!();
    }
    println!("all rules behaved as specified");
}

fn run_coupling(rule: MatchRule) {
    let extents = Extents::new([N]);
    let src_dad = Dad::block(extents.clone(), &[2]).unwrap();
    let dst_dad = Dad::block(extents.clone(), &[2]).unwrap();
    // The consumer's irregular request clock.
    let requests = [0.7, 1.2, 2.9, 4.0];

    Universe::run(&[2, 2], |_, ctx| {
        let rank = ctx.comm.rank();
        if ctx.program == 0 {
            // Producer: export at t = 0.0, 0.5, …, 4.5.
            let ic = ctx.intercomm(1);
            let mut ex = Exporter::new(src_dad.clone(), dst_dad.clone(), rank, rule, 32);
            for step in 0..10 {
                let t = step as f64 * 0.5;
                let data = LocalArray::from_fn(&src_dad, rank, |idx| idx[0] as f64 + t * 100.0);
                ex.export(ic, t, &data).unwrap();
            }
            ex.close(ic).unwrap();
            // 2 importer ranks × 4 imports.
            ex.serve_until_answered(ic, 8).unwrap();
            if rank == 0 {
                let s = ex.stats();
                println!(
                    "  producer rank 0: {} exports, {} transfers, {} no-matches",
                    s.exports, s.transfers, s.no_matches
                );
            }
        } else {
            let ic = ctx.intercomm(0);
            let mut im = Importer::new(&dst_dad, &src_dad, rank, rule);
            let mut dst: LocalArray<f64> = LocalArray::allocate(&dst_dad, rank);
            for &treq in &requests {
                match im.import(ic, treq, &mut dst).unwrap() {
                    ImportOutcome::Fulfilled { version } => {
                        // The received data is stamped with its version:
                        // value = point index + version · 100.
                        let (first_idx, sample) = {
                            let (idx, &v) = dst.iter().next().unwrap();
                            (idx[0] as f64, v)
                        };
                        if rank == 0 {
                            println!("  import(t={treq}) → version {version}");
                        }
                        assert!(
                            (sample - first_idx - version * 100.0).abs() < 1e-9,
                            "data does not match version {version}: sample {sample}"
                        );
                    }
                    ImportOutcome::NoMatch => {
                        if rank == 0 {
                            println!("  import(t={treq}) → no match");
                        }
                    }
                }
            }
        }
    });
}
